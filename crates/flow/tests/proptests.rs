//! Property tests for the flow substrate: the push-relabel engine vs the
//! Dinic legacy oracle, Dinic vs an independent Edmonds–Karp reference,
//! max-flow/min-cut duality, and oracle cross-checks.

use proptest::prelude::*;

use dsd_flow::{Dinic, PushRelabel};

/// Reference max-flow: Edmonds–Karp on an adjacency-matrix residual.
fn edmonds_karp(n: usize, edges: &[(usize, usize, f64)], s: usize, t: usize) -> f64 {
    let mut cap = vec![vec![0.0f64; n]; n];
    for &(u, v, c) in edges {
        cap[u][v] += c;
    }
    let mut flow = 0.0;
    loop {
        // BFS for an augmenting path.
        let mut parent = vec![usize::MAX; n];
        parent[s] = s;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if parent[v] == usize::MAX && cap[u][v] > 1e-12 {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[t] == usize::MAX {
            return flow;
        }
        // Bottleneck.
        let mut bottleneck = f64::INFINITY;
        let mut v = t;
        while v != s {
            let u = parent[v];
            bottleneck = bottleneck.min(cap[u][v]);
            v = u;
        }
        let mut v = t;
        while v != s {
            let u = parent[v];
            cap[u][v] -= bottleneck;
            cap[v][u] += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }
}

fn flow_instance() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (4usize..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n, 0..n, 1u32..20).prop_map(|(u, v, c)| (u, v, c as f64)),
            1..40,
        );
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dinic_matches_edmonds_karp((n, edges) in flow_instance()) {
        let s = 0;
        let t = n - 1;
        let clean: Vec<(usize, usize, f64)> =
            edges.into_iter().filter(|&(u, v, _)| u != v).collect();
        let mut d = Dinic::new(n);
        for &(u, v, c) in &clean {
            d.add_edge(u, v, c);
        }
        let dinic_flow = d.max_flow(s, t);
        let reference = edmonds_karp(n, &clean, s, t);
        prop_assert!((dinic_flow - reference).abs() < 1e-6,
            "dinic {dinic_flow} vs reference {reference}");
    }

    #[test]
    fn max_flow_equals_min_cut((n, edges) in flow_instance()) {
        let s = 0;
        let t = n - 1;
        let clean: Vec<(usize, usize, f64)> =
            edges.into_iter().filter(|&(u, v, _)| u != v).collect();
        let mut d = Dinic::new(n);
        for &(u, v, c) in &clean {
            d.add_edge(u, v, c);
        }
        let flow = d.max_flow(s, t);
        let side = d.min_cut_side(s);
        prop_assert!(side[s]);
        prop_assert!(!side[t] || flow == 0.0);
        let cut: f64 = clean
            .iter()
            .filter(|&&(u, v, _)| side[u] && !side[v])
            .map(|&(_, _, c)| c)
            .sum();
        prop_assert!((flow - cut).abs() < 1e-6, "flow {flow} vs cut {cut}");
    }

    #[test]
    fn push_relabel_matches_dinic((n, edges) in flow_instance()) {
        let s = 0;
        let t = n - 1;
        let clean: Vec<(usize, usize, f64)> =
            edges.into_iter().filter(|&(u, v, _)| u != v).collect();
        let mut pr = PushRelabel::new(n);
        let mut d = Dinic::new(n);
        for &(u, v, c) in &clean {
            pr.add_edge(u, v, c as u64);
            d.add_edge(u, v, c);
        }
        let engine = pr.max_flow(s, t);
        let legacy = d.max_flow(s, t);
        // Integer capacities: both solvers must agree exactly.
        prop_assert_eq!(engine as f64, legacy,
            "push-relabel {} vs dinic {}", engine, legacy);
    }

    #[test]
    fn push_relabel_cut_capacity_equals_flow((n, edges) in flow_instance()) {
        let s = 0;
        let t = n - 1;
        let clean: Vec<(usize, usize, u64)> =
            edges.into_iter().filter(|&(u, v, _)| u != v)
                .map(|(u, v, c)| (u, v, c as u64)).collect();
        let mut pr = PushRelabel::new(n);
        for &(u, v, c) in &clean {
            pr.add_edge(u, v, c);
        }
        let flow = pr.max_flow(s, t);
        let side = pr.min_cut_source_side(s, t);
        prop_assert!(side[s]);
        prop_assert!(!side[t]);
        let cut: u64 = clean
            .iter()
            .filter(|&&(u, v, _)| side[u] && !side[v])
            .map(|&(_, _, c)| c)
            .sum();
        prop_assert_eq!(flow, cut, "flow {} vs extracted cut {}", flow, cut);
    }

    #[test]
    fn uds_engine_matches_legacy_oracle(
        (n, m, seed) in (4usize..24, 4usize..70, any::<u64>())
    ) {
        let g = dsd_graph::gen::erdos_renyi(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let engine = dsd_flow::uds_exact(&g);
        let legacy = dsd_flow::uds_exact_legacy(&g);
        prop_assert!((engine.density - legacy.density).abs() < 1e-9,
            "engine {} vs legacy {}", engine.density, legacy.density);
    }

    #[test]
    fn dds_engine_matches_legacy_oracle(
        (n, m, seed) in (3usize..8, 2usize..20, any::<u64>())
    ) {
        let g = dsd_graph::gen::erdos_renyi_directed(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let engine = dsd_flow::dds_exact(&g);
        let legacy = dsd_flow::dds_exact_legacy(&g);
        prop_assert!((engine.density - legacy.density).abs() < 1e-6,
            "engine {} vs legacy {}", engine.density, legacy.density);
    }

    #[test]
    fn uds_exact_at_least_half_average_degree(
        (n, m, seed) in (4usize..40, 4usize..120, any::<u64>())
    ) {
        let g = dsd_graph::gen::erdos_renyi(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let r = dsd_flow::uds_exact(&g);
        // The whole graph is a candidate: rho* >= m/n.
        prop_assert!(r.density + 1e-9 >= g.density());
        // And no subgraph can beat half the max degree.
        prop_assert!(r.density <= g.max_degree() as f64 / 2.0 + 1e-9);
    }

    #[test]
    fn dds_exact_bounds((n, m, seed) in (3usize..12, 2usize..40, any::<u64>())) {
        let g = dsd_graph::gen::erdos_renyi_directed(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let r = dsd_flow::dds_exact(&g);
        // A single max in-degree hub star is always a candidate.
        let hub = (0..n as u32).map(|v| g.in_degree(v)).max().unwrap() as f64;
        prop_assert!(r.density + 1e-6 >= hub.sqrt());
        // Density cannot exceed sqrt(m).
        prop_assert!(r.density <= (g.num_edges() as f64).sqrt() + 1e-6);
    }
}
