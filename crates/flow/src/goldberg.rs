//! Goldberg's exact undirected densest subgraph algorithm.
//!
//! Binary search over density guesses `g`; for each guess a min-cut on the
//! classic Goldberg network decides whether some subgraph has density
//! greater than `g` and, if so, yields one. Distinct subgraph densities
//! `|E(S)|/|S|` differ by at least `1/(n(n-1))`, so the search terminates
//! with the exact optimum — and the final incumbent cut is an exact
//! **density certificate** (the optimum vertex set, not just its value).
//!
//! Two implementations share this module:
//!
//! * [`uds_exact`] / [`uds_exact_seeded`] — the engine path. Density
//!   guesses are exact rationals `p / q` with `q = n(n-1)`; all network
//!   capacities are scaled by `q` into integers and solved with the
//!   parallel [`crate::push_relabel::PushRelabel`] engine, so feasibility
//!   is an exact integer comparison (`maxflow < n·m·q`) with no epsilon.
//!   Each guess first shrinks the network to the `(⌊g⌋ + 1)`-core
//!   ([`crate::prune`], after Fang et al. VLDB 2019) — any witness denser
//!   than `g` survives there — and an optional seed set (e.g. a PKMC
//!   2-approximation from `dsd-core`) tightens the initial search window.
//! * [`uds_exact_legacy`] — the original serial float/Dinic implementation,
//!   kept verbatim as the differential-testing oracle.

use dsd_graph::{subgraph, UndirectedGraph, VertexId};

use crate::dinic::Dinic;
use crate::prune::core_numbers;
use crate::push_relabel::PushRelabel;

/// Result of the exact undirected densest subgraph computation.
#[derive(Clone, Debug)]
pub struct UdsExactResult {
    /// Vertices of an exactly densest subgraph (original ids, sorted) —
    /// the density certificate extracted from the final min cut.
    pub vertices: Vec<VertexId>,
    /// Its density `|E(S)| / |S|` — the optimum ρ*.
    pub density: f64,
}

/// Density of the subgraph of `g` induced by `set` (sorted vertex ids).
fn induced_density(g: &UndirectedGraph, set: &[VertexId]) -> f64 {
    let (e, s) = rational_density(g, set);
    if s == 0 {
        0.0
    } else {
        e as f64 / s as f64
    }
}

/// Exact rational density `(edges, vertices)` of the induced subgraph.
fn rational_density(g: &UndirectedGraph, set: &[VertexId]) -> (u64, u64) {
    if set.is_empty() {
        return (0, 0);
    }
    let mut member = vec![false; g.num_vertices()];
    for &v in set {
        member[v as usize] = true;
    }
    let mut edges = 0u64;
    for &v in set {
        for &u in g.neighbors(v) {
            if u > v && member[u as usize] {
                edges += 1;
            }
        }
    }
    (edges, set.len() as u64)
}

/// `a/b > c/d` for non-negative rationals with `b, d > 0`.
fn rational_gt(a: u64, b: u64, c: u64, d: u64) -> bool {
    (a as u128) * (d as u128) > (c as u128) * (b as u128)
}

/// Integer-scaled Goldberg decision network on `h` for the guess `p / q`:
/// returns the source-side vertex set of a minimum cut if some subgraph of
/// `h` has density `> p / q`, `None` otherwise. All capacities carry the
/// factor `q`, so the feasibility test `maxflow < n·m·q` is exact.
fn scaled_cut(h: &UndirectedGraph, p: u64, q: u64) -> Option<Vec<VertexId>> {
    let n = h.num_vertices() as u64;
    let m = h.num_edges() as u64;
    if m == 0 {
        return None;
    }
    let src = n as usize;
    let snk = src + 1;
    let cap_src = m.checked_mul(q).expect("graph too large for the exact UDS oracle");
    let total = cap_src.checked_mul(n).expect("graph too large for the exact UDS oracle");
    let mut pr = PushRelabel::new(src + 2);
    for v in 0..n as usize {
        pr.add_edge(src, v, cap_src);
        // m·q + 2p − deg(v)·q >= 0 because deg(v) <= m.
        let deg_q = h.degree(v as VertexId) as u64 * q;
        pr.add_edge(v, snk, cap_src - deg_q + 2 * p);
    }
    for (u, v) in h.edges() {
        pr.add_edge(u as usize, v as usize, q);
        pr.add_edge(v as usize, u as usize, q);
    }
    let flow = pr.max_flow(src, snk);
    // cut(A) = n·m·q + 2(p·|A| − q·E(A)), so a cut below the trivial
    // all-source cut exists iff some A has E(A)/|A| > p/q.
    if flow >= total {
        return None;
    }
    let side = pr.min_cut_source_side(src, snk);
    let set: Vec<VertexId> = (0..n as usize).filter(|&v| side[v]).map(|v| v as u32).collect();
    debug_assert!(!set.is_empty(), "feasible guess must yield a non-empty cut side");
    Some(set)
}

/// Computes the exact undirected densest subgraph with the push-relabel
/// engine. Equivalent to [`uds_exact_seeded`] without a seed.
///
/// Returns the empty set with density 0 for edgeless graphs.
///
/// # Complexity
///
/// `O(log(n) · maxflow)` on the core-pruned graph — practical well beyond
/// the legacy oracle. The returned density is deterministic for any rayon
/// pool size (all arithmetic is integral); the certificate set is one
/// optimum witness and may differ between schedules when several exist.
pub fn uds_exact(graph: &UndirectedGraph) -> UdsExactResult {
    uds_exact_seeded(graph, None)
}

/// [`uds_exact`] with an optional warm-start certificate: `seed` (any
/// vertex set, e.g. a PKMC 2-approximation) tightens the lower end of the
/// binary-search window, which both shortens the search and strengthens
/// the per-guess core pruning.
pub fn uds_exact_seeded(graph: &UndirectedGraph, seed: Option<&[VertexId]>) -> UdsExactResult {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if n == 0 || m == 0 {
        return UdsExactResult { vertices: Vec::new(), density: 0.0 };
    }
    let q = n as u64 * (n as u64 - 1).max(1);
    let core = core_numbers(graph);
    let kmax = *core.iter().max().expect("non-empty graph");
    // Incumbent: the densest of (whole graph | k_max-core | seed).
    let mut best: Vec<VertexId> = (0..n as VertexId).collect();
    let (mut best_e, mut best_s) = (m as u64, n as u64);
    let kmax_core: Vec<VertexId> =
        (0..n as VertexId).filter(|&v| core[v as usize] >= kmax).collect();
    for cand in [Some(kmax_core), seed.map(<[VertexId]>::to_vec)].into_iter().flatten() {
        let mut cand = cand;
        cand.sort_unstable();
        cand.dedup();
        let (e, s) = rational_density(graph, &cand);
        if s > 0 && rational_gt(e, s, best_e, best_s) {
            best = cand;
            best_e = e;
            best_s = s;
        }
    }
    // Window invariant: ρ(best)·q > lo_p and ρ*·q <= hi_p. ρ* <= k_max
    // (the optimum has min degree >= ρ*) and ρ* <= d_max / 2.
    let mut lo_p = (best_e * q).div_ceil(best_s) - 1;
    let mut hi_p = (kmax as u64 * q).min((graph.max_degree() as u64 * q).div_ceil(2));
    while lo_p + 1 < hi_p {
        let mid = lo_p + (hi_p - lo_p) / 2;
        // Any witness denser than mid/q lives in the (⌊mid/q⌋ + 1)-core.
        let k_req = (mid / q) as u32 + 1;
        let keep: Vec<VertexId> =
            (0..n as VertexId).filter(|&v| core[v as usize] >= k_req).collect();
        if keep.len() < 2 {
            hi_p = mid;
            continue;
        }
        let sub = subgraph::induce_undirected(graph, &keep);
        match scaled_cut(&sub.graph, mid, q) {
            None => hi_p = mid,
            Some(set) => {
                let (e, s) = rational_density(&sub.graph, &set);
                let orig: Vec<VertexId> = set.iter().map(|&v| sub.original[v as usize]).collect();
                debug_assert!(rational_gt(e, s, mid, q), "cut density must exceed the guess");
                if rational_gt(e, s, best_e, best_s) {
                    best = orig;
                    best_e = e;
                    best_s = s;
                }
                // The witness certifies a strictly higher feasible floor.
                lo_p = lo_p.max(mid).max((e * q).div_ceil(s) - 1);
            }
        }
    }
    // hi_p - lo_p == 1: both ρ(best) and ρ* lie in (lo_p/q, hi_p/q], and
    // distinct densities differ by at least 1/q, so ρ(best) = ρ*.
    best.sort_unstable();
    UdsExactResult { density: best_e as f64 / best_s as f64, vertices: best }
}

/// Result of [`uds_certify_incumbent`]: the exact optimum plus how much
/// flow work certification cost.
#[derive(Clone, Debug)]
pub struct UdsCertifyResult {
    /// The exact optimum (vertex certificate + density), as in
    /// [`uds_exact`].
    pub result: UdsExactResult,
    /// Number of min-cut computations performed.
    pub flow_probes: usize,
    /// Whether the incumbent was improved (false means the incumbent was
    /// already exactly optimal and one probe certified it).
    pub improved: bool,
}

/// Certifies (or improves to) the exact optimum starting from an incumbent
/// vertex set, e.g. a `(1+ε)`-converged Greedy++/FISTA answer.
///
/// Instead of a full binary search over `1/(n(n-1))`-separated guesses,
/// this probes the decision network at the incumbent's **exact rational
/// density** `e/s` directly (the guess `p/q` in [`scaled_cut`] is an
/// arbitrary rational, so `q = s` works and keeps capacities smaller than
/// the binary-search path's `q = n(n-1)`). Each probe either proves no
/// subgraph is denser — certifying the incumbent optimal — or returns a
/// strictly denser witness that becomes the new incumbent. A near-optimal
/// incumbent therefore costs one flow call to certify, or two when the
/// true optimum is one improvement away; the probe count is returned.
pub fn uds_certify_incumbent(graph: &UndirectedGraph, incumbent: &[VertexId]) -> UdsCertifyResult {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if n == 0 || m == 0 {
        return UdsCertifyResult {
            result: UdsExactResult { vertices: Vec::new(), density: 0.0 },
            flow_probes: 0,
            improved: false,
        };
    }
    let core = core_numbers(graph);
    let mut best: Vec<VertexId> = incumbent.to_vec();
    best.sort_unstable();
    best.dedup();
    let (mut best_e, mut best_s) = rational_density(graph, &best);
    if best_s == 0 || best_e == 0 {
        // Degenerate incumbent: fall back to the whole graph.
        best = (0..n as VertexId).collect();
        best_e = m as u64;
        best_s = n as u64;
    }
    let mut flow_probes = 0usize;
    let mut improved = false;
    loop {
        // Any witness denser than e/s has min degree > e/s, so it lives in
        // the (⌊e/s⌋ + 1)-core.
        let k_req = (best_e / best_s) as u32 + 1;
        let keep: Vec<VertexId> =
            (0..n as VertexId).filter(|&v| core[v as usize] >= k_req).collect();
        if keep.len() < 2 {
            break;
        }
        let sub = subgraph::induce_undirected(graph, &keep);
        flow_probes += 1;
        match scaled_cut(&sub.graph, best_e, best_s) {
            None => break,
            Some(set) => {
                let (e, s) = rational_density(&sub.graph, &set);
                debug_assert!(rational_gt(e, s, best_e, best_s), "witness must beat incumbent");
                best = set.iter().map(|&v| sub.original[v as usize]).collect();
                best_e = e;
                best_s = s;
                improved = true;
            }
        }
    }
    best.sort_unstable();
    UdsCertifyResult {
        result: UdsExactResult { density: best_e as f64 / best_s as f64, vertices: best },
        flow_probes,
        improved,
    }
}

/// Builds the float Goldberg network for density guess `g` and returns the
/// source-side vertex set of a minimum cut (empty if no subgraph has
/// density `> g`). Legacy-oracle construction on the Dinic substrate.
fn goldberg_cut(graph: &UndirectedGraph, guess: f64) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let m = graph.num_edges() as f64;
    let src = n;
    let snk = n + 1;
    let mut d = Dinic::new(n + 2);
    for v in 0..n {
        d.add_edge(src, v, m);
        // m + 2g - d(v) >= 0 because d(v) <= m.
        d.add_edge(v, snk, m + 2.0 * guess - graph.degree(v as VertexId) as f64);
    }
    for (u, v) in graph.edges() {
        d.add_edge(u as usize, v as usize, 1.0);
        d.add_edge(v as usize, u as usize, 1.0);
    }
    d.max_flow(src, snk);
    let side = d.min_cut_side(src);
    (0..n as VertexId).filter(|&v| side[v as usize]).collect()
}

/// The original serial exact algorithm (float binary search over Dinic
/// min-cuts, no pruning), kept as the differential-testing oracle for
/// [`uds_exact`].
pub fn uds_exact_legacy(graph: &UndirectedGraph) -> UdsExactResult {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if n == 0 || m == 0 {
        return UdsExactResult { vertices: Vec::new(), density: 0.0 };
    }
    // Start from the whole graph as the incumbent.
    let mut best: Vec<VertexId> = (0..n as VertexId).collect();
    let mut lo = graph.density();
    // rho(S) is half the average degree inside S, so rho* <= d_max / 2.
    let mut hi = graph.max_degree() as f64 / 2.0 + 1e-9;
    // Distinct densities differ by at least 1 / (n(n-1)).
    let gap = 1.0 / (n as f64 * (n as f64 - 1.0).max(1.0));
    while hi - lo >= gap {
        let guess = (lo + hi) / 2.0;
        let cut = goldberg_cut(graph, guess);
        if cut.is_empty() {
            hi = guess;
        } else {
            let dens = induced_density(graph, &cut);
            debug_assert!(dens > guess - 1e-9, "cut density {dens} not above guess {guess}");
            if dens > lo {
                lo = dens;
                best = cut;
            } else {
                // Degenerate float corner: treat as infeasible to make progress.
                hi = guess;
            }
        }
    }
    UdsExactResult { density: induced_density(graph, &best), vertices: best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::UndirectedGraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32)]) -> UndirectedGraph {
        UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    #[test]
    fn triangle_is_its_own_densest() {
        let g = graph(3, &[(0, 1), (1, 2), (0, 2)]);
        let r = uds_exact(&g);
        assert_eq!(r.vertices, vec![0, 1, 2]);
        assert!((r.density - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clique_beats_path() {
        // K4 on 0..4 plus a long path 4-5-6-7.
        let g = graph(
            8,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
        );
        let r = uds_exact(&g);
        assert_eq!(r.vertices, vec![0, 1, 2, 3]);
        assert!((r.density - 6.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn paper_figure_1a_density() {
        // Fig 1(a): densest subgraph has 5 edges on 4 vertices (density 5/4).
        // Reconstruct: vertices 0..3 near-clique (5 of 6 edges) plus pendants.
        let g = graph(6, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (3, 4), (4, 5)]);
        let r = uds_exact(&g);
        assert_eq!(r.vertices, vec![0, 1, 2, 3]);
        assert!((r.density - 1.25).abs() < 1e-9);
    }

    #[test]
    fn single_edge() {
        let g = graph(2, &[(0, 1)]);
        let r = uds_exact(&g);
        assert!((r.density - 0.5).abs() < 1e-9);
        assert_eq!(r.vertices.len(), 2);
    }

    #[test]
    fn edgeless_graph() {
        let g = graph(4, &[]);
        let r = uds_exact(&g);
        assert_eq!(r.density, 0.0);
        assert!(r.vertices.is_empty());
    }

    #[test]
    fn star_density_below_one() {
        // Star K_{1,5}: densest is the whole star, density 5/6.
        let g = graph(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let r = uds_exact(&g);
        assert!((r.density - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn seed_does_not_change_the_optimum() {
        let g = graph(
            8,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
        );
        // Bad seed (sparse path) and good seed (the optimum itself) must
        // both converge to the same exact density.
        let plain = uds_exact(&g);
        let bad = uds_exact_seeded(&g, Some(&[5, 6, 7]));
        let good = uds_exact_seeded(&g, Some(&[0, 1, 2, 3]));
        assert_eq!(plain.density, bad.density);
        assert_eq!(plain.density, good.density);
        assert_eq!(good.vertices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn engine_matches_legacy_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        for trial in 0..15 {
            let n = 8 + (trial % 5);
            let mut b = UndirectedGraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.4) {
                        b.push_edge(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            let engine = uds_exact(&g);
            let legacy = uds_exact_legacy(&g);
            assert!(
                (engine.density - legacy.density).abs() < 1e-9,
                "trial {trial}: engine {} vs legacy {}",
                engine.density,
                legacy.density
            );
            // The certificate must actually induce the reported density.
            assert!(
                (induced_density(&g, &engine.vertices) - engine.density).abs() < 1e-12,
                "trial {trial}: certificate does not match its density"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = 6 + (trial % 4);
            let mut b = UndirectedGraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.45) {
                        b.push_edge(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            let exact = uds_exact(&g);
            // Brute force all non-empty subsets.
            let mut best = 0.0f64;
            for mask in 1u32..(1 << n) {
                let set: Vec<u32> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
                best = best.max(induced_density(&g, &set));
            }
            assert!(
                (exact.density - best).abs() < 1e-9,
                "trial {trial}: goldberg {} vs brute {best}",
                exact.density
            );
        }
    }
}
