//! Goldberg's exact undirected densest subgraph algorithm.
//!
//! Binary search over density guesses `g`; for each guess a min-cut on the
//! classic Goldberg network decides whether some subgraph has density
//! greater than `g` and, if so, yields one. Distinct subgraph densities
//! `|E(S)|/|S|` differ by at least `1/(n(n-1))`, so the search terminates
//! with the exact optimum. `O(log n · maxflow(n, m))` — ground truth for
//! validating Lemma 1's 2-approximation bound, not a competitor at scale.

use dsd_graph::{UndirectedGraph, VertexId};

use crate::dinic::Dinic;

/// Result of the exact undirected densest subgraph computation.
#[derive(Clone, Debug)]
pub struct UdsExactResult {
    /// Vertices of an exactly densest subgraph (original ids, sorted).
    pub vertices: Vec<VertexId>,
    /// Its density `|E(S)| / |S|` — the optimum ρ*.
    pub density: f64,
}

/// Density of the subgraph of `g` induced by `set` (sorted vertex ids).
fn induced_density(g: &UndirectedGraph, set: &[VertexId]) -> f64 {
    if set.is_empty() {
        return 0.0;
    }
    let mut member = vec![false; g.num_vertices()];
    for &v in set {
        member[v as usize] = true;
    }
    let mut edges = 0usize;
    for &v in set {
        for &u in g.neighbors(v) {
            if u > v && member[u as usize] {
                edges += 1;
            }
        }
    }
    edges as f64 / set.len() as f64
}

/// Builds the Goldberg network for density guess `g` and returns the
/// source-side vertex set of a minimum cut (empty if no subgraph has
/// density `> g`).
fn goldberg_cut(graph: &UndirectedGraph, guess: f64) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let m = graph.num_edges() as f64;
    let src = n;
    let snk = n + 1;
    let mut d = Dinic::new(n + 2);
    for v in 0..n {
        d.add_edge(src, v, m);
        // m + 2g - d(v) >= 0 because d(v) <= m.
        d.add_edge(v, snk, m + 2.0 * guess - graph.degree(v as VertexId) as f64);
    }
    for (u, v) in graph.edges() {
        d.add_edge(u as usize, v as usize, 1.0);
        d.add_edge(v as usize, u as usize, 1.0);
    }
    d.max_flow(src, snk);
    let side = d.min_cut_side(src);
    (0..n as VertexId).filter(|&v| side[v as usize]).collect()
}

/// Computes the exact undirected densest subgraph.
///
/// Returns the empty set with density 0 for edgeless graphs.
///
/// # Complexity
///
/// `O(log(n) · maxflow)` — practical up to a few thousand vertices.
/// For larger graphs, use the approximation algorithms in `dsd-core`.
pub fn uds_exact(graph: &UndirectedGraph) -> UdsExactResult {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if n == 0 || m == 0 {
        return UdsExactResult { vertices: Vec::new(), density: 0.0 };
    }
    // Start from the whole graph as the incumbent.
    let mut best: Vec<VertexId> = (0..n as VertexId).collect();
    let mut lo = graph.density();
    // rho(S) is half the average degree inside S, so rho* <= d_max / 2.
    let mut hi = graph.max_degree() as f64 / 2.0 + 1e-9;
    // Distinct densities differ by at least 1 / (n(n-1)).
    let gap = 1.0 / (n as f64 * (n as f64 - 1.0).max(1.0));
    while hi - lo >= gap {
        let guess = (lo + hi) / 2.0;
        let cut = goldberg_cut(graph, guess);
        if cut.is_empty() {
            hi = guess;
        } else {
            let dens = induced_density(graph, &cut);
            debug_assert!(dens > guess - 1e-9, "cut density {dens} not above guess {guess}");
            if dens > lo {
                lo = dens;
                best = cut;
            } else {
                // Degenerate float corner: treat as infeasible to make progress.
                hi = guess;
            }
        }
    }
    UdsExactResult { density: induced_density(graph, &best), vertices: best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::UndirectedGraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32)]) -> UndirectedGraph {
        UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    #[test]
    fn triangle_is_its_own_densest() {
        let g = graph(3, &[(0, 1), (1, 2), (0, 2)]);
        let r = uds_exact(&g);
        assert_eq!(r.vertices, vec![0, 1, 2]);
        assert!((r.density - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clique_beats_path() {
        // K4 on 0..4 plus a long path 4-5-6-7.
        let g = graph(
            8,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
        );
        let r = uds_exact(&g);
        assert_eq!(r.vertices, vec![0, 1, 2, 3]);
        assert!((r.density - 6.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn paper_figure_1a_density() {
        // Fig 1(a): densest subgraph has 5 edges on 4 vertices (density 5/4).
        // Reconstruct: vertices 0..3 near-clique (5 of 6 edges) plus pendants.
        let g = graph(6, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (3, 4), (4, 5)]);
        let r = uds_exact(&g);
        assert_eq!(r.vertices, vec![0, 1, 2, 3]);
        assert!((r.density - 1.25).abs() < 1e-9);
    }

    #[test]
    fn single_edge() {
        let g = graph(2, &[(0, 1)]);
        let r = uds_exact(&g);
        assert!((r.density - 0.5).abs() < 1e-9);
        assert_eq!(r.vertices.len(), 2);
    }

    #[test]
    fn edgeless_graph() {
        let g = graph(4, &[]);
        let r = uds_exact(&g);
        assert_eq!(r.density, 0.0);
        assert!(r.vertices.is_empty());
    }

    #[test]
    fn star_density_below_one() {
        // Star K_{1,5}: densest is the whole star, density 5/6.
        let g = graph(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let r = uds_exact(&g);
        assert!((r.density - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = 6 + (trial % 4);
            let mut b = UndirectedGraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.45) {
                        b.push_edge(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            let exact = uds_exact(&g);
            // Brute force all non-empty subsets.
            let mut best = 0.0f64;
            for mask in 1u32..(1 << n) {
                let set: Vec<u32> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
                best = best.max(induced_density(&g, &set));
            }
            assert!(
                (exact.density - best).abs() < 1e-9,
                "trial {trial}: goldberg {} vs brute {best}",
                exact.density
            );
        }
    }
}
