//! Parallel push-relabel maximum flow on integer capacities.
//!
//! This is the engine behind the exact densest-subgraph oracles in this
//! crate ([`crate::goldberg`] and [`crate::dds_exact`]). It replaces the
//! serial [`crate::dinic::Dinic`] substrate on the hot path; Dinic stays as
//! the `*_legacy` oracle for differential testing.
//!
//! # Algorithm
//!
//! Phase-one push-relabel (maximum preflow) with the classic accelerators:
//!
//! * **Round-synchronous FIFO discharge.** Each round collects the active
//!   set (`excess > 0`, `label < n`) and discharges all of it in parallel.
//!   A round has two barriers: phase A pushes with labels frozen, phase B
//!   applies the pending relabels. Within phase A an arc's residual
//!   capacity is only ever *decreased* by the vertex that owns the arc and
//!   only *increased* by reverse pushes, so a `fetch_sub`/`fetch_add` pair
//!   on atomic capacities needs no locks; excess moves through `fetch_add`
//!   on atomic counters. Two endpoints of an arc can never push across it
//!   in the same round (that would need `label[u] == label[v] + 1` in both
//!   directions), so owner-exclusive capacity decrease holds.
//! * **Gap heuristic.** Per-level occupancy counts are maintained from the
//!   relabel deltas of each round; when a level between 1 and `n - 1`
//!   empties, every vertex above the gap is lifted out of phase one.
//! * **Periodic parallel global relabeling.** Every `O(n + m)` units of
//!   discharge work, labels are recomputed as exact residual distances to
//!   the sink with a frontier-parallel reverse BFS (claims via
//!   compare-exchange, so each vertex joins exactly one level).
//!
//! Excess that cannot reach the sink is left trapped at vertices whose
//! label reaches `n` (they simply leave the active set); the preflow value
//! at the sink then equals the maximum-flow value, and a minimum cut can be
//! read off the residual graph without converting the preflow into a flow.
//!
//! # Determinism
//!
//! Capacities are `u64`. All arithmetic on capacities and excess is exact
//! and commutative, and every feasibility decision made by callers compares
//! integers, so the returned **flow value is identical for any thread-pool
//! size** — there is no float accumulation order to perturb. The *residual
//! graph* (and therefore the extracted min-cut side) may differ between
//! schedules when multiple minimum cuts exist; callers that need
//! schedule-independent answers must compare cut *values* (or densities),
//! which are unique, rather than cut membership.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use dsd_telemetry::{span, Phase};
use rayon::prelude::*;

/// Relaxed is enough everywhere: rounds are separated by rayon barriers
/// (which synchronise), and within a round each location is either owned by
/// one thread or only touched through commutative atomic read-modify-writes.
const RLX: Ordering = Ordering::Relaxed;

/// A max-flow problem instance over `u64` capacities. Arcs are added in
/// pairs (forward + residual), so the reverse arc of arc `i` is `i ^ 1`,
/// mirroring [`crate::dinic::Dinic`].
pub struct PushRelabel {
    arc_to: Vec<u32>,
    arc_cap: Vec<u64>,
    head: Vec<Vec<u32>>, // arc indices leaving each node
    // Solve-time state (rebuilt by `max_flow`).
    first: Vec<u32>,
    arc_ids: Vec<u32>,
    res: Vec<AtomicU64>,
    excess: Vec<AtomicU64>,
    label: Vec<AtomicU32>,
    cur: Vec<AtomicU32>,
    solved: bool,
}

impl PushRelabel {
    /// Creates an instance with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        Self {
            arc_to: Vec::new(),
            arc_cap: Vec::new(),
            head: vec![Vec::new(); n],
            first: Vec::new(),
            arc_ids: Vec::new(),
            res: Vec::new(),
            excess: Vec::new(),
            label: Vec::new(),
            cur: Vec::new(),
            solved: false,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed arc `u → v` with capacity `cap` (and a zero-capacity
    /// residual arc). Returns the forward-arc index.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u64) -> usize {
        let idx = self.arc_to.len();
        self.arc_to.push(v as u32);
        self.arc_cap.push(cap);
        self.arc_to.push(u as u32);
        self.arc_cap.push(0);
        self.head[u].push(idx as u32);
        self.head[v].push(idx as u32 + 1);
        idx
    }

    /// Residual capacity of arc `i` after [`max_flow`](Self::max_flow).
    pub fn residual(&self, i: usize) -> u64 {
        self.res[i].load(RLX)
    }

    /// Computes the maximum flow from `s` to `t`. May be called again after
    /// further `add_edge` calls; each call solves from scratch.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.head.len();
        let n32 = n as u32;
        // Flatten the adjacency into CSR for cheap parallel scans.
        let mut first = vec![0u32; n + 1];
        for v in 0..n {
            first[v + 1] = first[v] + self.head[v].len() as u32;
        }
        self.arc_ids = self.head.iter().flatten().copied().collect();
        self.first = first;
        self.res = self.arc_cap.iter().map(|&c| AtomicU64::new(c)).collect();
        self.excess = (0..n).map(|_| AtomicU64::new(0)).collect();
        self.label = (0..n).map(|_| AtomicU32::new(0)).collect();
        self.cur = (0..n).map(|_| AtomicU32::new(0)).collect();
        self.solved = true;
        if self.arc_to.is_empty() {
            return 0;
        }
        self.global_relabel(s, t);
        // Saturate every source arc to seed the preflow.
        for i in self.first[s]..self.first[s + 1] {
            let a = self.arc_ids[i as usize] as usize;
            let d = self.res[a].load(RLX);
            if d > 0 {
                self.res[a].store(0, RLX);
                self.res[a ^ 1].fetch_add(d, RLX);
                self.excess[self.arc_to[a] as usize].fetch_add(d, RLX);
            }
        }
        let mut counts = self.rebuild_counts();
        // Global-relabel cadence, in arc-scan units of discharge work.
        let relabel_interval = (8 * n + 2 * self.arc_to.len()) as u64;
        let mut work_since = 0u64;
        loop {
            if work_since >= relabel_interval {
                self.global_relabel(s, t);
                counts = self.rebuild_counts();
                work_since = 0;
            }
            let active: Vec<u32> = (0..n)
                .into_par_iter()
                .filter(|&v| {
                    v != s
                        && v != t
                        && self.label[v].load(RLX) < n32
                        && self.excess[v].load(RLX) > 0
                })
                .map(|v| v as u32)
                .collect();
            if active.is_empty() {
                break;
            }
            let _d = span(Phase::FlowDischarge);
            // Phase A: parallel pushes with labels frozen.
            let results: Vec<(bool, u64)> =
                active.par_iter().map(|&u| self.push_from(u as usize)).collect();
            work_since += results.iter().map(|r| r.1).sum::<u64>();
            let need: Vec<u32> =
                active.iter().zip(&results).filter(|(_, r)| r.0).map(|(&u, _)| u).collect();
            if need.is_empty() {
                continue;
            }
            // Phase B: staged relabels. Valid under concurrency because
            // labels only increase and residual capacities are quiescent.
            let relabeled: Vec<(u32, u32, u32)> =
                need.par_iter().map(|&u| self.relabel(u as usize)).collect();
            for &(u, old, new) in &relabeled {
                let u = u as usize;
                work_since += (self.first[u + 1] - self.first[u]) as u64;
                if old < n32 {
                    counts[old as usize] -= 1;
                }
                if new < n32 {
                    counts[new as usize] += 1;
                }
            }
            // Gap heuristic: an emptied level strictly below n disconnects
            // everything above it from the sink.
            let mut gap = u32::MAX;
            for &(_, old, _) in &relabeled {
                if old > 0 && old < n32 && counts[old as usize] == 0 {
                    gap = gap.min(old);
                }
            }
            if gap != u32::MAX {
                (0..n).into_par_iter().for_each(|v| {
                    let l = self.label[v].load(RLX);
                    if l > gap && l < n32 {
                        self.label[v].store(n32 + 1, RLX);
                    }
                });
                for c in counts[(gap + 1) as usize..n].iter_mut() {
                    *c = 0;
                }
            }
        }
        self.excess[t].load(RLX)
    }

    /// Phase-A discharge of `u`: pushes excess along admissible arcs from
    /// the current-arc pointer. Returns (needs relabel, arcs scanned).
    fn push_from(&self, u: usize) -> (bool, u64) {
        let lu = self.label[u].load(RLX);
        let mut e = self.excess[u].load(RLX);
        if e == 0 {
            return (false, 1);
        }
        let begin = self.first[u] as usize;
        let end = self.first[u + 1] as usize;
        let mut c = begin + self.cur[u].load(RLX) as usize;
        let mut pushed = 0u64;
        let mut work = 0u64;
        while e > 0 && c < end {
            work += 1;
            let a = self.arc_ids[c] as usize;
            let v = self.arc_to[a] as usize;
            if self.label[v].load(RLX) + 1 == lu {
                let r = self.res[a].load(RLX);
                if r > 0 {
                    let d = r.min(e);
                    self.res[a].fetch_sub(d, RLX);
                    self.res[a ^ 1].fetch_add(d, RLX);
                    self.excess[v].fetch_add(d, RLX);
                    e -= d;
                    pushed += d;
                    if e > 0 {
                        c += 1; // arc saturated, keep scanning
                    }
                    continue;
                }
            }
            c += 1;
        }
        self.cur[u].store((c - begin) as u32, RLX);
        if pushed > 0 {
            // Concurrent incoming pushes may have raised the stored excess
            // past our snapshot; subtracting only what we pushed keeps it
            // consistent (leftovers are picked up next round).
            self.excess[u].fetch_sub(pushed, RLX);
        }
        (e > 0, work)
    }

    /// Phase-B relabel of `u`: one plus the minimum label over residual
    /// arcs. Reading a concurrently-raised neighbour label only makes the
    /// result larger, which stays valid because labels never decrease.
    fn relabel(&self, u: usize) -> (u32, u32, u32) {
        let n32 = self.head.len() as u32;
        let old = self.label[u].load(RLX);
        let mut min_l = u32::MAX;
        for i in self.first[u]..self.first[u + 1] {
            let a = self.arc_ids[i as usize] as usize;
            if self.res[a].load(RLX) > 0 {
                min_l = min_l.min(self.label[self.arc_to[a] as usize].load(RLX));
            }
        }
        let new = if min_l == u32::MAX { n32 + 1 } else { min_l + 1 };
        debug_assert!(new > old, "relabel must raise {old} -> {new}");
        self.label[u].store(new, RLX);
        self.cur[u].store(0, RLX);
        (u as u32, old, new)
    }

    /// Recomputes labels as exact residual distances to `t` with a
    /// frontier-parallel reverse BFS; unreachable vertices (and `s`) get
    /// label `n`, leaving phase one.
    fn global_relabel(&self, s: usize, t: usize) {
        let _g = span(Phase::FlowRelabel);
        let n = self.head.len();
        let n32 = n as u32;
        const UNSET: u32 = u32::MAX;
        (0..n).into_par_iter().for_each(|v| self.label[v].store(UNSET, RLX));
        self.label[t].store(0, RLX);
        let mut frontier: Vec<u32> = vec![t as u32];
        let mut dist = 0u32;
        while !frontier.is_empty() {
            dist += 1;
            let d = dist;
            frontier = frontier
                .par_iter()
                .flat_map_iter(|&v| {
                    let vu = v as usize;
                    let lo = self.first[vu] as usize;
                    let hi = self.first[vu + 1] as usize;
                    self.arc_ids[lo..hi].iter().filter_map(move |&a| {
                        // Arc `a` leaves v towards w; w is one level farther
                        // from t when the reverse arc w → v has residual.
                        let w = self.arc_to[a as usize] as usize;
                        if w != s
                            && self.res[(a ^ 1) as usize].load(RLX) > 0
                            && self.label[w].compare_exchange(UNSET, d, RLX, RLX).is_ok()
                        {
                            Some(w as u32)
                        } else {
                            None
                        }
                    })
                })
                .collect();
        }
        (0..n).into_par_iter().for_each(|v| {
            if self.label[v].load(RLX) == UNSET {
                self.label[v].store(n32, RLX);
            }
            self.cur[v].store(0, RLX);
        });
        self.label[s].store(n32, RLX);
    }

    /// Histogram of labels strictly below `n` (gap-heuristic occupancy).
    fn rebuild_counts(&self) -> Vec<u32> {
        let n = self.head.len();
        let mut counts = vec![0u32; n];
        for l in &self.label {
            let l = l.load(RLX) as usize;
            if l < n {
                counts[l] += 1;
            }
        }
        counts
    }

    /// After [`max_flow`](Self::max_flow), returns the source side of a
    /// minimum cut: `true` for every node that **cannot** reach `t` in the
    /// residual graph. This is a minimum cut even though the solver stops
    /// at a maximum preflow: every vertex still holding excess has label
    /// `>= n` and is therefore residual-disconnected from `t`, so the flow
    /// across the returned cut equals the preflow value at the sink.
    pub fn min_cut_source_side(&self, s: usize, t: usize) -> Vec<bool> {
        assert!(self.solved, "min_cut_source_side requires a prior max_flow");
        let _g = span(Phase::FlowCutExtract);
        let n = self.head.len();
        let mut reaches_t = vec![false; n];
        reaches_t[t] = true;
        let mut queue = VecDeque::new();
        queue.push_back(t);
        while let Some(v) = queue.pop_front() {
            for i in self.first[v]..self.first[v + 1] {
                let a = self.arc_ids[i as usize] as usize;
                let w = self.arc_to[a] as usize;
                if !reaches_t[w] && self.res[a ^ 1].load(RLX) > 0 {
                    reaches_t[w] = true;
                    queue.push_back(w);
                }
            }
        }
        debug_assert!(!reaches_t[s], "source must be separated from sink");
        reaches_t.iter().map(|&r| !r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut pr = PushRelabel::new(2);
        pr.add_edge(0, 1, 5);
        assert_eq!(pr.max_flow(0, 1), 5);
    }

    #[test]
    fn series_bottleneck() {
        let mut pr = PushRelabel::new(3);
        pr.add_edge(0, 1, 10);
        pr.add_edge(1, 2, 3);
        assert_eq!(pr.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut pr = PushRelabel::new(4);
        pr.add_edge(0, 1, 2);
        pr.add_edge(1, 3, 2);
        pr.add_edge(0, 2, 3);
        pr.add_edge(2, 3, 3);
        assert_eq!(pr.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_augmenting_path_example() {
        let mut pr = PushRelabel::new(4);
        pr.add_edge(0, 1, 1);
        pr.add_edge(0, 2, 1);
        pr.add_edge(1, 2, 1);
        pr.add_edge(1, 3, 1);
        pr.add_edge(2, 3, 1);
        assert_eq!(pr.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_zero_flow() {
        let mut pr = PushRelabel::new(4);
        pr.add_edge(0, 1, 4);
        pr.add_edge(2, 3, 4);
        assert_eq!(pr.max_flow(0, 3), 0);
    }

    #[test]
    fn trapped_excess_does_not_inflate_flow() {
        // Source pushes 7 into node 1 but only 3 can continue; the rest is
        // trapped (never returned to s in phase one) and must not count.
        let mut pr = PushRelabel::new(3);
        pr.add_edge(0, 1, 7);
        pr.add_edge(1, 2, 3);
        assert_eq!(pr.max_flow(0, 2), 3);
        let side = pr.min_cut_source_side(0, 2);
        assert_eq!(side, vec![true, true, false]);
    }

    #[test]
    fn min_cut_capacity_equals_flow() {
        let edges = [
            (0usize, 1usize, 3u64),
            (0, 2, 2),
            (1, 2, 5),
            (1, 3, 2),
            (2, 4, 3),
            (3, 5, 4),
            (4, 5, 2),
            (4, 3, 1),
        ];
        let mut pr = PushRelabel::new(6);
        for &(u, v, c) in &edges {
            pr.add_edge(u, v, c);
        }
        let flow = pr.max_flow(0, 5);
        let side = pr.min_cut_source_side(0, 5);
        assert!(side[0] && !side[5]);
        let cut: u64 =
            edges.iter().filter(|&&(u, v, _)| side[u] && !side[v]).map(|&(_, _, c)| c).sum();
        assert_eq!(flow, cut, "cut capacity must equal the max-flow value");
    }

    #[test]
    fn matches_dinic_on_a_dense_instance() {
        // Deterministic pseudo-random dense network, cross-checked against
        // the legacy Dinic oracle.
        let n = 24;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut pr = PushRelabel::new(n);
        let mut di = crate::dinic::Dinic::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v && next() % 3 == 0 {
                    let c = next() % 50;
                    pr.add_edge(u, v, c);
                    di.add_edge(u, v, c as f64);
                }
            }
        }
        let f_pr = pr.max_flow(0, n - 1);
        let f_di = di.max_flow(0, n - 1);
        assert_eq!(f_pr as f64, f_di);
    }

    #[test]
    fn resolve_after_adding_arcs() {
        let mut pr = PushRelabel::new(3);
        pr.add_edge(0, 1, 4);
        pr.add_edge(1, 2, 4);
        assert_eq!(pr.max_flow(0, 2), 4);
        pr.add_edge(0, 2, 5);
        assert_eq!(pr.max_flow(0, 2), 9);
    }
}
