//! Exact directed densest subgraph via ratio enumeration + min-cut.
//!
//! Following Khuller–Saha and Ma et al. (SIGMOD 2020): the optimal `(S, T)`
//! pair has some size ratio `a = |S|/|T|` with `1 ≤ |S|, |T| ≤ n`. For each
//! candidate ratio we binary-search the density `g`; the decision
//! "∃ (S, T) with |E(S,T)| − (g / 2√a)·|S| − (g·√a / 2)·|T| > 0" is a
//! project-selection min-cut. By the AM–GM inequality any positive witness
//! has true density `> g`, and at the optimal ratio the linearisation is
//! tight, so scanning all ratios returns the exact optimum.
//!
//! Cost is `O(n² · log(1/ε) · maxflow)` — strictly a validation oracle for
//! small graphs (tests, EXPERIMENTS.md approximation-ratio checks).

use dsd_graph::{DirectedGraph, VertexId};

use crate::dinic::Dinic;

/// Result of the exact directed densest subgraph computation.
#[derive(Clone, Debug)]
pub struct DdsExactResult {
    /// Source-side vertex set `S` (sorted original ids).
    pub s: Vec<VertexId>,
    /// Target-side vertex set `T` (sorted original ids).
    pub t: Vec<VertexId>,
    /// Exact optimum density `|E(S,T)| / √(|S||T|)`.
    pub density: f64,
}

/// Counts edges from `s` to `t` and returns the (S, T)-density.
pub(crate) fn st_density(g: &DirectedGraph, s: &[VertexId], t: &[VertexId]) -> f64 {
    if s.is_empty() || t.is_empty() {
        return 0.0;
    }
    let mut in_t = vec![false; g.num_vertices()];
    for &v in t {
        in_t[v as usize] = true;
    }
    let mut edges = 0usize;
    for &u in s {
        for &v in g.out_neighbors(u) {
            if in_t[v as usize] {
                edges += 1;
            }
        }
    }
    edges as f64 / ((s.len() as f64) * (t.len() as f64)).sqrt()
}

/// Decision network for ratio `a` and guess `g`: returns `Some((S, T))`
/// witnessing density `> g` if one exists.
fn ratio_cut(
    graph: &DirectedGraph,
    sqrt_a: f64,
    guess: f64,
) -> Option<(Vec<VertexId>, Vec<VertexId>)> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    // Node layout: [0, m): edge nodes; [m, m + n): S-side; [m + n, m + 2n):
    // T-side; then source and sink.
    let s_base = m;
    let t_base = m + n;
    let src = m + 2 * n;
    let snk = src + 1;
    let mut d = Dinic::new(m + 2 * n + 2);
    let cost_s = guess / (2.0 * sqrt_a);
    let cost_t = guess * sqrt_a / 2.0;
    for v in 0..n {
        d.add_edge(s_base + v, snk, cost_s);
        d.add_edge(t_base + v, snk, cost_t);
    }
    let inf = m as f64 + 1.0;
    for (i, (u, v)) in graph.edges().enumerate() {
        d.add_edge(src, i, 1.0);
        d.add_edge(i, s_base + u as usize, inf);
        d.add_edge(i, t_base + v as usize, inf);
    }
    let flow = d.max_flow(src, snk);
    // Positive profit iff some edges stay unsaturated: cut < m.
    if flow >= m as f64 - 1e-7 {
        return None;
    }
    let side = d.min_cut_side(src);
    let s: Vec<VertexId> = (0..n).filter(|&v| side[s_base + v]).map(|v| v as VertexId).collect();
    let t: Vec<VertexId> = (0..n).filter(|&v| side[t_base + v]).map(|v| v as VertexId).collect();
    if s.is_empty() || t.is_empty() {
        None
    } else {
        Some((s, t))
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Computes the exact directed densest subgraph of `graph`.
///
/// Returns empty sets with density 0 for edgeless graphs.
///
/// # Panics
///
/// Does not panic, but the `O(n²)` ratio enumeration makes this impractical
/// beyond a few dozen vertices; it exists as ground truth for tests.
pub fn dds_exact(graph: &DirectedGraph) -> DdsExactResult {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if n == 0 || m == 0 {
        return DdsExactResult { s: Vec::new(), t: Vec::new(), density: 0.0 };
    }
    // Enumerate distinct ratios a = i / j in lowest terms.
    let mut ratios: Vec<(usize, usize)> = Vec::new();
    for i in 1..=n {
        for j in 1..=n {
            if gcd(i, j) == 1 {
                ratios.push((i, j));
            }
        }
    }
    // Incumbent: best single (u, N+(u)) star to seed the lower bound.
    let mut best_s: Vec<VertexId> = Vec::new();
    let mut best_t: Vec<VertexId> = Vec::new();
    let mut best = 0.0f64;
    for u in 0..n as VertexId {
        let outs = graph.out_neighbors(u);
        if !outs.is_empty() {
            let dens = st_density(graph, &[u], outs);
            if dens > best {
                best = dens;
                best_s = vec![u];
                best_t = outs.to_vec();
            }
        }
    }
    let hi_global = (m as f64).sqrt() + 1.0;
    for (i, j) in ratios {
        let sqrt_a = ((i as f64) / (j as f64)).sqrt();
        // Shared-incumbent pruning: first test whether this ratio can beat
        // the best density found so far at all — one flow per pruned
        // ratio instead of a full binary search.
        match ratio_cut(graph, sqrt_a, best) {
            None => continue,
            Some((s, t)) => {
                let dens = st_density(graph, &s, &t);
                if dens > best {
                    best = dens;
                    best_s = s;
                    best_t = t;
                }
            }
        }
        let mut lo = best;
        let mut hi = hi_global;
        // Terminate on absolute precision; extracted sets carry exact densities.
        while hi - lo > 1e-9 {
            let guess = (lo + hi) / 2.0;
            match ratio_cut(graph, sqrt_a, guess) {
                Some((s, t)) => {
                    let dens = st_density(graph, &s, &t);
                    if dens > best {
                        best = dens;
                        best_s = s;
                        best_t = t;
                    }
                    // Any witness has true density > guess.
                    lo = lo.max(dens).max(guess + 1e-12);
                }
                None => hi = guess,
            }
        }
    }
    DdsExactResult { s: best_s, t: best_t, density: best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::DirectedGraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32)]) -> DirectedGraph {
        DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    /// Brute force over all (S, T) pairs.
    fn brute(g: &DirectedGraph) -> f64 {
        let n = g.num_vertices();
        let mut best = 0.0f64;
        for smask in 1u32..(1 << n) {
            let s: Vec<u32> = (0..n as u32).filter(|&v| smask >> v & 1 == 1).collect();
            for tmask in 1u32..(1 << n) {
                let t: Vec<u32> = (0..n as u32).filter(|&v| tmask >> v & 1 == 1).collect();
                best = best.max(st_density(g, &s, &t));
            }
        }
        best
    }

    #[test]
    fn paper_figure_1b() {
        // S = {v4, v5}, T = {v2, v3}, four edges, density 2, plus a noise
        // edge that does not create anything denser.
        let g = graph(6, &[(4, 2), (4, 3), (5, 2), (5, 3), (0, 1)]);
        let r = dds_exact(&g);
        assert!((r.density - 2.0).abs() < 1e-6, "density {}", r.density);
        assert_eq!(r.s, vec![4, 5]);
        assert_eq!(r.t, vec![2, 3]);
    }

    #[test]
    fn single_edge_density_one() {
        // S = {0}, T = {1}: density 1/sqrt(1) = 1.
        let g = graph(2, &[(0, 1)]);
        let r = dds_exact(&g);
        assert!((r.density - 1.0).abs() < 1e-6);
    }

    #[test]
    fn star_out_hub() {
        // u -> 4 targets: best is S={u}, T=all targets: 4/sqrt(4) = 2.
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let r = dds_exact(&g);
        assert!((r.density - 2.0).abs() < 1e-6);
    }

    #[test]
    fn edgeless() {
        let g = graph(3, &[]);
        let r = dds_exact(&g);
        assert_eq!(r.density, 0.0);
    }

    #[test]
    fn overlapping_s_and_t_cycle() {
        // Directed triangle: S = T = {0,1,2} gives 3/3 = 1; optimum.
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = dds_exact(&g);
        assert!((r.density - 1.0).abs() < 1e-6, "density {}", r.density);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..10 {
            let n = 5;
            let mut b = DirectedGraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    if u != v && rng.gen_bool(0.4) {
                        b.push_edge(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dds_exact(&g);
            let bf = brute(&g);
            assert!(
                (exact.density - bf).abs() < 1e-6,
                "trial {trial}: flow {} vs brute {bf}",
                exact.density
            );
        }
    }
}
