//! Exact directed densest subgraph via ratio enumeration + min-cut.
//!
//! Following Khuller–Saha and Ma et al. (SIGMOD 2020): the optimal `(S, T)`
//! pair has some size ratio `a = |S|/|T|` with `1 ≤ |S|, |T| ≤ n`. For each
//! candidate ratio we binary-search the density `g`; the decision
//! "∃ (S, T) with |E(S,T)| − (g / 2√a)·|S| − (g·√a / 2)·|T| > 0" is a
//! project-selection min-cut. By the AM–GM inequality any positive witness
//! has true density `> g`, and at the optimal ratio the linearisation is
//! tight, so scanning all ratios returns the exact optimum.
//!
//! Two implementations share this module:
//!
//! * [`dds_exact`] / [`dds_exact_seeded`] — the engine path on the parallel
//!   [`crate::push_relabel::PushRelabel`] solver. The `√a` costs are
//!   irrational, so capacities are fixed-point scaled by `2^40`; the
//!   feasibility slack `8(n+1)` dominates every rounding error, making the
//!   decision at least as sharp as the legacy `1e-7` epsilon. Before each
//!   flow, a mutual peel (drop `u` from the `S` side while its surviving
//!   out-degree is at most `g/(2√a)`, symmetrically for `T`) shrinks the
//!   network: dropping such a vertex is weakly profit-improving, so a
//!   maximum-profit witness always survives. An optional seed pair (e.g. a
//!   PWC 2-approximation from `dsd-core`) warm-starts the incumbent, which
//!   prunes whole ratios.
//! * [`dds_exact_legacy`] — the original serial float/Dinic implementation,
//!   kept verbatim as the differential-testing oracle.
//!
//! Cost is `O(n² · log(1/ε) · maxflow)` — strictly a validation oracle for
//! small graphs (tests, EXPERIMENTS.md approximation-ratio checks).

use dsd_graph::{DirectedGraph, VertexId};

use crate::dinic::Dinic;
use crate::push_relabel::PushRelabel;

/// Fixed-point scale for the irrational `√a` cost capacities.
const SCALE: u64 = 1 << 40;

/// Result of the exact directed densest subgraph computation.
#[derive(Clone, Debug)]
pub struct DdsExactResult {
    /// Source-side vertex set `S` (sorted original ids).
    pub s: Vec<VertexId>,
    /// Target-side vertex set `T` (sorted original ids).
    pub t: Vec<VertexId>,
    /// Exact optimum density `|E(S,T)| / √(|S||T|)`.
    pub density: f64,
}

/// Counts edges from `s` to `t` and returns the (S, T)-density.
pub(crate) fn st_density(g: &DirectedGraph, s: &[VertexId], t: &[VertexId]) -> f64 {
    if s.is_empty() || t.is_empty() {
        return 0.0;
    }
    let mut in_t = vec![false; g.num_vertices()];
    for &v in t {
        in_t[v as usize] = true;
    }
    let mut edges = 0usize;
    for &u in s {
        for &v in g.out_neighbors(u) {
            if in_t[v as usize] {
                edges += 1;
            }
        }
    }
    edges as f64 / ((s.len() as f64) * (t.len() as f64)).sqrt()
}

/// Mutual peel for ratio costs `(cost_s, cost_t)`: drops `u` from the
/// `S`-candidate set while its out-degree into surviving `T`-candidates is
/// at most `cost_s` (symmetrically for the `T` side). Each drop is weakly
/// profit-improving for every witness, so a maximum-profit `(S, T)` with
/// positive profit survives inside the returned candidate sets.
fn mutual_peel(graph: &DirectedGraph, cost_s: f64, cost_t: f64) -> (Vec<bool>, Vec<bool>) {
    let n = graph.num_vertices();
    let mut s_alive = vec![true; n];
    let mut t_alive = vec![true; n];
    let mut d_out: Vec<u32> = (0..n as VertexId).map(|v| graph.out_degree(v) as u32).collect();
    let mut d_in: Vec<u32> = (0..n as VertexId).map(|v| graph.in_degree(v) as u32).collect();
    // Work items: (vertex, true = S-side removal, false = T-side removal).
    let mut stack: Vec<(u32, bool)> = Vec::new();
    for v in 0..n {
        if d_out[v] as f64 <= cost_s {
            stack.push((v as u32, true));
        }
        if d_in[v] as f64 <= cost_t {
            stack.push((v as u32, false));
        }
    }
    while let Some((v, s_side)) = stack.pop() {
        let v = v as usize;
        if s_side {
            if !s_alive[v] {
                continue;
            }
            s_alive[v] = false;
            for &w in graph.out_neighbors(v as VertexId) {
                let w = w as usize;
                if t_alive[w] {
                    d_in[w] -= 1;
                    if d_in[w] as f64 <= cost_t {
                        stack.push((w as u32, false));
                    }
                }
            }
        } else {
            if !t_alive[v] {
                continue;
            }
            t_alive[v] = false;
            for &w in graph.in_neighbors(v as VertexId) {
                let w = w as usize;
                if s_alive[w] {
                    d_out[w] -= 1;
                    if d_out[w] as f64 <= cost_s {
                        stack.push((w as u32, true));
                    }
                }
            }
        }
    }
    (s_alive, t_alive)
}

/// Engine decision network for ratio `a` and guess `g` on the peel-pruned
/// candidate sets: returns `Some((S, T))` witnessing density `> g` if one
/// exists. Capacities are fixed-point integers on the parallel push-relabel
/// solver; feasibility is `flow + 8(n+1) < m'·2^40`, which both absorbs the
/// rounding of the `√a` costs and the (bounded) profit loss of the peel.
fn ratio_cut(
    graph: &DirectedGraph,
    sqrt_a: f64,
    guess: f64,
) -> Option<(Vec<VertexId>, Vec<VertexId>)> {
    let n = graph.num_vertices();
    let cost_s = guess / (2.0 * sqrt_a);
    let cost_t = guess * sqrt_a / 2.0;
    let (s_alive, t_alive) = mutual_peel(graph, cost_s, cost_t);
    // Surviving edges and compact ids for the two sides.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..n as VertexId {
        if s_alive[u as usize] {
            for &v in graph.out_neighbors(u) {
                if t_alive[v as usize] {
                    edges.push((u, v));
                }
            }
        }
    }
    if edges.is_empty() {
        return None;
    }
    let s_ids: Vec<u32> = (0..n as u32).filter(|&v| s_alive[v as usize]).collect();
    let t_ids: Vec<u32> = (0..n as u32).filter(|&v| t_alive[v as usize]).collect();
    let mut s_pos = vec![u32::MAX; n];
    for (i, &v) in s_ids.iter().enumerate() {
        s_pos[v as usize] = i as u32;
    }
    let mut t_pos = vec![u32::MAX; n];
    for (i, &v) in t_ids.iter().enumerate() {
        t_pos[v as usize] = i as u32;
    }
    let me = edges.len();
    // Node layout: [0, me): edge nodes; then S side, T side, source, sink.
    let s_base = me;
    let t_base = s_base + s_ids.len();
    let src = t_base + t_ids.len();
    let snk = src + 1;
    let mut pr = PushRelabel::new(snk + 1);
    let cs = (cost_s * SCALE as f64).round() as u64;
    let ct = (cost_t * SCALE as f64).round() as u64;
    for i in 0..s_ids.len() {
        pr.add_edge(s_base + i, snk, cs);
    }
    for i in 0..t_ids.len() {
        pr.add_edge(t_base + i, snk, ct);
    }
    let inf = (me as u64 + 1).checked_mul(SCALE).expect("graph too large for the exact DDS oracle");
    for (i, &(u, v)) in edges.iter().enumerate() {
        pr.add_edge(src, i, SCALE);
        pr.add_edge(i, s_base + s_pos[u as usize] as usize, inf);
        pr.add_edge(i, t_base + t_pos[v as usize] as usize, inf);
    }
    let flow = pr.max_flow(src, snk);
    // Positive profit iff some edges stay unsaturated: cut < m' (scaled),
    // with slack for the fixed-point rounding.
    let slack = 8 * (n as u64 + 1);
    if flow + slack >= me as u64 * SCALE {
        return None;
    }
    let side = pr.min_cut_source_side(src, snk);
    let s: Vec<VertexId> =
        s_ids.iter().enumerate().filter(|&(i, _)| side[s_base + i]).map(|(_, &v)| v).collect();
    let t: Vec<VertexId> =
        t_ids.iter().enumerate().filter(|&(i, _)| side[t_base + i]).map(|(_, &v)| v).collect();
    if s.is_empty() || t.is_empty() {
        None
    } else {
        Some((s, t))
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Computes the exact directed densest subgraph of `graph` with the
/// push-relabel engine. Equivalent to [`dds_exact_seeded`] without a seed.
///
/// Returns empty sets with density 0 for edgeless graphs.
///
/// # Panics
///
/// Does not panic, but the `O(n²)` ratio enumeration makes this impractical
/// beyond a few dozen vertices; it exists as ground truth for tests.
pub fn dds_exact(graph: &DirectedGraph) -> DdsExactResult {
    dds_exact_seeded(graph, None)
}

/// [`dds_exact`] with an optional warm-start certificate: a `(S, T)` seed
/// pair (e.g. a PWC 2-approximation from `dsd-core`) initialises the
/// incumbent density, letting the shared-incumbent test prune whole size
/// ratios with a single flow each.
pub fn dds_exact_seeded(
    graph: &DirectedGraph,
    seed: Option<(&[VertexId], &[VertexId])>,
) -> DdsExactResult {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if n == 0 || m == 0 {
        return DdsExactResult { s: Vec::new(), t: Vec::new(), density: 0.0 };
    }
    // Enumerate distinct ratios a = i / j in lowest terms.
    let mut ratios: Vec<(usize, usize)> = Vec::new();
    for i in 1..=n {
        for j in 1..=n {
            if gcd(i, j) == 1 {
                ratios.push((i, j));
            }
        }
    }
    // Incumbent: best single (u, N+(u)) star, optionally beaten by the seed.
    let mut best_s: Vec<VertexId> = Vec::new();
    let mut best_t: Vec<VertexId> = Vec::new();
    let mut best = 0.0f64;
    for u in 0..n as VertexId {
        let outs = graph.out_neighbors(u);
        if !outs.is_empty() {
            let dens = st_density(graph, &[u], outs);
            if dens > best {
                best = dens;
                best_s = vec![u];
                best_t = outs.to_vec();
            }
        }
    }
    if let Some((seed_s, seed_t)) = seed {
        let dens = st_density(graph, seed_s, seed_t);
        if dens > best {
            best = dens;
            best_s = seed_s.to_vec();
            best_t = seed_t.to_vec();
        }
    }
    let hi_global = (m as f64).sqrt() + 1.0;
    for (i, j) in ratios {
        let sqrt_a = ((i as f64) / (j as f64)).sqrt();
        // Shared-incumbent pruning: first test whether this ratio can beat
        // the best density found so far at all — one flow per pruned
        // ratio instead of a full binary search.
        match ratio_cut(graph, sqrt_a, best) {
            None => continue,
            Some((s, t)) => {
                let dens = st_density(graph, &s, &t);
                if dens > best {
                    best = dens;
                    best_s = s;
                    best_t = t;
                }
            }
        }
        let mut lo = best;
        let mut hi = hi_global;
        // Terminate on absolute precision; extracted sets carry exact densities.
        while hi - lo > 1e-9 {
            let guess = (lo + hi) / 2.0;
            match ratio_cut(graph, sqrt_a, guess) {
                Some((s, t)) => {
                    let dens = st_density(graph, &s, &t);
                    if dens > best {
                        best = dens;
                        best_s = s;
                        best_t = t;
                    }
                    // Any witness has true density > guess.
                    lo = lo.max(dens).max(guess + 1e-12);
                }
                None => hi = guess,
            }
        }
    }
    best_s.sort_unstable();
    best_t.sort_unstable();
    DdsExactResult { s: best_s, t: best_t, density: best }
}

/// Legacy decision network for ratio `a` and guess `g` on the float Dinic
/// substrate: returns `Some((S, T))` witnessing density `> g` if one
/// exists. Kept verbatim as the differential-testing oracle.
fn ratio_cut_legacy(
    graph: &DirectedGraph,
    sqrt_a: f64,
    guess: f64,
) -> Option<(Vec<VertexId>, Vec<VertexId>)> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    // Node layout: [0, m): edge nodes; [m, m + n): S-side; [m + n, m + 2n):
    // T-side; then source and sink.
    let s_base = m;
    let t_base = m + n;
    let src = m + 2 * n;
    let snk = src + 1;
    let mut d = Dinic::new(m + 2 * n + 2);
    let cost_s = guess / (2.0 * sqrt_a);
    let cost_t = guess * sqrt_a / 2.0;
    for v in 0..n {
        d.add_edge(s_base + v, snk, cost_s);
        d.add_edge(t_base + v, snk, cost_t);
    }
    let inf = m as f64 + 1.0;
    for (i, (u, v)) in graph.edges().enumerate() {
        d.add_edge(src, i, 1.0);
        d.add_edge(i, s_base + u as usize, inf);
        d.add_edge(i, t_base + v as usize, inf);
    }
    let flow = d.max_flow(src, snk);
    // Positive profit iff some edges stay unsaturated: cut < m.
    if flow >= m as f64 - 1e-7 {
        return None;
    }
    let side = d.min_cut_side(src);
    let s: Vec<VertexId> = (0..n).filter(|&v| side[s_base + v]).map(|v| v as VertexId).collect();
    let t: Vec<VertexId> = (0..n).filter(|&v| side[t_base + v]).map(|v| v as VertexId).collect();
    if s.is_empty() || t.is_empty() {
        None
    } else {
        Some((s, t))
    }
}

/// The original serial exact algorithm (float ratio enumeration over Dinic
/// min-cuts, no pruning), kept as the differential-testing oracle for
/// [`dds_exact`].
pub fn dds_exact_legacy(graph: &DirectedGraph) -> DdsExactResult {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if n == 0 || m == 0 {
        return DdsExactResult { s: Vec::new(), t: Vec::new(), density: 0.0 };
    }
    let mut ratios: Vec<(usize, usize)> = Vec::new();
    for i in 1..=n {
        for j in 1..=n {
            if gcd(i, j) == 1 {
                ratios.push((i, j));
            }
        }
    }
    // Incumbent: best single (u, N+(u)) star to seed the lower bound.
    let mut best_s: Vec<VertexId> = Vec::new();
    let mut best_t: Vec<VertexId> = Vec::new();
    let mut best = 0.0f64;
    for u in 0..n as VertexId {
        let outs = graph.out_neighbors(u);
        if !outs.is_empty() {
            let dens = st_density(graph, &[u], outs);
            if dens > best {
                best = dens;
                best_s = vec![u];
                best_t = outs.to_vec();
            }
        }
    }
    let hi_global = (m as f64).sqrt() + 1.0;
    for (i, j) in ratios {
        let sqrt_a = ((i as f64) / (j as f64)).sqrt();
        match ratio_cut_legacy(graph, sqrt_a, best) {
            None => continue,
            Some((s, t)) => {
                let dens = st_density(graph, &s, &t);
                if dens > best {
                    best = dens;
                    best_s = s;
                    best_t = t;
                }
            }
        }
        let mut lo = best;
        let mut hi = hi_global;
        while hi - lo > 1e-9 {
            let guess = (lo + hi) / 2.0;
            match ratio_cut_legacy(graph, sqrt_a, guess) {
                Some((s, t)) => {
                    let dens = st_density(graph, &s, &t);
                    if dens > best {
                        best = dens;
                        best_s = s;
                        best_t = t;
                    }
                    lo = lo.max(dens).max(guess + 1e-12);
                }
                None => hi = guess,
            }
        }
    }
    DdsExactResult { s: best_s, t: best_t, density: best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::DirectedGraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32)]) -> DirectedGraph {
        DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    /// Brute force over all (S, T) pairs.
    fn brute(g: &DirectedGraph) -> f64 {
        let n = g.num_vertices();
        let mut best = 0.0f64;
        for smask in 1u32..(1 << n) {
            let s: Vec<u32> = (0..n as u32).filter(|&v| smask >> v & 1 == 1).collect();
            for tmask in 1u32..(1 << n) {
                let t: Vec<u32> = (0..n as u32).filter(|&v| tmask >> v & 1 == 1).collect();
                best = best.max(st_density(g, &s, &t));
            }
        }
        best
    }

    #[test]
    fn paper_figure_1b() {
        // S = {v4, v5}, T = {v2, v3}, four edges, density 2, plus a noise
        // edge that does not create anything denser.
        let g = graph(6, &[(4, 2), (4, 3), (5, 2), (5, 3), (0, 1)]);
        let r = dds_exact(&g);
        assert!((r.density - 2.0).abs() < 1e-6, "density {}", r.density);
        assert_eq!(r.s, vec![4, 5]);
        assert_eq!(r.t, vec![2, 3]);
    }

    #[test]
    fn single_edge_density_one() {
        // S = {0}, T = {1}: density 1/sqrt(1) = 1.
        let g = graph(2, &[(0, 1)]);
        let r = dds_exact(&g);
        assert!((r.density - 1.0).abs() < 1e-6);
    }

    #[test]
    fn star_out_hub() {
        // u -> 4 targets: best is S={u}, T=all targets: 4/sqrt(4) = 2.
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let r = dds_exact(&g);
        assert!((r.density - 2.0).abs() < 1e-6);
    }

    #[test]
    fn edgeless() {
        let g = graph(3, &[]);
        let r = dds_exact(&g);
        assert_eq!(r.density, 0.0);
    }

    #[test]
    fn overlapping_s_and_t_cycle() {
        // Directed triangle: S = T = {0,1,2} gives 3/3 = 1; optimum.
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = dds_exact(&g);
        assert!((r.density - 1.0).abs() < 1e-6, "density {}", r.density);
    }

    #[test]
    fn seed_does_not_change_the_optimum() {
        let g = graph(6, &[(4, 2), (4, 3), (5, 2), (5, 3), (0, 1)]);
        let plain = dds_exact(&g);
        let bad = dds_exact_seeded(&g, Some(([0].as_slice(), [1].as_slice())));
        let good = dds_exact_seeded(&g, Some(([4, 5].as_slice(), [2, 3].as_slice())));
        assert!((plain.density - bad.density).abs() < 1e-9);
        assert!((plain.density - good.density).abs() < 1e-9);
        assert_eq!(good.s, vec![4, 5]);
        assert_eq!(good.t, vec![2, 3]);
    }

    #[test]
    fn engine_matches_legacy_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..8 {
            let n = 5 + (trial % 2);
            let mut b = DirectedGraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    if u != v && rng.gen_bool(0.35) {
                        b.push_edge(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            if g.num_edges() == 0 {
                continue;
            }
            let engine = dds_exact(&g);
            let legacy = dds_exact_legacy(&g);
            assert!(
                (engine.density - legacy.density).abs() < 1e-6,
                "trial {trial}: engine {} vs legacy {}",
                engine.density,
                legacy.density
            );
            // The certificate must induce the reported density.
            assert!(
                (st_density(&g, &engine.s, &engine.t) - engine.density).abs() < 1e-12,
                "trial {trial}: certificate does not match its density"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..10 {
            let n = 5;
            let mut b = DirectedGraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    if u != v && rng.gen_bool(0.4) {
                        b.push_edge(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dds_exact(&g);
            let bf = brute(&g);
            assert!(
                (exact.density - bf).abs() < 1e-6,
                "trial {trial}: flow {} vs brute {bf}",
                exact.density
            );
        }
    }
}
