//! # dsd-flow
//!
//! Max-flow substrate and flow-based **exact** densest-subgraph algorithms.
//!
//! The paper (Luo et al., ICDE 2023) focuses on 2-approximation algorithms,
//! but its correctness claims are stated relative to the exact optima ρ*
//! (Lemmas 1 and 3). This crate provides those optima for validation:
//!
//! * [`dinic`] — Dinic's max-flow algorithm on an explicit arc list,
//! * [`goldberg`] — Goldberg's exact undirected densest subgraph via binary
//!   search over density guesses with a min-cut test,
//! * [`mod@dds_exact`] — exact directed densest subgraph via `|S|/|T|`-ratio
//!   enumeration with a per-ratio flow test (Khuller–Saha / Ma et al.
//!   construction).
//!
//! These are deliberately serial: they are ground truth for tests and for
//! the approximation-ratio checks in EXPERIMENTS.md, not competitors in the
//! scalability experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dds_exact;
pub mod dinic;
pub mod goldberg;

pub use dds_exact::{dds_exact, DdsExactResult};
pub use dinic::Dinic;
pub use goldberg::{uds_exact, UdsExactResult};
