//! # dsd-flow
//!
//! Max-flow substrate and flow-based **exact** densest-subgraph algorithms.
//!
//! The paper (Luo et al., ICDE 2023) focuses on 2-approximation algorithms,
//! but its correctness claims are stated relative to the exact optima ρ*
//! (Lemmas 1 and 3). This crate provides those optima for validation:
//!
//! * [`push_relabel`] — the parallel push-relabel max-flow engine (integer
//!   capacities, round-synchronous discharge, gap heuristic, parallel
//!   global relabeling) powering the exact oracles,
//! * [`dinic`] — Dinic's serial max-flow algorithm, kept as the
//!   differential-testing oracle for the engine,
//! * [`goldberg`] — Goldberg's exact undirected densest subgraph via binary
//!   search over density guesses with a min-cut test (engine path with
//!   core pruning + `uds_exact_legacy`),
//! * [`mod@dds_exact`] — exact directed densest subgraph via `|S|/|T|`-ratio
//!   enumeration with a per-ratio flow test (Khuller–Saha / Ma et al.
//!   construction; engine path with mutual-peel pruning +
//!   `dds_exact_legacy`),
//! * [`prune`] — the serial core decomposition backing the Fang et al.
//!   (VLDB 2019) core-based network pruning.
//!
//! The exact calls return **density certificates**: the optimum vertex
//! set(s) extracted from the final min cut, not just the optimum value.
//! Engine results are deterministic in value for any rayon pool size (all
//! flow arithmetic is integral); the `*_legacy` variants remain the serial
//! ground truth for differential tests and for the approximation-ratio
//! checks in EXPERIMENTS.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dds_exact;
pub mod dinic;
pub mod goldberg;
pub mod prune;
pub mod push_relabel;

pub use dds_exact::{dds_exact, dds_exact_legacy, dds_exact_seeded, DdsExactResult};
pub use dinic::Dinic;
pub use goldberg::{
    uds_certify_incumbent, uds_exact, uds_exact_legacy, uds_exact_seeded, UdsCertifyResult,
    UdsExactResult,
};
pub use push_relabel::PushRelabel;
