//! Core-based pruning for the exact flow oracles.
//!
//! Fang et al. (VLDB 2019, "Efficient Algorithms for Densest Subgraph
//! Discovery") observe that any vertex set `S` with density `ρ(S) > g` can
//! be shrunk — by repeatedly dropping a vertex of induced degree `<= g`,
//! which strictly increases density past `g` again — to a witness whose
//! minimum induced degree exceeds `g`. Such a witness lives entirely inside
//! the `(⌊g⌋ + 1)`-core of the graph, so the Goldberg decision network for
//! guess `g` only needs the vertices of that core.
//!
//! This module provides the serial `O(m)` core decomposition the flow crate
//! needs for that pruning. (`dsd-core` has its own parallel decomposition,
//! but the dependency points the other way: `dsd-core` builds on
//! `dsd-flow`.)

use dsd_graph::{NeighborAccess, UndirectedStorage};

/// Computes the core number of every vertex with the standard `O(m)`
/// bucket-peel (Batagelj–Zaveršnik).
///
/// Generic over [`NeighborAccess`], so the peel loop consumes the
/// compressed substrate's delta-varint cursor directly (one sequential
/// decode per vertex at removal time) with no decompressed copy.
pub fn core_numbers<G: NeighborAccess>(g: &G) -> Vec<u32> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let mut deg: Vec<u32> = (0..n).map(|v| g.degree_of(v as u32) as u32).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    // Bucket sort vertices by degree.
    let mut bin = vec![0u32; max_deg + 2];
    for &d in &deg {
        bin[d as usize] += 1;
    }
    let mut start = 0u32;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0u32; n];
    let mut order = vec![0u32; n];
    for v in 0..n {
        let d = deg[v] as usize;
        pos[v] = bin[d];
        order[bin[d] as usize] = v as u32;
        bin[d] += 1;
    }
    // Restore bucket starts (bin[d] = first index of degree-d vertices).
    for d in (1..bin.len()).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;
    // Peel in nondecreasing degree order; deg[] becomes the core number.
    for i in 0..n {
        let v = order[i] as usize;
        for u in g.neighbors_of(v as u32) {
            let u = u as usize;
            if deg[u] > deg[v] {
                let du = deg[u] as usize;
                let pu = pos[u] as usize;
                let pw = bin[du] as usize;
                let w = order[pw] as usize;
                if u != w {
                    order.swap(pu, pw);
                    pos[u] = pw as u32;
                    pos[w] = pu as u32;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    deg
}

/// [`core_numbers`] behind runtime storage selection — the enum is matched
/// once, the whole peel runs monomorphised for that representation.
pub fn core_numbers_storage(storage: &UndirectedStorage<'_>) -> Vec<u32> {
    match storage {
        UndirectedStorage::Plain(g) => core_numbers(*g),
        UndirectedStorage::Compressed(c) => core_numbers(*c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::{UndirectedGraph, UndirectedGraphBuilder};

    fn graph(n: usize, edges: &[(u32, u32)]) -> UndirectedGraph {
        UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    /// Naive reference: k-core membership by repeated peeling.
    fn core_numbers_naive(g: &UndirectedGraph) -> Vec<u32> {
        let n = g.num_vertices();
        let mut core = vec![0u32; n];
        for k in 1..=n as u32 {
            let mut alive = vec![true; n];
            let mut changed = true;
            while changed {
                changed = false;
                for v in 0..n {
                    if alive[v] {
                        let d = g.neighbors(v as u32).iter().filter(|&&u| alive[u as usize]).count()
                            as u32;
                        if d < k {
                            alive[v] = false;
                            changed = true;
                        }
                    }
                }
            }
            for v in 0..n {
                if alive[v] {
                    core[v] = k;
                }
            }
        }
        core
    }

    #[test]
    fn triangle_with_pendant() {
        let g = graph(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1]);
    }

    #[test]
    fn clique_core_is_size_minus_one() {
        let g = graph(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![3, 3, 3, 3]);
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = graph(3, &[(0, 1)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 0]);
    }

    #[test]
    fn matches_naive_on_pseudorandom_graphs() {
        let mut state = 0xdeadbeefcafef00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..25 {
            let n = 6 + (trial % 7);
            let mut b = UndirectedGraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if next() % 10 < 4 {
                        b.push_edge(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            assert_eq!(core_numbers(&g), core_numbers_naive(&g), "trial {trial}");
        }
    }

    #[test]
    fn compressed_storage_matches_plain() {
        let g = graph(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5), (2, 4), (1, 5)]);
        let c = dsd_graph::CompressedCsr::from_graph(&g);
        let plain = core_numbers_storage(&UndirectedStorage::Plain(&g));
        let fused = core_numbers_storage(&UndirectedStorage::Compressed(&c));
        assert_eq!(plain, core_numbers(&g));
        assert_eq!(fused, plain);
    }
}
