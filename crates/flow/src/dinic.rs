//! Dinic's maximum-flow algorithm.
//!
//! Used by the exact densest-subgraph algorithms in this crate. Capacities
//! are `f64`: the Goldberg construction scales its density guesses so that
//! all capacities are integers (exactly representable in `f64` below 2⁵³,
//! so the computation stays exact), while the directed-DDS construction has
//! inherently irrational capacities (`√a` factors) and works to an epsilon.

/// Residual-capacity threshold below which an arc is considered saturated.
pub const EPS: f64 = 1e-11;

#[derive(Clone, Debug)]
struct Arc {
    to: u32,
    cap: f64,
}

/// A max-flow problem instance. Arcs are added in pairs (forward +
/// residual), so the reverse arc of arc `i` is `i ^ 1`.
#[derive(Clone, Debug)]
pub struct Dinic {
    arcs: Vec<Arc>,
    head: Vec<Vec<u32>>, // arc indices leaving each node
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// Creates an instance with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        Self { arcs: Vec::new(), head: vec![Vec::new(); n], level: vec![0; n], iter: vec![0; n] }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed arc `u → v` with capacity `cap` (and a zero-capacity
    /// residual arc). Returns the forward-arc index.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) -> usize {
        debug_assert!(cap >= 0.0, "negative capacity {cap}");
        let idx = self.arcs.len();
        self.arcs.push(Arc { to: v as u32, cap });
        self.arcs.push(Arc { to: u as u32, cap: 0.0 });
        self.head[u].push(idx as u32);
        self.head[v].push(idx as u32 + 1);
        idx
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &ai in &self.head[u] {
                let arc = &self.arcs[ai as usize];
                let v = arc.to as usize;
                if arc.cap > EPS && self.level[v] < 0 {
                    self.level[v] = self.level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: f64) -> f64 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.head[u].len() {
            let ai = self.head[u][self.iter[u]] as usize;
            let (to, cap) = {
                let arc = &self.arcs[ai];
                (arc.to as usize, arc.cap)
            };
            if cap > EPS && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, f.min(cap));
                if d > EPS {
                    self.arcs[ai].cap -= d;
                    self.arcs[ai ^ 1].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0.0
    }

    /// Computes the maximum flow from `s` to `t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// After [`max_flow`](Self::max_flow), returns the source side of a
    /// minimum cut: every node reachable from `s` in the residual graph.
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.head.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &ai in &self.head[u] {
                let arc = &self.arcs[ai as usize];
                let v = arc.to as usize;
                if arc.cap > EPS && !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut d = Dinic::new(2);
        d.add_edge(0, 1, 5.0);
        assert_eq!(d.max_flow(0, 1), 5.0);
    }

    #[test]
    fn series_bottleneck() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 10.0);
        d.add_edge(1, 2, 3.0);
        assert_eq!(d.max_flow(0, 2), 3.0);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 2.0);
        d.add_edge(1, 3, 2.0);
        d.add_edge(0, 2, 3.0);
        d.add_edge(2, 3, 3.0);
        assert_eq!(d.max_flow(0, 3), 5.0);
    }

    #[test]
    fn classic_augmenting_path_example() {
        // Needs flow cancellation through the middle edge.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1.0);
        d.add_edge(0, 2, 1.0);
        d.add_edge(1, 2, 1.0);
        d.add_edge(1, 3, 1.0);
        d.add_edge(2, 3, 1.0);
        assert_eq!(d.max_flow(0, 3), 2.0);
    }

    #[test]
    fn disconnected_zero_flow() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 4.0);
        d.add_edge(2, 3, 4.0);
        assert_eq!(d.max_flow(0, 3), 0.0);
    }

    #[test]
    fn min_cut_side_identifies_cut() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 10.0);
        d.add_edge(1, 2, 3.0);
        d.max_flow(0, 2);
        let side = d.min_cut_side(0);
        assert_eq!(side, vec![true, true, false]);
    }

    #[test]
    fn max_flow_equals_min_cut_capacity() {
        // Random-ish fixed instance; verify flow == capacity crossing cut.
        let edges = [
            (0usize, 1usize, 3.0),
            (0, 2, 2.0),
            (1, 2, 5.0),
            (1, 3, 2.0),
            (2, 4, 3.0),
            (3, 5, 4.0),
            (4, 5, 2.0),
            (4, 3, 1.0),
        ];
        let mut d = Dinic::new(6);
        for &(u, v, c) in &edges {
            d.add_edge(u, v, c);
        }
        let flow = d.max_flow(0, 5);
        let side = d.min_cut_side(0);
        let cut: f64 =
            edges.iter().filter(|&&(u, v, _)| side[u] && !side[v]).map(|&(_, _, c)| c).sum();
        assert!((flow - cut).abs() < 1e-9, "flow {flow} != cut {cut}");
    }

    #[test]
    fn integral_capacities_stay_integral() {
        let mut d = Dinic::new(5);
        d.add_edge(0, 1, 7.0);
        d.add_edge(0, 2, 9.0);
        d.add_edge(1, 3, 6.0);
        d.add_edge(2, 3, 4.0);
        d.add_edge(3, 4, 8.0);
        let f = d.max_flow(0, 4);
        assert_eq!(f, 8.0);
        assert_eq!(f.fract(), 0.0);
    }
}
