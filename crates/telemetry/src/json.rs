//! Minimal JSON reader/writer used by the trace pipeline.
//!
//! The telemetry crate is dependency-free, so it cannot lean on `serde_json`.
//! This module implements just enough of RFC 8259 for the `dsd-trace/v1`
//! schema: objects, arrays, strings with the standard escapes, `f64` numbers,
//! booleans and `null`. Object keys keep insertion order (the trace schema is
//! emitted in a fixed order, and the report renderer relies on counter order).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (trace numbers are counts and seconds,
    /// both exactly representable well past any realistic trace size).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Object),
}

/// An insertion-ordered JSON object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Object(pub Vec<(String, Value)>);

impl Object {
    /// First value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterate `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the object has no keys.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Value {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Nesting depth cap: traces are at most ~5 levels deep, so 64 is generous
/// while keeping the recursive-descent parser safe on adversarial input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(Object(entries)));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(Object(entries)));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code =
                                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(first)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid; find the next char boundary).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number. Non-finite values (which the trace
/// pipeline never produces, but a panicking serialiser helps nobody) are
/// written as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Display for f64 is the shortest round-trip form and is
        // always valid JSON (no exponent-only or trailing-dot forms).
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e1").unwrap(), Value::Number(-125.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let a = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert!(a[2].as_object().unwrap().get("b").unwrap().is_null());
        assert_eq!(
            obj.get("c").unwrap().as_object().unwrap().get("d").unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\nd\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\\ud800\"").is_err(), "unpaired surrogate");
        assert!(parse("tru").is_err());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn writer_round_trips() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\u{1}é");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}é"));

        let mut num = String::new();
        write_f64(&mut num, 0.1);
        assert_eq!(parse(&num).unwrap().as_f64(), Some(0.1));
        let mut inf = String::new();
        write_f64(&mut inf, f64::INFINITY);
        assert_eq!(inf, "null");
    }

    #[test]
    fn as_u64_guards_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
