//! Dependency-free per-round telemetry for the densest-subgraph engines.
//!
//! The paper's evaluation (Luo et al., ICDE 2023) is built on internal
//! observables — Table 6 compares iteration counts, Table 7 compares
//! alive-edge sizes per iteration — not just wall-clock. This crate gives the
//! sweep/peel engines a way to expose those observables without `eprintln`
//! scaffolding and without perturbing the hot paths they measure:
//!
//! * **Runtime switch.** [`set_enabled`] flips a global flag; every probe is
//!   gated on [`enabled`], a single relaxed atomic load. With the recorder
//!   off, instrumentation costs one predictable branch per probe site.
//! * **Sharded counters.** [`counter_add`] writes to a thread-local shard
//!   (an uncontended cache line per thread); shards are aggregated only when
//!   a trace is flushed by [`end_trace`]. No shared atomics on hot paths.
//! * **Span timers.** [`span`] returns a guard that accumulates elapsed time
//!   into a per-thread phase bucket on drop; [`Phase`] names the buckets.
//! * **Typed round events.** Engines push one [`RoundSample`] per round via
//!   [`record_round`]; [`end_trace`] packages the rounds, counter totals and
//!   phase totals into a [`DecompositionTrace`] that serialises to JSON with
//!   [`DecompositionTrace::to_json`] (schema `dsd-trace/v2`; v1 documents
//!   are still parsed by [`report::view_from_json`]).
//!
//! PR 8 grows the recorder into a flight recorder:
//!
//! * **Hierarchical spans.** Nested [`span`] guards (and explicit
//!   [`record_span`] calls) build a per-thread span *tree* — parent/child
//!   links, start offsets and durations — flushed into the trace as a
//!   [`span_tree::TraceSpan`] forest alongside the flat phase totals.
//! * **Log-bucketed histograms.** Every span/`phase_add` duration also
//!   lands in an HDR-style histogram per phase ([`hist::LogHistogram`]),
//!   and [`record_round`] feeds per-round work-shape histograms
//!   (`round/frontier_len`, `round/items_removed`, `round/edges_examined`)
//!   whose bucket counts are bit-identical across pool sizes for
//!   deterministic engines. Shard histograms merge by element-wise bucket
//!   addition, so the merged counts are independent of thread scheduling.
//! * **Memory accounting.** When a binary installs
//!   [`alloc::CountingAlloc`], traces carry allocation count, allocated
//!   bytes, the live-byte high-water mark reached during the trace, and the
//!   kernel-reported peak RSS.
//! * **Exporters.** [`export`] renders a flushed trace as chrome://tracing
//!   trace-event JSON and as folded (flamegraph) stacks.
//!
//! One trace is active at a time (guarded by a mutex that is only touched at
//! round granularity, never per edge). [`begin_trace`] resets the shards, so
//! traces must not overlap; the engines in `dsd-core` only record, they never
//! begin or end traces — harnesses own the trace lifecycle.
//!
//! The recorder-off contract is unchanged: every probe — including the new
//! span-tree and histogram paths — short-circuits on one relaxed load of the
//! enabled flag, and the enabled-path locks (span log, histograms) are
//! per-thread and uncontended.
//!
//! The crate is deliberately `std`-only (the build container has no crate
//! registry): JSON emission and parsing are hand-rolled in [`json`], and the
//! Table 6/7-style text rendering lives in [`report`].

#![deny(unsafe_code)] // one scoped allow lives in `alloc` (the GlobalAlloc impl)
#![warn(missing_docs)]

pub mod alloc;
pub mod export;
pub mod hist;
pub mod json;
pub mod report;
pub mod span_tree;

use span_tree::{LocalSpan, SpanLog, TraceSpan, OPEN_SENTINEL};
use std::cell::RefCell;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Named engine counters, aggregated across threads on flush.
///
/// Each variant indexes a fixed slot in the per-thread shard, so adding to a
/// counter is one relaxed `fetch_add` on a thread-local cache line. The
/// glossary below states which engine owns each counter and what one unit
/// means; DESIGN.md §7 carries the same table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// `uds/sweep.rs`: h-values actually rewritten by an apply pass (sync
    /// mode) or changed in place (async mode). Deterministic in sync mode.
    HUpdatesApplied,
    /// `uds/sweep.rs`: vertices enqueued onto the next frontier by
    /// `advance_frontier`. Deterministic in sync mode.
    FrontierEnqueues,
    /// `dds/peel.rs`: chunk-min slots rescanned by the lazy threshold
    /// scheduler while serving `next_threshold`.
    ChunkMinRescans,
    /// `dds/peel.rs`: `next_threshold` calls answered by the cached chunk
    /// lower bounds on the first scan, without a recompute retry.
    CacheBoundHits,
    /// `dds/peel.rs`: bitmap claims that lost the race to another thread
    /// (a compare-exchange observed the bit already taken).
    CasRetries,
    /// `dds/winduced.rs` legacy kernel and `uds/pkc.rs`: entries retained
    /// (moved) by an in-place candidate/scratch compaction.
    CompactionMoves,
    /// `dsd-graph::compress`: bytes of delta-varint neighbour stream read
    /// by fused-decode cursors (one unit = one encoded adjacency byte
    /// handed to a `NeighborCursor`).
    DecodeBytes,
    /// `dsd-graph::compress`: bytes of delta-varint neighbour stream
    /// produced by the encoder (adjacency data sections only, excluding
    /// the degree and offset tables).
    EncodeBytes,
    /// `uds/iterate.rs`: load cells updated by the iterative near-optimal
    /// engine — one per popped vertex per Greedy++ round, one per edge
    /// orientation variable per FISTA step.
    LoadsUpdated,
    /// `dsd-core::dynamic`: vertices seeded into the maintenance frontier
    /// for one update batch — deletion endpoints plus insertion-candidate
    /// vertices (the `core == K` BFS regions). One unit = one seeded
    /// vertex; the batch's from-scratch alternative would seed `n`.
    FrontierSize,
    /// `dsd-serve`: queries answered by the daemon (every kind, including
    /// `stats` and rejected-but-replied malformed requests).
    ServeQueries,
    /// `dsd-serve`: snapshot versions installed by the writer thread (the
    /// initial load counts as the first install).
    SnapshotInstalls,
    /// `dsd-serve`: queries answered entirely from the snapshot's
    /// precomputed certificate (densest-subgraph and core-membership
    /// lookups that touched no decomposition kernel).
    ServeCacheHits,
}

impl Counter {
    /// Every counter, in shard-slot order (also the JSON emission order).
    pub const ALL: [Counter; 13] = [
        Counter::HUpdatesApplied,
        Counter::FrontierEnqueues,
        Counter::ChunkMinRescans,
        Counter::CacheBoundHits,
        Counter::CasRetries,
        Counter::CompactionMoves,
        Counter::DecodeBytes,
        Counter::EncodeBytes,
        Counter::LoadsUpdated,
        Counter::FrontierSize,
        Counter::ServeQueries,
        Counter::SnapshotInstalls,
        Counter::ServeCacheHits,
    ];

    const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::HUpdatesApplied => "h_updates_applied",
            Counter::FrontierEnqueues => "frontier_enqueues",
            Counter::ChunkMinRescans => "chunk_min_rescans",
            Counter::CacheBoundHits => "cache_bound_hits",
            Counter::CasRetries => "cas_retries",
            Counter::CompactionMoves => "compaction_moves",
            Counter::DecodeBytes => "decode_bytes",
            Counter::EncodeBytes => "encode_bytes",
            Counter::LoadsUpdated => "loads_updated",
            Counter::FrontierSize => "frontier_size",
            Counter::ServeQueries => "serve_queries",
            Counter::SnapshotInstalls => "snapshot_installs",
            Counter::ServeCacheHits => "serve_cache_hits",
        }
    }
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

/// Named phases timed by [`span`] guards.
///
/// The UDS sweep engine uses `Init`/`Sweep`/`Apply`/`Frontier` (+ `Monitor`
/// for PKMC's Theorem-1 early-stop checks); the DDS peel engine uses
/// `Prime`/`ThresholdSelect`/`Cascade`/`Compact`; PWC adds
/// `Collapse`/`Extract` for its post-decomposition stages. The graph ingest
/// engine (`dsd-graph`, PR 4) uses the five `Ingest*` phases to break the
/// bytes-on-disk → kernel-ready-CSR path into parse / validate / count /
/// scatter / sort-dedup. The push-relabel exact-flow engine (`dsd-flow`,
/// PR 5) uses the three `Flow*` phases to split a max-flow solve into
/// global relabeling / discharge rounds / cut extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Workspace binding / buffer (re)initialisation.
    Init,
    /// An h-index recompute pass over the active set.
    Sweep,
    /// The staged-write apply pass of a synchronous sweep.
    Apply,
    /// Building the next frontier from changed vertices.
    Frontier,
    /// Convergence / early-stop monitoring (PKMC Theorem-1 checks).
    Monitor,
    /// Priming degrees, bitmaps and chunk bounds before peeling.
    Prime,
    /// Selecting the next peel threshold via the chunk-min scheduler.
    ThresholdSelect,
    /// The edge-frontier peel cascade below the current threshold.
    Cascade,
    /// In-place compaction of candidate / scratch arrays.
    Compact,
    /// PWC: collapse-order test over the w-induced decomposition.
    Collapse,
    /// PWC: extracting the (x, y)-core answer subgraph.
    Extract,
    /// Ingest: chunked text edge-list parsing (`dsd-graph::io`).
    IngestParse,
    /// Ingest: fused range validation + canonicalisation + degree
    /// histogram over the raw edge parts (`dsd-graph::ingest`).
    IngestValidate,
    /// Ingest: offset prefix sums and scatter-cursor initialisation.
    IngestCount,
    /// Ingest: atomic-cursor scatter of edges into adjacency slots.
    IngestScatter,
    /// Ingest: per-vertex adjacency sort, in-place dedup, and compaction.
    IngestSortDedup,
    /// Flow: global relabeling (reverse BFS from the sink) in the
    /// push-relabel engine (`dsd-flow::push_relabel`).
    FlowRelabel,
    /// Flow: round-synchronous parallel discharge (push + staged relabel).
    FlowDischarge,
    /// Flow: min-cut s-side extraction and certificate set construction.
    FlowCutExtract,
    /// Compress: delta-varint encoding of an adjacency structure into the
    /// chunked compressed CSR payload (`dsd-graph::compress`).
    CompressEncode,
    /// Ingest spill mode: sorting an arc window and writing it to a
    /// temporary shard file (`dsd-graph::ingest::spill`).
    IngestSpill,
    /// Ingest spill mode: k-way merge of sorted shard files into the
    /// final CSR / compressed builder.
    IngestMerge,
    /// Iterative engine: one load-augmented Greedy++ peel round
    /// (`dsd-core::uds::iterate`).
    IteratePeel,
    /// Iterative engine: one FISTA projected-gradient step over the edge
    /// orientation variables (momentum update + clamp + load recompute).
    IterateGradient,
    /// Iterative engine: fractional-peeling extraction of the densest
    /// prefix from the current load vector.
    IterateExtract,
    /// Iterative engine: flow certification of the incumbent against the
    /// push-relabel oracle (`--certify exact`).
    IterateCertify,
    /// Dynamic engine: computing the affected frontier of an update batch
    /// (deletion endpoints, insertion-candidate BFS) in
    /// `dsd-core::dynamic`.
    DynamicFrontier,
    /// Dynamic engine: frontier-bounded h-index sweeps re-converging the
    /// k*-core decomposition after a batch.
    DynamicSweep,
    /// Dynamic engine: the restricted chunk-min peel re-deriving the
    /// w-induced decomposition below the changed-weight cutoff `W*`.
    DynamicPeel,
    /// Serve: one densest-subgraph query (certificate lookup).
    ServeDensest,
    /// Serve: one density-of-set query.
    ServeDensity,
    /// Serve: one core-membership query.
    ServeCore,
    /// Serve: one top-k dense-neighbourhood query.
    ServeNeighborhood,
    /// Serve: one per-query Greedy++ run (`--epsilon` knob).
    ServeGreedy,
    /// Serve: one `stats` query (trace snapshot + serialisation).
    ServeStats,
    /// Serve: one `update` request, timed end-to-end on the client-facing
    /// connection (queue wait + writer apply + install).
    ServeUpdate,
    /// Serve: writer-side snapshot construction and installation — the
    /// interval in which a new version exists but is not yet published.
    ServeInstall,
}

impl Phase {
    /// Every phase, in shard-slot order.
    pub const ALL: [Phase; 37] = [
        Phase::Init,
        Phase::Sweep,
        Phase::Apply,
        Phase::Frontier,
        Phase::Monitor,
        Phase::Prime,
        Phase::ThresholdSelect,
        Phase::Cascade,
        Phase::Compact,
        Phase::Collapse,
        Phase::Extract,
        Phase::IngestParse,
        Phase::IngestValidate,
        Phase::IngestCount,
        Phase::IngestScatter,
        Phase::IngestSortDedup,
        Phase::FlowRelabel,
        Phase::FlowDischarge,
        Phase::FlowCutExtract,
        Phase::CompressEncode,
        Phase::IngestSpill,
        Phase::IngestMerge,
        Phase::IteratePeel,
        Phase::IterateGradient,
        Phase::IterateExtract,
        Phase::IterateCertify,
        Phase::DynamicFrontier,
        Phase::DynamicSweep,
        Phase::DynamicPeel,
        Phase::ServeDensest,
        Phase::ServeDensity,
        Phase::ServeCore,
        Phase::ServeNeighborhood,
        Phase::ServeGreedy,
        Phase::ServeStats,
        Phase::ServeUpdate,
        Phase::ServeInstall,
    ];

    const COUNT: usize = Self::ALL.len();

    /// Stable name used in `phase_times` / `phase_totals` JSON entries.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Init => "init",
            Phase::Sweep => "sweep",
            Phase::Apply => "apply",
            Phase::Frontier => "frontier",
            Phase::Monitor => "monitor",
            Phase::Prime => "prime",
            Phase::ThresholdSelect => "threshold-select",
            Phase::Cascade => "peel-cascade",
            Phase::Compact => "compact",
            Phase::Collapse => "collapse",
            Phase::Extract => "extract",
            Phase::IngestParse => "parse",
            Phase::IngestValidate => "validate",
            Phase::IngestCount => "count",
            Phase::IngestScatter => "scatter",
            Phase::IngestSortDedup => "sort-dedup",
            Phase::FlowRelabel => "flow/relabel",
            Phase::FlowDischarge => "flow/discharge",
            Phase::FlowCutExtract => "flow/cut-extract",
            Phase::CompressEncode => "compress/encode",
            Phase::IngestSpill => "ingest/spill",
            Phase::IngestMerge => "ingest/merge",
            Phase::IteratePeel => "iterate/peel",
            Phase::IterateGradient => "iterate/gradient",
            Phase::IterateExtract => "iterate/extract",
            Phase::IterateCertify => "iterate/certify",
            Phase::DynamicFrontier => "dynamic/frontier",
            Phase::DynamicSweep => "dynamic/sweep",
            Phase::DynamicPeel => "dynamic/peel",
            Phase::ServeDensest => "serve/densest",
            Phase::ServeDensity => "serve/density",
            Phase::ServeCore => "serve/core",
            Phase::ServeNeighborhood => "serve/neighborhood",
            Phase::ServeGreedy => "serve/greedypp",
            Phase::ServeStats => "serve/stats",
            Phase::ServeUpdate => "serve/update",
            Phase::ServeInstall => "serve/install",
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local shards
// ---------------------------------------------------------------------------

/// Per-thread slab of counter cells and phase-nanosecond accumulators.
///
/// Only the owning thread writes a shard during a trace (relaxed stores on an
/// otherwise-private cache line); other threads read it only at flush or
/// reset, which happen while the engines are quiescent.
struct Shard {
    counters: [AtomicU64; Counter::COUNT],
    phase_nanos: [AtomicU64; Phase::COUNT],
    /// Span-tree nodes recorded by the owning thread. The mutex is
    /// uncontended during a trace (only the owner locks it); flush and reset
    /// lock it from the harness thread while the engines are quiescent.
    spans: Mutex<SpanLog>,
    /// Per-phase duration histograms, same ownership discipline.
    hists: Mutex<Vec<hist::LogHistogram>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(SpanLog::default()),
            hists: Mutex::new(vec![hist::LogHistogram::new(); Phase::COUNT]),
        }
    }

    fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for p in &self.phase_nanos {
            p.store(0, Ordering::Relaxed);
        }
        self.spans.lock().expect("telemetry span log poisoned").reset();
        for h in self.hists.lock().expect("telemetry histograms poisoned").iter_mut() {
            *h = hist::LogHistogram::new();
        }
    }

    fn hist_record(&self, p: Phase, nanos: u64) {
        self.hists.lock().expect("telemetry histograms poisoned")[p as usize].record(nanos);
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static SHARD: Arc<Shard> = {
        let shard = Arc::new(Shard::new());
        registry().lock().expect("telemetry registry poisoned").push(Arc::clone(&shard));
        shard
    };
}

// ---------------------------------------------------------------------------
// Span-tree bookkeeping (process epoch, trace generation, open-span stacks)
// ---------------------------------------------------------------------------

/// Process-wide monotonic epoch; all span timestamps are offsets from it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[inline]
fn now_nanos() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Bumped by every `begin_trace`. Thread-local open-span stacks lazily reset
/// when they observe a new generation, so a stale stack from a previous
/// trace can never donate parent indices into a cleared span log.
static TRACE_GEN: AtomicU64 = AtomicU64::new(0);

/// `begin_trace` time as nanoseconds since [`epoch`].
static TRACE_START_NANOS: AtomicU64 = AtomicU64::new(0);

struct OpenSpans {
    gen: u64,
    stack: Vec<u32>,
}

thread_local! {
    static OPEN_SPANS: RefCell<OpenSpans> = const { RefCell::new(OpenSpans { gen: 0, stack: Vec::new() }) };
}

/// Innermost span currently open on this thread (its local log index),
/// clearing the stack first if it belongs to an earlier trace.
fn current_parent(gen: u64) -> Option<u32> {
    OPEN_SPANS.with(|os| {
        let mut os = os.borrow_mut();
        if os.gen != gen {
            os.stack.clear();
            os.gen = gen;
        }
        os.stack.last().copied()
    })
}

#[inline]
fn trace_rel_nanos(abs_nanos: u64) -> u64 {
    abs_nanos.saturating_sub(TRACE_START_NANOS.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// Global switch + pool label
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// `0` means "no pool label set"; otherwise the rayon pool size + 1 is not
/// needed — pool sizes are >= 1 so the raw value can be stored directly.
static POOL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Turn the recorder on or off. Off is the default; every probe site
/// short-circuits on [`enabled`] when off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the recorder is on. This is the *entire* disabled-path cost of a
/// probe: one relaxed load and a branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Label the active (and any subsequently begun) trace with the rayon pool
/// size driving the engines. `None` clears the label for *future* traces
/// only — an active trace keeps the last real pool size that ran inside
/// it, so `with_threads`' restore-on-exit (typically back to "no label")
/// cannot wipe the label before `end_trace` reads it. Called by
/// `dsd_core::runner::with_threads`; harness code rarely needs it directly.
pub fn set_pool_threads(threads: Option<usize>) {
    POOL_THREADS.store(threads.unwrap_or(0), Ordering::Relaxed);
    if threads.is_some() && enabled() {
        if let Some(trace) = active().lock().expect("telemetry trace poisoned").as_mut() {
            trace.threads = threads;
        }
    }
}

/// The current pool label, if one is set.
pub fn pool_threads() -> Option<usize> {
    match POOL_THREADS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

// ---------------------------------------------------------------------------
// Probes
// ---------------------------------------------------------------------------

/// Add `n` to counter `c` on the calling thread's shard. No-op when the
/// recorder is disabled.
#[inline]
pub fn counter_add(c: Counter, n: u64) {
    if enabled() {
        SHARD.with(|s| s.counters[c as usize].fetch_add(n, Ordering::Relaxed));
    }
}

/// Add `d` to phase `p`'s accumulated time on the calling thread's shard and
/// record it in the phase's duration histogram. No-op when the recorder is
/// disabled. Engines that already measured a duration (e.g. to attach it to
/// a [`RoundSample`]) use this — or [`record_span`], which also grows the
/// span tree — instead of a [`span`] guard to avoid timing the same scope
/// twice.
#[inline]
pub fn phase_add(p: Phase, d: std::time::Duration) {
    if enabled() {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        SHARD.with(|s| {
            s.phase_nanos[p as usize].fetch_add(nanos, Ordering::Relaxed);
            s.hist_record(p, nanos);
        });
    }
}

/// RAII timer: accumulates the guarded scope's elapsed time into phase `p`
/// (flat total + histogram) on drop, and closes the span-tree node opened
/// when the guard was created. When the recorder is disabled the guard holds
/// no `Instant` and drop is a no-op.
///
/// The guard is `!Send`: span-tree nodes live in the creating thread's
/// shard, so a guard must be dropped on the thread that opened it.
#[must_use = "the span measures until the guard is dropped"]
pub struct SpanGuard {
    phase: Phase,
    start: Option<Instant>,
    /// Local span-log index of the node this guard opened, if the tree had
    /// room; flat timing still works when `None`.
    node: Option<u32>,
    gen: u64,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos())
                .unwrap_or(OPEN_SENTINEL - 1)
                .min(OPEN_SENTINEL - 1);
            SHARD.with(|s| {
                s.phase_nanos[self.phase as usize].fetch_add(nanos, Ordering::Relaxed);
                s.hist_record(self.phase, nanos);
                if let Some(idx) = self.node {
                    if TRACE_GEN.load(Ordering::Relaxed) == self.gen {
                        let mut log = s.spans.lock().expect("telemetry span log poisoned");
                        if let Some(n) = log.nodes.get_mut(idx as usize) {
                            n.dur_nanos = nanos;
                        }
                    }
                }
            });
            if let Some(idx) = self.node {
                OPEN_SPANS.with(|os| {
                    let mut os = os.borrow_mut();
                    if os.gen == self.gen {
                        // Guards normally drop LIFO; tolerate out-of-order
                        // drops by removing the exact entry.
                        if let Some(pos) = os.stack.iter().rposition(|&v| v == idx) {
                            os.stack.remove(pos);
                        }
                    }
                });
            }
        }
    }
}

/// Start timing phase `p`; the elapsed time is recorded when the returned
/// guard is dropped. When the recorder is on this also opens a span-tree
/// node whose parent is the innermost span already open on this thread.
#[inline]
pub fn span(p: Phase) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            phase: p,
            start: None,
            node: None,
            gen: 0,
            _not_send: std::marker::PhantomData,
        };
    }
    let gen = TRACE_GEN.load(Ordering::Relaxed);
    let start_rel = trace_rel_nanos(now_nanos());
    let parent = current_parent(gen);
    let node = SHARD.with(|s| {
        let mut log = s.spans.lock().expect("telemetry span log poisoned");
        if log.nodes.len() >= span_tree::MAX_SPANS_PER_THREAD {
            log.dropped += 1;
            None
        } else {
            let idx = log.nodes.len() as u32;
            log.nodes.push(LocalSpan {
                phase: p,
                parent,
                start_nanos: start_rel,
                dur_nanos: OPEN_SENTINEL,
            });
            Some(idx)
        }
    });
    if let Some(idx) = node {
        OPEN_SPANS.with(|os| os.borrow_mut().stack.push(idx));
    }
    SpanGuard {
        phase: p,
        start: Some(Instant::now()),
        node,
        gen,
        _not_send: std::marker::PhantomData,
    }
}

/// Record a *completed* scope that started at `start` as phase `p`: flat
/// phase total, duration histogram, and a closed span-tree node (parented
/// under the innermost open span, like a [`span`] guard opened at `start`
/// and dropped now). Returns the measured duration so callers can reuse it
/// for [`RoundSample::phase_times`] without timing the scope twice.
///
/// No-op (beyond the `elapsed` call) when the recorder is disabled.
pub fn record_span(p: Phase, start: Instant) -> std::time::Duration {
    let d = start.elapsed();
    if !enabled() {
        return d;
    }
    let nanos = u64::try_from(d.as_nanos()).unwrap_or(OPEN_SENTINEL - 1).min(OPEN_SENTINEL - 1);
    let gen = TRACE_GEN.load(Ordering::Relaxed);
    let start_rel = trace_rel_nanos(now_nanos().saturating_sub(nanos));
    let parent = current_parent(gen);
    SHARD.with(|s| {
        s.phase_nanos[p as usize].fetch_add(nanos, Ordering::Relaxed);
        s.hist_record(p, nanos);
        let mut log = s.spans.lock().expect("telemetry span log poisoned");
        if log.nodes.len() >= span_tree::MAX_SPANS_PER_THREAD {
            log.dropped += 1;
        } else {
            log.nodes.push(LocalSpan {
                phase: p,
                parent,
                start_nanos: start_rel,
                dur_nanos: nanos,
            });
        }
    });
    d
}

/// Run `f` under a [`span`] for phase `p`.
#[inline]
pub fn time_phase<T>(p: Phase, f: impl FnOnce() -> T) -> T {
    let _guard = span(p);
    f()
}

// ---------------------------------------------------------------------------
// Round samples and traces
// ---------------------------------------------------------------------------

/// One `(phase, seconds)` entry inside a round or a trace total.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTime {
    /// Phase name (one of [`Phase::name`]'s values).
    pub phase: &'static str,
    /// Elapsed seconds attributed to the phase.
    pub secs: f64,
}

/// One engine round, as observed by the engine's outer loop.
///
/// Granularity is engine-defined: the sweep engine records one sample per
/// h-index sweep, the peel engine one sample per *outer* iteration (one
/// `next_threshold` + cascade), so the final sample's `alive_edges` equals
/// `Stats::edges_last_iter`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundSample {
    /// Zero-based round index within the trace.
    pub round: u32,
    /// Items on the round's work frontier (vertices for sweeps, edges for
    /// peels) before the round ran.
    pub frontier_len: usize,
    /// Adjacency entries examined by the round (a deterministic work proxy
    /// in sync sweep mode; schedule-dependent for async/peel rounds).
    pub edges_examined: u64,
    /// Items removed or changed by the round (h-updates for sweeps, edges
    /// peeled for cascades).
    pub items_removed: usize,
    /// Edges still alive when the round started (`None` for engines without
    /// an alive-edge notion, i.e. the UDS sweep).
    pub alive_edges: Option<usize>,
    /// Best-so-far density after this round (iterative near-optimal
    /// engines only; omitted from JSON when `None`).
    pub density: Option<f64>,
    /// Load-vector dual upper bound after this round (iterative engines
    /// only; the dual gap is `dual_bound - density`).
    pub dual_bound: Option<f64>,
    /// Per-phase time breakdown for this round (empty if the engine only
    /// tracks trace-level phase totals).
    pub phase_times: Vec<PhaseTime>,
}

/// One named histogram attached to a trace: per-phase durations (unit
/// `"nanos"`) or per-round work shapes (unit `"count"`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHistogram {
    /// Histogram key: a [`Phase::name`] for duration histograms, or one of
    /// the `round/*` keys fed by [`record_round`].
    pub key: &'static str,
    /// Sample unit: `"nanos"` or `"count"`.
    pub unit: &'static str,
    /// The merged histogram.
    pub hist: hist::LogHistogram,
}

/// Allocator accounting for one trace (present only when the process runs
/// under [`alloc::CountingAlloc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations performed between `begin_trace` and `end_trace`.
    pub allocs: u64,
    /// Bytes handed out between `begin_trace` and `end_trace`.
    pub bytes_allocated: u64,
    /// Live-byte high-water mark reached during the trace.
    pub peak_live_bytes: u64,
    /// Bytes live when the trace ended.
    pub live_bytes_end: u64,
    /// Kernel-reported peak RSS in bytes (Linux only; process-lifetime, not
    /// trace-scoped — the kernel high-water mark cannot be reset).
    pub peak_rss_bytes: Option<u64>,
}

/// A completed trace: the per-round curve plus aggregated counters, phase
/// totals, the span forest, histograms and (optional) memory accounting,
/// carried *alongside* `Stats` (which stays unchanged).
#[derive(Debug, Clone, PartialEq)]
pub struct DecompositionTrace {
    /// Harness-chosen label (algorithm + graph, e.g. `"local_sync/filament"`).
    pub label: String,
    /// Rayon pool size the run was driven with, if labelled via
    /// [`set_pool_threads`].
    pub threads: Option<usize>,
    /// Per-round samples in record order.
    pub rounds: Vec<RoundSample>,
    /// Aggregated totals for every [`Counter`], in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Aggregated [`span`] time per phase, omitting phases that never ran.
    pub phase_totals: Vec<PhaseTime>,
    /// The flattened span forest (parents precede children; spans from the
    /// same thread are contiguous).
    pub spans: Vec<TraceSpan>,
    /// Span-tree nodes lost to the per-thread cap or left open at flush.
    pub spans_dropped: u64,
    /// Per-phase duration histograms and per-round shape histograms, in
    /// [`Phase::ALL`]-then-`round/*` order, empty ones omitted.
    pub histograms: Vec<TraceHistogram>,
    /// Allocator accounting, when [`alloc::CountingAlloc`] is installed.
    pub alloc: Option<AllocStats>,
    /// Wall-clock seconds between `begin_trace` and `end_trace`.
    pub wall_secs: f64,
}

impl DecompositionTrace {
    /// Aggregated total for counter `c` (0 if absent).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.iter().find(|(name, _)| *name == c.name()).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Serialise to the `dsd-trace/v2` JSON schema. Hand-rolled (this crate
    /// is dependency-free); `bench_report` re-parses the string with
    /// `serde_json` to embed it, and [`report::view_from_json`] validates it.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.rounds.len() * 96 + self.spans.len() * 80);
        out.push_str("{\"schema\":\"");
        out.push_str(TRACE_SCHEMA);
        out.push_str("\",\"label\":");
        json::write_string(&mut out, &self.label);
        out.push_str(",\"threads\":");
        match self.threads {
            Some(t) => out.push_str(&t.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"wall_secs\":");
        json::write_f64(&mut out, self.wall_secs);
        out.push_str(",\"rounds\":[");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_round(&mut out, r);
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"phase_totals\":[");
        write_phase_times(&mut out, &self.phase_totals);
        out.push_str("],\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"thread\":");
            out.push_str(&s.thread.to_string());
            out.push_str(",\"phase\":");
            json::write_string(&mut out, s.phase);
            out.push_str(",\"parent\":");
            match s.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"start_nanos\":");
            out.push_str(&s.start_nanos.to_string());
            out.push_str(",\"dur_nanos\":");
            out.push_str(&s.dur_nanos.to_string());
            out.push('}');
        }
        out.push_str("],\"spans_dropped\":");
        out.push_str(&self.spans_dropped.to_string());
        out.push_str(",\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"key\":");
            json::write_string(&mut out, h.key);
            out.push_str(",\"unit\":");
            json::write_string(&mut out, h.unit);
            out.push_str(",\"count\":");
            out.push_str(&h.hist.count().to_string());
            out.push_str(",\"sum\":");
            out.push_str(&h.hist.sum().to_string());
            out.push_str(",\"min\":");
            out.push_str(&h.hist.min().to_string());
            out.push_str(",\"max\":");
            out.push_str(&h.hist.max().to_string());
            out.push_str(",\"buckets\":[");
            for (j, (idx, count)) in h.hist.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&idx.to_string());
                out.push(',');
                out.push_str(&count.to_string());
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("],\"alloc\":");
        match &self.alloc {
            None => out.push_str("null"),
            Some(a) => {
                out.push_str("{\"allocs\":");
                out.push_str(&a.allocs.to_string());
                out.push_str(",\"bytes_allocated\":");
                out.push_str(&a.bytes_allocated.to_string());
                out.push_str(",\"peak_live_bytes\":");
                out.push_str(&a.peak_live_bytes.to_string());
                out.push_str(",\"live_bytes_end\":");
                out.push_str(&a.live_bytes_end.to_string());
                out.push_str(",\"peak_rss_bytes\":");
                match a.peak_rss_bytes {
                    Some(r) => out.push_str(&r.to_string()),
                    None => out.push_str("null"),
                }
                out.push('}');
            }
        }
        out.push('}');
        out
    }
}

/// Schema tag emitted by [`DecompositionTrace::to_json`] and accepted by
/// [`report::view_from_json`] (which also still accepts [`TRACE_SCHEMA_V1`]).
pub const TRACE_SCHEMA: &str = "dsd-trace/v2";

/// The PR 3–7 trace schema: flat phase totals, no spans/histograms/alloc.
/// Still parsed by [`report::view_from_json`] so committed v1 documents and
/// older bench reports stay renderable.
pub const TRACE_SCHEMA_V1: &str = "dsd-trace/v1";

fn write_round(out: &mut String, r: &RoundSample) {
    out.push_str("{\"round\":");
    out.push_str(&r.round.to_string());
    out.push_str(",\"frontier_len\":");
    out.push_str(&r.frontier_len.to_string());
    out.push_str(",\"edges_examined\":");
    out.push_str(&r.edges_examined.to_string());
    out.push_str(",\"items_removed\":");
    out.push_str(&r.items_removed.to_string());
    out.push_str(",\"alive_edges\":");
    match r.alive_edges {
        Some(a) => out.push_str(&a.to_string()),
        None => out.push_str("null"),
    }
    // A NaN/inf density or dual bound (e.g. a 0/0 ratio from an empty
    // incumbent) must serialise as `null`, never as a bare `NaN` token;
    // `write_f64` enforces that, and the parser maps the `null` back to
    // `None` on the way in.
    if let Some(d) = r.density {
        out.push_str(",\"density\":");
        json::write_f64(out, d);
    }
    if let Some(b) = r.dual_bound {
        out.push_str(",\"dual_bound\":");
        json::write_f64(out, b);
    }
    out.push_str(",\"phase_times\":[");
    write_phase_times(out, &r.phase_times);
    out.push_str("]}");
}

fn write_phase_times(out: &mut String, times: &[PhaseTime]) {
    for (i, pt) in times.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"phase\":");
        json::write_string(out, pt.phase);
        out.push_str(",\"secs\":");
        json::write_f64(out, pt.secs);
        out.push('}');
    }
}

// ---------------------------------------------------------------------------
// Trace lifecycle
// ---------------------------------------------------------------------------

struct ActiveTrace {
    label: String,
    threads: Option<usize>,
    rounds: Vec<RoundSample>,
    started: Instant,
    /// Per-round work-shape histograms, fed by `record_round` (single
    /// writer under the active-trace mutex, so trivially deterministic for
    /// deterministic round curves).
    round_frontier: hist::LogHistogram,
    round_items: hist::LogHistogram,
    round_edges: hist::LogHistogram,
    /// Allocator counters at `begin_trace`, when the counting allocator is
    /// installed.
    alloc_base: Option<alloc::AllocSnapshot>,
}

fn active() -> &'static Mutex<Option<ActiveTrace>> {
    static ACTIVE: OnceLock<Mutex<Option<ActiveTrace>>> = OnceLock::new();
    ACTIVE.get_or_init(|| Mutex::new(None))
}

/// Start a trace labelled `label`: resets every thread shard and replaces any
/// trace already active (whose partial data is dropped). No-op when the
/// recorder is disabled, so `begin_trace`/`end_trace` brackets can stay in
/// harness code unconditionally.
///
/// Must only be called while the engines are quiescent — shard resets race
/// with in-flight probe writes otherwise.
pub fn begin_trace(label: &str) {
    if !enabled() {
        return;
    }
    for shard in registry().lock().expect("telemetry registry poisoned").iter() {
        shard.reset();
    }
    // New generation: thread-local open-span stacks from any earlier trace
    // invalidate themselves lazily, and the trace clock restarts.
    TRACE_GEN.fetch_add(1, Ordering::Relaxed);
    TRACE_START_NANOS.store(now_nanos(), Ordering::Relaxed);
    let alloc_base = alloc::snapshot();
    if alloc_base.is_some() {
        alloc::reset_peak_to_live();
    }
    *active().lock().expect("telemetry trace poisoned") = Some(ActiveTrace {
        label: label.to_string(),
        threads: pool_threads(),
        rounds: Vec::new(),
        started: Instant::now(),
        round_frontier: hist::LogHistogram::new(),
        round_items: hist::LogHistogram::new(),
        round_edges: hist::LogHistogram::new(),
        alloc_base,
    });
}

/// Append one round sample to the active trace. No-op when the recorder is
/// disabled or no trace is active. Called once per engine round (never per
/// item), so the mutex here is off the hot path.
pub fn record_round(sample: RoundSample) {
    if !enabled() {
        return;
    }
    if let Some(trace) = active().lock().expect("telemetry trace poisoned").as_mut() {
        trace.round_frontier.record(sample.frontier_len as u64);
        trace.round_items.record(sample.items_removed as u64);
        trace.round_edges.record(sample.edges_examined);
        trace.rounds.push(sample);
    }
}

/// Number of rounds recorded so far on the active trace (0 when disabled or
/// inactive). Engines use this to derive the next round index without
/// threading their own counters through call layers.
pub fn rounds_recorded() -> usize {
    if !enabled() {
        return 0;
    }
    active().lock().expect("telemetry trace poisoned").as_ref().map_or(0, |t| t.rounds.len())
}

/// Finish the active trace: aggregate every thread shard into counter and
/// phase totals and return the completed [`DecompositionTrace`]. Returns
/// `None` when the recorder is disabled or no trace is active.
pub fn end_trace() -> Option<DecompositionTrace> {
    if !enabled() {
        return None;
    }
    let trace = active().lock().expect("telemetry trace poisoned").take()?;
    Some(aggregate_trace(&trace))
}

/// Aggregate the active trace into a [`DecompositionTrace`] *without*
/// consuming it: shards keep accumulating and a later [`end_trace`] (or the
/// next `snapshot_trace`) sees everything recorded so far. This is the
/// long-running daemon's `STATS` path — one trace spans the process
/// lifetime and each stats query reports the running totals.
///
/// Spans still open on worker threads at the moment of the snapshot are not
/// included (they are flushed to the shard only when their guard drops).
pub fn snapshot_trace() -> Option<DecompositionTrace> {
    if !enabled() {
        return None;
    }
    let guard = active().lock().expect("telemetry trace poisoned");
    guard.as_ref().map(aggregate_trace)
}

fn aggregate_trace(trace: &ActiveTrace) -> DecompositionTrace {
    let mut counter_totals = [0u64; Counter::COUNT];
    let mut phase_nanos = [0u64; Phase::COUNT];
    let mut phase_hists = vec![hist::LogHistogram::new(); Phase::COUNT];
    let registry = registry().lock().expect("telemetry registry poisoned");
    for shard in registry.iter() {
        for (total, cell) in counter_totals.iter_mut().zip(&shard.counters) {
            *total += cell.load(Ordering::Relaxed);
        }
        for (total, cell) in phase_nanos.iter_mut().zip(&shard.phase_nanos) {
            *total += cell.load(Ordering::Relaxed);
        }
        // Element-wise bucket addition is order-independent, so the merged
        // histograms do not depend on shard registration order.
        let shard_hists = shard.hists.lock().expect("telemetry histograms poisoned");
        for (merged, h) in phase_hists.iter_mut().zip(shard_hists.iter()) {
            merged.merge(h);
        }
    }
    let span_logs: Vec<_> =
        registry.iter().map(|s| s.spans.lock().expect("telemetry span log poisoned")).collect();
    let (spans, spans_dropped) = span_tree::flatten(span_logs.iter().map(|g| &**g));
    drop(span_logs);
    drop(registry);
    let counters = Counter::ALL.iter().map(|&c| (c.name(), counter_totals[c as usize])).collect();
    let phase_totals = Phase::ALL
        .iter()
        .filter(|&&p| phase_nanos[p as usize] > 0)
        .map(|&p| PhaseTime { phase: p.name(), secs: phase_nanos[p as usize] as f64 * 1e-9 })
        .collect();
    let mut histograms: Vec<TraceHistogram> = Phase::ALL
        .iter()
        .filter(|&&p| !phase_hists[p as usize].is_empty())
        .map(|&p| TraceHistogram {
            key: p.name(),
            unit: "nanos",
            hist: phase_hists[p as usize].clone(),
        })
        .collect();
    for (key, h) in [
        ("round/frontier_len", &trace.round_frontier),
        ("round/items_removed", &trace.round_items),
        ("round/edges_examined", &trace.round_edges),
    ] {
        if !h.is_empty() {
            histograms.push(TraceHistogram { key, unit: "count", hist: h.clone() });
        }
    }
    let alloc = match (trace.alloc_base, alloc::snapshot()) {
        (Some(base), Some(end)) => Some(AllocStats {
            allocs: end.allocs.saturating_sub(base.allocs),
            bytes_allocated: end.bytes_allocated.saturating_sub(base.bytes_allocated),
            peak_live_bytes: end.peak_live_bytes,
            live_bytes_end: end.live_bytes,
            peak_rss_bytes: alloc::peak_rss_bytes(),
        }),
        _ => None,
    };
    DecompositionTrace {
        label: trace.label.clone(),
        threads: trace.threads,
        rounds: trace.rounds.clone(),
        counters,
        phase_totals,
        spans,
        spans_dropped,
        histograms,
        alloc,
        wall_secs: trace.started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lifecycle tests share the one global recorder, so they must not
    /// interleave: a single lock serialises them.
    fn lifecycle_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn sample(round: u32, removed: usize) -> RoundSample {
        RoundSample {
            round,
            frontier_len: 10,
            edges_examined: 20,
            items_removed: removed,
            alive_edges: Some(100 - removed),
            phase_times: vec![PhaseTime { phase: Phase::Sweep.name(), secs: 0.25 }],
            ..RoundSample::default()
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _guard = lifecycle_lock();
        set_enabled(false);
        begin_trace("ignored");
        counter_add(Counter::CasRetries, 7);
        record_round(sample(0, 1));
        assert_eq!(rounds_recorded(), 0);
        assert!(end_trace().is_none());
    }

    #[test]
    fn trace_collects_rounds_counters_and_cross_thread_shards() {
        let _guard = lifecycle_lock();
        set_enabled(true);
        begin_trace("unit");
        counter_add(Counter::HUpdatesApplied, 3);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    counter_add(Counter::CasRetries, 5);
                    time_phase(Phase::Cascade, || std::hint::black_box(1 + 1));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        record_round(sample(0, 2));
        record_round(sample(1, 3));
        assert_eq!(rounds_recorded(), 2);
        let trace = end_trace().expect("trace active");
        set_enabled(false);
        assert_eq!(trace.label, "unit");
        assert_eq!(trace.rounds.len(), 2);
        assert_eq!(trace.rounds[1].round, 1);
        assert_eq!(trace.counter(Counter::HUpdatesApplied), 3);
        assert_eq!(trace.counter(Counter::CasRetries), 20);
        assert_eq!(trace.counter(Counter::ChunkMinRescans), 0);
        assert!(trace.phase_totals.iter().any(|pt| pt.phase == Phase::Cascade.name()));
        assert!(end_trace().is_none(), "trace consumed by first end_trace");
    }

    #[test]
    fn begin_trace_resets_shards_from_prior_trace() {
        let _guard = lifecycle_lock();
        set_enabled(true);
        begin_trace("first");
        counter_add(Counter::CompactionMoves, 99);
        let first = end_trace().expect("first trace");
        assert_eq!(first.counter(Counter::CompactionMoves), 99);
        begin_trace("second");
        let second = end_trace().expect("second trace");
        set_enabled(false);
        assert_eq!(second.counter(Counter::CompactionMoves), 0);
    }

    #[test]
    fn pool_threads_label_round_trips() {
        let _guard = lifecycle_lock();
        set_enabled(true);
        set_pool_threads(Some(4));
        begin_trace("pooled");
        let trace = end_trace().expect("trace");
        set_pool_threads(None);
        set_enabled(false);
        assert_eq!(trace.threads, Some(4));
        assert_eq!(pool_threads(), None);
    }

    #[test]
    fn to_json_round_trips_through_parser() {
        let trace = DecompositionTrace {
            label: "rt \"quoted\"\n".to_string(),
            threads: Some(2),
            rounds: vec![RoundSample {
                round: 0,
                frontier_len: 5,
                edges_examined: 12,
                items_removed: 4,
                alive_edges: None,
                density: Some(1.25),
                dual_bound: Some(1.5),
                phase_times: vec![PhaseTime { phase: Phase::ThresholdSelect.name(), secs: 0.5 }],
            }],
            counters: Counter::ALL.iter().map(|&c| (c.name(), c as u64)).collect(),
            phase_totals: vec![PhaseTime { phase: Phase::Cascade.name(), secs: 1.25 }],
            spans: vec![
                TraceSpan {
                    thread: 0,
                    phase: Phase::Cascade.name(),
                    parent: None,
                    start_nanos: 100,
                    dur_nanos: 2000,
                },
                TraceSpan {
                    thread: 0,
                    phase: Phase::Compact.name(),
                    parent: Some(0),
                    start_nanos: 300,
                    dur_nanos: 500,
                },
            ],
            spans_dropped: 1,
            histograms: vec![TraceHistogram {
                key: Phase::Cascade.name(),
                unit: "nanos",
                hist: {
                    let mut h = hist::LogHistogram::new();
                    h.record(2000);
                    h.record(500);
                    h
                },
            }],
            alloc: Some(AllocStats {
                allocs: 10,
                bytes_allocated: 4096,
                peak_live_bytes: 2048,
                live_bytes_end: 1024,
                peak_rss_bytes: None,
            }),
            wall_secs: 2.5,
        };
        let text = trace.to_json();
        let value = json::parse(&text).expect("trace JSON parses");
        let obj = value.as_object().expect("trace is an object");
        assert_eq!(obj.get("schema").and_then(json::Value::as_str), Some(TRACE_SCHEMA));
        assert_eq!(obj.get("label").and_then(json::Value::as_str), Some("rt \"quoted\"\n"));
        assert_eq!(obj.get("threads").and_then(json::Value::as_u64), Some(2));
        let rounds = obj.get("rounds").and_then(json::Value::as_array).expect("rounds array");
        assert_eq!(rounds.len(), 1);
        let round = rounds[0].as_object().expect("round object");
        assert!(round.get("alive_edges").expect("alive_edges").is_null());
        assert_eq!(round.get("edges_examined").and_then(json::Value::as_u64), Some(12));
        assert_eq!(round.get("density").and_then(json::Value::as_f64), Some(1.25));
        assert_eq!(round.get("dual_bound").and_then(json::Value::as_f64), Some(1.5));
        let counters =
            obj.get("counters").and_then(json::Value::as_object).expect("counters object");
        assert_eq!(
            counters.get(Counter::CasRetries.name()).and_then(json::Value::as_u64),
            Some(Counter::CasRetries as u64)
        );
        let spans = obj.get("spans").and_then(json::Value::as_array).expect("spans array");
        assert_eq!(spans.len(), 2);
        let child = spans[1].as_object().expect("span object");
        assert_eq!(child.get("parent").and_then(json::Value::as_u64), Some(0));
        assert_eq!(child.get("dur_nanos").and_then(json::Value::as_u64), Some(500));
        assert_eq!(obj.get("spans_dropped").and_then(json::Value::as_u64), Some(1));
        let hists = obj.get("histograms").and_then(json::Value::as_array).expect("histograms");
        let h0 = hists[0].as_object().expect("histogram object");
        assert_eq!(h0.get("unit").and_then(json::Value::as_str), Some("nanos"));
        assert_eq!(h0.get("count").and_then(json::Value::as_u64), Some(2));
        let buckets = h0.get("buckets").and_then(json::Value::as_array).expect("buckets");
        assert_eq!(buckets.len(), 2, "two samples in distinct buckets");
        let alloc = obj.get("alloc").and_then(json::Value::as_object).expect("alloc object");
        assert_eq!(alloc.get("bytes_allocated").and_then(json::Value::as_u64), Some(4096));
        assert!(alloc.get("peak_rss_bytes").expect("rss key").is_null());
    }

    #[test]
    fn non_finite_density_and_dual_bound_serialise_as_null() {
        let trace = DecompositionTrace {
            label: "nan".to_string(),
            threads: None,
            rounds: vec![RoundSample {
                round: 0,
                density: Some(f64::NAN),
                dual_bound: Some(f64::INFINITY),
                ..RoundSample::default()
            }],
            counters: Vec::new(),
            phase_totals: Vec::new(),
            spans: Vec::new(),
            spans_dropped: 0,
            histograms: Vec::new(),
            alloc: None,
            wall_secs: 0.0,
        };
        let text = trace.to_json();
        assert!(!text.contains("NaN") && !text.contains("inf"), "bare non-finite token in {text}");
        let value = json::parse(&text).expect("NaN/inf trace still parses as JSON");
        let round = value
            .as_object()
            .and_then(|o| o.get("rounds"))
            .and_then(json::Value::as_array)
            .and_then(|r| r[0].as_object())
            .expect("round object");
        assert!(round.get("density").expect("density emitted").is_null());
        assert!(round.get("dual_bound").expect("dual_bound emitted").is_null());
    }

    #[test]
    fn nested_spans_build_a_parent_child_tree() {
        let _guard = lifecycle_lock();
        set_enabled(true);
        begin_trace("spans");
        {
            let _outer = span(Phase::Init);
            {
                let _inner = span(Phase::Sweep);
                std::hint::black_box(1 + 1);
            }
            let d = record_span(Phase::Apply, Instant::now());
            assert!(d.as_nanos() < 1_000_000_000);
        }
        let trace = end_trace().expect("trace");
        set_enabled(false);
        assert_eq!(trace.spans_dropped, 0);
        assert_eq!(trace.spans.len(), 3);
        let outer = trace.spans.iter().position(|s| s.phase == Phase::Init.name()).unwrap();
        let inner = trace.spans.iter().position(|s| s.phase == Phase::Sweep.name()).unwrap();
        let explicit = trace.spans.iter().position(|s| s.phase == Phase::Apply.name()).unwrap();
        assert_eq!(trace.spans[outer].parent, None);
        assert_eq!(trace.spans[inner].parent, Some(outer as u32));
        assert_eq!(trace.spans[explicit].parent, Some(outer as u32));
        assert!(trace.spans[inner].start_nanos >= trace.spans[outer].start_nanos);
        assert!(trace.spans[outer].dur_nanos >= trace.spans[inner].dur_nanos);
        // Duration histograms picked the same three samples up.
        let init_hist = trace.histograms.iter().find(|h| h.key == Phase::Init.name());
        assert_eq!(init_hist.map(|h| h.hist.count()), Some(1));
        assert!(trace.histograms.iter().all(|h| !h.hist.is_empty()));
    }

    #[test]
    fn round_shape_histograms_follow_recorded_rounds() {
        let _guard = lifecycle_lock();
        set_enabled(true);
        begin_trace("rounds");
        record_round(sample(0, 2));
        record_round(sample(1, 3));
        let trace = end_trace().expect("trace");
        set_enabled(false);
        let items =
            trace.histograms.iter().find(|h| h.key == "round/items_removed").expect("items hist");
        assert_eq!(items.unit, "count");
        assert_eq!(items.hist.count(), 2);
        assert_eq!(items.hist.min(), 2);
        assert_eq!(items.hist.max(), 3);
        let frontier =
            trace.histograms.iter().find(|h| h.key == "round/frontier_len").expect("frontier hist");
        assert_eq!(frontier.hist.count(), 2);
        assert_eq!(frontier.hist.min(), 10);
    }
}
