//! Trace views and Table 6/7-style text rendering.
//!
//! A [`TraceView`] is the renderer-facing shape of a trace: it can be built
//! from an in-memory [`DecompositionTrace`](crate::DecompositionTrace) via
//! [`view`], or from parsed JSON via [`view_from_json`] — the latter doubles
//! as the trace schema validator used by `bench_report` and CI (a malformed
//! trace fails with a field-level error instead of rendering garbage).
//! `view_from_json` dispatches on the schema tag: `dsd-trace/v2` documents
//! carry spans, histograms and allocator stats; older `dsd-trace/v1`
//! documents (committed bench reports, archived traces) still parse, with
//! the flight-recorder sections empty.

use crate::json::{self, Value};
use crate::{hist, DecompositionTrace, TRACE_SCHEMA, TRACE_SCHEMA_V1};

/// One round of a [`TraceView`] (all counts widened to `u64`).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundView {
    /// Zero-based round index.
    pub round: u64,
    /// Work-frontier length at round start.
    pub frontier_len: u64,
    /// Adjacency entries examined by the round.
    pub edges_examined: u64,
    /// Items removed or changed by the round.
    pub items_removed: u64,
    /// Alive edges at round start (`None` for sweep-style engines).
    pub alive_edges: Option<u64>,
    /// Best-so-far density after the round (iterative engines only).
    pub density: Option<f64>,
    /// Load-vector dual upper bound after the round (iterative engines
    /// only).
    pub dual_bound: Option<f64>,
    /// Per-phase `(name, seconds)` breakdown for the round.
    pub phase_times: Vec<(String, f64)>,
}

/// One span of a [`TraceView`]'s flattened span forest.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanView {
    /// Recording shard index.
    pub thread: u64,
    /// Phase name.
    pub phase: String,
    /// Global index of the parent span, `None` for roots.
    pub parent: Option<u64>,
    /// Nanoseconds from trace begin to span open.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub dur_nanos: u64,
}

/// One histogram of a [`TraceView`], in the sparse bucket form the trace
/// JSON carries.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramView {
    /// Histogram key (phase name or `round/*`).
    pub key: String,
    /// Sample unit (`"nanos"` or `"count"`).
    pub unit: String,
    /// Total recorded samples.
    pub count: u64,
    /// Saturating sample sum.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty `(bucket_index, count)` pairs in index order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramView {
    /// Approximate quantile over the sparse buckets (same contract as
    /// [`hist::LogHistogram::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return hist::bucket_high(idx as usize)
                    .saturating_sub(1)
                    .min(self.max)
                    .max(self.min);
            }
        }
        self.max
    }
}

/// Allocator accounting of a [`TraceView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocView {
    /// Allocations during the trace.
    pub allocs: u64,
    /// Bytes handed out during the trace.
    pub bytes_allocated: u64,
    /// Live-byte high-water mark during the trace.
    pub peak_live_bytes: u64,
    /// Bytes live at trace end.
    pub live_bytes_end: u64,
    /// Kernel peak RSS, if sampled.
    pub peak_rss_bytes: Option<u64>,
}

/// Renderer-facing view of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceView {
    /// Trace label.
    pub label: String,
    /// Rayon pool size, if labelled.
    pub threads: Option<u64>,
    /// Wall-clock seconds for the whole trace.
    pub wall_secs: f64,
    /// Per-round samples.
    pub rounds: Vec<RoundView>,
    /// Aggregated counters in emission order.
    pub counters: Vec<(String, u64)>,
    /// Aggregated `(phase, seconds)` totals.
    pub phase_totals: Vec<(String, f64)>,
    /// Flattened span forest (empty for v1 documents).
    pub spans: Vec<SpanView>,
    /// Spans lost to the per-thread cap or left open at flush.
    pub spans_dropped: u64,
    /// Duration and round-shape histograms (empty for v1 documents).
    pub histograms: Vec<HistogramView>,
    /// Allocator accounting (absent for v1 documents and processes without
    /// the counting allocator).
    pub alloc: Option<AllocView>,
}

impl TraceView {
    /// Alive edges at the first recorded round, if the engine tracks them.
    pub fn first_alive(&self) -> Option<u64> {
        self.rounds.iter().find_map(|r| r.alive_edges)
    }

    /// Alive edges at the last recorded round, if the engine tracks them.
    pub fn last_alive(&self) -> Option<u64> {
        self.rounds.iter().rev().find_map(|r| r.alive_edges)
    }

    /// Sum of `edges_examined` over all rounds.
    pub fn total_examined(&self) -> u64 {
        self.rounds.iter().map(|r| r.edges_examined).sum()
    }

    /// Sum of `items_removed` over all rounds.
    pub fn total_removed(&self) -> u64 {
        self.rounds.iter().map(|r| r.items_removed).sum()
    }
}

/// Build a [`TraceView`] from an in-memory trace.
///
/// Non-finite `density`/`dual_bound` values are normalised to `None` here,
/// matching what the JSON round trip does (they serialise as `null`), so a
/// direct view and a view re-parsed from `to_json` always agree.
pub fn view(trace: &DecompositionTrace) -> TraceView {
    let finite = |v: Option<f64>| v.filter(|x| x.is_finite());
    TraceView {
        label: trace.label.clone(),
        threads: trace.threads.map(|t| t as u64),
        wall_secs: trace.wall_secs,
        rounds: trace
            .rounds
            .iter()
            .map(|r| RoundView {
                round: u64::from(r.round),
                frontier_len: r.frontier_len as u64,
                edges_examined: r.edges_examined,
                items_removed: r.items_removed as u64,
                alive_edges: r.alive_edges.map(|a| a as u64),
                density: finite(r.density),
                dual_bound: finite(r.dual_bound),
                phase_times: r
                    .phase_times
                    .iter()
                    .map(|pt| (pt.phase.to_string(), pt.secs))
                    .collect(),
            })
            .collect(),
        counters: trace.counters.iter().map(|(name, v)| (name.to_string(), *v)).collect(),
        phase_totals: trace.phase_totals.iter().map(|pt| (pt.phase.to_string(), pt.secs)).collect(),
        spans: trace
            .spans
            .iter()
            .map(|s| SpanView {
                thread: u64::from(s.thread),
                phase: s.phase.to_string(),
                parent: s.parent.map(u64::from),
                start_nanos: s.start_nanos,
                dur_nanos: s.dur_nanos,
            })
            .collect(),
        spans_dropped: trace.spans_dropped,
        histograms: trace
            .histograms
            .iter()
            .map(|h| HistogramView {
                key: h.key.to_string(),
                unit: h.unit.to_string(),
                count: h.hist.count(),
                sum: h.hist.sum(),
                min: h.hist.min(),
                max: h.hist.max(),
                buckets: h.hist.nonzero_buckets().map(|(i, c)| (i as u64, c)).collect(),
            })
            .collect(),
        alloc: trace.alloc.map(|a| AllocView {
            allocs: a.allocs,
            bytes_allocated: a.bytes_allocated,
            peak_live_bytes: a.peak_live_bytes,
            live_bytes_end: a.live_bytes_end,
            peak_rss_bytes: a.peak_rss_bytes,
        }),
    }
}

fn field<'a>(obj: &'a json::Object, key: &str, what: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("{what}: missing '{key}'"))
}

fn u64_field(obj: &json::Object, key: &str, what: &str) -> Result<u64, String> {
    field(obj, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}: '{key}' must be a non-negative integer"))
}

fn f64_field(obj: &json::Object, key: &str, what: &str) -> Result<f64, String> {
    field(obj, key, what)?.as_f64().ok_or_else(|| format!("{what}: '{key}' must be a number"))
}

fn phase_times_field(
    obj: &json::Object,
    key: &str,
    what: &str,
) -> Result<Vec<(String, f64)>, String> {
    let arr = field(obj, key, what)?
        .as_array()
        .ok_or_else(|| format!("{what}: '{key}' must be an array"))?;
    arr.iter()
        .map(|entry| {
            let o = entry
                .as_object()
                .ok_or_else(|| format!("{what}: '{key}' entries must be objects"))?;
            let phase = o
                .get("phase")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{what}: phase_times entry missing 'phase' string"))?;
            let secs = f64_field(o, "secs", what)?;
            if secs < 0.0 {
                return Err(format!("{what}: negative phase time for '{phase}'"));
            }
            Ok((phase.to_string(), secs))
        })
        .collect()
}

/// Validate a parsed `dsd-trace/v2` (or legacy `dsd-trace/v1`) document and
/// build its [`TraceView`].
///
/// Every field the schema promises is checked for presence and type, so this
/// is the guard CI uses: a trace that renders must be a trace every consumer
/// can rely on. v1 documents must *not* carry the v2 sections; v2 documents
/// must carry all of them (`alloc` may be `null`).
pub fn view_from_json(value: &Value) -> Result<TraceView, String> {
    let obj = value.as_object().ok_or("trace: document must be an object")?;
    let schema =
        field(obj, "schema", "trace")?.as_str().ok_or("trace: 'schema' must be a string")?;
    let v2 = match schema {
        s if s == TRACE_SCHEMA => true,
        s if s == TRACE_SCHEMA_V1 => false,
        got => {
            return Err(format!(
                "trace: schema mismatch: expected '{TRACE_SCHEMA}' or '{TRACE_SCHEMA_V1}', got '{got}'"
            ));
        }
    };
    let label = field(obj, "label", "trace")?
        .as_str()
        .ok_or("trace: 'label' must be a string")?
        .to_string();
    let threads = match field(obj, "threads", "trace")? {
        Value::Null => None,
        v => Some(v.as_u64().ok_or("trace: 'threads' must be null or a non-negative integer")?),
    };
    let wall_secs = f64_field(obj, "wall_secs", "trace")?;
    if wall_secs < 0.0 {
        return Err("trace: 'wall_secs' must be non-negative".to_string());
    }

    let rounds_value =
        field(obj, "rounds", "trace")?.as_array().ok_or("trace: 'rounds' must be an array")?;
    let mut rounds = Vec::with_capacity(rounds_value.len());
    for (i, entry) in rounds_value.iter().enumerate() {
        let what = format!("rounds[{i}]");
        let o = entry.as_object().ok_or_else(|| format!("{what}: must be an object"))?;
        let alive_edges = match field(o, "alive_edges", &what)? {
            Value::Null => None,
            v => Some(
                v.as_u64()
                    .ok_or_else(|| format!("{what}: 'alive_edges' must be null or integer"))?,
            ),
        };
        // Optional iterative-engine fields: absent on non-iterative traces.
        let optional_f64 = |key: &str| -> Result<Option<f64>, String> {
            match o.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(v) => {
                    v.as_f64().map(Some).ok_or_else(|| format!("{what}: '{key}' must be a number"))
                }
            }
        };
        rounds.push(RoundView {
            round: u64_field(o, "round", &what)?,
            frontier_len: u64_field(o, "frontier_len", &what)?,
            edges_examined: u64_field(o, "edges_examined", &what)?,
            items_removed: u64_field(o, "items_removed", &what)?,
            alive_edges,
            density: optional_f64("density")?,
            dual_bound: optional_f64("dual_bound")?,
            phase_times: phase_times_field(o, "phase_times", &what)?,
        });
    }

    let counters_obj = field(obj, "counters", "trace")?
        .as_object()
        .ok_or("trace: 'counters' must be an object")?;
    let mut counters = Vec::with_capacity(counters_obj.len());
    for (name, v) in counters_obj.iter() {
        let value = v
            .as_u64()
            .ok_or_else(|| format!("trace: counter '{name}' must be a non-negative integer"))?;
        counters.push((name.to_string(), value));
    }

    let phase_totals = phase_times_field(obj, "phase_totals", "trace")?;

    let (spans, spans_dropped, histograms, alloc) = if v2 {
        (
            spans_field(obj)?,
            u64_field(obj, "spans_dropped", "trace")?,
            histograms_field(obj)?,
            alloc_field(obj)?,
        )
    } else {
        for key in ["spans", "spans_dropped", "histograms", "alloc"] {
            if obj.get(key).is_some() {
                return Err(format!("trace: v1 document carries v2 field '{key}'"));
            }
        }
        (Vec::new(), 0, Vec::new(), None)
    };

    Ok(TraceView {
        label,
        threads,
        wall_secs,
        rounds,
        counters,
        phase_totals,
        spans,
        spans_dropped,
        histograms,
        alloc,
    })
}

fn spans_field(obj: &json::Object) -> Result<Vec<SpanView>, String> {
    let arr = field(obj, "spans", "trace")?.as_array().ok_or("trace: 'spans' must be an array")?;
    let mut spans = Vec::with_capacity(arr.len());
    for (i, entry) in arr.iter().enumerate() {
        let what = format!("spans[{i}]");
        let o = entry.as_object().ok_or_else(|| format!("{what}: must be an object"))?;
        let parent = match field(o, "parent", &what)? {
            Value::Null => None,
            v => {
                let p = v
                    .as_u64()
                    .ok_or_else(|| format!("{what}: 'parent' must be null or an index"))?;
                if p >= i as u64 {
                    return Err(format!("{what}: parent {p} does not precede the span"));
                }
                Some(p)
            }
        };
        spans.push(SpanView {
            thread: u64_field(o, "thread", &what)?,
            phase: field(o, "phase", &what)?
                .as_str()
                .ok_or_else(|| format!("{what}: 'phase' must be a string"))?
                .to_string(),
            parent,
            start_nanos: u64_field(o, "start_nanos", &what)?,
            dur_nanos: u64_field(o, "dur_nanos", &what)?,
        });
    }
    Ok(spans)
}

fn histograms_field(obj: &json::Object) -> Result<Vec<HistogramView>, String> {
    let arr = field(obj, "histograms", "trace")?
        .as_array()
        .ok_or("trace: 'histograms' must be an array")?;
    let mut hists = Vec::with_capacity(arr.len());
    for (i, entry) in arr.iter().enumerate() {
        let what = format!("histograms[{i}]");
        let o = entry.as_object().ok_or_else(|| format!("{what}: must be an object"))?;
        let buckets_arr = field(o, "buckets", &what)?
            .as_array()
            .ok_or_else(|| format!("{what}: 'buckets' must be an array"))?;
        let mut buckets = Vec::with_capacity(buckets_arr.len());
        let mut total = 0u64;
        let mut prev_idx: Option<u64> = None;
        for pair in buckets_arr {
            let p = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("{what}: buckets entries must be [index, count] pairs"))?;
            let idx = p[0]
                .as_u64()
                .filter(|&x| x <= hist::MAX_BUCKET_INDEX as u64)
                .ok_or_else(|| format!("{what}: bucket index out of range"))?;
            if prev_idx.is_some_and(|prev| idx <= prev) {
                return Err(format!("{what}: bucket indices must be strictly increasing"));
            }
            prev_idx = Some(idx);
            let count = p[1]
                .as_u64()
                .filter(|&c| c > 0)
                .ok_or_else(|| format!("{what}: bucket counts must be positive integers"))?;
            total += count;
            buckets.push((idx, count));
        }
        let count = u64_field(o, "count", &what)?;
        if count != total {
            return Err(format!("{what}: count {count} != bucket sum {total}"));
        }
        hists.push(HistogramView {
            key: field(o, "key", &what)?
                .as_str()
                .ok_or_else(|| format!("{what}: 'key' must be a string"))?
                .to_string(),
            unit: field(o, "unit", &what)?
                .as_str()
                .ok_or_else(|| format!("{what}: 'unit' must be a string"))?
                .to_string(),
            count,
            sum: u64_field(o, "sum", &what)?,
            min: u64_field(o, "min", &what)?,
            max: u64_field(o, "max", &what)?,
            buckets,
        });
    }
    Ok(hists)
}

fn alloc_field(obj: &json::Object) -> Result<Option<AllocView>, String> {
    match field(obj, "alloc", "trace")? {
        Value::Null => Ok(None),
        v => {
            let o = v.as_object().ok_or("trace: 'alloc' must be null or an object")?;
            let peak_rss_bytes = match field(o, "peak_rss_bytes", "alloc")? {
                Value::Null => None,
                v => Some(v.as_u64().ok_or("alloc: 'peak_rss_bytes' must be null or an integer")?),
            };
            Ok(Some(AllocView {
                allocs: u64_field(o, "allocs", "alloc")?,
                bytes_allocated: u64_field(o, "bytes_allocated", "alloc")?,
                peak_live_bytes: u64_field(o, "peak_live_bytes", "alloc")?,
                live_bytes_end: u64_field(o, "live_bytes_end", "alloc")?,
                peak_rss_bytes,
            }))
        }
    }
}

fn pad(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

fn pad_left(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

const LABEL_W: usize = 28;
const NUM_W: usize = 10;

/// Render the phase-breakdown summary table (Table 6-style): one row per
/// trace with pool size, round count, wall time and the percentage split
/// across phases.
pub fn render_phase_table(views: &[TraceView]) -> String {
    let mut out = String::new();
    out.push_str(&pad_left("trace", LABEL_W));
    for h in ["thr", "rounds", "wall_s"] {
        out.push_str(&pad(h, NUM_W));
    }
    out.push_str("  phase breakdown\n");
    for v in views {
        out.push_str(&pad_left(&v.label, LABEL_W));
        out.push_str(&pad(&v.threads.map_or_else(|| "-".to_string(), |t| t.to_string()), NUM_W));
        out.push_str(&pad(&v.rounds.len().to_string(), NUM_W));
        out.push_str(&pad(&format!("{:.4}", v.wall_secs), NUM_W));
        out.push_str("  ");
        let total: f64 = v.phase_totals.iter().map(|(_, s)| *s).sum();
        if total <= 0.0 {
            out.push_str("(no phase spans)");
        } else {
            let parts: Vec<String> = v
                .phase_totals
                .iter()
                .map(|(name, secs)| format!("{name} {:.1}%", 100.0 * secs / total))
                .collect();
            out.push_str(&parts.join(" | "));
        }
        out.push('\n');
    }
    out
}

/// Render the per-round curve of one trace (Table 7-style): frontier size,
/// work, removals and the alive-edge count per round. At most `max_rows`
/// rounds are printed; the middle of longer traces is elided.
pub fn render_round_curve(v: &TraceView, max_rows: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} (threads {}, {} rounds, {:.4}s)\n",
        v.label,
        v.threads.map_or_else(|| "-".to_string(), |t| t.to_string()),
        v.rounds.len(),
        v.wall_secs
    ));
    for h in ["round", "frontier", "examined", "removed", "alive"] {
        out.push_str(&pad(h, NUM_W));
    }
    out.push('\n');
    let n = v.rounds.len();
    let max_rows = max_rows.max(2);
    let (head, tail) = if n <= max_rows { (n, 0) } else { (max_rows / 2, max_rows - max_rows / 2) };
    fn emit(out: &mut String, r: &RoundView) {
        out.push_str(&pad(&r.round.to_string(), NUM_W));
        out.push_str(&pad(&r.frontier_len.to_string(), NUM_W));
        out.push_str(&pad(&r.edges_examined.to_string(), NUM_W));
        out.push_str(&pad(&r.items_removed.to_string(), NUM_W));
        out.push_str(&pad(
            &r.alive_edges.map_or_else(|| "-".to_string(), |a| a.to_string()),
            NUM_W,
        ));
        out.push('\n');
    }
    for r in &v.rounds[..head] {
        emit(&mut out, r);
    }
    if tail > 0 {
        out.push_str(&pad(&format!("... {} rounds elided ...", n - head - tail), NUM_W * 3));
        out.push('\n');
        for r in &v.rounds[n - tail..] {
            emit(&mut out, r);
        }
    }
    out
}

/// Render the non-zero counters of each trace, one line per trace.
pub fn render_counters(views: &[TraceView]) -> String {
    let mut out = String::new();
    for v in views {
        let nonzero: Vec<String> = v
            .counters
            .iter()
            .filter(|(_, value)| *value > 0)
            .map(|(name, value)| format!("{name}={value}"))
            .collect();
        out.push_str(&pad_left(&v.label, LABEL_W));
        out.push_str("  ");
        if nonzero.is_empty() {
            out.push_str("(all counters zero)");
        } else {
            out.push_str(&nonzero.join(" "));
        }
        out.push('\n');
    }
    out
}

fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

/// Render a flight-recorder span summary: span/dropped counts, tree depth,
/// and the top phases by summed span time. Empty string when the trace has
/// no spans (v1 documents).
pub fn render_span_summary(v: &TraceView) -> String {
    if v.spans.is_empty() && v.spans_dropped == 0 {
        return String::new();
    }
    let mut depth = vec![0u32; v.spans.len()];
    let mut max_depth = 0u32;
    let mut by_phase: Vec<(String, u64, u64)> = Vec::new(); // (phase, nanos, count)
    for (i, s) in v.spans.iter().enumerate() {
        if let Some(p) = s.parent {
            depth[i] = depth[p as usize] + 1;
            max_depth = max_depth.max(depth[i]);
        }
        match by_phase.iter_mut().find(|(name, _, _)| *name == s.phase) {
            Some((_, nanos, count)) => {
                *nanos = nanos.saturating_add(s.dur_nanos);
                *count += 1;
            }
            None => by_phase.push((s.phase.clone(), s.dur_nanos, 1)),
        }
    }
    by_phase.sort_by(|a, b| b.1.cmp(&a.1));
    let mut out = format!(
        "spans: {} recorded, {} dropped, max depth {}\n",
        v.spans.len(),
        v.spans_dropped,
        max_depth
    );
    for (phase, nanos, count) in by_phase.iter().take(8) {
        out.push_str(&pad_left(phase, LABEL_W));
        out.push_str(&pad(&count.to_string(), NUM_W));
        out.push_str(&pad(&format!("{:.4}s", *nanos as f64 * 1e-9), NUM_W + 2));
        out.push('\n');
    }
    out
}

/// Render the histogram table: one row per histogram with count, mean, p50,
/// p99 and max (durations shown in microseconds, counts raw). Empty string
/// when the trace carries no histograms.
pub fn render_histograms(v: &TraceView) -> String {
    if v.histograms.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str(&pad_left("histogram", LABEL_W));
    for h in ["unit", "count", "mean", "p50", "p99", "max"] {
        out.push_str(&pad(h, NUM_W));
    }
    out.push('\n');
    for h in &v.histograms {
        let scale = if h.unit == "nanos" { 1e-3 } else { 1.0 };
        let unit = if h.unit == "nanos" { "us" } else { &h.unit };
        let mean = if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 };
        out.push_str(&pad_left(&h.key, LABEL_W));
        out.push_str(&pad(unit, NUM_W));
        out.push_str(&pad(&h.count.to_string(), NUM_W));
        out.push_str(&pad(&format!("{:.1}", mean * scale), NUM_W));
        out.push_str(&pad(&format!("{:.1}", h.quantile(0.5) as f64 * scale), NUM_W));
        out.push_str(&pad(&format!("{:.1}", h.quantile(0.99) as f64 * scale), NUM_W));
        out.push_str(&pad(&format!("{:.1}", h.max as f64 * scale), NUM_W));
        out.push('\n');
    }
    out
}

/// Render the allocator accounting line, or an empty string when the trace
/// has none.
pub fn render_alloc(v: &TraceView) -> String {
    match &v.alloc {
        None => String::new(),
        Some(a) => {
            let rss = a.peak_rss_bytes.map_or_else(|| "-".to_string(), fmt_bytes);
            format!(
                "alloc: {} allocations, {} allocated, peak live {}, live at end {}, peak RSS {}\n",
                a.allocs,
                fmt_bytes(a.bytes_allocated),
                fmt_bytes(a.peak_live_bytes),
                fmt_bytes(a.live_bytes_end),
                rss
            )
        }
    }
}

/// Render a generic labelled matrix with the repo's experiment-table layout
/// (first column left-aligned at 12, remaining columns right-aligned at 16 —
/// the same grid as `dsd-bench`'s `print_row`). Used by the Table 6/7
/// experiments to print trace-derived iteration counts and sizes.
pub fn render_matrix(
    first_header: &str,
    headers: &[&str],
    rows: &[(String, Vec<String>)],
) -> String {
    let mut out = String::new();
    out.push_str(&pad_left(first_header, 12));
    for h in headers {
        out.push_str(&pad(h, 16));
    }
    out.push('\n');
    for (label, cells) in rows {
        out.push_str(&pad_left(label, 12));
        for cell in cells {
            out.push_str(&pad(cell, 16));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span_tree::TraceSpan;
    use crate::{AllocStats, Counter, Phase, PhaseTime, RoundSample, TraceHistogram};

    fn demo_trace() -> DecompositionTrace {
        let mut cascade_hist = hist::LogHistogram::new();
        cascade_hist.record(10_000_000);
        cascade_hist.record(20_000_000);
        DecompositionTrace {
            label: "demo/peel".to_string(),
            threads: Some(4),
            rounds: (0..3)
                .map(|i| RoundSample {
                    round: i,
                    frontier_len: 100 - i as usize,
                    edges_examined: 1000 + u64::from(i),
                    items_removed: 10 * (i as usize + 1),
                    alive_edges: Some(5000 - 100 * i as usize),
                    density: Some(1.0 + f64::from(i)),
                    dual_bound: Some(2.0 + f64::from(i)),
                    phase_times: vec![PhaseTime { phase: Phase::Cascade.name(), secs: 0.01 }],
                })
                .collect(),
            counters: Counter::ALL.iter().map(|&c| (c.name(), 2)).collect(),
            phase_totals: vec![
                PhaseTime { phase: Phase::ThresholdSelect.name(), secs: 0.25 },
                PhaseTime { phase: Phase::Cascade.name(), secs: 0.75 },
            ],
            spans: vec![
                TraceSpan {
                    thread: 0,
                    phase: Phase::Cascade.name(),
                    parent: None,
                    start_nanos: 0,
                    dur_nanos: 30_000_000,
                },
                TraceSpan {
                    thread: 0,
                    phase: Phase::Compact.name(),
                    parent: Some(0),
                    start_nanos: 1_000_000,
                    dur_nanos: 5_000_000,
                },
            ],
            spans_dropped: 0,
            histograms: vec![TraceHistogram {
                key: Phase::Cascade.name(),
                unit: "nanos",
                hist: cascade_hist,
            }],
            alloc: Some(AllocStats {
                allocs: 1234,
                bytes_allocated: 1 << 20,
                peak_live_bytes: 1 << 19,
                live_bytes_end: 1 << 18,
                peak_rss_bytes: Some(1 << 22),
            }),
            wall_secs: 1.0,
        }
    }

    #[test]
    fn view_and_json_view_agree() {
        let trace = demo_trace();
        let direct = view(&trace);
        let parsed = json::parse(&trace.to_json()).unwrap();
        let via_json = view_from_json(&parsed).unwrap();
        assert_eq!(direct, via_json);
        assert_eq!(direct.first_alive(), Some(5000));
        assert_eq!(direct.last_alive(), Some(4800));
        assert_eq!(direct.total_removed(), 60);
        assert_eq!(direct.total_examined(), 3003);
        assert_eq!(direct.spans.len(), 2);
        assert_eq!(direct.histograms[0].count, 2);
        assert_eq!(direct.alloc.map(|a| a.allocs), Some(1234));
    }

    #[test]
    fn view_and_json_view_agree_on_non_finite_fields() {
        // Satellite: a NaN density must become `None` both directly and
        // through the JSON round trip (where it serialises as `null`).
        let mut trace = demo_trace();
        trace.rounds[0].density = Some(f64::NAN);
        trace.rounds[1].dual_bound = Some(f64::NEG_INFINITY);
        let direct = view(&trace);
        assert_eq!(direct.rounds[0].density, None);
        assert_eq!(direct.rounds[1].dual_bound, None);
        let via_json = view_from_json(&json::parse(&trace.to_json()).unwrap()).unwrap();
        assert_eq!(direct, via_json);
    }

    #[test]
    fn v1_documents_still_parse_with_empty_recorder_sections() {
        let v1 = format!(
            "{{\"schema\":\"{}\",\"label\":\"legacy\",\"threads\":2,\"wall_secs\":0.5,\
             \"rounds\":[{{\"round\":0,\"frontier_len\":3,\"edges_examined\":7,\
             \"items_removed\":1,\"alive_edges\":null,\"phase_times\":[]}}],\
             \"counters\":{{\"cas_retries\":4}},\"phase_totals\":[]}}",
            crate::TRACE_SCHEMA_V1
        );
        let view = view_from_json(&json::parse(&v1).unwrap()).expect("v1 parses");
        assert_eq!(view.label, "legacy");
        assert_eq!(view.rounds.len(), 1);
        assert!(view.spans.is_empty());
        assert!(view.histograms.is_empty());
        assert!(view.alloc.is_none());
        assert_eq!(view.spans_dropped, 0);

        // A v1 document smuggling v2 sections is rejected.
        let smuggled = v1.replace("\"phase_totals\":[]", "\"phase_totals\":[],\"spans\":[]");
        let err = view_from_json(&json::parse(&smuggled).unwrap()).unwrap_err();
        assert!(err.contains("v1 document carries v2 field"), "{err}");
    }

    #[test]
    fn schema_validation_rejects_bad_documents() {
        let good = demo_trace().to_json();
        assert!(view_from_json(&json::parse(&good).unwrap()).is_ok());

        let wrong_schema = good.replace("dsd-trace/v2", "dsd-trace/v0");
        let err = view_from_json(&json::parse(&wrong_schema).unwrap()).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");

        let missing_rounds = good.replace("\"rounds\"", "\"wrongs\"");
        assert!(view_from_json(&json::parse(&missing_rounds).unwrap()).is_err());

        let bad_counter = good.replace("\"cas_retries\":2", "\"cas_retries\":-2");
        assert!(view_from_json(&json::parse(&bad_counter).unwrap()).is_err());

        // v2-specific structure errors.
        let missing_spans = good.replace("\"spans\"", "\"not_spans\"");
        assert!(view_from_json(&json::parse(&missing_spans).unwrap()).is_err());

        let forward_parent = good.replace("\"parent\":0", "\"parent\":7");
        let err = view_from_json(&json::parse(&forward_parent).unwrap()).unwrap_err();
        assert!(err.contains("does not precede"), "{err}");

        let bad_hist_count =
            good.replace("\"unit\":\"nanos\",\"count\":2", "\"unit\":\"nanos\",\"count\":3");
        let err = view_from_json(&json::parse(&bad_hist_count).unwrap()).unwrap_err();
        assert!(err.contains("bucket sum"), "{err}");

        assert!(view_from_json(&json::parse("[1,2]").unwrap()).is_err());
    }

    /// Doc-drift guard: every [`Counter`] variant must be renderable by this
    /// module and documented in the DESIGN.md §7 glossary. The `match` below
    /// is the compile-time half — adding a variant without extending it is a
    /// build error, and the loop is the content half.
    #[test]
    fn every_counter_is_rendered_and_documented() {
        // Compile-checked exhaustiveness: no wildcard arm. Extend this match
        // (and DESIGN.md §7) when adding a counter.
        fn glossaried(c: Counter) -> &'static str {
            match c {
                Counter::HUpdatesApplied => "h_updates_applied",
                Counter::FrontierEnqueues => "frontier_enqueues",
                Counter::ChunkMinRescans => "chunk_min_rescans",
                Counter::CacheBoundHits => "cache_bound_hits",
                Counter::CasRetries => "cas_retries",
                Counter::CompactionMoves => "compaction_moves",
                Counter::DecodeBytes => "decode_bytes",
                Counter::EncodeBytes => "encode_bytes",
                Counter::LoadsUpdated => "loads_updated",
                Counter::FrontierSize => "frontier_size",
                Counter::ServeQueries => "serve_queries",
                Counter::SnapshotInstalls => "snapshot_installs",
                Counter::ServeCacheHits => "serve_cache_hits",
            }
        }
        let design = include_str!("../../../DESIGN.md");
        let rendered = render_counters(std::slice::from_ref(&view(&demo_trace())));
        for &c in &Counter::ALL {
            assert_eq!(glossaried(c), c.name(), "test table drifted from Counter::name");
            assert!(
                rendered.contains(&format!("{}=", c.name())),
                "counter '{}' missing from render_counters output",
                c.name()
            );
            assert!(
                design.contains(&format!("`{}`", c.name())),
                "counter '{}' missing from the DESIGN.md §7 glossary",
                c.name()
            );
        }
    }

    #[test]
    fn renderers_produce_expected_shapes() {
        let v = view(&demo_trace());
        let table = render_phase_table(std::slice::from_ref(&v));
        assert!(table.contains("demo/peel"));
        assert!(table.contains("threshold-select 25.0%"));
        assert!(table.contains("peel-cascade 75.0%"));

        let curve = render_round_curve(&v, 10);
        assert_eq!(curve.lines().count(), 2 + 3, "header lines + 3 rounds");
        assert!(curve.contains("5000"));

        let counters = render_counters(std::slice::from_ref(&v));
        assert!(counters.contains("cas_retries=2"));

        let spans = render_span_summary(&v);
        assert!(spans.starts_with("spans: 2 recorded, 0 dropped, max depth 1"), "{spans}");
        assert!(spans.contains("peel-cascade"));

        let hists = render_histograms(&v);
        assert!(hists.contains("histogram"));
        assert!(hists.contains("peel-cascade"));
        assert!(hists.contains("us"), "nanos shown as microseconds");

        let alloc = render_alloc(&v);
        assert!(alloc.contains("1234 allocations"), "{alloc}");
        assert!(alloc.contains("1.00 MiB"), "{alloc}");

        let empty = TraceView {
            spans: Vec::new(),
            spans_dropped: 0,
            histograms: Vec::new(),
            alloc: None,
            ..v.clone()
        };
        assert_eq!(render_span_summary(&empty), "");
        assert_eq!(render_histograms(&empty), "");
        assert_eq!(render_alloc(&empty), "");

        let matrix = render_matrix(
            "dataset",
            &["PKC", "Local"],
            &[("web".to_string(), vec!["5".to_string(), "7".to_string()])],
        );
        assert!(matrix.starts_with("dataset"));
        assert!(matrix.contains("web"));
    }

    #[test]
    fn round_curve_elides_long_traces() {
        let mut trace = demo_trace();
        trace.rounds = (0..50)
            .map(|i| RoundSample {
                round: i,
                frontier_len: 1,
                edges_examined: 1,
                items_removed: 1,
                alive_edges: None,
                phase_times: Vec::new(),
                ..RoundSample::default()
            })
            .collect();
        let curve = render_round_curve(&view(&trace), 10);
        assert!(curve.contains("rounds elided"));
        assert!(curve.contains("49"), "last round printed");
    }
}
