//! Trace views and Table 6/7-style text rendering.
//!
//! A [`TraceView`] is the renderer-facing shape of a trace: it can be built
//! from an in-memory [`DecompositionTrace`](crate::DecompositionTrace) via
//! [`view`], or from parsed JSON via [`view_from_json`] — the latter doubles
//! as the `dsd-trace/v1` schema validator used by `bench_report` and CI (a
//! malformed trace fails with a field-level error instead of rendering
//! garbage).

use crate::json::{self, Value};
use crate::{DecompositionTrace, TRACE_SCHEMA};

/// One round of a [`TraceView`] (all counts widened to `u64`).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundView {
    /// Zero-based round index.
    pub round: u64,
    /// Work-frontier length at round start.
    pub frontier_len: u64,
    /// Adjacency entries examined by the round.
    pub edges_examined: u64,
    /// Items removed or changed by the round.
    pub items_removed: u64,
    /// Alive edges at round start (`None` for sweep-style engines).
    pub alive_edges: Option<u64>,
    /// Best-so-far density after the round (iterative engines only).
    pub density: Option<f64>,
    /// Load-vector dual upper bound after the round (iterative engines
    /// only).
    pub dual_bound: Option<f64>,
    /// Per-phase `(name, seconds)` breakdown for the round.
    pub phase_times: Vec<(String, f64)>,
}

/// Renderer-facing view of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceView {
    /// Trace label.
    pub label: String,
    /// Rayon pool size, if labelled.
    pub threads: Option<u64>,
    /// Wall-clock seconds for the whole trace.
    pub wall_secs: f64,
    /// Per-round samples.
    pub rounds: Vec<RoundView>,
    /// Aggregated counters in emission order.
    pub counters: Vec<(String, u64)>,
    /// Aggregated `(phase, seconds)` totals.
    pub phase_totals: Vec<(String, f64)>,
}

impl TraceView {
    /// Alive edges at the first recorded round, if the engine tracks them.
    pub fn first_alive(&self) -> Option<u64> {
        self.rounds.iter().find_map(|r| r.alive_edges)
    }

    /// Alive edges at the last recorded round, if the engine tracks them.
    pub fn last_alive(&self) -> Option<u64> {
        self.rounds.iter().rev().find_map(|r| r.alive_edges)
    }

    /// Sum of `edges_examined` over all rounds.
    pub fn total_examined(&self) -> u64 {
        self.rounds.iter().map(|r| r.edges_examined).sum()
    }

    /// Sum of `items_removed` over all rounds.
    pub fn total_removed(&self) -> u64 {
        self.rounds.iter().map(|r| r.items_removed).sum()
    }
}

/// Build a [`TraceView`] from an in-memory trace.
pub fn view(trace: &DecompositionTrace) -> TraceView {
    TraceView {
        label: trace.label.clone(),
        threads: trace.threads.map(|t| t as u64),
        wall_secs: trace.wall_secs,
        rounds: trace
            .rounds
            .iter()
            .map(|r| RoundView {
                round: u64::from(r.round),
                frontier_len: r.frontier_len as u64,
                edges_examined: r.edges_examined,
                items_removed: r.items_removed as u64,
                alive_edges: r.alive_edges.map(|a| a as u64),
                density: r.density,
                dual_bound: r.dual_bound,
                phase_times: r
                    .phase_times
                    .iter()
                    .map(|pt| (pt.phase.to_string(), pt.secs))
                    .collect(),
            })
            .collect(),
        counters: trace.counters.iter().map(|(name, v)| (name.to_string(), *v)).collect(),
        phase_totals: trace.phase_totals.iter().map(|pt| (pt.phase.to_string(), pt.secs)).collect(),
    }
}

fn field<'a>(obj: &'a json::Object, key: &str, what: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("{what}: missing '{key}'"))
}

fn u64_field(obj: &json::Object, key: &str, what: &str) -> Result<u64, String> {
    field(obj, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}: '{key}' must be a non-negative integer"))
}

fn f64_field(obj: &json::Object, key: &str, what: &str) -> Result<f64, String> {
    field(obj, key, what)?.as_f64().ok_or_else(|| format!("{what}: '{key}' must be a number"))
}

fn phase_times_field(
    obj: &json::Object,
    key: &str,
    what: &str,
) -> Result<Vec<(String, f64)>, String> {
    let arr = field(obj, key, what)?
        .as_array()
        .ok_or_else(|| format!("{what}: '{key}' must be an array"))?;
    arr.iter()
        .map(|entry| {
            let o = entry
                .as_object()
                .ok_or_else(|| format!("{what}: '{key}' entries must be objects"))?;
            let phase = o
                .get("phase")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{what}: phase_times entry missing 'phase' string"))?;
            let secs = f64_field(o, "secs", what)?;
            if secs < 0.0 {
                return Err(format!("{what}: negative phase time for '{phase}'"));
            }
            Ok((phase.to_string(), secs))
        })
        .collect()
}

/// Validate a parsed `dsd-trace/v1` document and build its [`TraceView`].
///
/// Every field the schema promises is checked for presence and type, so this
/// is the guard CI uses: a trace that renders must be a trace every consumer
/// can rely on.
pub fn view_from_json(value: &Value) -> Result<TraceView, String> {
    let obj = value.as_object().ok_or("trace: document must be an object")?;
    let schema =
        field(obj, "schema", "trace")?.as_str().ok_or("trace: 'schema' must be a string")?;
    if schema != TRACE_SCHEMA {
        return Err(format!("trace: schema mismatch: expected '{TRACE_SCHEMA}', got '{schema}'"));
    }
    let label = field(obj, "label", "trace")?
        .as_str()
        .ok_or("trace: 'label' must be a string")?
        .to_string();
    let threads = match field(obj, "threads", "trace")? {
        Value::Null => None,
        v => Some(v.as_u64().ok_or("trace: 'threads' must be null or a non-negative integer")?),
    };
    let wall_secs = f64_field(obj, "wall_secs", "trace")?;
    if wall_secs < 0.0 {
        return Err("trace: 'wall_secs' must be non-negative".to_string());
    }

    let rounds_value =
        field(obj, "rounds", "trace")?.as_array().ok_or("trace: 'rounds' must be an array")?;
    let mut rounds = Vec::with_capacity(rounds_value.len());
    for (i, entry) in rounds_value.iter().enumerate() {
        let what = format!("rounds[{i}]");
        let o = entry.as_object().ok_or_else(|| format!("{what}: must be an object"))?;
        let alive_edges = match field(o, "alive_edges", &what)? {
            Value::Null => None,
            v => Some(
                v.as_u64()
                    .ok_or_else(|| format!("{what}: 'alive_edges' must be null or integer"))?,
            ),
        };
        // Optional iterative-engine fields: absent on non-iterative traces.
        let optional_f64 = |key: &str| -> Result<Option<f64>, String> {
            match o.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(v) => {
                    v.as_f64().map(Some).ok_or_else(|| format!("{what}: '{key}' must be a number"))
                }
            }
        };
        rounds.push(RoundView {
            round: u64_field(o, "round", &what)?,
            frontier_len: u64_field(o, "frontier_len", &what)?,
            edges_examined: u64_field(o, "edges_examined", &what)?,
            items_removed: u64_field(o, "items_removed", &what)?,
            alive_edges,
            density: optional_f64("density")?,
            dual_bound: optional_f64("dual_bound")?,
            phase_times: phase_times_field(o, "phase_times", &what)?,
        });
    }

    let counters_obj = field(obj, "counters", "trace")?
        .as_object()
        .ok_or("trace: 'counters' must be an object")?;
    let mut counters = Vec::with_capacity(counters_obj.len());
    for (name, v) in counters_obj.iter() {
        let value = v
            .as_u64()
            .ok_or_else(|| format!("trace: counter '{name}' must be a non-negative integer"))?;
        counters.push((name.to_string(), value));
    }

    let phase_totals = phase_times_field(obj, "phase_totals", "trace")?;

    Ok(TraceView { label, threads, wall_secs, rounds, counters, phase_totals })
}

fn pad(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

fn pad_left(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

const LABEL_W: usize = 28;
const NUM_W: usize = 10;

/// Render the phase-breakdown summary table (Table 6-style): one row per
/// trace with pool size, round count, wall time and the percentage split
/// across phases.
pub fn render_phase_table(views: &[TraceView]) -> String {
    let mut out = String::new();
    out.push_str(&pad_left("trace", LABEL_W));
    for h in ["thr", "rounds", "wall_s"] {
        out.push_str(&pad(h, NUM_W));
    }
    out.push_str("  phase breakdown\n");
    for v in views {
        out.push_str(&pad_left(&v.label, LABEL_W));
        out.push_str(&pad(&v.threads.map_or_else(|| "-".to_string(), |t| t.to_string()), NUM_W));
        out.push_str(&pad(&v.rounds.len().to_string(), NUM_W));
        out.push_str(&pad(&format!("{:.4}", v.wall_secs), NUM_W));
        out.push_str("  ");
        let total: f64 = v.phase_totals.iter().map(|(_, s)| *s).sum();
        if total <= 0.0 {
            out.push_str("(no phase spans)");
        } else {
            let parts: Vec<String> = v
                .phase_totals
                .iter()
                .map(|(name, secs)| format!("{name} {:.1}%", 100.0 * secs / total))
                .collect();
            out.push_str(&parts.join(" | "));
        }
        out.push('\n');
    }
    out
}

/// Render the per-round curve of one trace (Table 7-style): frontier size,
/// work, removals and the alive-edge count per round. At most `max_rows`
/// rounds are printed; the middle of longer traces is elided.
pub fn render_round_curve(v: &TraceView, max_rows: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} (threads {}, {} rounds, {:.4}s)\n",
        v.label,
        v.threads.map_or_else(|| "-".to_string(), |t| t.to_string()),
        v.rounds.len(),
        v.wall_secs
    ));
    for h in ["round", "frontier", "examined", "removed", "alive"] {
        out.push_str(&pad(h, NUM_W));
    }
    out.push('\n');
    let n = v.rounds.len();
    let max_rows = max_rows.max(2);
    let (head, tail) = if n <= max_rows { (n, 0) } else { (max_rows / 2, max_rows - max_rows / 2) };
    fn emit(out: &mut String, r: &RoundView) {
        out.push_str(&pad(&r.round.to_string(), NUM_W));
        out.push_str(&pad(&r.frontier_len.to_string(), NUM_W));
        out.push_str(&pad(&r.edges_examined.to_string(), NUM_W));
        out.push_str(&pad(&r.items_removed.to_string(), NUM_W));
        out.push_str(&pad(
            &r.alive_edges.map_or_else(|| "-".to_string(), |a| a.to_string()),
            NUM_W,
        ));
        out.push('\n');
    }
    for r in &v.rounds[..head] {
        emit(&mut out, r);
    }
    if tail > 0 {
        out.push_str(&pad(&format!("... {} rounds elided ...", n - head - tail), NUM_W * 3));
        out.push('\n');
        for r in &v.rounds[n - tail..] {
            emit(&mut out, r);
        }
    }
    out
}

/// Render the non-zero counters of each trace, one line per trace.
pub fn render_counters(views: &[TraceView]) -> String {
    let mut out = String::new();
    for v in views {
        let nonzero: Vec<String> = v
            .counters
            .iter()
            .filter(|(_, value)| *value > 0)
            .map(|(name, value)| format!("{name}={value}"))
            .collect();
        out.push_str(&pad_left(&v.label, LABEL_W));
        out.push_str("  ");
        if nonzero.is_empty() {
            out.push_str("(all counters zero)");
        } else {
            out.push_str(&nonzero.join(" "));
        }
        out.push('\n');
    }
    out
}

/// Render a generic labelled matrix with the repo's experiment-table layout
/// (first column left-aligned at 12, remaining columns right-aligned at 16 —
/// the same grid as `dsd-bench`'s `print_row`). Used by the Table 6/7
/// experiments to print trace-derived iteration counts and sizes.
pub fn render_matrix(
    first_header: &str,
    headers: &[&str],
    rows: &[(String, Vec<String>)],
) -> String {
    let mut out = String::new();
    out.push_str(&pad_left(first_header, 12));
    for h in headers {
        out.push_str(&pad(h, 16));
    }
    out.push('\n');
    for (label, cells) in rows {
        out.push_str(&pad_left(label, 12));
        for cell in cells {
            out.push_str(&pad(cell, 16));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, Phase, PhaseTime, RoundSample};

    fn demo_trace() -> DecompositionTrace {
        DecompositionTrace {
            label: "demo/peel".to_string(),
            threads: Some(4),
            rounds: (0..3)
                .map(|i| RoundSample {
                    round: i,
                    frontier_len: 100 - i as usize,
                    edges_examined: 1000 + u64::from(i),
                    items_removed: 10 * (i as usize + 1),
                    alive_edges: Some(5000 - 100 * i as usize),
                    density: Some(1.0 + f64::from(i)),
                    dual_bound: Some(2.0 + f64::from(i)),
                    phase_times: vec![PhaseTime { phase: Phase::Cascade.name(), secs: 0.01 }],
                })
                .collect(),
            counters: Counter::ALL.iter().map(|&c| (c.name(), 2)).collect(),
            phase_totals: vec![
                PhaseTime { phase: Phase::ThresholdSelect.name(), secs: 0.25 },
                PhaseTime { phase: Phase::Cascade.name(), secs: 0.75 },
            ],
            wall_secs: 1.0,
        }
    }

    #[test]
    fn view_and_json_view_agree() {
        let trace = demo_trace();
        let direct = view(&trace);
        let parsed = json::parse(&trace.to_json()).unwrap();
        let via_json = view_from_json(&parsed).unwrap();
        assert_eq!(direct, via_json);
        assert_eq!(direct.first_alive(), Some(5000));
        assert_eq!(direct.last_alive(), Some(4800));
        assert_eq!(direct.total_removed(), 60);
        assert_eq!(direct.total_examined(), 3003);
    }

    #[test]
    fn schema_validation_rejects_bad_documents() {
        let good = demo_trace().to_json();
        assert!(view_from_json(&json::parse(&good).unwrap()).is_ok());

        let wrong_schema = good.replace("dsd-trace/v1", "dsd-trace/v0");
        let err = view_from_json(&json::parse(&wrong_schema).unwrap()).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");

        let missing_rounds = good.replace("\"rounds\"", "\"wrongs\"");
        assert!(view_from_json(&json::parse(&missing_rounds).unwrap()).is_err());

        let bad_counter = good.replace("\"cas_retries\":2", "\"cas_retries\":-2");
        assert!(view_from_json(&json::parse(&bad_counter).unwrap()).is_err());

        assert!(view_from_json(&json::parse("[1,2]").unwrap()).is_err());
    }

    #[test]
    fn renderers_produce_expected_shapes() {
        let v = view(&demo_trace());
        let table = render_phase_table(std::slice::from_ref(&v));
        assert!(table.contains("demo/peel"));
        assert!(table.contains("threshold-select 25.0%"));
        assert!(table.contains("peel-cascade 75.0%"));

        let curve = render_round_curve(&v, 10);
        assert_eq!(curve.lines().count(), 2 + 3, "header lines + 3 rounds");
        assert!(curve.contains("5000"));

        let counters = render_counters(std::slice::from_ref(&v));
        assert!(counters.contains("cas_retries=2"));

        let matrix = render_matrix(
            "dataset",
            &["PKC", "Local"],
            &[("web".to_string(), vec!["5".to_string(), "7".to_string()])],
        );
        assert!(matrix.starts_with("dataset"));
        assert!(matrix.contains("web"));
    }

    #[test]
    fn round_curve_elides_long_traces() {
        let mut trace = demo_trace();
        trace.rounds = (0..50)
            .map(|i| RoundSample {
                round: i,
                frontier_len: 1,
                edges_examined: 1,
                items_removed: 1,
                alive_edges: None,
                phase_times: Vec::new(),
                ..RoundSample::default()
            })
            .collect();
        let curve = render_round_curve(&view(&trace), 10);
        assert!(curve.contains("rounds elided"));
        assert!(curve.contains("49"), "last round printed");
    }
}
