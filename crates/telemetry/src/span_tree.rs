//! Hierarchical span trees for the flight recorder.
//!
//! Every [`crate::span`] guard (and every explicit [`crate::record_span`])
//! appends one node to the calling thread's span log: phase, parent (the
//! innermost span open on the same thread at open time), start offset from
//! `begin_trace`, and duration. Nodes from all threads are flattened into a
//! single [`TraceSpan`] vector at flush, with parent links remapped to global
//! indices — a forest, one tree per outermost span per thread.
//!
//! The log is bounded ([`MAX_SPANS_PER_THREAD`]); past the cap, spans still
//! time their flat phase buckets but stop growing the tree, and the dropped
//! count is carried into the trace so truncation is visible, never silent.

/// Hard cap on tree nodes per thread per trace (~48 MiB worst case across a
/// 16-thread pool). Flat phase totals keep accumulating past the cap.
pub const MAX_SPANS_PER_THREAD: usize = 1 << 20;

/// Sentinel duration marking a span that has been opened but not yet closed.
pub(crate) const OPEN_SENTINEL: u64 = u64::MAX;

/// One node recorded in a thread-local span log. Parent indices are local to
/// the owning thread's log until [`flatten`] remaps them.
#[derive(Debug, Clone)]
pub(crate) struct LocalSpan {
    pub(crate) phase: crate::Phase,
    pub(crate) parent: Option<u32>,
    pub(crate) start_nanos: u64,
    pub(crate) dur_nanos: u64,
}

/// A thread's span log for the current trace, plus its truncation count.
#[derive(Debug, Default)]
pub(crate) struct SpanLog {
    pub(crate) nodes: Vec<LocalSpan>,
    pub(crate) dropped: u64,
}

impl SpanLog {
    pub(crate) fn reset(&mut self) {
        self.nodes.clear();
        self.dropped = 0;
    }
}

/// One completed span in a flushed trace. `parent` is a global index into the
/// trace's span vector; spans from the same thread are contiguous and
/// parents always precede children.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Flush-order index of the recording thread's shard (not an OS tid).
    pub thread: u32,
    /// Phase name (one of [`crate::Phase::name`]'s values).
    pub phase: &'static str,
    /// Global index of the enclosing span, `None` for roots.
    pub parent: Option<u32>,
    /// Nanoseconds from `begin_trace` to span open.
    pub start_nanos: u64,
    /// Nanoseconds from span open to span close.
    pub dur_nanos: u64,
}

/// Flatten per-thread span logs into one global vector, remapping local
/// parent indices by each thread's base offset. Unclosed spans (duration
/// still [`OPEN_SENTINEL`]) are skipped; because children close before their
/// parents, skipping an open span never orphans a closed child.
pub(crate) fn flatten<'a>(logs: impl Iterator<Item = &'a SpanLog>) -> (Vec<TraceSpan>, u64) {
    let mut out = Vec::new();
    let mut dropped = 0u64;
    for (thread, log) in logs.enumerate() {
        dropped += log.dropped;
        // Remap: local index -> global index (u32::MAX for skipped/open).
        let mut remap = vec![u32::MAX; log.nodes.len()];
        for (local, node) in log.nodes.iter().enumerate() {
            if node.dur_nanos == OPEN_SENTINEL {
                dropped += 1;
                continue;
            }
            let parent = node.parent.and_then(|p| {
                let g = remap[p as usize];
                (g != u32::MAX).then_some(g)
            });
            remap[local] = out.len() as u32;
            out.push(TraceSpan {
                thread: thread as u32,
                phase: node.phase.name(),
                parent,
                start_nanos: node.start_nanos,
                dur_nanos: node.dur_nanos,
            });
        }
    }
    (out, dropped)
}

/// Self time per span: duration minus the summed durations of direct
/// children (clamped at zero in case of clock-granularity overshoot). Works
/// on any span slice whose parents precede children, which [`flatten`]
/// guarantees.
pub fn self_times(spans: &[TraceSpan]) -> Vec<u64> {
    let mut child_nanos = vec![0u64; spans.len()];
    for s in spans {
        if let Some(p) = s.parent {
            child_nanos[p as usize] = child_nanos[p as usize].saturating_add(s.dur_nanos);
        }
    }
    spans.iter().zip(&child_nanos).map(|(s, &c)| s.dur_nanos.saturating_sub(c)).collect()
}

/// Depth of each span (roots are depth 0), plus the maximum depth.
pub fn depths(spans: &[TraceSpan]) -> (Vec<u32>, u32) {
    let mut depth = vec![0u32; spans.len()];
    let mut max = 0u32;
    for (i, s) in spans.iter().enumerate() {
        if let Some(p) = s.parent {
            depth[i] = depth[p as usize] + 1;
            max = max.max(depth[i]);
        }
    }
    (depth, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn local(phase: Phase, parent: Option<u32>, start: u64, dur: u64) -> LocalSpan {
        LocalSpan { phase, parent, start_nanos: start, dur_nanos: dur }
    }

    #[test]
    fn flatten_remaps_parents_across_threads() {
        let t0 = SpanLog {
            nodes: vec![local(Phase::Init, None, 0, 100), local(Phase::Sweep, Some(0), 10, 50)],
            dropped: 0,
        };
        let t1 = SpanLog {
            nodes: vec![local(Phase::Cascade, None, 5, 80), local(Phase::Compact, Some(0), 20, 30)],
            dropped: 2,
        };
        let (spans, dropped) = flatten([&t0, &t1].into_iter());
        assert_eq!(dropped, 2);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].thread, 1);
        assert_eq!(spans[2].parent, None);
        assert_eq!(spans[3].parent, Some(2), "thread-1 parent remapped by base offset");
    }

    #[test]
    fn flatten_skips_open_spans_and_counts_them() {
        let t0 = SpanLog {
            nodes: vec![
                local(Phase::Init, None, 0, OPEN_SENTINEL),
                local(Phase::Sweep, Some(0), 10, 50),
            ],
            dropped: 0,
        };
        let (spans, dropped) = flatten([&t0].into_iter());
        assert_eq!(dropped, 1);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, Phase::Sweep.name());
        assert_eq!(spans[0].parent, None, "open parent link severed, child kept as root");
    }

    #[test]
    fn self_times_subtract_direct_children() {
        let t0 = SpanLog {
            nodes: vec![
                local(Phase::Init, None, 0, 100),
                local(Phase::Sweep, Some(0), 10, 30),
                local(Phase::Apply, Some(0), 50, 40),
                local(Phase::Frontier, Some(2), 60, 25),
            ],
            dropped: 0,
        };
        let (spans, _) = flatten([&t0].into_iter());
        let own = self_times(&spans);
        assert_eq!(own, vec![30, 30, 15, 25]);
        let (depth, max) = depths(&spans);
        assert_eq!(depth, vec![0, 1, 1, 2]);
        assert_eq!(max, 2);
    }
}
