//! Optional counting global allocator + peak-RSS sampling.
//!
//! [`CountingAlloc`] wraps the system allocator and maintains four relaxed
//! process-global counters: allocation count, cumulative allocated bytes,
//! live bytes, and the live high-water mark. Binaries opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: dsd_telemetry::alloc::CountingAlloc =
//!     dsd_telemetry::alloc::CountingAlloc::new();
//! ```
//!
//! (the `dsd` CLI does; the bench harness deliberately does not, so its
//! timings stay allocator-pristine). The trace lifecycle snapshots the
//! counters at `begin_trace`/`end_trace` and attaches the deltas — plus the
//! kernel-reported peak RSS on Linux — to the flushed trace, so `dsd
//! profile` memory numbers come from the allocator actually used by the run,
//! not from sampling heuristics.
//!
//! Each allocation costs four relaxed atomic RMWs on top of the system
//! allocator; nothing here is gated on the recorder flag because a
//! high-water mark must observe every allocation, including before a trace
//! begins. When the allocator is *not* installed, [`snapshot`] returns
//! `None` and traces carry no memory section.
//!
//! This is the crate's single unsafe island (the `GlobalAlloc` impl —
//! delegation plus counter updates); the rest of the crate stays
//! `deny(unsafe_code)`.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

#[inline]
fn note_alloc(n: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(n, Ordering::Relaxed);
    let live = LIVE.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn note_free(n: u64) {
    FREES.fetch_add(1, Ordering::Relaxed);
    LIVE.fetch_sub(n, Ordering::Relaxed);
}

/// A counting wrapper around [`std::alloc::System`]. See the module docs.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Construct the allocator (const, so it can be a `static`).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: every method delegates to `System` with the caller's layout
// unchanged; the counter updates never touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        note_free(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            note_free(layout.size() as u64);
            note_alloc(new_size as u64);
        }
        p
    }
}

/// A point-in-time reading of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations performed since process start.
    pub allocs: u64,
    /// Deallocations performed since process start.
    pub frees: u64,
    /// Cumulative bytes handed out since process start.
    pub bytes_allocated: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// Live-byte high-water mark (since process start or the last
    /// [`reset_peak_to_live`]).
    pub peak_live_bytes: u64,
}

/// Whether a [`CountingAlloc`] is installed as the global allocator,
/// inferred from the counters having moved (any Rust program allocates
/// during startup, so this is reliable by the time user code runs).
pub fn installed() -> bool {
    ALLOCS.load(Ordering::Relaxed) > 0
}

/// Read the counters, or `None` when no counting allocator is installed.
pub fn snapshot() -> Option<AllocSnapshot> {
    if !installed() {
        return None;
    }
    Some(AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes_allocated: BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_live_bytes: PEAK.load(Ordering::Relaxed),
    })
}

/// Restart the high-water mark from the current live-byte count, so a trace
/// reports the peak reached *during* the trace rather than the process-wide
/// one. Called by `begin_trace` while the engines are quiescent; a racing
/// allocation can only make the reported peak conservative (higher).
pub fn reset_peak_to_live() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Kernel-reported peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`). `None` off Linux or if the field is missing.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_alloc_free_and_peak() {
        // Drive the bookkeeping directly (the counting allocator itself is
        // not installed in unit-test binaries). This marks the counters as
        // "moved", so read deltas rather than absolutes.
        let before = AllocSnapshot {
            allocs: ALLOCS.load(Ordering::Relaxed),
            frees: FREES.load(Ordering::Relaxed),
            bytes_allocated: BYTES.load(Ordering::Relaxed),
            live_bytes: LIVE.load(Ordering::Relaxed),
            peak_live_bytes: PEAK.load(Ordering::Relaxed),
        };
        note_alloc(1000);
        note_alloc(500);
        note_free(500);
        let after = snapshot().expect("counters moved, snapshot available");
        assert_eq!(after.allocs - before.allocs, 2);
        assert_eq!(after.frees - before.frees, 1);
        assert_eq!(after.bytes_allocated - before.bytes_allocated, 1500);
        assert_eq!(after.live_bytes - before.live_bytes, 1000);
        assert!(after.peak_live_bytes >= before.live_bytes + 1500);
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(rss) = peak_rss_bytes() {
            // Any live Rust process has touched at least a few pages.
            assert!(rss > 4096, "peak RSS {rss} implausibly small");
        } else {
            assert!(!cfg!(target_os = "linux"), "Linux must report VmHWM");
        }
    }
}
