//! Trace exporters: chrome://tracing trace-event JSON and folded stacks.
//!
//! Both exporters read only the flushed [`DecompositionTrace`], so they work
//! on freshly recorded traces and on traces re-loaded from `dsd-trace/v2`
//! JSON alike. The chrome exporter emits the trace-event "JSON object
//! format" (a `traceEvents` array of complete `"X"` events, timestamps in
//! microseconds) which chrome://tracing and Perfetto load directly; the
//! folded exporter emits one `path;to;span weight` line per distinct stack,
//! weighted by *self* time in nanoseconds, ready for `flamegraph.pl` or
//! speedscope.

use crate::json;
use crate::span_tree::{self_times, TraceSpan};
use crate::DecompositionTrace;
use std::collections::BTreeMap;

fn push_us(out: &mut String, nanos: u64) {
    // Microseconds with nanosecond precision; trailing zeros are harmless.
    json::write_f64(out, nanos as f64 / 1000.0);
}

/// Render `trace` as chrome://tracing trace-event JSON.
///
/// One `"X"` (complete) event per span, `tid` = recording shard index,
/// metadata events naming the process after the trace label. Traces with no
/// spans still produce a loadable document with an empty event list.
pub fn chrome_trace_json(trace: &DecompositionTrace) -> String {
    let mut out = String::with_capacity(128 + trace.spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":");
    json::write_string(&mut out, &trace.label);
    out.push_str("}}");
    let mut threads: Vec<u32> = trace.spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in &threads {
        out.push_str(",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
        out.push_str(&t.to_string());
        out.push_str(",\"args\":{\"name\":\"shard ");
        out.push_str(&t.to_string());
        out.push_str("\"}}");
    }
    for s in &trace.spans {
        out.push_str(",{\"name\":");
        json::write_string(&mut out, s.phase);
        out.push_str(",\"cat\":\"dsd\",\"ph\":\"X\",\"ts\":");
        push_us(&mut out, s.start_nanos);
        out.push_str(",\"dur\":");
        push_us(&mut out, s.dur_nanos);
        out.push_str(",\"pid\":0,\"tid\":");
        out.push_str(&s.thread.to_string());
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":");
    json::write_string(&mut out, crate::TRACE_SCHEMA);
    out.push_str(",\"label\":");
    json::write_string(&mut out, &trace.label);
    out.push_str(",\"wall_secs\":");
    json::write_f64(&mut out, trace.wall_secs);
    out.push_str("}}");
    out
}

fn stack_path(spans: &[TraceSpan], mut idx: usize) -> String {
    let mut parts = vec![spans[idx].phase];
    while let Some(p) = spans[idx].parent {
        idx = p as usize;
        parts.push(spans[idx].phase);
    }
    parts.reverse();
    parts.join(";")
}

/// Render `trace`'s span forest as folded stacks: one
/// `root;child;leaf <self-nanos>` line per distinct path, aggregated across
/// threads and sorted lexicographically (deterministic output for
/// deterministic span multisets). Zero-self-time paths are kept — a span
/// fully covered by children is still part of the call structure.
pub fn folded_stacks(trace: &DecompositionTrace) -> String {
    let own = self_times(&trace.spans);
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (i, _) in trace.spans.iter().enumerate() {
        let path = stack_path(&trace.spans, i);
        *agg.entry(path).or_insert(0) += own[i];
    }
    let mut out = String::new();
    for (path, nanos) in agg {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&nanos.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Phase, TRACE_SCHEMA};

    fn demo_trace() -> DecompositionTrace {
        DecompositionTrace {
            label: "export/demo".to_string(),
            threads: Some(2),
            rounds: Vec::new(),
            counters: Vec::new(),
            phase_totals: Vec::new(),
            spans: vec![
                TraceSpan {
                    thread: 0,
                    phase: Phase::Init.name(),
                    parent: None,
                    start_nanos: 0,
                    dur_nanos: 1_000_000,
                },
                TraceSpan {
                    thread: 0,
                    phase: Phase::Sweep.name(),
                    parent: Some(0),
                    start_nanos: 100_000,
                    dur_nanos: 600_000,
                },
                TraceSpan {
                    thread: 1,
                    phase: Phase::Sweep.name(),
                    parent: None,
                    start_nanos: 50_000,
                    dur_nanos: 400_000,
                },
            ],
            spans_dropped: 0,
            histograms: Vec::new(),
            alloc: None,
            wall_secs: 0.002,
        }
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let text = chrome_trace_json(&demo_trace());
        let doc = json::parse(&text).expect("chrome trace parses");
        let obj = doc.as_object().expect("object");
        let events = obj.get("traceEvents").and_then(json::Value::as_array).expect("events");
        // 1 process_name + 2 thread_name + 3 spans.
        assert_eq!(events.len(), 6);
        let span_events: Vec<_> = events
            .iter()
            .filter_map(json::Value::as_object)
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .collect();
        assert_eq!(span_events.len(), 3);
        for e in &span_events {
            for key in ["name", "ts", "dur", "pid", "tid"] {
                assert!(e.get(key).is_some(), "span event missing {key}");
            }
        }
        assert_eq!(span_events[0].get("ts").and_then(json::Value::as_f64), Some(0.0));
        assert_eq!(span_events[0].get("dur").and_then(json::Value::as_f64), Some(1000.0));
        let other = obj.get("otherData").and_then(json::Value::as_object).expect("otherData");
        assert_eq!(other.get("schema").and_then(json::Value::as_str), Some(TRACE_SCHEMA));
    }

    #[test]
    fn folded_stacks_aggregate_self_time_by_path() {
        let text = folded_stacks(&demo_trace());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "init 400000",       // 1_000_000 - 600_000 child
                "init;sweep 600000", // leaf keeps its full time
                "sweep 400000",      // thread-1 root
            ]
        );
        for line in lines {
            let (path, weight) = line.rsplit_once(' ').expect("weighted line");
            assert!(!path.is_empty());
            weight.parse::<u64>().expect("integer weight");
        }
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let mut t = demo_trace();
        t.spans.clear();
        let doc = json::parse(&chrome_trace_json(&t)).expect("parses");
        let events = doc
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(json::Value::as_array)
            .expect("events");
        assert_eq!(events.len(), 1, "metadata only");
        assert_eq!(folded_stacks(&t), "");
    }
}
