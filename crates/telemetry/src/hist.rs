//! Log-bucketed (HDR-style) histograms for the flight recorder.
//!
//! A [`LogHistogram`] covers the full `u64` range with power-of-2 octaves,
//! each split into `2^SUB_BITS = 16` linear sub-buckets, giving a worst-case
//! relative bucket width of `2^-SUB_BITS ≈ 6%` — the classic HdrHistogram
//! layout, sized for nanosecond durations and per-round work quantities
//! alike. Values below `2^SUB_BITS` are recorded exactly (one bucket per
//! integer), so small deterministic quantities (frontier lengths, items
//! removed) land in stable buckets.
//!
//! Recording is a counter increment on a lazily grown dense `Vec<u64>`;
//! merging is element-wise addition, which is associative and commutative —
//! the property the shard-merge determinism tests lean on: however a fixed
//! multiset of samples is split across thread shards, the merged bucket
//! counts are bit-identical.

/// Number of linear sub-bucket bits per power-of-2 octave.
pub const SUB_BITS: u32 = 4;

/// Sub-buckets per octave (`2^SUB_BITS`).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Largest bucket index any `u64` value can map to (inclusive).
///
/// The top octave has `top = 63`, so the last index is
/// `(63 - SUB_BITS) * SUB_BUCKETS + (SUB_BUCKETS * 2 - 1)`.
pub const MAX_BUCKET_INDEX: usize =
    ((63 - SUB_BITS as usize) << SUB_BITS) + (SUB_BUCKETS as usize * 2 - 1);

/// Map a value to its bucket index.
///
/// Values `< SUB_BUCKETS` map to themselves; larger values map to
/// `(top - SUB_BITS) * SUB_BUCKETS + (v >> (top - SUB_BITS))` where `top` is
/// the position of the highest set bit. Indices are contiguous across octave
/// boundaries.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let shift = top - SUB_BITS;
        ((shift as usize) << SUB_BITS) + (v >> shift) as usize
    }
}

/// Inclusive lower bound of bucket `idx` (the smallest value mapping to it).
pub fn bucket_low(idx: usize) -> u64 {
    if idx < (SUB_BUCKETS * 2) as usize {
        idx as u64
    } else {
        let octave = idx >> SUB_BITS; // >= 2 here
        let sub = (idx & (SUB_BUCKETS as usize - 1)) as u64;
        (SUB_BUCKETS + sub) << (octave - 1)
    }
}

/// Exclusive upper bound of bucket `idx` (`u64::MAX` for the last bucket).
pub fn bucket_high(idx: usize) -> u64 {
    if idx >= MAX_BUCKET_INDEX {
        u64::MAX
    } else {
        bucket_low(idx + 1)
    }
}

/// A log-bucketed histogram over `u64` samples.
///
/// The bucket vector is grown on demand to the highest recorded index, so an
/// idle histogram owns no heap memory and a nanosecond-scale one stays a few
/// hundred entries long.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Fold `other` into `self` by element-wise bucket addition.
    ///
    /// Merging is order-independent: any partition of a sample multiset
    /// across shards merges to the same bucket counts.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the *exclusive upper bound* of
    /// the first bucket at which the cumulative count reaches `ceil(q *
    /// count)`, clamped to the recorded max. Worst-case relative error is the
    /// bucket width (`2^-SUB_BITS`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(idx).saturating_sub(1).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Non-empty `(bucket_index, count)` pairs in index order — the sparse
    /// form emitted into trace JSON.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_bucket_exactly() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_ordered() {
        let mut prev_high = 0u64;
        for idx in 0..2048.min(MAX_BUCKET_INDEX) {
            let low = bucket_low(idx);
            let high = bucket_high(idx);
            assert!(low < high, "bucket {idx}: low {low} >= high {high}");
            if idx > 0 {
                assert_eq!(low, prev_high, "gap before bucket {idx}");
            }
            prev_high = high;
        }
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let probes: [u64; 12] = [
            0,
            1,
            15,
            16,
            17,
            255,
            256,
            1_000_000,
            u32::MAX as u64,
            1 << 40,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx <= MAX_BUCKET_INDEX);
            assert!(bucket_low(idx) <= v, "v={v} idx={idx} low={}", bucket_low(idx));
            if idx < MAX_BUCKET_INDEX {
                assert!(v < bucket_high(idx), "v={v} idx={idx} high={}", bucket_high(idx));
            }
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for &v in &[100u64, 10_000, 123_456_789, 1 << 50] {
            let idx = bucket_index(v);
            let width = bucket_high(idx) - bucket_low(idx);
            let rel = width as f64 / bucket_low(idx) as f64;
            assert!(rel <= 1.0 / (SUB_BUCKETS as f64 / 2.0) + 1e-12, "v={v} rel={rel}");
        }
    }

    #[test]
    fn record_merge_and_quantiles() {
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i % 77_777).collect();
        let mut whole = LogHistogram::new();
        for &s in &samples {
            whole.record(s);
        }
        assert_eq!(whole.count(), 1000);
        assert_eq!(whole.sum(), samples.iter().sum::<u64>());
        assert_eq!(whole.min(), *samples.iter().min().unwrap());
        assert_eq!(whole.max(), *samples.iter().max().unwrap());
        let p50 = whole.quantile(0.5);
        let below = samples.iter().filter(|&&s| s <= p50).count();
        assert!(below >= 500, "p50={p50} covers only {below} samples");
        assert!(whole.quantile(1.0) == whole.max());
        assert!(whole.quantile(0.0) >= whole.min());
    }

    #[test]
    fn merge_is_partition_independent() {
        let samples: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % 1_000_003).collect();
        let mut whole = LogHistogram::new();
        for &s in &samples {
            whole.record(s);
        }
        for parts in [1usize, 2, 4] {
            let mut shards = vec![LogHistogram::new(); parts];
            for (i, &s) in samples.iter().enumerate() {
                shards[i % parts].record(s);
            }
            let mut merged = LogHistogram::new();
            // Merge in reverse order to exercise order-independence too.
            for shard in shards.iter().rev() {
                merged.merge(shard);
            }
            assert_eq!(merged, whole, "merge of {parts} shards diverged");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }
}
