//! Incremental decomposition engine: frontier-bounded batch updates.
//!
//! Both decompositions this crate certifies — the k\*-core h-index vector
//! ([`uds::sweep`](crate::uds::sweep)) and the w-induced edge
//! decomposition ([`dds::peel`](crate::dds::peel)) — are fixed points of
//! monotone operators, and a batch of edge edits perturbs those fixed
//! points only locally. This module maintains both under
//! [`DeltaBatch`] edge updates without re-running the from-scratch
//! algorithms over the whole graph:
//!
//! * **Undirected** ([`DynamicUndirectedState`]): the converged core
//!   vector of the previous graph version seeds the h-index sweep of the
//!   next one. Deletions can only lower core numbers, so the old vector
//!   is a valid over-seed and the capped kernel re-converges from the
//!   deletion endpoints alone (the Tarski squeeze: any quiescent vector
//!   between `core(g)` and a pointwise over-seed *is* `core(g)`).
//!   Insertions are revealed one at a time; the riser-component theorem
//!   (DESIGN.md §13) shows every vertex whose core number rises is
//!   reachable from an endpoint of the new edge through vertices of the
//!   same core value `K = min(core(u), core(v))`, so a BFS over the
//!   `core == K` layer collects a sound candidate set, those candidates
//!   are bumped to `min(deg, K + 1)`, and the sweep re-converges from
//!   them.
//! * **Directed** ([`DynamicDirectedState`]): a cutoff weight `W*` is
//!   computed from the batch (the largest old induce-number among deleted
//!   edges, and the largest `d⁺(u)·d⁻(v)` among inserted pairs in the
//!   new graph). Every surviving edge with old induce-number above `W*`
//!   keeps it exactly; those edges are frozen and
//!   [`PeelWorkspace::decompose_restricted`] re-peels only the active
//!   remainder, reproducing the ≤ `W*` prefix of a full run bit-for-bit.
//!
//! Batched results are **bit-identical** to from-scratch recomputation at
//! any thread-pool size — the sweeps run in [`SweepMode::Synchronous`]
//! and the peel inherits the deterministic chunk-min scheduler — which is
//! what the differential proptests in `tests/dynamic_engine.rs` pin.

use dsd_graph::compress::{DirectedStorage, UndirectedStorage};
use dsd_graph::delta::{apply_directed, apply_undirected, slot_map_directed, UndirectedOverlay};
use dsd_graph::{DeltaBatch, DirectedGraph, GraphError, NeighborAccess, UndirectedGraph, VertexId};
use dsd_telemetry::{self as telemetry, Counter, Phase};
use rustc_hash::FxHashSet;

use crate::dds::peel::PeelWorkspace;
use crate::dds::winduced::WDecomposition;
use crate::uds::sweep::{SweepMode, SweepWorkspace};

/// Per-batch accounting returned by the `apply_batch` methods.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateOutcome {
    /// Vertices seeded into the maintenance frontier (undirected: deletion
    /// endpoints plus insertion candidates; directed: edges re-peeled,
    /// i.e. not frozen).
    pub frontier_size: usize,
    /// Convergence work: sweep rounds (undirected) or threshold
    /// iterations (directed).
    pub rounds: usize,
    /// Directed only: surviving edges whose induce-number was carried
    /// over without re-peeling. Always zero for undirected updates.
    pub frozen: usize,
}

/// Maintains the undirected k\*-core (h-index) decomposition across
/// [`DeltaBatch`] updates.
pub struct DynamicUndirectedState {
    graph: UndirectedGraph,
    sweep: SweepWorkspace,
    core: Vec<u32>,
    mode: SweepMode,
}

impl DynamicUndirectedState {
    /// Builds the state with a from-scratch frontier sweep over `graph`.
    pub fn new(graph: UndirectedGraph) -> Self {
        let mut sweep = SweepWorkspace::new();
        sweep.run_frontier(&graph, SweepMode::Synchronous);
        let core = sweep.h_values();
        Self { graph, sweep, core, mode: SweepMode::Synchronous }
    }

    /// Builds the state from runtime-selected storage (compressed graphs
    /// are decompressed once; the engine mutates plain CSR thereafter).
    pub fn from_storage(storage: &UndirectedStorage<'_>) -> Self {
        match storage {
            UndirectedStorage::Plain(g) => Self::new((*g).clone()),
            UndirectedStorage::Compressed(c) => Self::new(c.decompress()),
        }
    }

    /// Current graph version.
    pub fn graph(&self) -> &UndirectedGraph {
        &self.graph
    }

    /// Converged core numbers of the current graph version.
    pub fn core_numbers(&self) -> &[u32] {
        &self.core
    }

    /// `k*` — the largest core number (0 on an empty graph).
    pub fn k_star(&self) -> u32 {
        self.core.iter().copied().max().unwrap_or(0)
    }

    /// Applies one validated batch and re-converges the core vector from
    /// the affected frontier only. Returns the batch accounting; on error
    /// the state is unchanged.
    pub fn apply_batch(&mut self, batch: &DeltaBatch) -> Result<UpdateOutcome, GraphError> {
        // Full validation (range / remove-exists / insert-not-present)
        // happens here, against the *current* version; the rebuilt graph
        // becomes the next version only after the sweep converges.
        let rebuilt = apply_undirected(&self.graph, batch)?;
        let (inserts, removes) = batch.canonical_undirected()?;

        let mut frontier_total = 0usize;
        let mut rounds = 0usize;
        {
            let mut overlay = UndirectedOverlay::new(&self.graph, &inserts, &removes);
            self.sweep.bind_seeded(&overlay, &self.core);

            if !removes.is_empty() {
                {
                    let _g = telemetry::span(Phase::DynamicFrontier);
                    self.sweep.set_active(removes.iter().flat_map(|&(u, v)| [u, v]));
                    frontier_total += self.sweep.active_len();
                }
                let _g = telemetry::span(Phase::DynamicSweep);
                rounds += self.sweep.run_to_quiescence(&overlay, self.mode);
            }

            // Insertions are revealed one at a time: the riser theorem
            // holds for a single new edge against an otherwise-converged
            // vector, so each reveal must re-converge before the next.
            while let Some((u, v)) = overlay.reveal_insert() {
                let candidates = {
                    let _g = telemetry::span(Phase::DynamicFrontier);
                    insertion_candidates(&overlay, &self.sweep, u, v)
                };
                let _g = telemetry::span(Phase::DynamicSweep);
                let k = self.sweep.h_value(u).min(self.sweep.h_value(v));
                for &w in &candidates {
                    let cap = (overlay.degree_of(w) as u32).min(k + 1);
                    self.sweep.set_h(w, cap.max(self.sweep.h_value(w)));
                }
                self.sweep.set_active(candidates.iter().copied());
                frontier_total += self.sweep.active_len();
                rounds += self.sweep.run_to_quiescence(&overlay, self.mode);
            }
        }

        self.core = self.sweep.h_values();
        self.graph = rebuilt;
        telemetry::counter_add(Counter::FrontierSize, frontier_total as u64);
        Ok(UpdateOutcome { frontier_size: frontier_total, rounds, frozen: 0 })
    }
}

/// BFS over the `core == K` layer from both endpoints of the freshly
/// revealed edge `(u, v)`, where `K = min(h(u), h(v))`. By the
/// riser-component theorem every vertex whose core number can rise lies
/// in this set; vertices with `h != K` act as walls.
fn insertion_candidates<G: NeighborAccess>(
    overlay: &G,
    sweep: &SweepWorkspace,
    u: VertexId,
    v: VertexId,
) -> Vec<VertexId> {
    let k = sweep.h_value(u).min(sweep.h_value(v));
    let mut seen = FxHashSet::default();
    let mut queue = Vec::new();
    for root in [u, v] {
        if sweep.h_value(root) == k && seen.insert(root) {
            queue.push(root);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let w = queue[head];
        head += 1;
        for x in overlay.neighbors_of(w) {
            if sweep.h_value(x) == k && seen.insert(x) {
                queue.push(x);
            }
        }
    }
    queue
}

/// Maintains the directed w-induced edge decomposition across
/// [`DeltaBatch`] updates.
pub struct DynamicDirectedState {
    graph: DirectedGraph,
    peel: PeelWorkspace,
    induce: Vec<u64>,
    w_star: u64,
}

impl DynamicDirectedState {
    /// Builds the state with a from-scratch peel over `graph`.
    pub fn new(graph: DirectedGraph) -> Self {
        let mut peel = PeelWorkspace::new();
        let d = peel.decompose(&graph, false);
        Self { graph, peel, induce: d.induce_number, w_star: d.w_star }
    }

    /// Builds the state from runtime-selected storage.
    pub fn from_storage(storage: &DirectedStorage<'_>) -> Self {
        match storage {
            DirectedStorage::Plain(g) => Self::new((*g).clone()),
            DirectedStorage::Compressed(c) => Self::new(c.decompress()),
        }
    }

    /// Current graph version.
    pub fn graph(&self) -> &DirectedGraph {
        &self.graph
    }

    /// Induce-numbers of the current version, in CSR out-slot order.
    pub fn induce_numbers(&self) -> &[u64] {
        &self.induce
    }

    /// `w*` — the largest weight whose w-induced subgraph is non-empty.
    pub fn w_star(&self) -> u64 {
        self.w_star
    }

    /// Applies one validated batch: computes the cutoff `W*`, freezes
    /// every surviving edge whose induce-number exceeds it, and re-peels
    /// only the active remainder. Returns the batch accounting; on error
    /// the state is unchanged.
    pub fn apply_batch(&mut self, batch: &DeltaBatch) -> Result<UpdateOutcome, GraphError> {
        let new_graph = apply_directed(&self.graph, batch)?;

        let (frozen, active) = {
            let _g = telemetry::span(Phase::DynamicFrontier);

            // Cutoff: the largest weight at which the batch can still be
            // seen. Above it, deleted edges no longer participate and
            // inserted edges cannot (their weight upper bound
            // d⁺(u)·d⁻(v) already falls short), so D_w is unchanged.
            let mut w_cut = 0u64;
            for &(s, t) in batch.removes() {
                let slot = self.out_slot(s, t).expect("apply_directed validated remove targets");
                w_cut = w_cut.max(self.induce[slot]);
            }
            for &(s, t) in batch.inserts() {
                let weight = new_graph.out_degree(s) as u64 * new_graph.in_degree(t) as u64;
                w_cut = w_cut.max(weight);
            }

            let map = slot_map_directed(&self.graph, &new_graph);
            let mut frozen = Vec::new();
            for (old_slot, &new_slot) in map.iter().enumerate() {
                if new_slot != u32::MAX && self.induce[old_slot] > w_cut {
                    frozen.push((new_slot, self.induce[old_slot]));
                }
            }
            let active = new_graph.num_edges() - frozen.len();
            (frozen, active)
        };

        let d = {
            let _g = telemetry::span(Phase::DynamicPeel);
            self.peel.decompose_restricted(&new_graph, &frozen)
        };

        telemetry::counter_add(Counter::FrontierSize, active as u64);
        let rounds = d.stats.iterations;
        let frozen_count = frozen.len();
        self.induce = d.induce_number;
        self.w_star = d.w_star;
        self.graph = new_graph;
        Ok(UpdateOutcome { frontier_size: active, rounds, frozen: frozen_count })
    }

    /// CSR out-slot of edge `(u, v)` in the current graph version.
    fn out_slot(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let pos = self.graph.out_neighbors(u).binary_search(&v).ok()?;
        Some(self.graph.out_offsets()[u as usize] + pos)
    }
}

/// The one delta-apply entry point shared by every consumer of the
/// incremental engine — `dsd update` and the serve writer thread both go
/// through here, so the CSR-patch + re-peel sequence (and the report text
/// CI greps for) cannot drift between the batch CLI and the daemon.
pub enum DynamicState {
    /// Maintains the undirected k*-core decomposition.
    Undirected(DynamicUndirectedState),
    /// Maintains the directed w-induced decomposition.
    Directed(DynamicDirectedState),
}

impl DynamicState {
    /// Builds undirected state with a from-scratch frontier sweep.
    pub fn new_undirected(graph: UndirectedGraph) -> Self {
        DynamicState::Undirected(DynamicUndirectedState::new(graph))
    }

    /// Builds directed state with a from-scratch peel.
    pub fn new_directed(graph: DirectedGraph) -> Self {
        DynamicState::Directed(DynamicDirectedState::new(graph))
    }

    /// Applies one validated batch to whichever decomposition this state
    /// maintains. On error the state is unchanged (both arms validate
    /// against the current version before mutating).
    pub fn apply_batch(&mut self, batch: &DeltaBatch) -> Result<UpdateOutcome, GraphError> {
        match self {
            DynamicState::Undirected(s) => s.apply_batch(batch),
            DynamicState::Directed(s) => s.apply_batch(batch),
        }
    }

    /// Vertices of the current graph version.
    pub fn num_vertices(&self) -> usize {
        match self {
            DynamicState::Undirected(s) => s.graph().num_vertices(),
            DynamicState::Directed(s) => s.graph().num_vertices(),
        }
    }

    /// Edges of the current graph version.
    pub fn num_edges(&self) -> usize {
        match self {
            DynamicState::Undirected(s) => s.graph().num_edges(),
            DynamicState::Directed(s) => s.graph().num_edges(),
        }
    }

    /// The headline certificate value: `k*` (undirected) or `w*`
    /// (directed).
    pub fn certificate_value(&self) -> u64 {
        match self {
            DynamicState::Undirected(s) => s.k_star() as u64,
            DynamicState::Directed(s) => s.w_star(),
        }
    }

    /// The post-update report text printed by `dsd update` and logged by
    /// the serve writer: graph size transition, certificate line
    /// (`k* = N` / `w* = N`), frontier accounting, and convergence
    /// rounds. `n0`/`m0` are the pre-batch vertex/edge counts.
    pub fn update_report(&self, n0: usize, m0: usize, outcome: &UpdateOutcome) -> String {
        match self {
            DynamicState::Undirected(s) => format!(
                "graph: |V|={} |E|={} -> |E|={}\nk* = {}\nfrontier: {} vertices\nsweep rounds: {}",
                n0,
                m0,
                s.graph().num_edges(),
                s.k_star(),
                outcome.frontier_size,
                outcome.rounds
            ),
            DynamicState::Directed(s) => format!(
                "graph: |V|={} |E|={} -> |E|={}\nw* = {}\nfrontier: {} active edges, {} frozen\nthreshold rounds: {}",
                n0,
                m0,
                s.graph().num_edges(),
                s.w_star(),
                outcome.frontier_size,
                outcome.frozen,
                outcome.rounds
            ),
        }
    }
}

/// From-scratch w-decomposition of `g` — the oracle the dynamic directed
/// engine is differentially tested against.
pub fn scratch_directed(g: &DirectedGraph) -> WDecomposition {
    PeelWorkspace::new().decompose(g, false)
}

/// From-scratch core vector of `g` — the oracle the dynamic undirected
/// engine is differentially tested against.
pub fn scratch_undirected(g: &UndirectedGraph) -> Vec<u32> {
    let mut sweep = SweepWorkspace::new();
    sweep.run_frontier(g, SweepMode::Synchronous);
    sweep.h_values()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::gen::{chung_lu, erdos_renyi, erdos_renyi_directed};

    fn batch_from(g: &UndirectedGraph, seed: u64, n_ins: usize, n_rem: usize) -> DeltaBatch {
        // Deterministic churn: remove the first n_rem edges by a seeded
        // stride, insert the first n_ins absent pairs by another.
        let edges: Vec<_> = g.edges().collect();
        let n = g.num_vertices() as u64;
        let mut removes = Vec::new();
        let mut i = seed as usize % edges.len().max(1);
        while removes.len() < n_rem && removes.len() < edges.len() {
            let e = edges[i % edges.len()];
            if !removes.contains(&e) {
                removes.push(e);
            }
            i += 1;
        }
        let mut inserts = Vec::new();
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        while inserts.len() < n_ins {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((x >> 33) % n) as VertexId;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((x >> 33) % n) as VertexId;
            let (a, b) = (u.min(v), u.max(v));
            if a == b || g.has_edge(a, b) || inserts.contains(&(a, b)) {
                continue;
            }
            if removes.contains(&(a, b)) {
                continue;
            }
            inserts.push((a, b));
        }
        DeltaBatch::new(inserts, removes).expect("valid churn batch")
    }

    #[test]
    fn undirected_batch_matches_scratch() {
        for seed in [3u64, 17, 51] {
            let g = erdos_renyi(120, 420, seed);
            let batch = batch_from(&g, seed, 6, 6);
            let mut state = DynamicUndirectedState::new(g.clone());
            let out = state.apply_batch(&batch).expect("batch applies");
            assert!(out.frontier_size > 0);
            let oracle = apply_undirected(&g, &batch).unwrap();
            assert_eq!(state.core_numbers(), scratch_undirected(&oracle).as_slice());
            assert_eq!(state.graph().num_edges(), oracle.num_edges());
        }
    }

    #[test]
    fn undirected_sequential_batches_stay_exact() {
        let mut g = chung_lu(150, 500, 2.3, 5);
        let mut state = DynamicUndirectedState::new(g.clone());
        for seed in 0..4u64 {
            let batch = batch_from(&g, seed + 100, 4, 4);
            state.apply_batch(&batch).expect("batch applies");
            g = apply_undirected(&g, &batch).unwrap();
            assert_eq!(state.core_numbers(), scratch_undirected(&g).as_slice());
        }
    }

    #[test]
    fn undirected_insert_only_and_delete_only() {
        let g = erdos_renyi(80, 250, 9);
        let ins = batch_from(&g, 5, 5, 0);
        let mut state = DynamicUndirectedState::new(g.clone());
        state.apply_batch(&ins).unwrap();
        let g2 = apply_undirected(&g, &ins).unwrap();
        assert_eq!(state.core_numbers(), scratch_undirected(&g2).as_slice());

        let del = batch_from(&g2, 6, 0, 5);
        state.apply_batch(&del).unwrap();
        let g3 = apply_undirected(&g2, &del).unwrap();
        assert_eq!(state.core_numbers(), scratch_undirected(&g3).as_slice());
        assert_eq!(state.k_star(), scratch_undirected(&g3).iter().copied().max().unwrap());
    }

    #[test]
    fn undirected_failed_batch_leaves_state_untouched() {
        let g = erdos_renyi(40, 80, 2);
        let mut state = DynamicUndirectedState::new(g.clone());
        let before = state.core_numbers().to_vec();
        let (u, v) = g.edges().next().expect("graph has edges");
        let bad = DeltaBatch::new(vec![(u, v)], vec![]).unwrap();
        assert!(state.apply_batch(&bad).is_err());
        assert_eq!(state.core_numbers(), before.as_slice());
        assert_eq!(state.graph().num_edges(), g.num_edges());
    }

    fn directed_batch(g: &DirectedGraph, seed: u64, n_ins: usize, n_rem: usize) -> DeltaBatch {
        let edges: Vec<_> = g.edges().collect();
        let n = g.num_vertices() as u64;
        let mut removes = Vec::new();
        let mut i = seed as usize % edges.len().max(1);
        while removes.len() < n_rem && removes.len() < edges.len() {
            let e = edges[i % edges.len()];
            if !removes.contains(&e) {
                removes.push(e);
            }
            i += 1;
        }
        let mut inserts = Vec::new();
        let mut x = seed ^ 0x9e3779b97f4a7c15;
        while inserts.len() < n_ins {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((x >> 33) % n) as VertexId;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((x >> 33) % n) as VertexId;
            if u == v || g.has_edge(u, v) || inserts.contains(&(u, v)) {
                continue;
            }
            if removes.contains(&(u, v)) {
                continue;
            }
            inserts.push((u, v));
        }
        DeltaBatch::new(inserts, removes).expect("valid directed churn batch")
    }

    #[test]
    fn directed_batch_matches_scratch() {
        for seed in [4u64, 23, 61] {
            let g = erdos_renyi_directed(90, 400, seed);
            let batch = directed_batch(&g, seed, 5, 5);
            let mut state = DynamicDirectedState::new(g.clone());
            let out = state.apply_batch(&batch).expect("batch applies");
            let oracle_graph = apply_directed(&g, &batch).unwrap();
            let oracle = scratch_directed(&oracle_graph);
            assert_eq!(state.induce_numbers(), oracle.induce_number.as_slice());
            assert_eq!(state.w_star(), oracle.w_star);
            assert_eq!(out.frozen + out.frontier_size, oracle_graph.num_edges());
        }
    }

    #[test]
    fn directed_sequential_batches_stay_exact() {
        let mut g = erdos_renyi_directed(70, 300, 8);
        let mut state = DynamicDirectedState::new(g.clone());
        for seed in 0..3u64 {
            let batch = directed_batch(&g, seed + 40, 3, 3);
            state.apply_batch(&batch).expect("batch applies");
            g = apply_directed(&g, &batch).unwrap();
            let oracle = scratch_directed(&g);
            assert_eq!(state.induce_numbers(), oracle.induce_number.as_slice());
            assert_eq!(state.w_star(), oracle.w_star);
        }
    }

    #[test]
    fn directed_failed_batch_leaves_state_untouched() {
        let g = erdos_renyi_directed(30, 90, 3);
        let mut state = DynamicDirectedState::new(g.clone());
        let before = state.induce_numbers().to_vec();
        let bad = DeltaBatch::new(vec![], vec![(0, 0)]);
        assert!(bad.is_err()); // self-loop rejected at construction
        let (u, v) = g.edges().next().expect("graph has edges");
        let dup = DeltaBatch::new(vec![(u, v)], vec![]).unwrap();
        assert!(state.apply_batch(&dup).is_err()); // insert of existing edge
        assert_eq!(state.induce_numbers(), before.as_slice());
    }
}
