//! PBU — Bahmani et al.'s batch-peeling `2(1+ε)`-approximation
//! (PVLDB 2012; reference \[5\] of the paper).
//!
//! The original is a MapReduce/streaming algorithm. Each round:
//!
//! 1. **map** — every surviving edge emits two `(vertex, neighbour)`
//!    records,
//! 2. **shuffle** — records are grouped by vertex (a sort, the expensive
//!    part of a MapReduce round),
//! 3. **reduce** — per-vertex degrees and the surviving edge count come
//!    out of the grouped runs; every vertex with degree at most `2(1+ε)`
//!    times the current density is dropped,
//! 4. the surviving edge list is rewritten for the next round.
//!
//! Only `O(log_{1+ε} n)` rounds are needed, but each round re-materialises
//! and re-shuffles the whole edge list — the "needs to synchronize vertex
//! and edge information ... in each iteration which involves much time
//! cost" overhead the paper cites when explaining why PKMC beats PBU by
//! 5–20× (Exp-1). This shared-memory simulation keeps that round
//! structure faithfully (a parallel sort plays the shuffle); rewriting PBU
//! as an incremental shared-memory peeler would be a different — and no
//! longer published — baseline.

use dsd_graph::{UndirectedGraph, VertexId};
use rayon::prelude::*;

use crate::stats::{timed, Stats};
use crate::uds::UdsResult;

/// Runs PBU with parameter `epsilon > 0` (paper default 0.5).
pub fn pbu(g: &UndirectedGraph, epsilon: f64) -> UdsResult {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let ((vertices, density, stats_body), wall) = timed(|| run(g, epsilon));
    UdsResult { vertices, density, stats: Stats { wall, ..stats_body } }
}

fn run(g: &UndirectedGraph, epsilon: f64) -> (Vec<VertexId>, f64, Stats) {
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return (Vec::new(), 0.0, Stats::default());
    }
    let factor = 2.0 * (1.0 + epsilon);
    // The streaming state is just the surviving edge list.
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let edges_first = edges.len();
    let mut edges_last = edges.len();
    let mut best_density = 0.0f64;
    let mut best_edges = 0usize;
    let mut best_snapshot: Vec<VertexId> = Vec::new();
    let mut iterations = 0usize;
    let mut records: Vec<(VertexId, VertexId)> = Vec::new();
    while !edges.is_empty() {
        edges_last = edges.len();
        // map: each edge emits both orientations.
        records.clear();
        records.reserve(2 * edges.len());
        for &(u, v) in &edges {
            records.push((u, v));
            records.push((v, u));
        }
        // shuffle: group records by vertex.
        records.par_sort_unstable();
        // reduce: degree = run length per vertex key.
        let mut degree: Vec<(VertexId, u32)> = Vec::new();
        for &(v, _) in &records {
            match degree.last_mut() {
                Some((key, count)) if *key == v => *count += 1,
                _ => degree.push((v, 1)),
            }
        }
        let n_cur = degree.len();
        let m_cur = edges.len();
        let rho = m_cur as f64 / n_cur as f64;
        // Track the densest iterate (the graph BEFORE this round removes).
        if rho > best_density {
            best_density = rho;
            best_edges = m_cur;
            best_snapshot = degree.iter().map(|&(v, _)| v).collect();
        }
        // Drop every vertex with degree <= 2(1+eps) * rho; rewrite the
        // surviving edge list for the next round.
        let threshold = factor * rho;
        let mut dropped = vec![false; n];
        for &(v, d) in &degree {
            if (d as f64) <= threshold {
                dropped[v as usize] = true;
            }
        }
        let next: Vec<(VertexId, VertexId)> = edges
            .par_iter()
            .copied()
            .filter(|&(u, v)| !dropped[u as usize] && !dropped[v as usize])
            .collect();
        debug_assert!(next.len() < edges.len(), "a round must remove at least one vertex");
        edges = next;
        iterations += 1;
    }
    let stats = Stats {
        iterations,
        edges_first_iter: Some(edges_first),
        edges_last_iter: Some(edges_last),
        edges_result: Some(best_edges),
        ..Stats::default()
    };
    (best_snapshot, best_density, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::undirected_density;
    use dsd_graph::UndirectedGraphBuilder;

    #[test]
    fn reported_density_matches_set() {
        let g = dsd_graph::gen::chung_lu(300, 1800, 2.3, 41);
        let r = pbu(&g, 0.5);
        let actual = undirected_density(&g, &r.vertices);
        assert!((actual - r.density).abs() < 1e-9, "claimed {} actual {actual}", r.density);
    }

    #[test]
    fn approximation_guarantee_holds() {
        for seed in 0..5 {
            let g = dsd_graph::gen::erdos_renyi(70, 300, seed + 200);
            let exact = dsd_flow::uds_exact(&g);
            let r = pbu(&g, 0.5);
            let bound = 2.0 * 1.5; // 2(1+eps)
            assert!(
                r.density * bound + 1e-9 >= exact.density,
                "seed {seed}: pbu {} vs exact {}",
                r.density,
                exact.density
            );
        }
    }

    #[test]
    fn logarithmic_pass_count() {
        let g = dsd_graph::gen::chung_lu(2000, 10_000, 2.2, 6);
        let r = pbu(&g, 0.5);
        // log_{1.5}(2000) ~ 18.7; allow generous slack.
        assert!(r.stats.iterations <= 40, "iterations {}", r.stats.iterations);
    }

    #[test]
    fn finds_planted_clique_region() {
        let g = dsd_graph::gen::planted_dense(500, 700, 25, 1.0, 31);
        let r = pbu(&g, 0.5);
        // Density of planted clique = 12; background is ~1.4. PBU must
        // land within a factor 3 of the planted density.
        assert!(r.density >= 4.0, "density {}", r.density);
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(3).build().unwrap();
        let r = pbu(&g, 1.0);
        assert_eq!(r.density, 0.0);
        assert_eq!(r.stats.iterations, 0);
    }

    #[test]
    fn smaller_epsilon_is_at_least_as_accurate_on_average() {
        // Tighter epsilon peels more conservatively; its density should
        // not be much worse than a loose one.
        let g = dsd_graph::gen::chung_lu(800, 4800, 2.3, 13);
        let tight = pbu(&g, 0.1);
        let loose = pbu(&g, 2.0);
        assert!(tight.density + 1e-9 >= loose.density * 0.8);
        // And the loose one needs fewer passes.
        assert!(loose.stats.iterations <= tight.stats.iterations);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_nonpositive_epsilon() {
        let g = UndirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        pbu(&g, 0.0);
    }
}
