//! Bucket priority structure for min-degree peeling.
//!
//! The Batagelj–Zaveršnik `O(m)` core decomposition and Charikar's peeling
//! both repeatedly extract a minimum-degree vertex and decrement its
//! neighbours' degrees. This structure supports exactly that: vertices are
//! kept sorted by degree in a flat array with per-degree bucket starts, and
//! `decrease_key` swaps a vertex to its bucket boundary in `O(1)` — the
//! textbook binsort layout.

use dsd_graph::VertexId;

/// Min-degree bucket queue over vertices `0..n` with keys `0..=max_key`.
#[derive(Debug)]
pub struct BucketQueue {
    /// Current key of each vertex.
    key: Vec<u32>,
    /// Vertices sorted by key.
    vert: Vec<VertexId>,
    /// `pos[v]` is the index of `v` in `vert`.
    pos: Vec<usize>,
    /// `bin[k]` is the index in `vert` where key-`k` vertices start.
    bin: Vec<usize>,
    /// Index of the next unextracted vertex in `vert`.
    cursor: usize,
}

impl BucketQueue {
    /// Builds the queue from initial keys.
    pub fn new(keys: &[u32]) -> Self {
        let n = keys.len();
        let max_key = keys.iter().copied().max().unwrap_or(0) as usize;
        let mut count = vec![0usize; max_key + 1];
        for &k in keys {
            count[k as usize] += 1;
        }
        let mut bin = vec![0usize; max_key + 2];
        let mut acc = 0usize;
        for (k, &c) in count.iter().enumerate() {
            bin[k] = acc;
            acc += c;
        }
        bin[max_key + 1] = acc;
        let mut cursor_bins = bin.clone();
        let mut vert = vec![0 as VertexId; n];
        let mut pos = vec![0usize; n];
        for (v, &k) in keys.iter().enumerate() {
            let p = cursor_bins[k as usize];
            vert[p] = v as VertexId;
            pos[v] = p;
            cursor_bins[k as usize] += 1;
        }
        Self { key: keys.to_vec(), vert, pos, bin, cursor: 0 }
    }

    /// Number of vertices not yet extracted.
    pub fn remaining(&self) -> usize {
        self.vert.len() - self.cursor
    }

    /// Current key of vertex `v`.
    pub fn key_of(&self, v: VertexId) -> u32 {
        self.key[v as usize]
    }

    /// Whether vertex `v` has been extracted.
    pub fn is_extracted(&self, v: VertexId) -> bool {
        self.pos[v as usize] < self.cursor
    }

    /// Extracts a vertex with the minimum key, returning `(vertex, key)`.
    pub fn pop_min(&mut self) -> Option<(VertexId, u32)> {
        if self.cursor >= self.vert.len() {
            return None;
        }
        let v = self.vert[self.cursor];
        let k = self.key[v as usize];
        self.cursor += 1;
        Some((v, k))
    }

    /// Decrements the key of `v` by one (no-op if already 0 or extracted).
    pub fn decrease_key(&mut self, v: VertexId) {
        let vi = v as usize;
        if self.pos[vi] < self.cursor || self.key[vi] == 0 {
            return;
        }
        let k = self.key[vi] as usize;
        // Swap v with the first vertex of its bucket, then shrink the bucket.
        let bucket_start = self.bin[k].max(self.cursor);
        let pv = self.pos[vi];
        let w = self.vert[bucket_start];
        if w != v {
            self.vert.swap(pv, bucket_start);
            self.pos[w as usize] = pv;
            self.pos[vi] = bucket_start;
        }
        self.bin[k] = bucket_start + 1;
        self.key[vi] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_min_order() {
        let mut q = BucketQueue::new(&[3, 1, 2, 1]);
        let (v1, k1) = q.pop_min().unwrap();
        assert_eq!(k1, 1);
        assert!(v1 == 1 || v1 == 3);
        let (_, k2) = q.pop_min().unwrap();
        assert_eq!(k2, 1);
        let (v3, k3) = q.pop_min().unwrap();
        assert_eq!((v3, k3), (2, 2));
        let (v4, k4) = q.pop_min().unwrap();
        assert_eq!((v4, k4), (0, 3));
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn decrease_key_reorders() {
        let mut q = BucketQueue::new(&[5, 1, 3]);
        q.decrease_key(0); // 5 -> 4
        q.decrease_key(0); // 4 -> 3
        q.decrease_key(0); // 3 -> 2
        q.decrease_key(0); // 2 -> 1
        q.decrease_key(0); // 1 -> 0
        let (v, k) = q.pop_min().unwrap();
        assert_eq!((v, k), (0, 0));
    }

    #[test]
    fn decrease_after_extract_is_noop() {
        let mut q = BucketQueue::new(&[0, 2]);
        let (v, _) = q.pop_min().unwrap();
        assert_eq!(v, 0);
        q.decrease_key(0);
        assert_eq!(q.key_of(1), 2);
        assert_eq!(q.remaining(), 1);
    }

    #[test]
    fn key_floor_at_zero() {
        let mut q = BucketQueue::new(&[0]);
        q.decrease_key(0);
        assert_eq!(q.key_of(0), 0);
    }

    #[test]
    fn remaining_and_extracted() {
        let mut q = BucketQueue::new(&[1, 1]);
        assert_eq!(q.remaining(), 2);
        let (v, _) = q.pop_min().unwrap();
        assert!(q.is_extracted(v));
        assert_eq!(q.remaining(), 1);
    }

    #[test]
    fn bz_style_peel_simulation() {
        // Triangle plus pendant: peel order must give pendant first.
        // degrees: v0=3, v1=2, v2=2, v3=1.
        let mut q = BucketQueue::new(&[3, 2, 2, 1]);
        let (v, k) = q.pop_min().unwrap();
        assert_eq!((v, k), (3, 1));
        q.decrease_key(0); // v0 loses its pendant neighbour
        let (_, k) = q.pop_min().unwrap();
        assert_eq!(k, 2);
    }
}
