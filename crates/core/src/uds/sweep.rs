//! The shared **sweep engine** for h-index-based core computation — the
//! zero-allocation hot path under both Local ([`crate::uds::local`]) and
//! PKMC ([`crate::uds::pkmc`]).
//!
//! The seed implementation's kernel (`sweep_active`) collected a fresh
//! `Vec<(VertexId, u32)>` of updates on every sweep and applied it with a
//! serial loop. On the long-filament graphs of the paper's Table-6 regime
//! (thousands of sweeps) the allocator traffic and the serial apply phase
//! dominate wall time and flatten the Exp-3/Exp-7 thread-scaling curves.
//! This module replaces it with a [`SweepWorkspace`] that is **owned across
//! sweeps** (and reusable across decompositions):
//!
//! * the h-array is a persistent `Vec<AtomicU32>`, so the apply phase is a
//!   fully parallel pass of disjoint relaxed stores instead of a serial
//!   loop — no update vector is ever collected;
//! * frontier, changed-list, and per-sweep value buffers persist between
//!   sweeps, and per-thread scratch goes through rayon `fold`/`reduce`
//!   (as in Sukprasert et al.'s allocation-free parallel peeling) instead
//!   of a `collect` per sweep;
//! * the h-index kernel is **fused and capped**: neighbour values are
//!   bucketed directly (no intermediate value buffer), and buckets are
//!   capped at the vertex's current h-value. Because the h-iteration is
//!   monotone non-increasing (Lemma 2), the capped kernel returns exactly
//!   the uncapped value while doing `O(deg + h)` work instead of
//!   `O(deg + d)` — a large saving late in convergence when most h-values
//!   are small but Algorithm 1 still recomputes every vertex.
//!
//! Two scheduling modes are provided (see [`SweepMode`]):
//!
//! * **Synchronous** (Jacobi, the default): each sweep reads only the
//!   previous sweep's values (a read pass into a per-vertex staging buffer,
//!   then a parallel apply pass), so results and iteration counts are
//!   bit-identical to the seed kernel regardless of the rayon pool size.
//! * **Asynchronous** (Gauss–Seidel / chaotic relaxation, opt-in): each
//!   vertex reads its neighbours' *freshly written* h-values in the same
//!   sweep and publishes its own immediately. Sariyüce et al. show this
//!   converges in strictly fewer sweeps; the fixpoint is still exactly the
//!   core numbers (the iteration is a monotone operator starting from the
//!   degree vector), but per-sweep intermediate values — and hence the
//!   iteration *count* — depend on scheduling, so the mode is opt-in and
//!   excluded from the cross-thread-count determinism guarantee.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::Instant;

use dsd_graph::{NeighborAccess, UndirectedStorage, VertexId};
use dsd_telemetry::{self as telemetry, Counter, Phase, PhaseTime, RoundSample};
use rayon::prelude::*;

/// Scheduling discipline of an h-index sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SweepMode {
    /// Jacobi: all reads of a sweep happen before any write is published.
    /// Deterministic across thread counts; bit-identical to the seed
    /// kernel (same h-values after every sweep, same iteration counts).
    #[default]
    Synchronous,
    /// Gauss–Seidel: writes are published immediately and may be read by
    /// later recomputations in the same sweep. Converges to the same
    /// fixpoint (the core numbers) in no more — usually fewer — sweeps,
    /// but the iteration count depends on scheduling.
    Asynchronous,
}

/// Reusable state for h-index sweeps: the atomic h-array plus every
/// scratch buffer the engine needs, owned across sweeps (and across
/// decompositions — call [`SweepWorkspace::bind`] to retarget it at a
/// graph; buffer capacity is retained).
#[derive(Debug, Default)]
pub struct SweepWorkspace {
    /// Current h-value per vertex. Atomic so the apply phase can be a
    /// parallel pass of disjoint stores under `#![forbid(unsafe_code)]`.
    h: Vec<AtomicU32>,
    /// Staging buffer for synchronous sweeps: the freshly computed value of
    /// `active[i]` (or of vertex `i` in full sweeps) before it is applied.
    staged: Vec<u32>,
    /// Current frontier (only used by frontier-driven decompositions).
    active: Vec<VertexId>,
    /// Vertices whose h-value changed in the last frontier sweep.
    changed: Vec<VertexId>,
    /// Claim bitmap for frontier deduplication; all-false between sweeps.
    mark: Vec<AtomicBool>,
    /// Number of vertices of the bound graph.
    n: usize,
    /// Phase breakdown of the most recent sweep. Only populated while the
    /// telemetry recorder is enabled; cleared (and never allocated) on the
    /// disabled path.
    last_phases: Vec<PhaseTime>,
}

/// Fused, capped h-index kernel: buckets the h-values of `neighbors`
/// directly (no intermediate value vector), capping every bucket at `cur`,
/// and scans down from `cur`. Returns `min(H, cur)` where `H` is the exact
/// h-index of the neighbour values; under the monotone h-iteration
/// (`H ≤ cur` always — Lemma 2) this equals `H` exactly.
///
/// Generic over the neighbour iterator so the compressed substrate's
/// delta-varint decode fuses straight into the bucketing loop — neighbours
/// are consumed as they decode, never materialised into a slice.
#[inline]
fn recompute_capped<I: Iterator<Item = VertexId>>(
    neighbors: I,
    deg: usize,
    cur: u32,
    h: &[AtomicU32],
    scratch: &mut Vec<u32>,
) -> u32 {
    let cap = (cur as usize).min(deg);
    if cap == 0 {
        return 0;
    }
    scratch.clear();
    scratch.resize(cap + 1, 0);
    for u in neighbors {
        let hu = h[u as usize].load(Ordering::Relaxed) as usize;
        scratch[hu.min(cap)] += 1;
    }
    let mut cum = 0u32;
    for k in (1..=cap).rev() {
        cum += scratch[k];
        if cum as usize >= k {
            return k as u32;
        }
    }
    0
}

impl SweepWorkspace {
    /// Creates an empty workspace; [`bind`](Self::bind) it to a graph
    /// before sweeping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Points the workspace at `g`: h-values are reset to the degree
    /// vector, scratch buffers are cleared and resized. Previously grown
    /// capacity is reused, so a workspace kept across decompositions
    /// performs no steady-state allocation.
    pub fn bind<G: NeighborAccess>(&mut self, g: &G) {
        let _init = telemetry::span(Phase::Init);
        let n = g.vertex_count();
        self.n = n;
        self.h.clear();
        self.h.extend((0..n).map(|v| AtomicU32::new(g.degree_of(v as VertexId) as u32)));
        self.staged.clear();
        self.staged.resize(n, 0);
        self.mark.clear();
        self.mark.extend((0..n).map(|_| AtomicBool::new(false)));
        self.active.clear();
        self.changed.clear();
    }

    /// [`bind`](Self::bind), but with the h-array seeded from `seed`
    /// instead of the degree vector — the dynamic maintenance entry point:
    /// a converged core vector of a previous graph version carries over and
    /// only the affected frontier re-converges. The capped kernel only ever
    /// *lowers* values, so the caller must guarantee `seed ≥ core(g)`
    /// pointwise (converged values of a supergraph, or values bumped per
    /// the insertion theorem) — quiescence from any such over-seed is
    /// exactly the core vector.
    pub fn bind_seeded<G: NeighborAccess>(&mut self, g: &G, seed: &[u32]) {
        self.bind(g);
        assert_eq!(seed.len(), self.n, "seed length must match the vertex count");
        for (x, &s) in self.h.iter().zip(seed) {
            x.store(s, Ordering::Relaxed);
        }
    }

    /// Overwrites one h-value (the dynamic engine's insertion bump).
    pub fn set_h(&mut self, v: VertexId, value: u32) {
        self.h[v as usize].store(value, Ordering::Relaxed);
    }

    /// Replaces the frontier with the given vertices, deduplicated through
    /// the claim bitmap (which is reset before returning).
    pub fn set_active<I: IntoIterator<Item = VertexId>>(&mut self, vertices: I) {
        self.active.clear();
        for v in vertices {
            if !self.mark[v as usize].swap(true, Ordering::Relaxed) {
                self.active.push(v);
            }
        }
        for &v in &self.active {
            self.mark[v as usize].store(false, Ordering::Relaxed);
        }
    }

    /// Number of vertices the workspace is bound to.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Current h-value of `v`.
    pub fn h_value(&self, v: VertexId) -> u32 {
        self.h[v as usize].load(Ordering::Relaxed)
    }

    /// Snapshot of all h-values (the core numbers once converged).
    pub fn h_values(&self) -> Vec<u32> {
        self.h.iter().map(|x| x.load(Ordering::Relaxed)).collect()
    }

    /// Maximum h-value and the number of vertices attaining it (PKMC's
    /// `h_max` / `s` monitors), computed in parallel.
    pub fn max_and_count(&self) -> (u32, usize) {
        let max = self.h.par_iter().map(|x| x.load(Ordering::Relaxed)).max().unwrap_or(0);
        let count = self.h.par_iter().filter(|x| x.load(Ordering::Relaxed) == max).count();
        (max, count)
    }

    /// Sorted vertices whose h-value equals `value` (PKMC's Theorem-1
    /// candidate set).
    pub fn vertices_with_value(&self, value: u32) -> Vec<VertexId> {
        self.h
            .iter()
            .enumerate()
            .filter(|(_, x)| x.load(Ordering::Relaxed) == value)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// One sweep recomputing **every** vertex (Algorithm 1's literal
    /// `for v ∈ V in parallel`; no active list is materialised). Returns
    /// the number of vertices whose h-value changed.
    pub fn sweep_full<G: NeighborAccess>(&mut self, g: &G, mode: SweepMode) -> usize {
        if self.staged.len() != self.n {
            // A frontier sweep may have re-sized the staging buffer.
            self.staged.clear();
            self.staged.resize(self.n, 0);
        }
        self.last_phases.clear();
        let enabled = telemetry::enabled();
        let read_time;
        let mut apply_time = None;
        let h = &self.h;
        let changed = match mode {
            SweepMode::Synchronous => {
                let t0 = enabled.then(Instant::now);
                // Read pass: stage every new value from the previous
                // sweep's array.
                (0..self.n).into_par_iter().zip(self.staged.par_iter_mut()).for_each_init(
                    Vec::new,
                    |scratch, (v, out)| {
                        let cur = h[v].load(Ordering::Relaxed);
                        let v = v as VertexId;
                        *out = recompute_capped(g.neighbors_of(v), g.degree_of(v), cur, h, scratch);
                    },
                );
                read_time = t0.map(|t| telemetry::record_span(Phase::Sweep, t));
                let t1 = enabled.then(Instant::now);
                // Apply pass: disjoint parallel stores, counting changes.
                let changed = (0..self.n)
                    .into_par_iter()
                    .zip(self.staged.par_iter())
                    .map(|(v, &new_h)| {
                        let cur = h[v].load(Ordering::Relaxed);
                        debug_assert!(new_h <= cur, "h-index increased at {v}");
                        if new_h != cur {
                            h[v].store(new_h, Ordering::Relaxed);
                            1usize
                        } else {
                            0
                        }
                    })
                    .sum();
                apply_time = t1.map(|t| telemetry::record_span(Phase::Apply, t));
                changed
            }
            SweepMode::Asynchronous => {
                let t0 = enabled.then(Instant::now);
                let changed = (0..self.n)
                    .into_par_iter()
                    .map_init(Vec::new, |scratch, v| {
                        let cur = h[v].load(Ordering::Relaxed);
                        let vid = v as VertexId;
                        let deg = g.degree_of(vid);
                        let new_h = recompute_capped(g.neighbors_of(vid), deg, cur, h, scratch);
                        if new_h != cur {
                            h[v].store(new_h, Ordering::Relaxed);
                            1usize
                        } else {
                            0
                        }
                    })
                    .sum();
                read_time = t0.map(|t| telemetry::record_span(Phase::Sweep, t));
                changed
            }
        };
        self.note_phases(read_time, apply_time);
        telemetry::counter_add(Counter::HUpdatesApplied, changed as u64);
        changed
    }

    /// Attributes the measured read/apply durations to `last_phases` (for
    /// the caller's `RoundSample`). The telemetry phase buckets and span
    /// tree were already fed by `record_span` where each pass ended.
    fn note_phases(
        &mut self,
        read_time: Option<std::time::Duration>,
        apply_time: Option<std::time::Duration>,
    ) {
        if let Some(d) = read_time {
            self.last_phases.push(PhaseTime { phase: Phase::Sweep.name(), secs: d.as_secs_f64() });
        }
        if let Some(d) = apply_time {
            self.last_phases.push(PhaseTime { phase: Phase::Apply.name(), secs: d.as_secs_f64() });
        }
    }

    /// Seeds the frontier with every vertex (the state before the first
    /// sweep of a frontier-driven decomposition).
    pub fn seed_all_active(&mut self) {
        self.active.clear();
        self.active.extend(0..self.n as VertexId);
    }

    /// Current frontier size.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// One sweep over the current frontier, recording the changed vertices
    /// (for [`advance_frontier`](Self::advance_frontier)). Returns the
    /// number of changed vertices.
    pub fn sweep_frontier<G: NeighborAccess>(&mut self, g: &G, mode: SweepMode) -> usize {
        self.last_phases.clear();
        let enabled = telemetry::enabled();
        let read_time;
        let mut apply_time = None;
        let h = &self.h;
        match mode {
            SweepMode::Synchronous => {
                let len = self.active.len();
                self.staged.clear();
                self.staged.resize(len, 0);
                let t0 = enabled.then(Instant::now);
                self.active.par_iter().zip(self.staged.par_iter_mut()).for_each_init(
                    Vec::new,
                    |scratch, (&v, out)| {
                        let cur = h[v as usize].load(Ordering::Relaxed);
                        *out = recompute_capped(g.neighbors_of(v), g.degree_of(v), cur, h, scratch);
                    },
                );
                read_time = t0.map(|t| telemetry::record_span(Phase::Sweep, t));
                let t1 = enabled.then(Instant::now);
                self.changed = self
                    .active
                    .par_iter()
                    .zip(self.staged.par_iter())
                    .fold(Vec::new, |mut acc, (&v, &new_h)| {
                        let cur = h[v as usize].load(Ordering::Relaxed);
                        debug_assert!(new_h <= cur, "h-index increased at {v}");
                        if new_h != cur {
                            h[v as usize].store(new_h, Ordering::Relaxed);
                            acc.push(v);
                        }
                        acc
                    })
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                apply_time = t1.map(|t| telemetry::record_span(Phase::Apply, t));
            }
            SweepMode::Asynchronous => {
                let t0 = enabled.then(Instant::now);
                self.changed = self
                    .active
                    .par_iter()
                    .fold(
                        || (Vec::new(), Vec::new()),
                        |(mut acc, mut scratch), &v| {
                            let cur = h[v as usize].load(Ordering::Relaxed);
                            let new_h = recompute_capped(
                                g.neighbors_of(v),
                                g.degree_of(v),
                                cur,
                                h,
                                &mut scratch,
                            );
                            if new_h != cur {
                                h[v as usize].store(new_h, Ordering::Relaxed);
                                acc.push(v);
                            }
                            (acc, scratch)
                        },
                    )
                    .map(|(acc, _)| acc)
                    .reduce(Vec::new, |mut a, mut b| {
                        a.append(&mut b);
                        a
                    });
                read_time = t0.map(|t| telemetry::record_span(Phase::Sweep, t));
            }
        }
        self.note_phases(read_time, apply_time);
        telemetry::counter_add(Counter::HUpdatesApplied, self.changed.len() as u64);
        self.changed.len()
    }

    /// Replaces the frontier with the distinct neighbours of the vertices
    /// changed by the last [`sweep_frontier`](Self::sweep_frontier) —
    /// built in parallel (rayon fold/reduce with an atomic claim bitmap)
    /// instead of the seed's serial scan. The bitmap is reset before
    /// returning, so the workspace is sweep-ready again.
    pub fn advance_frontier<G: NeighborAccess>(&mut self, g: &G) {
        let _frontier = telemetry::span(Phase::Frontier);
        let mark = &self.mark;
        let next: Vec<VertexId> = self
            .changed
            .par_iter()
            .fold(Vec::new, |mut acc, &v| {
                for u in g.neighbors_of(v) {
                    if !mark[u as usize].swap(true, Ordering::Relaxed) {
                        acc.push(u);
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        next.par_iter().for_each(|&u| mark[u as usize].store(false, Ordering::Relaxed));
        telemetry::counter_add(Counter::FrontierEnqueues, next.len() as u64);
        self.active = next;
    }

    /// Adjacency entries the next **full** sweep will examine: the capped
    /// kernel skips vertices whose current h-value is zero, so only the
    /// remaining vertices contribute their degree. Deterministic in sync
    /// mode, where the h-state at every sweep boundary is
    /// schedule-independent. Only called while tracing.
    pub(crate) fn examined_full<G: NeighborAccess>(&self, g: &G) -> u64 {
        (0..self.n)
            .into_par_iter()
            .map(|v| {
                if self.h[v].load(Ordering::Relaxed) > 0 {
                    g.degree_of(v as VertexId) as u64
                } else {
                    0
                }
            })
            .sum()
    }

    /// Adjacency entries the next **frontier** sweep will examine (the
    /// active-list analogue of [`examined_full`](Self::examined_full)).
    fn examined_active<G: NeighborAccess>(&self, g: &G) -> u64 {
        self.active
            .par_iter()
            .map(|&v| {
                if self.h[v as usize].load(Ordering::Relaxed) > 0 {
                    g.degree_of(v) as u64
                } else {
                    0
                }
            })
            .sum()
    }

    /// Pushes one [`RoundSample`] for a completed sweep onto the active
    /// trace, carrying the sweep's phase breakdown. No-op when the recorder
    /// is disabled.
    pub(crate) fn record_sweep_round(
        &self,
        frontier_len: usize,
        edges_examined: u64,
        items_removed: usize,
    ) {
        if telemetry::enabled() {
            telemetry::record_round(RoundSample {
                round: telemetry::rounds_recorded() as u32,
                frontier_len,
                edges_examined,
                items_removed,
                alive_edges: None,
                phase_times: self.last_phases.clone(),
                ..RoundSample::default()
            });
        }
    }

    /// Runs sweeps to the fixpoint with full resweeps (faithful to
    /// Algorithm 1: every vertex recomputed every sweep — see DESIGN.md
    /// §2a), returning the number of sweeps in which a value changed.
    pub fn run_full<G: NeighborAccess>(&mut self, g: &G, mode: SweepMode) -> usize {
        self.bind(g);
        let mut iterations = 0usize;
        loop {
            let examined = if telemetry::enabled() { self.examined_full(g) } else { 0 };
            let changed = self.sweep_full(g, mode);
            self.record_sweep_round(self.n, examined, changed);
            if changed == 0 {
                break;
            }
            iterations += 1;
        }
        iterations
    }

    /// Runs sweeps to the fixpoint with frontier-driven resweeps (this
    /// reproduction's extension: after the first sweep only vertices with
    /// a changed neighbour are recomputed), returning the sweep count.
    pub fn run_frontier<G: NeighborAccess>(&mut self, g: &G, mode: SweepMode) -> usize {
        self.bind(g);
        self.seed_all_active();
        self.run_to_quiescence(g, mode)
    }

    /// Frontier sweeps to the fixpoint from the workspace's **current**
    /// h-state and frontier — no rebind, no reseed. The dynamic engine's
    /// inner loop: seed values with [`bind_seeded`](Self::bind_seeded) /
    /// [`set_h`](Self::set_h), pick the frontier with
    /// [`set_active`](Self::set_active), then converge. Returns the number
    /// of sweeps in which a value changed.
    pub fn run_to_quiescence<G: NeighborAccess>(&mut self, g: &G, mode: SweepMode) -> usize {
        let mut iterations = 0usize;
        loop {
            let frontier_len = self.active.len();
            let examined = if telemetry::enabled() { self.examined_active(g) } else { 0 };
            let changed = self.sweep_frontier(g, mode);
            self.record_sweep_round(frontier_len, examined, changed);
            if changed == 0 {
                break;
            }
            iterations += 1;
            self.advance_frontier(g);
        }
        iterations
    }

    /// [`run_full`](Self::run_full) behind runtime storage selection: the
    /// enum is matched **once** here, then the whole sweep loop runs in the
    /// monomorphised kernel for the chosen representation (plain CSR or
    /// fused delta-varint decode).
    pub fn run_full_storage(&mut self, storage: &UndirectedStorage<'_>, mode: SweepMode) -> usize {
        match storage {
            UndirectedStorage::Plain(g) => self.run_full(*g, mode),
            UndirectedStorage::Compressed(c) => self.run_full(*c, mode),
        }
    }

    /// [`run_frontier`](Self::run_frontier) behind runtime storage
    /// selection; see [`run_full_storage`](Self::run_full_storage).
    pub fn run_frontier_storage(
        &mut self,
        storage: &UndirectedStorage<'_>,
        mode: SweepMode,
    ) -> usize {
        match storage {
            UndirectedStorage::Plain(g) => self.run_frontier(*g, mode),
            UndirectedStorage::Compressed(c) => self.run_frontier(*c, mode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uds::bz::bz_decomposition;
    use dsd_graph::{UndirectedGraph, UndirectedGraphBuilder};

    fn filament_graph(seed: u64) -> UndirectedGraph {
        let base = dsd_graph::gen::chung_lu(300, 1500, 2.3, seed);
        dsd_graph::gen::attach_filaments(&base, 3, 40, seed + 1)
    }

    #[test]
    fn sync_full_fixpoint_is_core_numbers() {
        for seed in 0..4 {
            let g = filament_graph(seed);
            let mut ws = SweepWorkspace::new();
            ws.run_full(&g, SweepMode::Synchronous);
            assert_eq!(ws.h_values(), bz_decomposition(&g).core, "seed {seed}");
        }
    }

    #[test]
    fn async_full_fixpoint_is_core_numbers() {
        for seed in 0..4 {
            let g = filament_graph(seed + 10);
            let mut ws = SweepWorkspace::new();
            ws.run_full(&g, SweepMode::Asynchronous);
            assert_eq!(ws.h_values(), bz_decomposition(&g).core, "seed {seed}");
        }
    }

    #[test]
    fn frontier_modes_reach_the_same_fixpoint() {
        for seed in 0..4 {
            let g = filament_graph(seed + 20);
            let core = bz_decomposition(&g).core;
            let mut ws = SweepWorkspace::new();
            ws.run_frontier(&g, SweepMode::Synchronous);
            assert_eq!(ws.h_values(), core, "sync seed {seed}");
            ws.run_frontier(&g, SweepMode::Asynchronous);
            assert_eq!(ws.h_values(), core, "async seed {seed}");
        }
    }

    #[test]
    fn sync_frontier_iterations_match_full() {
        // Recomputing an unchanged neighbourhood is a no-op, so the
        // frontier schedule changes nothing observable in sync mode.
        let g = filament_graph(30);
        let mut ws = SweepWorkspace::new();
        let full = ws.run_full(&g, SweepMode::Synchronous);
        let frontier = ws.run_frontier(&g, SweepMode::Synchronous);
        assert_eq!(full, frontier);
    }

    #[test]
    fn async_needs_no_more_sweeps_than_sync() {
        for seed in 0..4 {
            let g = filament_graph(seed + 40);
            let mut ws = SweepWorkspace::new();
            let sync = ws.run_full(&g, SweepMode::Synchronous);
            let async_sweeps = ws.run_full(&g, SweepMode::Asynchronous);
            assert!(async_sweeps <= sync, "async {async_sweeps} vs sync {sync} (seed {seed})");
        }
    }

    #[test]
    fn workspace_reuse_across_graphs() {
        let mut ws = SweepWorkspace::new();
        let small =
            UndirectedGraphBuilder::new(4).add_edges([(0, 1), (1, 2), (2, 3)]).build().unwrap();
        ws.run_full(&small, SweepMode::Synchronous);
        assert_eq!(ws.h_values(), bz_decomposition(&small).core);
        let big = filament_graph(50);
        ws.run_full(&big, SweepMode::Synchronous);
        assert_eq!(ws.h_values(), bz_decomposition(&big).core);
        // And shrink back down again.
        ws.run_full(&small, SweepMode::Synchronous);
        assert_eq!(ws.h_values(), bz_decomposition(&small).core);
    }

    #[test]
    fn capped_kernel_matches_uncapped_on_random_values() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut scratch = Vec::new();
        for _ in 0..300 {
            let len = rng.gen_range(0..25);
            let vals: Vec<u32> = (0..len).map(|_| rng.gen_range(0..15)).collect();
            let exact = crate::uds::local::h_index_counting(&vals, &mut scratch);
            // Build a tiny star graph whose centre sees exactly `vals`.
            let mut b = UndirectedGraphBuilder::new(len + 1);
            for leaf in 0..len as u32 {
                b.push_edge(len as u32, leaf);
            }
            let g = b.build().unwrap();
            let h: Vec<AtomicU32> = vals
                .iter()
                .map(|&x| AtomicU32::new(x))
                .chain(std::iter::once(AtomicU32::new(len as u32)))
                .collect();
            // cur = deg upper-bounds the h-index, so capping is exact.
            let nbrs = g.neighbors(len as u32);
            let capped =
                recompute_capped(nbrs.iter().copied(), nbrs.len(), len as u32, &h, &mut scratch);
            assert_eq!(capped, exact, "values {vals:?}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(0).build().unwrap();
        let mut ws = SweepWorkspace::new();
        assert_eq!(ws.run_full(&g, SweepMode::Synchronous), 0);
        assert!(ws.h_values().is_empty());
    }

    #[test]
    fn compressed_storage_matches_plain_bit_for_bit() {
        for seed in 0..3 {
            let g = filament_graph(seed + 60);
            let c = dsd_graph::CompressedCsr::from_graph(&g);
            let mut ws = SweepWorkspace::new();
            let plain_iters = ws.run_full(&g, SweepMode::Synchronous);
            let plain = ws.h_values();
            let fused_iters =
                ws.run_full_storage(&UndirectedStorage::Compressed(&c), SweepMode::Synchronous);
            assert_eq!(ws.h_values(), plain, "seed {seed}");
            assert_eq!(fused_iters, plain_iters, "seed {seed}");
            ws.run_frontier_storage(&UndirectedStorage::Compressed(&c), SweepMode::Synchronous);
            assert_eq!(ws.h_values(), plain, "frontier seed {seed}");
            ws.run_full_storage(&UndirectedStorage::Plain(&g), SweepMode::Synchronous);
            assert_eq!(ws.h_values(), plain, "plain storage seed {seed}");
        }
    }
}
