//! Iterative near-optimal UDS engine: Greedy++ and FISTA with certified
//! `(1+ε)` early stopping.
//!
//! Both algorithms work the densest-subgraph LP dual: each edge carries one
//! unit of mass split between its endpoints, and minimising the maximum
//! vertex load is dual to maximising the density. For **any** feasible
//! split with load vector `b`, every set `S` satisfies
//! `Σ_{v∈S} b_v ≥ |E(S)|` (each inside edge contributes its whole unit),
//! so `max_v b_v ≥ ρ(S)` — a certified upper bound on the optimum ρ*.
//!
//! * **Greedy++** (Boob et al. WWW 2020): repeated load-augmented peels on
//!   the reusable [`charikar`](crate::uds::charikar) bucket machinery —
//!   round `t` peels by `load + degree` and charges each popped vertex its
//!   current degree, so `loads / t` is the average of `t` integral edge
//!   orientations and `max_v loads_v / t` is the dual bound above. The
//!   loads are one persistent `u64` array; no per-round allocation.
//! * **FISTA** (Harb et al. NeurIPS 2022): parallel projected gradient on
//!   `f(x) = Σ_v b_v(x)²` over per-edge orientation fractions
//!   `x_e ∈ [0,1]`, with Nesterov momentum
//!   `t_{k+1} = (1 + √(1+4t_k²))/2` and step `1/L`,
//!   `L = 2·max_e (deg u + deg v)` (a Gershgorin bound on `2AᵀA`). The
//!   clamped iterate is always feasible, so its max load is again a valid
//!   dual bound; the answer set is the densest prefix of the
//!   load-descending order (standard fractional peeling).
//!
//! The certified driver stops as soon as
//! `best_density · (1+ε) ≥ upper_bound`; with [`CertifyMode::Exact`] it
//! then hands the incumbent to the push-relabel oracle
//! ([`dsd_flow::uds_certify_incumbent`]), which probes the decision
//! network at the incumbent's exact rational density — one or two min-cut
//! calls instead of the full binary search.
//!
//! Everything is generic over [`NeighborAccess`], so plain and compressed
//! CSR run the same fused-decode kernels with bit-identical results at any
//! rayon pool size (Greedy++ is a serial peel per round; FISTA's parallel
//! stages keep a fixed per-vertex summation order).

use dsd_graph::{NeighborAccess, UndirectedGraph, UndirectedStorage, VertexId};
use dsd_telemetry::{self as telemetry, Counter, Phase, RoundSample};
use rayon::prelude::*;

use crate::stats::{timed, Stats};
use crate::uds::charikar::{peel_augmented, PeelScratch};
use crate::uds::UdsResult;

/// How the driver should certify the answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertifyMode {
    /// Run the full iteration budget; report the dual bound but never stop
    /// early and attach no certificate.
    None,
    /// Stop as soon as `best · (1+ε) ≥ upper_bound`; the certificate is
    /// the load-vector dual bound.
    Dual,
    /// As [`CertifyMode::Dual`], then certify (or improve to) the exact
    /// optimum with the push-relabel oracle seeded by the incumbent.
    Exact,
}

/// Configuration for [`greedy_pp`] / [`fista`].
#[derive(Clone, Copy, Debug)]
pub struct IterateConfig {
    /// Maximum number of rounds (default 100).
    pub iterations: usize,
    /// Target approximation slack ε in the stop rule
    /// `best · (1+ε) ≥ upper_bound` (default 0.01).
    pub epsilon: f64,
    /// Certification mode (default [`CertifyMode::Dual`]).
    pub certify: CertifyMode,
}

impl Default for IterateConfig {
    fn default() -> Self {
        Self { iterations: 100, epsilon: 0.01, certify: CertifyMode::Dual }
    }
}

/// What the driver can promise about the returned density.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Certificate {
    /// Iteration budget exhausted before the dual gap closed (or
    /// certification was off); `upper_bound` still brackets ρ*.
    Uncertified,
    /// `ρ* ≤ upper_bound ≤ density · (1+ε)` by the load-vector dual.
    DualGap {
        /// The certified dual upper bound on ρ*.
        upper_bound: f64,
        /// The ε the bound was closed against.
        epsilon: f64,
    },
    /// The returned set is exactly optimal, certified by min-cut probes.
    Exact {
        /// Number of flow probes certification cost.
        flow_probes: usize,
        /// Whether the oracle improved on the iterative incumbent (false
        /// means the incumbent was already exactly optimal).
        improved: bool,
    },
}

/// One `(best-so-far density, dual upper bound)` observation per round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundPoint {
    /// Best density seen up to and including this round.
    pub density: f64,
    /// Tightest dual upper bound seen up to and including this round.
    pub upper_bound: f64,
}

/// Result of an iterative near-optimal run.
#[derive(Clone, Debug)]
pub struct IterativeResult {
    /// The answer subgraph (vertices, density, stats; `stats.iterations`
    /// is the number of rounds actually run).
    pub result: UdsResult,
    /// Tightest load-vector dual upper bound on ρ* observed.
    pub upper_bound: f64,
    /// Rounds actually run (≤ `config.iterations` under early stopping).
    pub rounds: usize,
    /// What the run certifies about `result.density`.
    pub certificate: Certificate,
    /// Per-round `(best density, dual bound)` trajectory, for
    /// iterations-to-ε accounting.
    pub history: Vec<RoundPoint>,
    /// Greedy++ per-vertex load accumulator at exit (empty for FISTA and
    /// trivial runs). Feed it back as the `prior` of
    /// [`greedy_pp_warm`] to warm-start on an updated graph version: the
    /// peel reuses the accumulated bias while the dual bound is taken
    /// over `loads − prior` only, so it stays valid for the new graph.
    pub loads: Vec<u64>,
}

/// Kernel-agnostic per-run accumulator shared by both algorithms.
struct Progress {
    best_set: Vec<VertexId>,
    best_density: f64,
    best_edges: usize,
    upper: f64,
    history: Vec<RoundPoint>,
    gap_certified: bool,
}

impl Progress {
    fn new(iterations: usize) -> Self {
        Self {
            best_set: Vec::new(),
            best_density: 0.0,
            best_edges: 0,
            upper: f64::INFINITY,
            history: Vec::with_capacity(iterations),
            gap_certified: false,
        }
    }

    /// Folds one round in: keeps the best-so-far answer monotone, tightens
    /// the dual bound, records telemetry, and answers whether the
    /// `(1+ε)` stop rule fires.
    fn absorb_round(
        &mut self,
        density: f64,
        edges: usize,
        set: &[VertexId],
        round_upper: f64,
        cfg: &IterateConfig,
        work: RoundWork,
    ) -> bool {
        if density > self.best_density || self.best_set.is_empty() {
            self.best_density = density;
            self.best_edges = edges;
            self.best_set.clear();
            self.best_set.extend_from_slice(set);
        }
        if round_upper < self.upper {
            self.upper = round_upper;
        }
        self.history.push(RoundPoint { density: self.best_density, upper_bound: self.upper });
        if telemetry::enabled() {
            telemetry::counter_add(Counter::LoadsUpdated, work.loads_updated);
            telemetry::record_round(RoundSample {
                round: telemetry::rounds_recorded() as u32,
                frontier_len: work.frontier_len,
                edges_examined: work.edges_examined,
                items_removed: work.items_removed,
                alive_edges: None,
                density: Some(self.best_density),
                dual_bound: Some(self.upper),
                phase_times: Vec::new(),
            });
        }
        if cfg.certify != CertifyMode::None && self.best_density * (1.0 + cfg.epsilon) >= self.upper
        {
            self.gap_certified = true;
            return true;
        }
        false
    }
}

/// Per-round work figures handed to telemetry.
struct RoundWork {
    loads_updated: u64,
    frontier_len: usize,
    edges_examined: u64,
    items_removed: usize,
}

struct RawOutcome {
    vertices: Vec<VertexId>,
    density: f64,
    edges: usize,
    upper_bound: f64,
    rounds: usize,
    gap_certified: bool,
    history: Vec<RoundPoint>,
    loads: Vec<u64>,
}

impl RawOutcome {
    fn trivial() -> Self {
        Self {
            vertices: Vec::new(),
            density: 0.0,
            edges: 0,
            upper_bound: 0.0,
            rounds: 0,
            gap_certified: true,
            history: Vec::new(),
            loads: Vec::new(),
        }
    }

    fn from_progress(p: Progress, rounds: usize) -> Self {
        let mut vertices = p.best_set;
        vertices.sort_unstable();
        Self {
            vertices,
            density: p.best_density,
            edges: p.best_edges,
            upper_bound: p.upper,
            rounds,
            gap_certified: p.gap_certified,
            history: p.history,
            loads: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Greedy++
// ---------------------------------------------------------------------------

fn run_greedy_pp<G: NeighborAccess>(
    g: &G,
    cfg: &IterateConfig,
    prior: Option<&[u64]>,
) -> RawOutcome {
    let n = g.vertex_count();
    let m = (g.arc_count() / 2) as usize;
    if n == 0 || m == 0 {
        return RawOutcome::trivial();
    }
    // Warm start: the accumulated loads of a previous graph version bias
    // the peel order from round one, but they are *not* orientations of
    // the current graph — the dual bound below must therefore be taken
    // over the load mass added here (`loads − prior`), which is a sum of
    // `t` valid orientations of the current graph.
    let mut loads = match prior {
        Some(p) => {
            assert_eq!(p.len(), n, "prior load vector length must match the vertex count");
            p.to_vec()
        }
        None => vec![0u64; n],
    };
    let mut scratch = PeelScratch::new();
    let mut progress = Progress::new(cfg.iterations);
    let mut rounds = 0usize;
    for t in 1..=cfg.iterations.max(1) {
        let outcome = {
            let _peel = telemetry::span(Phase::IteratePeel);
            peel_augmented(g, Some(&mut loads), &mut scratch)
        };
        rounds = t;
        // (loads − prior) / t averages t integral orientations — feasible,
        // so its max entry bounds ρ* from above.
        let max_load = match prior {
            Some(p) => loads.iter().zip(p).map(|(&l, &b)| l - b).max().unwrap_or(0),
            None => loads.iter().copied().max().unwrap_or(0),
        };
        let upper = max_load as f64 / t as f64;
        let set = &scratch.order()[n - outcome.best_len..];
        let stop = progress.absorb_round(
            outcome.best_density,
            outcome.best_edges,
            set,
            upper,
            cfg,
            RoundWork {
                loads_updated: n as u64,
                frontier_len: n,
                edges_examined: g.arc_count(),
                items_removed: n,
            },
        );
        if stop {
            break;
        }
    }
    let mut raw = RawOutcome::from_progress(progress, rounds);
    raw.loads = loads;
    raw
}

// ---------------------------------------------------------------------------
// FISTA
// ---------------------------------------------------------------------------

/// Edge list plus per-vertex incidence CSR, built once per run. The
/// incidence order is fixed by construction, so the parallel per-vertex
/// load recompute sums in a deterministic order for any pool size.
struct EdgeSpace {
    edges: Vec<(VertexId, VertexId)>,
    inc_off: Vec<usize>,
    inc: Vec<u32>,
}

impl EdgeSpace {
    fn build<G: NeighborAccess>(g: &G) -> Self {
        let n = g.vertex_count();
        let mut edges = Vec::with_capacity((g.arc_count() / 2) as usize);
        for v in 0..n as VertexId {
            for u in g.neighbors_of(v) {
                if u > v {
                    edges.push((v, u));
                }
            }
        }
        assert!(edges.len() <= u32::MAX as usize, "FISTA incidence index is u32");
        let mut inc_off = vec![0usize; n + 1];
        for &(u, v) in &edges {
            inc_off[u as usize + 1] += 1;
            inc_off[v as usize + 1] += 1;
        }
        for i in 1..=n {
            inc_off[i] += inc_off[i - 1];
        }
        let mut cursor = inc_off.clone();
        let mut inc = vec![0u32; edges.len() * 2];
        for (e, &(u, v)) in edges.iter().enumerate() {
            inc[cursor[u as usize]] = e as u32;
            cursor[u as usize] += 1;
            inc[cursor[v as usize]] = e as u32;
            cursor[v as usize] += 1;
        }
        Self { edges, inc_off, inc }
    }

    /// `load[v] = Σ_{e ∋ v} mass of e assigned to v` — parallel over
    /// vertices, serial (deterministic) within each vertex.
    fn loads(&self, x: &[f64], load: &mut [f64]) {
        load.par_iter_mut().enumerate().for_each(|(v, l)| {
            let mut acc = 0.0f64;
            for &ei in &self.inc[self.inc_off[v]..self.inc_off[v + 1]] {
                let e = ei as usize;
                let (u, _) = self.edges[e];
                acc += if u as usize == v { x[e] } else { 1.0 - x[e] };
            }
            *l = acc;
        });
    }
}

/// Densest prefix of the load-descending vertex order (fractional
/// peeling) — the generic-storage version of `pfw::extract`.
fn extract_prefix<G: NeighborAccess>(
    g: &G,
    load: &[f64],
    order: &mut Vec<VertexId>,
    rank: &mut Vec<usize>,
) -> (usize, f64, usize) {
    let n = g.vertex_count();
    order.clear();
    order.extend(0..n as VertexId);
    order.par_sort_unstable_by(|&a, &b| {
        load[b as usize].partial_cmp(&load[a as usize]).expect("loads are finite").then(a.cmp(&b))
    });
    rank.clear();
    rank.resize(n, usize::MAX);
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i;
    }
    let mut best_density = 0.0f64;
    let mut best_len = 0usize;
    let mut best_edges = 0usize;
    let mut edges_inside = 0usize;
    for (i, &v) in order.iter().enumerate() {
        edges_inside += g.neighbors_of(v).filter(|&u| rank[u as usize] < i).count();
        let density = edges_inside as f64 / (i + 1) as f64;
        if density > best_density {
            best_density = density;
            best_len = i + 1;
            best_edges = edges_inside;
        }
    }
    (best_len, best_density, best_edges)
}

fn run_fista<G: NeighborAccess>(g: &G, cfg: &IterateConfig) -> RawOutcome {
    let n = g.vertex_count();
    let m = (g.arc_count() / 2) as usize;
    if n == 0 || m == 0 {
        return RawOutcome::trivial();
    }
    let space = EdgeSpace::build(g);
    let l_max = space
        .edges
        .iter()
        .map(|&(u, v)| g.degree_of(u) as u64 + g.degree_of(v) as u64)
        .max()
        .expect("non-empty edge list");
    let eta = 1.0 / (2.0 * l_max as f64);
    let mut x = vec![0.5f64; m];
    let mut x_prev = x.clone();
    let mut y = x.clone();
    let mut load_y = vec![0.0f64; n];
    let mut load_x = vec![0.0f64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut rank: Vec<usize> = Vec::with_capacity(n);
    let mut tk = 1.0f64;
    let mut progress = Progress::new(cfg.iterations);
    let mut rounds = 0usize;
    for t in 1..=cfg.iterations.max(1) {
        {
            let _grad = telemetry::span(Phase::IterateGradient);
            space.loads(&y, &mut load_y);
            std::mem::swap(&mut x, &mut x_prev);
            let edges = &space.edges;
            let ly = &load_y;
            let yv = &y;
            x.par_iter_mut().enumerate().for_each(|(e, xe)| {
                let (u, v) = edges[e];
                let grad = 2.0 * (ly[u as usize] - ly[v as usize]);
                *xe = (yv[e] - eta * grad).clamp(0.0, 1.0);
            });
            let tk1 = 0.5 * (1.0 + (1.0 + 4.0 * tk * tk).sqrt());
            let momentum = (tk - 1.0) / tk1;
            let xc = &x;
            let xp = &x_prev;
            y.par_iter_mut().enumerate().for_each(|(e, ye)| {
                *ye = xc[e] + momentum * (xc[e] - xp[e]);
            });
            tk = tk1;
        }
        rounds = t;
        let (best_len, density, edges) = {
            let _extract = telemetry::span(Phase::IterateExtract);
            space.loads(&x, &mut load_x);
            extract_prefix(g, &load_x, &mut order, &mut rank)
        };
        // x is clamped to [0,1], hence feasible: its max load bounds ρ*.
        let upper = load_x.iter().copied().fold(0.0f64, f64::max);
        let stop = progress.absorb_round(
            density,
            edges,
            &order[..best_len],
            upper,
            cfg,
            RoundWork {
                loads_updated: m as u64,
                frontier_len: m,
                edges_examined: 2 * m as u64,
                items_removed: best_len,
            },
        );
        if stop {
            break;
        }
    }
    RawOutcome::from_progress(progress, rounds)
}

// ---------------------------------------------------------------------------
// Certified driver
// ---------------------------------------------------------------------------

fn finish(
    storage: &UndirectedStorage<'_>,
    cfg: &IterateConfig,
    raw: RawOutcome,
) -> IterativeResult {
    let mut vertices = raw.vertices;
    let mut density = raw.density;
    let mut edges = raw.edges;
    let certificate = match cfg.certify {
        CertifyMode::None => Certificate::Uncertified,
        CertifyMode::Dual if raw.gap_certified => {
            Certificate::DualGap { upper_bound: raw.upper_bound, epsilon: cfg.epsilon }
        }
        CertifyMode::Dual => Certificate::Uncertified,
        CertifyMode::Exact => {
            let _certify = telemetry::span(Phase::IterateCertify);
            let owned;
            let plain: &UndirectedGraph = match storage {
                UndirectedStorage::Plain(g) => g,
                UndirectedStorage::Compressed(c) => {
                    owned = c.decompress();
                    &owned
                }
            };
            let cert = dsd_flow::uds_certify_incumbent(plain, &vertices);
            vertices = cert.result.vertices;
            density = cert.result.density;
            edges = crate::density::set_edges_and_density(plain, &vertices).0;
            Certificate::Exact { flow_probes: cert.flow_probes, improved: cert.improved }
        }
    };
    IterativeResult {
        result: UdsResult {
            vertices,
            density,
            stats: Stats { iterations: raw.rounds, edges_result: Some(edges), ..Stats::default() },
        },
        upper_bound: raw.upper_bound,
        rounds: raw.rounds,
        certificate,
        history: raw.history,
        loads: raw.loads,
    }
}

/// Greedy++ over either storage representation.
pub fn greedy_pp_storage(storage: &UndirectedStorage<'_>, cfg: &IterateConfig) -> IterativeResult {
    greedy_pp_warm_storage(storage, cfg, None)
}

/// Greedy++ with an optional warm-start load vector — typically the
/// [`IterativeResult::loads`] of a run on a previous version of the same
/// graph (same vertex count). The prior biases the peel order from round
/// one; the dual upper bound is computed over the load mass added by
/// *this* run only, so it remains a valid bound on the current graph's
/// ρ* (see `run_greedy_pp`).
pub fn greedy_pp_warm_storage(
    storage: &UndirectedStorage<'_>,
    cfg: &IterateConfig,
    prior: Option<&[u64]>,
) -> IterativeResult {
    let (mut out, wall) = timed(|| {
        let raw = match storage {
            UndirectedStorage::Plain(g) => run_greedy_pp(*g, cfg, prior),
            UndirectedStorage::Compressed(c) => run_greedy_pp(*c, cfg, prior),
        };
        finish(storage, cfg, raw)
    });
    out.result.stats.wall = wall;
    out
}

/// Greedy++ on a plain graph (thin wrapper over [`greedy_pp_storage`]).
pub fn greedy_pp(g: &UndirectedGraph, cfg: &IterateConfig) -> IterativeResult {
    greedy_pp_storage(&UndirectedStorage::Plain(g), cfg)
}

/// [`greedy_pp_warm_storage`] on a plain graph.
pub fn greedy_pp_warm(
    g: &UndirectedGraph,
    cfg: &IterateConfig,
    prior: Option<&[u64]>,
) -> IterativeResult {
    greedy_pp_warm_storage(&UndirectedStorage::Plain(g), cfg, prior)
}

/// FISTA over either storage representation.
pub fn fista_storage(storage: &UndirectedStorage<'_>, cfg: &IterateConfig) -> IterativeResult {
    let (mut out, wall) = timed(|| {
        let raw = match storage {
            UndirectedStorage::Plain(g) => run_fista(*g, cfg),
            UndirectedStorage::Compressed(c) => run_fista(*c, cfg),
        };
        finish(storage, cfg, raw)
    });
    out.result.stats.wall = wall;
    out
}

/// FISTA on a plain graph (thin wrapper over [`fista_storage`]).
pub fn fista(g: &UndirectedGraph, cfg: &IterateConfig) -> IterativeResult {
    fista_storage(&UndirectedStorage::Plain(g), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::undirected_density;

    fn cfg(iterations: usize, epsilon: f64, certify: CertifyMode) -> IterateConfig {
        IterateConfig { iterations, epsilon, certify }
    }

    #[test]
    fn greedy_pp_first_round_matches_charikar() {
        let g = dsd_graph::gen::chung_lu(200, 1000, 2.3, 5);
        let one = greedy_pp(&g, &cfg(1, 0.0, CertifyMode::None));
        let ch = crate::uds::charikar::charikar(&g);
        assert_eq!(one.result.vertices, ch.vertices);
        assert_eq!(one.result.density.to_bits(), ch.density.to_bits());
    }

    #[test]
    fn greedy_pp_dual_bound_brackets_exact() {
        for seed in 0..4 {
            let g = dsd_graph::gen::erdos_renyi(60, 240, seed + 30);
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dsd_flow::uds_exact(&g);
            let r = greedy_pp(&g, &cfg(30, 0.001, CertifyMode::Dual));
            assert!(r.result.density <= exact.density + 1e-9);
            let (ub, opt) = (r.upper_bound, exact.density);
            assert!(ub + 1e-9 >= opt, "ub {ub} < ρ* {opt}");
        }
    }

    #[test]
    fn fista_dual_bound_brackets_exact() {
        for seed in 0..3 {
            let g = dsd_graph::gen::erdos_renyi(50, 220, seed + 60);
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dsd_flow::uds_exact(&g);
            let r = fista(&g, &cfg(200, 0.01, CertifyMode::Dual));
            assert!(r.result.density <= exact.density + 1e-9);
            let (ub, opt) = (r.upper_bound, exact.density);
            assert!(ub + 1e-9 >= opt, "ub {ub} < ρ* {opt}");
        }
    }

    #[test]
    fn dual_gap_certificate_is_sound() {
        let g = dsd_graph::gen::planted_dense(300, 500, 18, 1.0, 42);
        let eps = 0.05;
        let r = greedy_pp(&g, &cfg(200, eps, CertifyMode::Dual));
        if let Certificate::DualGap { upper_bound, epsilon } = r.certificate {
            let exact = dsd_flow::uds_exact(&g);
            assert!(exact.density <= (1.0 + epsilon) * r.result.density + 1e-9);
            assert!(upper_bound + 1e-9 >= exact.density);
        } else {
            panic!("expected a dual-gap certificate, got {:?}", r.certificate);
        }
    }

    #[test]
    fn exact_certification_reaches_the_optimum() {
        for seed in 0..3 {
            let g = dsd_graph::gen::erdos_renyi(70, 300, seed + 90);
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dsd_flow::uds_exact(&g);
            for r in [
                greedy_pp(&g, &cfg(50, 0.1, CertifyMode::Exact)),
                fista(&g, &cfg(150, 0.1, CertifyMode::Exact)),
            ] {
                assert!((r.result.density - exact.density).abs() < 1e-12);
                assert!(matches!(r.certificate, Certificate::Exact { .. }));
                let actual = undirected_density(&g, &r.result.vertices);
                assert!((actual - r.result.density).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn best_so_far_is_monotone() {
        let g = dsd_graph::gen::chung_lu(150, 700, 2.2, 8);
        for r in [
            greedy_pp(&g, &cfg(25, 0.0, CertifyMode::None)),
            fista(&g, &cfg(60, 0.0, CertifyMode::None)),
        ] {
            for w in r.history.windows(2) {
                assert!(w[1].density + 1e-15 >= w[0].density);
                assert!(w[1].upper_bound <= w[0].upper_bound + 1e-15);
            }
            assert_eq!(r.history.len(), r.rounds);
        }
    }

    #[test]
    fn compressed_storage_is_bit_identical() {
        let g = dsd_graph::gen::chung_lu(180, 900, 2.4, 12);
        let c = dsd_graph::CompressedCsr::from_graph(&g);
        let config = cfg(20, 0.01, CertifyMode::Dual);
        let gp = greedy_pp_storage(&UndirectedStorage::Plain(&g), &config);
        let gc = greedy_pp_storage(&UndirectedStorage::Compressed(&c), &config);
        assert_eq!(gp.result.vertices, gc.result.vertices);
        assert_eq!(gp.result.density.to_bits(), gc.result.density.to_bits());
        assert_eq!(gp.upper_bound.to_bits(), gc.upper_bound.to_bits());
        let fp = fista_storage(&UndirectedStorage::Plain(&g), &config);
        let fc = fista_storage(&UndirectedStorage::Compressed(&c), &config);
        assert_eq!(fp.result.vertices, fc.result.vertices);
        assert_eq!(fp.result.density.to_bits(), fc.result.density.to_bits());
        assert_eq!(fp.upper_bound.to_bits(), fc.upper_bound.to_bits());
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = dsd_graph::UndirectedGraphBuilder::new(4).build().unwrap();
        for r in [greedy_pp(&g, &IterateConfig::default()), fista(&g, &IterateConfig::default())] {
            assert_eq!(r.result.density, 0.0);
            assert!(r.result.vertices.is_empty());
            assert_eq!(r.rounds, 0);
        }
    }

    #[test]
    fn clique_certifies_in_one_round() {
        let mut b = dsd_graph::UndirectedGraphBuilder::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.push_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        // K6: ρ* = 15/6 = 2.5; round 1 already achieves it and the dual
        // bound (degeneracy 5... loads/1) needs a few rounds to tighten,
        // so run with exact certification and check the probe count.
        let r = greedy_pp(&g, &cfg(50, 0.01, CertifyMode::Exact));
        assert!((r.result.density - 2.5).abs() < 1e-12);
        if let Certificate::Exact { flow_probes, improved } = r.certificate {
            assert!(flow_probes <= 2, "expected 1-2 probes, got {flow_probes}");
            assert!(!improved);
        } else {
            panic!("expected exact certificate");
        }
    }

    #[test]
    fn warm_start_dual_bound_stays_valid_across_versions() {
        use dsd_graph::delta::{apply_undirected, DeltaBatch};
        let g = dsd_graph::gen::chung_lu(150, 600, 2.3, 7);
        let cold = greedy_pp(&g, &cfg(30, 0.001, CertifyMode::Dual));
        assert_eq!(cold.loads.len(), g.num_vertices());

        // Churn: drop five edges, add five non-edges.
        let removes: Vec<_> = g.edges().take(5).collect();
        let mut inserts = Vec::new();
        'outer: for u in 0..g.num_vertices() as u32 {
            for v in (u + 1)..g.num_vertices() as u32 {
                if !g.has_edge(u, v) {
                    inserts.push((u, v));
                    if inserts.len() == 5 {
                        break 'outer;
                    }
                }
            }
        }
        let batch = DeltaBatch::new(inserts, removes).unwrap();
        let g2 = apply_undirected(&g, &batch).unwrap();

        let warm = greedy_pp_warm(&g2, &cfg(30, 0.001, CertifyMode::Dual), Some(&cold.loads));
        // The reseeded run's dual bound must still bracket the *new*
        // graph's optimum: compare against the flow-certified density.
        let exact = greedy_pp(&g2, &cfg(60, 0.0, CertifyMode::Exact));
        assert!(
            warm.upper_bound >= exact.result.density - 1e-9,
            "warm dual bound {} fell below the exact optimum {}",
            warm.upper_bound,
            exact.result.density
        );
        assert!(warm.result.density <= warm.upper_bound + 1e-9);
        // Loads carry the prior mass forward (monotone accumulation).
        assert!(warm.loads.iter().zip(&cold.loads).all(|(w, c)| w >= c));
        // Cold restart on the same graph must also stay bracketed — the
        // two runs agree on validity, not necessarily on the bound value.
        let cold2 = greedy_pp(&g2, &cfg(30, 0.001, CertifyMode::Dual));
        assert!(cold2.upper_bound >= exact.result.density - 1e-9);
    }
}
