//! PKMC — the paper's Algorithm 2: parallel `k*`-core computation with the
//! Theorem-1 early stop.
//!
//! PKMC runs the same synchronous h-index sweeps as [`crate::uds::local`]
//! (through the shared zero-allocation
//! [`sweep engine`](crate::uds::sweep)), but instead of waiting for
//! *every* vertex's h-index to converge to its core number, it watches
//! only the maximum h-index `h_max` and the number `s` of vertices
//! attaining it:
//!
//! * **Proposition 1 guard** (Algorithm 2, line 12): the `k*`-core has at
//!   least `k* + 1` vertices, so while `s ≤ h_max` the candidate set cannot
//!   be the `k*`-core yet and the stop check is skipped.
//! * **Theorem 1 stop** (lines 13–14): if `h_max` and `s` are unchanged
//!   between two consecutive sweeps, `k* = h_max` and the subgraph induced
//!   by `{v : h(v) = h_max}` is the `k*`-core.
//!
//! On the power-law graphs the paper targets this fires after single-digit
//! sweeps (Table 6), while full convergence takes tens to thousands.
//!
//! **Safety addition (this implementation):** Theorem 1's stop criterion is
//! a *heuristic certificate*; before stopping we optionally verify that the
//! candidate set really induces minimum degree ≥ `h_max` (which proves
//! `k* = h_max` and that the set is a `k*`-core — see DESIGN.md §2). If the
//! cheap check fails, the iteration simply continues; at full convergence
//! the candidate set is exactly the `k*`-core and the check always passes,
//! so the algorithm terminates with a *correct* answer on every input.
//! Toggle with [`PkmcConfig::verify_candidate`].
//!
//! **Sweep-mode ablation:** [`PkmcConfig::mode`] selects the engine's
//! schedule. The default [`SweepMode::Synchronous`] is the paper's
//! Algorithm 2 (deterministic across thread counts); the opt-in
//! [`SweepMode::Asynchronous`] reads freshly-written h-values within a
//! sweep and typically needs fewer sweeps before the Theorem-1 monitors
//! stabilise. The h-iteration stays monotone in async mode, so with
//! `verify_candidate` (the default) every stop remains certified.

use dsd_graph::{NeighborAccess, UndirectedGraph, UndirectedStorage, VertexId};
use dsd_telemetry::{self as telemetry, Phase};
use rayon::prelude::*;

use crate::density::set_edges_and_density;
use crate::stats::{timed, Stats};
use crate::uds::sweep::{SweepMode, SweepWorkspace};
use crate::uds::UdsResult;

/// Configuration for [`pkmc_with`].
#[derive(Clone, Copy, Debug)]
pub struct PkmcConfig {
    /// Verify that the Theorem-1 candidate set induces min degree ≥ `h_max`
    /// before stopping (default `true`). With `false` the algorithm is
    /// exactly the paper's Algorithm 2.
    pub verify_candidate: bool,
    /// Sweep schedule (default [`SweepMode::Synchronous`], the paper's
    /// Algorithm 2; see the module docs for the async ablation).
    pub mode: SweepMode,
}

impl PkmcConfig {
    /// The default configuration: verified stops, synchronous sweeps.
    pub fn new() -> Self {
        Self { verify_candidate: true, mode: SweepMode::Synchronous }
    }
}

impl Default for PkmcConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of PKMC: the `k*`-core as a 2-approximate UDS.
#[derive(Clone, Debug)]
pub struct PkmcResult {
    /// Vertices of the `k*`-core (sorted ids).
    pub vertices: Vec<VertexId>,
    /// The maximum core number `k*`.
    pub k_star: u32,
    /// Density of the returned subgraph.
    pub density: f64,
    /// Whether the Theorem-1 early stop fired (vs running to convergence).
    pub early_stopped: bool,
    /// Execution statistics (`iterations` = h-index sweeps performed).
    pub stats: Stats,
}

impl From<PkmcResult> for UdsResult {
    fn from(r: PkmcResult) -> Self {
        UdsResult { vertices: r.vertices, density: r.density, stats: r.stats }
    }
}

/// Runs PKMC with the default (verified, synchronous) configuration.
pub fn pkmc(g: &UndirectedGraph) -> PkmcResult {
    pkmc_with(g, PkmcConfig::new())
}

/// Runs PKMC (Algorithm 2).
pub fn pkmc_with(g: &UndirectedGraph, config: PkmcConfig) -> PkmcResult {
    pkmc_in(g, config, &mut SweepWorkspace::new())
}

/// [`pkmc_with`] behind runtime storage selection: the enum is matched
/// once, then the whole run — sweeps, monitors, candidate verification and
/// the density report — executes in the kernel monomorphised for the
/// chosen representation (plain CSR or fused delta-varint decode).
pub fn pkmc_storage(storage: &UndirectedStorage<'_>, config: PkmcConfig) -> PkmcResult {
    match storage {
        UndirectedStorage::Plain(g) => pkmc_in(*g, config, &mut SweepWorkspace::new()),
        UndirectedStorage::Compressed(c) => pkmc_in(*c, config, &mut SweepWorkspace::new()),
    }
}

/// [`pkmc_with`] with a caller-provided sweep workspace, so repeated runs
/// (benchmark loops, batch serving) perform no steady-state allocation.
pub fn pkmc_in<G: NeighborAccess>(
    g: &G,
    config: PkmcConfig,
    ws: &mut SweepWorkspace,
) -> PkmcResult {
    let ((vertices, k_star, iterations, early), wall) = timed(|| run(g, config, ws));
    let (edges, density) = set_edges_and_density(g, &vertices);
    PkmcResult {
        vertices,
        k_star,
        density,
        early_stopped: early,
        stats: Stats { iterations, wall, edges_result: Some(edges), ..Stats::default() },
    }
}

/// Checks that the subgraph induced by `set` has minimum degree ≥ `k`.
fn induces_min_degree<G: NeighborAccess>(g: &G, set: &[VertexId], k: u32) -> bool {
    let mut member = vec![false; g.vertex_count()];
    for &v in set {
        member[v as usize] = true;
    }
    set.par_iter().all(|&v| {
        let deg_in = g.neighbors_of(v).filter(|&u| member[u as usize]).count();
        deg_in >= k as usize
    })
}

fn run<G: NeighborAccess>(
    g: &G,
    config: PkmcConfig,
    ws: &mut SweepWorkspace,
) -> (Vec<VertexId>, u32, usize, bool) {
    let n = g.vertex_count();
    if n == 0 || g.arc_count() == 0 {
        return (Vec::new(), 0, 0, false);
    }
    // Lines 1-3: h^(0) = degrees; h_max^(0), s^(0).
    ws.bind(g);
    let (mut h_max_prev, mut s_prev) = telemetry::time_phase(Phase::Monitor, || ws.max_and_count());
    let mut iterations = 0usize;
    loop {
        // Lines 7-9: one parallel h-update sweep. Algorithm 2 line 7 is a
        // full "for v in V in parallel" sweep; PKMC's whole point is that
        // only a handful of such sweeps are needed.
        let examined = if telemetry::enabled() { ws.examined_full(g) } else { 0 };
        let changed = ws.sweep_full(g, config.mode);
        ws.record_sweep_round(n, examined, changed);
        if changed == 0 {
            // Full convergence: h = core numbers; candidate set IS the
            // k*-core (no early stop needed).
            let (h_max, _) = telemetry::time_phase(Phase::Monitor, || ws.max_and_count());
            let cand = ws.vertices_with_value(h_max);
            return (cand, h_max, iterations, false);
        }
        iterations += 1;
        // Lines 10-11.
        let (h_max, s) = telemetry::time_phase(Phase::Monitor, || ws.max_and_count());
        // Line 12 (Proposition 1): the k*-core has >= k* + 1 vertices.
        let guard_ok = s > h_max as usize;
        // Lines 13-14 (Theorem 1): stable h_max and stable count.
        if guard_ok && h_max == h_max_prev && s == s_prev {
            let cand = ws.vertices_with_value(h_max);
            if !config.verify_candidate
                || telemetry::time_phase(Phase::Monitor, || induces_min_degree(g, &cand, h_max))
            {
                return (cand, h_max, iterations, true);
            }
            // Verification failed: Theorem-1 certificate not yet valid on
            // this input; keep iterating (safety addition, see module docs).
        }
        h_max_prev = h_max;
        s_prev = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uds::bz::bz_decomposition;
    use dsd_graph::UndirectedGraphBuilder;

    fn check_is_k_star_core(g: &UndirectedGraph, r: &PkmcResult) {
        let bz = bz_decomposition(g);
        assert_eq!(r.k_star, bz.k_star, "k* mismatch");
        let mut expected = bz.k_star_core();
        expected.sort_unstable();
        assert_eq!(r.vertices, expected, "k*-core vertex set mismatch");
    }

    #[test]
    fn triangle_with_tail() {
        let g = UndirectedGraphBuilder::new(5)
            .add_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
            .build()
            .unwrap();
        let r = pkmc(&g);
        check_is_k_star_core(&g, &r);
        assert_eq!(r.vertices, vec![0, 1, 2]);
        assert_eq!(r.k_star, 2);
    }

    #[test]
    fn matches_bz_on_random_graphs() {
        for seed in 0..8 {
            let g = dsd_graph::gen::erdos_renyi(150, 600, seed + 30);
            let r = pkmc(&g);
            check_is_k_star_core(&g, &r);
        }
    }

    #[test]
    fn matches_bz_on_power_law_graphs() {
        for seed in 0..4 {
            let g = dsd_graph::gen::chung_lu(600, 4000, 2.2, seed);
            let r = pkmc(&g);
            check_is_k_star_core(&g, &r);
        }
    }

    #[test]
    fn async_mode_returns_the_k_star_core() {
        // The async ablation: fewer sweeps, same certified answer (the
        // verification step keeps every early stop correct).
        for seed in 0..4 {
            let g = dsd_graph::gen::chung_lu(500, 3500, 2.2, seed + 90);
            let sync = pkmc(&g);
            let cfg = PkmcConfig {
                mode: crate::uds::sweep::SweepMode::Asynchronous,
                ..PkmcConfig::new()
            };
            let asynchronous = pkmc_with(&g, cfg);
            check_is_k_star_core(&g, &asynchronous);
            assert_eq!(asynchronous.k_star, sync.k_star, "seed {seed}");
        }
    }

    #[test]
    fn early_stop_uses_fewer_iterations_than_local() {
        let g = dsd_graph::gen::chung_lu(2000, 16_000, 2.1, 77);
        let local = crate::uds::local::local_decomposition(&g);
        let r = pkmc(&g);
        check_is_k_star_core(&g, &r);
        assert!(
            r.stats.iterations <= local.stats.iterations,
            "pkmc {} vs local {}",
            r.stats.iterations,
            local.stats.iterations
        );
    }

    #[test]
    fn unverified_mode_matches_on_power_law() {
        let g = dsd_graph::gen::chung_lu(800, 6000, 2.3, 3);
        let r = pkmc_with(&g, PkmcConfig { verify_candidate: false, ..PkmcConfig::new() });
        // On this graph family the paper's raw criterion is also correct.
        let bz = bz_decomposition(&g);
        assert_eq!(r.k_star, bz.k_star);
    }

    #[test]
    fn two_approximation_vs_exact() {
        let g = dsd_graph::gen::erdos_renyi(60, 260, 12);
        let exact = dsd_flow::uds_exact(&g);
        let r = pkmc(&g);
        assert!(
            r.density * 2.0 + 1e-9 >= exact.density,
            "pkmc {} vs exact {}",
            r.density,
            exact.density
        );
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = UndirectedGraphBuilder::new(0).build().unwrap();
        assert_eq!(pkmc(&g).k_star, 0);
        let g = UndirectedGraphBuilder::new(4).build().unwrap();
        let r = pkmc(&g);
        assert_eq!(r.k_star, 0);
        assert!(r.vertices.is_empty());
    }

    #[test]
    fn clique_returns_whole_graph() {
        let mut b = UndirectedGraphBuilder::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.push_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let r = pkmc(&g);
        assert_eq!(r.vertices.len(), 6);
        assert_eq!(r.k_star, 5);
        assert!((r.density - 2.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let g = dsd_graph::gen::chung_lu(500, 3000, 2.4, 8);
        let a = pkmc(&g);
        let b = pkmc(&g);
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.stats.iterations, b.stats.iterations);
    }

    #[test]
    fn compressed_storage_matches_plain() {
        for seed in 0..3 {
            let g = dsd_graph::gen::chung_lu(400, 2600, 2.2, seed + 300);
            let plain = pkmc(&g);
            let c = dsd_graph::CompressedCsr::from_graph(&g);
            let fused = pkmc_storage(&UndirectedStorage::Compressed(&c), PkmcConfig::new());
            let routed = pkmc_storage(&UndirectedStorage::Plain(&g), PkmcConfig::new());
            assert_eq!(fused.vertices, plain.vertices, "seed {seed}");
            assert_eq!(fused.k_star, plain.k_star, "seed {seed}");
            assert_eq!(fused.stats.iterations, plain.stats.iterations, "seed {seed}");
            assert!((fused.density - plain.density).abs() < 1e-12, "seed {seed}");
            assert_eq!(routed.vertices, plain.vertices, "seed {seed}");
        }
    }

    #[test]
    fn workspace_reuse_is_equivalent() {
        let mut ws = SweepWorkspace::new();
        for seed in 0..3 {
            let g = dsd_graph::gen::chung_lu(400, 2500, 2.3, seed + 200);
            let fresh = pkmc(&g);
            let reused = pkmc_in(&g, PkmcConfig::new(), &mut ws);
            assert_eq!(fresh.vertices, reused.vertices, "seed {seed}");
            assert_eq!(fresh.stats.iterations, reused.stats.iterations, "seed {seed}");
        }
    }
}
