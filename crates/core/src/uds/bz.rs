//! Batagelj–Zaveršnik `O(m)` serial core decomposition (reference \[51\]).
//!
//! The conventional method the paper describes in Section IV-A: repeatedly
//! delete the minimum-degree vertex; the degree at deletion time (clamped
//! to be monotone) is the core number. Serves as the ground-truth core
//! decomposition in tests and as the serial baseline for the parallel
//! decompositions.

use dsd_graph::UndirectedGraph;

use crate::stats::{timed, Stats};
use crate::uds::bucket::BucketQueue;
use crate::uds::CoreDecomposition;

/// Computes the core number of every vertex with the classic binsort
/// peeling.
pub fn bz_decomposition(g: &UndirectedGraph) -> CoreDecomposition {
    let (core, wall) = timed(|| {
        let n = g.num_vertices();
        let mut q = BucketQueue::new(&g.degrees());
        let mut core = vec![0u32; n];
        let mut current = 0u32;
        while let Some((v, k)) = q.pop_min() {
            // Core numbers are non-decreasing along the peel order.
            current = current.max(k);
            core[v as usize] = current;
            for &u in g.neighbors(v) {
                // Only pull a neighbour's degree down to the current level:
                // degrees below `current` carry no extra information.
                if !q.is_extracted(u) && q.key_of(u) > current {
                    q.decrease_key(u);
                }
            }
        }
        core
    });
    let k_star = core.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        core,
        k_star,
        stats: Stats { iterations: g.num_vertices(), wall, ..Stats::default() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::UndirectedGraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32)]) -> UndirectedGraph {
        UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    #[test]
    fn triangle_with_pendant() {
        let g = graph(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let d = bz_decomposition(&g);
        assert_eq!(d.core, vec![2, 2, 2, 1]);
        assert_eq!(d.k_star, 2);
        assert_eq!(d.k_star_core(), vec![0, 1, 2]);
    }

    #[test]
    fn clique_core_numbers() {
        let mut b = UndirectedGraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.push_edge(u, v);
            }
        }
        let d = bz_decomposition(&b.build().unwrap());
        assert!(d.core.iter().all(|&c| c == 4));
        assert_eq!(d.k_star, 4);
    }

    #[test]
    fn path_is_one_core() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = bz_decomposition(&g);
        assert_eq!(d.core, vec![1, 1, 1, 1]);
    }

    #[test]
    fn isolated_vertices_are_zero_core() {
        let g = graph(3, &[(0, 1)]);
        let d = bz_decomposition(&g);
        assert_eq!(d.core, vec![1, 1, 0]);
    }

    #[test]
    fn paper_figure_2_example() {
        // Fig 2: 8 vertices; after convergence the k*-core is {v1..v4}
        // with core number 3. Reconstruct a compatible graph:
        // K4 on {0,1,2,3} (v1..v4), v4 (idx 3) also linked to a tail of
        // degree-<=2 vertices 4..7.
        let g = graph(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (4, 6),
            ],
        );
        let d = bz_decomposition(&g);
        assert_eq!(d.k_star, 3);
        assert_eq!(d.k_star_core(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn core_is_subgraph_with_min_degree_k() {
        // Property: the k-core (vertices with core >= k) induces min degree >= k.
        let g = dsd_graph::gen::erdos_renyi(80, 320, 9);
        let d = bz_decomposition(&g);
        for k in 1..=d.k_star {
            let members: Vec<bool> = d.core.iter().map(|&c| c >= k).collect();
            for v in 0..g.num_vertices() {
                if members[v] {
                    let deg_in =
                        g.neighbors(v as u32).iter().filter(|&&u| members[u as usize]).count();
                    assert!(deg_in >= k as usize, "vertex {v} in {k}-core has degree {deg_in}");
                }
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = graph(0, &[]);
        let d = bz_decomposition(&g);
        assert_eq!(d.k_star, 0);
        assert!(d.core.is_empty());
    }
}
