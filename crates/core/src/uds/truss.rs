//! k-truss decomposition — the paper's stated future-work direction
//! ("another interesting research direction is to explore the theoretical
//! relationship between other dense subgraphs (e.g., k-truss and k-clique)
//! and densest graph"), implemented here as an extension.
//!
//! The *k-truss* is the maximal subgraph in which every edge closes at
//! least `k − 2` triangles (within the subgraph); the truss number of an
//! edge is the largest `k` whose k-truss contains it. Like the `k*`-core,
//! the maximum truss is a density witness: every edge of the
//! `k_max`-truss lies in ≥ `k_max − 2` internal triangles, so every vertex
//! has internal degree ≥ `k_max − 1` and the truss's density is at least
//! `(k_max − 1)/2` — a lower bound the [`max_truss`] API reports alongside
//! the subgraph. The `truss_vs_densest` example and `exp_ratios` compare
//! this witness against the `k*`-core and the exact optimum empirically.
//!
//! Decomposition is the standard support peeling (Wang & Cheng, reference
//! \[52\] of the paper): compute per-edge triangle supports, repeatedly
//! peel a minimum-support edge, and decrement the supports of the two
//! other edges of each triangle it closed.

use rustc_hash::FxHashMap;

use dsd_graph::{UndirectedGraph, VertexId};

use crate::stats::{timed, Stats};
use crate::uds::bucket::BucketQueue;

/// Result of a full truss decomposition.
#[derive(Clone, Debug)]
pub struct TrussDecomposition {
    /// Edges as `(u, v)` with `u < v`, in the order of [`Self::truss`].
    pub edges: Vec<(VertexId, VertexId)>,
    /// `truss[i]` is the truss number of `edges[i]` (≥ 2 for every edge).
    pub truss: Vec<u32>,
    /// The maximum truss number `k_max` (0 for an edgeless graph).
    pub k_max: u32,
    /// Execution statistics (`iterations` = edges peeled).
    pub stats: Stats,
}

impl TrussDecomposition {
    /// Vertices of the `k_max`-truss (sorted ids); empty when `k_max < 3`
    /// yields no triangle structure worth reporting... more precisely,
    /// empty only for edgeless graphs (every edge has truss ≥ 2).
    pub fn max_truss_vertices(&self) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = self
            .edges
            .iter()
            .zip(self.truss.iter())
            .filter(|&(_, &t)| t == self.k_max && self.k_max > 0)
            .flat_map(|(&(u, v), _)| [u, v])
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// The density lower bound `(k_max − 1)/2` certified by the maximum
    /// truss (0 for truss-free graphs).
    pub fn density_lower_bound(&self) -> f64 {
        if self.k_max == 0 {
            0.0
        } else {
            (self.k_max as f64 - 1.0) / 2.0
        }
    }
}

/// Computes the truss number of every edge.
pub fn truss_decomposition(g: &UndirectedGraph) -> TrussDecomposition {
    let ((edges, truss, peeled), wall) = timed(|| decompose(g));
    let k_max = truss.iter().copied().max().unwrap_or(0);
    TrussDecomposition {
        edges,
        truss,
        k_max,
        stats: Stats { iterations: peeled, wall, ..Stats::default() },
    }
}

type DecomposeOut = (Vec<(VertexId, VertexId)>, Vec<u32>, usize);

fn decompose(g: &UndirectedGraph) -> DecomposeOut {
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let m = edges.len();
    if m == 0 {
        return (edges, Vec::new(), 0);
    }
    let edge_id: FxHashMap<(VertexId, VertexId), u32> =
        edges.iter().enumerate().map(|(i, &e)| (e, i as u32)).collect();
    // Initial supports: |N(u) ∩ N(v)| via sorted-list intersection.
    let mut support = vec![0u32; m];
    for (i, &(u, v)) in edges.iter().enumerate() {
        support[i] = intersect_count(g.neighbors(u), g.neighbors(v));
    }
    let mut queue = BucketQueue::new(&support);
    let mut alive = vec![true; m];
    let mut truss = vec![0u32; m];
    let mut level = 0u32; // current support level (truss = level + 2)
    let mut peeled = 0usize;
    while let Some((e, s)) = queue.pop_min() {
        let ei = e as usize;
        level = level.max(s);
        truss[ei] = level + 2;
        alive[ei] = false;
        peeled += 1;
        let (u, v) = edges[ei];
        // Decrement the two companion edges of each triangle through (u,v).
        for w in intersect(g.neighbors(u), g.neighbors(v)) {
            let e1 = edge_key(u, w);
            let e2 = edge_key(v, w);
            let (Some(&i1), Some(&i2)) = (edge_id.get(&e1), edge_id.get(&e2)) else {
                unreachable!("triangle edges must exist");
            };
            if alive[i1 as usize] && alive[i2 as usize] {
                if queue.key_of(i1) > level {
                    queue.decrease_key(i1);
                }
                if queue.key_of(i2) > level {
                    queue.decrease_key(i2);
                }
            }
        }
    }
    (edges, truss, peeled)
}

#[inline]
fn edge_key(a: VertexId, b: VertexId) -> (VertexId, VertexId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

fn intersect_count(a: &[VertexId], b: &[VertexId]) -> u32 {
    let mut count = 0u32;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

fn intersect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::UndirectedGraphBuilder;

    fn clique(n: u32) -> UndirectedGraph {
        let mut b = UndirectedGraphBuilder::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                b.push_edge(u, v);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn clique_truss_numbers() {
        // Every edge of K_n has truss number n.
        for n in 3..7u32 {
            let d = truss_decomposition(&clique(n));
            assert!(d.truss.iter().all(|&t| t == n), "K{n}: {:?}", d.truss);
            assert_eq!(d.k_max, n);
        }
    }

    #[test]
    fn triangle_with_pendant() {
        let g = UndirectedGraphBuilder::new(4)
            .add_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build()
            .unwrap();
        let d = truss_decomposition(&g);
        // Triangle edges: truss 3; pendant edge: truss 2.
        let map: FxHashMap<_, _> = d.edges.iter().zip(d.truss.iter()).collect();
        assert_eq!(*map[&(0, 1)], 3);
        assert_eq!(*map[&(0, 2)], 3);
        assert_eq!(*map[&(1, 2)], 3);
        assert_eq!(*map[&(2, 3)], 2);
        assert_eq!(d.max_truss_vertices(), vec![0, 1, 2]);
    }

    #[test]
    fn path_is_2_truss() {
        let g = UndirectedGraphBuilder::new(4).add_edges([(0, 1), (1, 2), (2, 3)]).build().unwrap();
        let d = truss_decomposition(&g);
        assert!(d.truss.iter().all(|&t| t == 2));
        assert_eq!(d.density_lower_bound(), 0.5);
    }

    #[test]
    fn two_cliques_different_truss() {
        // K5 on 0..5 and K3 on 5..8, disjoint.
        let mut b = UndirectedGraphBuilder::new(8);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.push_edge(u, v);
            }
        }
        b.push_edge(5, 6);
        b.push_edge(6, 7);
        b.push_edge(5, 7);
        let g = b.build().unwrap();
        let d = truss_decomposition(&g);
        assert_eq!(d.k_max, 5);
        assert_eq!(d.max_truss_vertices(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn max_truss_satisfies_density_bound() {
        for seed in 0..5 {
            let g = dsd_graph::gen::chung_lu(300, 2400, 2.2, seed + 11);
            let d = truss_decomposition(&g);
            if d.k_max >= 2 {
                let vs = d.max_truss_vertices();
                let density = crate::density::undirected_density(&g, &vs);
                // The k_max-truss *vertex set* contains the truss edges, so
                // its induced density is at least the certified bound.
                assert!(
                    density + 1e-9 >= d.density_lower_bound(),
                    "seed {seed}: density {density} below bound {}",
                    d.density_lower_bound()
                );
            }
        }
    }

    #[test]
    fn truss_subgraph_has_internal_support() {
        // Within the k_max-truss edge set, each edge closes >= k_max - 2
        // triangles.
        let g = dsd_graph::gen::erdos_renyi(80, 600, 13);
        let d = truss_decomposition(&g);
        let max_edges: Vec<(u32, u32)> = d
            .edges
            .iter()
            .zip(d.truss.iter())
            .filter(|&(_, &t)| t == d.k_max)
            .map(|(&e, _)| e)
            .collect();
        if max_edges.is_empty() {
            return;
        }
        let edge_set: std::collections::HashSet<(u32, u32)> = max_edges.iter().copied().collect();
        let mut adj: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &(u, v) in &max_edges {
            adj.entry(u).or_default().push(v);
            adj.entry(v).or_default().push(u);
        }
        for &(u, v) in &max_edges {
            let nu = &adj[&u];
            let tri =
                nu.iter().filter(|&&w| w != v && (edge_set.contains(&edge_key(v, w)))).count();
            assert!(
                tri + 2 >= d.k_max as usize,
                "edge ({u},{v}) closes only {tri} internal triangles for k_max {}",
                d.k_max
            );
        }
    }

    /// Naive fixpoint reference: the k-truss edge set computed by
    /// repeatedly deleting edges with fewer than k-2 internal triangles.
    fn naive_k_truss(edges: &[(u32, u32)], k: u32) -> std::collections::HashSet<(u32, u32)> {
        let mut set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        loop {
            let to_remove: Vec<(u32, u32)> = set
                .iter()
                .copied()
                .filter(|&(u, v)| {
                    let tri = set
                        .iter()
                        .filter(|&&(a, b)| {
                            // w adjacent to both u and v through set edges
                            let w = if a == u {
                                Some(b)
                            } else if b == u {
                                Some(a)
                            } else {
                                None
                            };
                            match w {
                                Some(w) if w != v => set.contains(&edge_key(v, w)),
                                _ => false,
                            }
                        })
                        .count();
                    (tri as u32) + 2 < k
                })
                .collect();
            if to_remove.is_empty() {
                return set;
            }
            for e in to_remove {
                set.remove(&e);
            }
        }
    }

    #[test]
    fn matches_naive_fixpoint_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for trial in 0..8 {
            let n = 10 + trial;
            let mut b = UndirectedGraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.35) {
                        b.push_edge(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            let d = truss_decomposition(&g);
            let all_edges: Vec<(u32, u32)> = g.edges().collect();
            for k in 2..=d.k_max + 1 {
                let expected = naive_k_truss(&all_edges, k);
                let got: std::collections::HashSet<(u32, u32)> = d
                    .edges
                    .iter()
                    .zip(d.truss.iter())
                    .filter(|&(_, &t)| t >= k)
                    .map(|(&e, _)| e)
                    .collect();
                assert_eq!(got, expected, "trial {trial}, k = {k}");
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(3).build().unwrap();
        let d = truss_decomposition(&g);
        assert_eq!(d.k_max, 0);
        assert!(d.max_truss_vertices().is_empty());
        assert_eq!(d.density_lower_bound(), 0.0);
    }

    #[test]
    fn truss_numbers_lower_bounded_by_two() {
        let g = dsd_graph::gen::erdos_renyi(50, 200, 4);
        let d = truss_decomposition(&g);
        assert!(d.truss.iter().all(|&t| t >= 2));
    }
}
