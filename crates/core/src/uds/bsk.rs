//! Binary-search `k*`-core computation — the "simple method" of the
//! paper's Section IV-B, implemented as an ablation baseline.
//!
//! Guess `k̂`, check whether a non-empty `k̂`-core exists (one peeling
//! pass over the subgraph of vertices with degree ≥ `k̂`), and binary
//! search on `k̂`. `O((m + n) log n)` — the paper notes this can be
//! *slower* than the h-index approach despite the better-looking bound,
//! which is exactly what `bench_uds`'s numbers show on power-law graphs
//! (each probe rescans the graph, while PKMC's few sweeps touch mostly
//! hot vertices).

use dsd_graph::{UndirectedGraph, VertexId};

use crate::density::set_edges_and_density;
use crate::stats::{timed, Stats};
use crate::uds::UdsResult;

/// Vertices of the `k`-core of `g` (empty if none). One `O(m)` cascade.
pub fn k_core(g: &UndirectedGraph, k: u32) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut deg = g.degrees();
    let mut alive = vec![true; n];
    let mut queue: Vec<VertexId> = (0..n as VertexId).filter(|&v| deg[v as usize] < k).collect();
    for &v in &queue {
        alive[v as usize] = false;
    }
    while let Some(v) = queue.pop() {
        for &u in g.neighbors(v) {
            let ui = u as usize;
            if alive[ui] {
                deg[ui] -= 1;
                if deg[ui] < k {
                    alive[ui] = false;
                    queue.push(u);
                }
            }
        }
    }
    (0..n as VertexId).filter(|&v| alive[v as usize]).collect()
}

/// Computes the `k*`-core by binary search on `k` (`stats.iterations`
/// counts peeling probes).
pub fn bsk(g: &UndirectedGraph) -> UdsResult {
    let ((vertices, probes), wall) = timed(|| {
        if g.num_edges() == 0 {
            return (Vec::new(), 0usize);
        }
        // k* is between 1 and d_max; the k-core is non-empty iff k <= k*.
        let mut lo = 1u32; // 1-core of a graph with edges is non-empty
        let mut hi = g.max_degree() as u32;
        let mut probes = 0usize;
        let mut best = k_core(g, lo);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            probes += 1;
            let core = k_core(g, mid);
            if core.is_empty() {
                hi = mid - 1;
            } else {
                best = core;
                lo = mid;
            }
        }
        (best, probes)
    });
    let (edges, density) = set_edges_and_density(g, &vertices);
    UdsResult {
        vertices,
        density,
        stats: Stats { iterations: probes, wall, edges_result: Some(edges), ..Stats::default() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uds::bz::bz_decomposition;
    use dsd_graph::UndirectedGraphBuilder;

    #[test]
    fn k_core_of_triangle_with_tail() {
        let g = UndirectedGraphBuilder::new(5)
            .add_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
            .build()
            .unwrap();
        assert_eq!(k_core(&g, 2), vec![0, 1, 2]);
        assert_eq!(k_core(&g, 1).len(), 5);
        assert!(k_core(&g, 3).is_empty());
    }

    #[test]
    fn matches_bz_k_star_core() {
        for seed in 0..6 {
            let g = dsd_graph::gen::erdos_renyi(120, 500, seed + 70);
            let bz = bz_decomposition(&g);
            let r = bsk(&g);
            let mut expected = bz.k_star_core();
            expected.sort_unstable();
            assert_eq!(r.vertices, expected, "seed {seed}");
        }
    }

    #[test]
    fn matches_pkmc_on_power_law() {
        let g = dsd_graph::gen::chung_lu(500, 3000, 2.3, 77);
        let a = bsk(&g);
        let b = crate::uds::pkmc::pkmc(&g);
        assert_eq!(a.vertices, b.vertices);
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let g = dsd_graph::gen::chung_lu(1000, 8000, 2.2, 5);
        let r = bsk(&g);
        let d_max = g.max_degree() as f64;
        assert!(r.stats.iterations as f64 <= d_max.log2() + 2.0);
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(3).build().unwrap();
        let r = bsk(&g);
        assert!(r.vertices.is_empty());
        assert_eq!(r.density, 0.0);
    }

    #[test]
    fn k_core_members_have_internal_degree_k() {
        let g = dsd_graph::gen::erdos_renyi(100, 450, 8);
        for k in 1..6u32 {
            let core = k_core(&g, k);
            let mut member = vec![false; g.num_vertices()];
            for &v in &core {
                member[v as usize] = true;
            }
            for &v in &core {
                let d = g.neighbors(v).iter().filter(|&&u| member[u as usize]).count();
                assert!(d >= k as usize);
            }
        }
    }
}
