//! Local — h-index-based parallel core decomposition
//! (Sariyüce et al., PVLDB 2018; Algorithm 1 of the paper).
//!
//! Every vertex's h-index starts at its degree and is repeatedly recomputed
//! from its neighbours' h-indices; the fixpoint is the core number
//! (Lü et al., reference \[24\]). Updates are embarrassingly parallel.
//!
//! Sweeps are executed by the shared, zero-allocation
//! [`sweep engine`](crate::uds::sweep): [`local_decomposition`] runs the
//! default *synchronous* (Jacobi) schedule — each sweep computes all new
//! values from the previous sweep's array before any write is applied,
//! which makes runs deterministic regardless of the thread count — and
//! recomputes every vertex per sweep (faithful to Algorithm 1's
//! "for v in V in parallel"), so graphs with long filament tails pay
//! `O(m)` per sweep for thousands of sweeps — the paper's Table 6 regime.
//! [`local_decomposition_frontier`] is this reproduction's extension:
//! identical results, but each sweep only touches vertices with a changed
//! neighbour. [`local_decomposition_async`] opts into the engine's
//! asynchronous (Gauss–Seidel) schedule, which converges to the same core
//! numbers in fewer sweeps at the cost of a scheduling-dependent iteration
//! count. [`local_decomposition_legacy`] preserves the seed's
//! collect-per-sweep kernel as the benchmark baseline. `stats.iterations`
//! counts sweeps in which at least one h-index changed — the convergence
//! count the paper's Table 6 reports.

use dsd_graph::{UndirectedGraph, VertexId};
use rayon::prelude::*;

use crate::stats::{timed, Stats};
use crate::uds::sweep::{SweepMode, SweepWorkspace};
use crate::uds::CoreDecomposition;

/// Computes the h-index of a multiset of neighbour values with a counting
/// pass: the largest `k` such that at least `k` values are ≥ `k`.
///
/// `scratch` is a reusable buffer (resized to `values.len() + 1`).
#[inline]
pub fn h_index_counting(values: &[u32], scratch: &mut Vec<u32>) -> u32 {
    let d = values.len();
    scratch.clear();
    scratch.resize(d + 1, 0);
    for &h in values {
        scratch[(h as usize).min(d)] += 1;
    }
    let mut cum = 0u32;
    for k in (1..=d).rev() {
        cum += scratch[k];
        if cum as usize >= k {
            return k as u32;
        }
    }
    0
}

/// Sort-based h-index (the ablation alternative benchmarked in
/// `bench_hindex`): sorts the values descending and scans.
///
/// `scratch` is a reusable buffer the values are copied into (like
/// [`h_index_counting`]'s, so `bench_hindex` compares kernels rather than
/// allocators).
#[inline]
pub fn h_index_sorting(values: &[u32], scratch: &mut Vec<u32>) -> u32 {
    scratch.clear();
    scratch.extend_from_slice(values);
    scratch.sort_unstable_by(|a, b| b.cmp(a));
    let mut h = 0u32;
    for (i, &v) in scratch.iter().enumerate() {
        if v as usize > i {
            h = (i + 1) as u32;
        } else {
            break;
        }
    }
    h
}

/// One synchronous sweep over `active` with the **seed (legacy) kernel**:
/// recomputes each vertex's h-index from the current array (all reads
/// happen before any write), collects a fresh update vector, applies the
/// decreases serially, and returns the vertices whose value changed.
///
/// Kept as the baseline the sweep engine is benchmarked against
/// (`bench_report`, `bench_core_decomp`); production paths go through
/// [`crate::uds::sweep::SweepWorkspace`].
pub(crate) fn sweep_active(
    g: &UndirectedGraph,
    h: &mut [u32],
    active: &[VertexId],
) -> Vec<VertexId> {
    // Parallel read-only phase (immutable reborrow so the closure is Sync).
    let h_read: &[u32] = h;
    let updates: Vec<(VertexId, u32)> = active
        .par_iter()
        .map_init(
            || (Vec::new(), Vec::new()),
            |(vals, scratch), &v| {
                vals.clear();
                vals.extend(g.neighbors(v).iter().map(|&u| h_read[u as usize]));
                (v, h_index_counting(vals, scratch))
            },
        )
        .collect();
    // Serial apply phase (disjoint, tiny compared to the compute).
    let mut changed = Vec::new();
    for (v, new_h) in updates {
        let slot = &mut h[v as usize];
        debug_assert!(new_h <= *slot, "h-index increased at {v}");
        if new_h != *slot {
            *slot = new_h;
            changed.push(v);
        }
    }
    changed
}

/// Vertices needing recomputation next sweep: the distinct neighbours of
/// the vertices that changed. `mark` is an all-false scratch array (reset
/// before returning). Part of the legacy kernel (see [`sweep_active`]);
/// the engine's [`SweepWorkspace::advance_frontier`] is the parallel
/// replacement.
pub(crate) fn next_active(
    g: &UndirectedGraph,
    changed: &[VertexId],
    mark: &mut [bool],
) -> Vec<VertexId> {
    let mut out = Vec::new();
    for &v in changed {
        for &u in g.neighbors(v) {
            if !mark[u as usize] {
                mark[u as usize] = true;
                out.push(u);
            }
        }
    }
    for &u in &out {
        mark[u as usize] = false;
    }
    out
}

fn finish(core: Vec<u32>, iterations: usize, wall: std::time::Duration) -> CoreDecomposition {
    let k_star = core.iter().copied().max().unwrap_or(0);
    CoreDecomposition { core, k_star, stats: Stats { iterations, wall, ..Stats::default() } }
}

/// Runs Local to convergence, returning the full core decomposition.
///
/// Faithful to the paper's Algorithm 1: **every** vertex recomputes its
/// h-index in **every** sweep ("for v ∈ V in parallel"), so each sweep
/// costs `O(m)` and graphs with long convergence tails (Table 6's regime)
/// pay for it — which is exactly the inefficiency PKMC's early stop
/// removes. For the frontier-optimised variant this reproduction adds on
/// top of the paper, see [`local_decomposition_frontier`].
pub fn local_decomposition(g: &UndirectedGraph) -> CoreDecomposition {
    local_decomposition_in(g, &mut SweepWorkspace::new())
}

/// [`local_decomposition`] with a caller-provided workspace, so repeated
/// decompositions (benchmark loops, batch serving) perform no steady-state
/// allocation.
pub fn local_decomposition_in(g: &UndirectedGraph, ws: &mut SweepWorkspace) -> CoreDecomposition {
    let (iterations, wall) = timed(|| ws.run_full(g, SweepMode::Synchronous));
    finish(ws.h_values(), iterations, wall)
}

/// Frontier-optimised Local (an extension beyond the paper): after the
/// first sweep, only vertices with a changed neighbour are recomputed.
/// Produces exactly the same values and iteration count as
/// [`local_decomposition`] (recomputing an unchanged neighbourhood is a
/// no-op) at a fraction of the work on long-tailed graphs — see the
/// `bench_core_decomp` ablation.
pub fn local_decomposition_frontier(g: &UndirectedGraph) -> CoreDecomposition {
    local_decomposition_frontier_in(g, &mut SweepWorkspace::new())
}

/// [`local_decomposition_frontier`] with a caller-provided workspace.
pub fn local_decomposition_frontier_in(
    g: &UndirectedGraph,
    ws: &mut SweepWorkspace,
) -> CoreDecomposition {
    let (iterations, wall) = timed(|| ws.run_frontier(g, SweepMode::Synchronous));
    finish(ws.h_values(), iterations, wall)
}

/// Asynchronous (Gauss–Seidel) Local: sweeps read freshly-written h-values
/// in the same sweep, so convergence needs strictly fewer sweeps
/// (Sariyüce et al.). The fixpoint — the core numbers — is identical to
/// the synchronous variants, but `stats.iterations` depends on scheduling
/// and is therefore **not** deterministic across thread counts; the
/// synchronous schedule stays the default.
pub fn local_decomposition_async(g: &UndirectedGraph) -> CoreDecomposition {
    local_decomposition_async_in(g, &mut SweepWorkspace::new())
}

/// [`local_decomposition_async`] with a caller-provided workspace.
pub fn local_decomposition_async_in(
    g: &UndirectedGraph,
    ws: &mut SweepWorkspace,
) -> CoreDecomposition {
    let (iterations, wall) = timed(|| ws.run_full(g, SweepMode::Asynchronous));
    finish(ws.h_values(), iterations, wall)
}

/// The seed implementation of [`local_decomposition`]: the same Jacobi
/// iteration, but every sweep collects a fresh update vector and applies
/// it serially ([`sweep_active`]). Kept as the benchmark baseline the
/// sweep engine's speedup is measured against (`BENCH_PR1.json`); results
/// and iteration counts are bit-identical to [`local_decomposition`].
pub fn local_decomposition_legacy(g: &UndirectedGraph) -> CoreDecomposition {
    let ((core, iterations), wall) = timed(|| {
        let n = g.num_vertices();
        let mut h = g.degrees();
        let all: Vec<VertexId> = (0..n as VertexId).collect();
        let mut iterations = 0usize;
        loop {
            let changed = sweep_active(g, &mut h, &all);
            if changed.is_empty() {
                break;
            }
            iterations += 1;
        }
        (h, iterations)
    });
    finish(core, iterations, wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uds::bz::bz_decomposition;
    use dsd_graph::UndirectedGraphBuilder;

    #[test]
    fn h_index_counting_basics() {
        assert_eq!(h_index_counting(&[], &mut Vec::new()), 0);
        assert_eq!(h_index_counting(&[0, 0, 0], &mut Vec::new()), 0);
        assert_eq!(h_index_counting(&[1], &mut Vec::new()), 1);
        assert_eq!(h_index_counting(&[5, 5, 5], &mut Vec::new()), 3);
        assert_eq!(h_index_counting(&[3, 1, 2], &mut Vec::new()), 2);
        assert_eq!(h_index_counting(&[10, 9, 8, 7, 6, 5], &mut Vec::new()), 5);
    }

    #[test]
    fn h_index_variants_agree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut scratch = Vec::new();
        let mut sort_scratch = Vec::new();
        for _ in 0..200 {
            let len = rng.gen_range(0..30);
            let vals: Vec<u32> = (0..len).map(|_| rng.gen_range(0..20)).collect();
            assert_eq!(
                h_index_counting(&vals, &mut scratch),
                h_index_sorting(&vals, &mut sort_scratch),
                "values {vals:?}"
            );
        }
    }

    #[test]
    fn matches_bz_on_small_graph() {
        let g = UndirectedGraphBuilder::new(6)
            .add_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
            .build()
            .unwrap();
        assert_eq!(local_decomposition(&g).core, bz_decomposition(&g).core);
    }

    #[test]
    fn matches_bz_on_random_graphs() {
        for seed in 0..5 {
            let g = dsd_graph::gen::erdos_renyi(200, 800, seed + 100);
            assert_eq!(local_decomposition(&g).core, bz_decomposition(&g).core, "seed {seed}");
        }
    }

    #[test]
    fn matches_bz_on_power_law() {
        let g = dsd_graph::gen::chung_lu(400, 2400, 2.2, 19);
        assert_eq!(local_decomposition(&g).core, bz_decomposition(&g).core);
    }

    #[test]
    fn matches_bz_with_filaments() {
        let base = dsd_graph::gen::chung_lu(300, 1500, 2.3, 7);
        let g = dsd_graph::gen::attach_filaments(&base, 4, 50, 9);
        assert_eq!(local_decomposition(&g).core, bz_decomposition(&g).core);
    }

    #[test]
    fn frontier_variant_is_equivalent() {
        for seed in 0..4 {
            let base = dsd_graph::gen::chung_lu(300, 1500, 2.4, seed);
            let g = dsd_graph::gen::attach_filaments(&base, 3, 40, seed + 1);
            let full = local_decomposition(&g);
            let frontier = local_decomposition_frontier(&g);
            assert_eq!(full.core, frontier.core, "seed {seed}");
            assert_eq!(full.stats.iterations, frontier.stats.iterations, "seed {seed}");
        }
    }

    #[test]
    fn engine_is_bit_identical_to_legacy() {
        // The acceptance contract of the sweep engine: same core numbers
        // AND same iteration counts as the seed collect-per-sweep kernel.
        for seed in 0..4 {
            let base = dsd_graph::gen::chung_lu(250, 1200, 2.3, seed + 60);
            let g = dsd_graph::gen::attach_filaments(&base, 3, 30, seed + 61);
            let legacy = local_decomposition_legacy(&g);
            let engine = local_decomposition(&g);
            assert_eq!(engine.core, legacy.core, "seed {seed}");
            assert_eq!(engine.stats.iterations, legacy.stats.iterations, "seed {seed}");
        }
    }

    #[test]
    fn async_variant_reaches_the_same_fixpoint() {
        for seed in 0..4 {
            let base = dsd_graph::gen::chung_lu(250, 1200, 2.3, seed + 70);
            let g = dsd_graph::gen::attach_filaments(&base, 3, 30, seed + 71);
            let sync = local_decomposition(&g);
            let asynchronous = local_decomposition_async(&g);
            assert_eq!(asynchronous.core, sync.core, "seed {seed}");
            assert!(
                asynchronous.stats.iterations <= sync.stats.iterations,
                "async {} vs sync {} (seed {seed})",
                asynchronous.stats.iterations,
                sync.stats.iterations
            );
        }
    }

    #[test]
    fn path_ripple_needs_linear_sweeps() {
        // A path converges one vertex per sweep from each end — the slow
        // regime the filament stand-ins model.
        let len = 60u32;
        let mut b = UndirectedGraphBuilder::new(len as usize);
        for v in 0..len - 1 {
            b.push_edge(v, v + 1);
        }
        let g = b.build().unwrap();
        let d = local_decomposition(&g);
        assert!(d.core.iter().all(|&c| c == 1));
        assert!(
            d.stats.iterations >= (len as usize) / 2 - 2,
            "expected ~len/2 sweeps, got {}",
            d.stats.iterations
        );
    }

    #[test]
    fn h_values_upper_bound_core_and_decrease_monotonically() {
        // Lemma 2 context: h is always an upper bound of the core number
        // and is non-increasing sweep over sweep (legacy kernel, which the
        // engine is validated against above).
        let g = dsd_graph::gen::erdos_renyi(100, 400, 55);
        let core = bz_decomposition(&g).core;
        let n = g.num_vertices();
        let mut h = g.degrees();
        let mut mark = vec![false; n];
        let mut active: Vec<u32> = (0..n as u32).collect();
        for _ in 0..100 {
            for v in 0..n {
                assert!(h[v] >= core[v], "h below core at {v}");
            }
            let before = h.clone();
            let changed = sweep_active(&g, &mut h, &active);
            for v in 0..n {
                assert!(h[v] <= before[v], "h increased at {v}");
            }
            if changed.is_empty() {
                break;
            }
            active = next_active(&g, &changed, &mut mark);
        }
        assert_eq!(h, core, "h must converge to core numbers");
    }

    #[test]
    fn iteration_count_small_for_simple_graphs() {
        // A clique converges immediately (h = degree = core).
        let mut b = UndirectedGraphBuilder::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.push_edge(u, v);
            }
        }
        let d = local_decomposition(&b.build().unwrap());
        assert_eq!(d.stats.iterations, 0);
        assert_eq!(d.k_star, 5);
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(0).build().unwrap();
        let d = local_decomposition(&g);
        assert_eq!(d.k_star, 0);
    }
}
