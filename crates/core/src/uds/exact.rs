//! Exact UDS entry points for the core crate:
//!
//! * [`uds_exact_certified`] — the production exact path. Runs PKMC first
//!   and hands its 2-approximation to the push-relabel engine in
//!   `dsd-flow` as a warm-start seed, so the flow binary search opens with
//!   a tight window and the Fang-et-al core pruning bites immediately. The
//!   returned vertex set is an exact density certificate.
//! * [`uds_brute_force`] — subset enumeration for tiny graphs, a second,
//!   independent oracle used by property tests to validate the flow-based
//!   exact algorithm and the approximation bounds.

use dsd_flow::UdsExactResult;
use dsd_graph::{UndirectedGraph, VertexId};

use crate::density::undirected_density;

/// Computes the exact densest subgraph with the `dsd-flow` push-relabel
/// engine, warm-started from a PKMC 2-approximation.
///
/// The PKMC density `ρ̂` satisfies `ρ* / 2 ≤ ρ̂ ≤ ρ*` (Theorem 1), so
/// seeding the flow search with the PKMC vertex set halves the binary
/// search window up front and raises the core-pruning threshold for every
/// guess. The result is identical to `dsd_flow::uds_exact` — the seed only
/// accelerates.
pub fn uds_exact_certified(g: &UndirectedGraph) -> UdsExactResult {
    let approx = crate::uds::pkmc::pkmc(g);
    dsd_flow::uds_exact_seeded(g, Some(&approx.vertices))
}

/// Maximum vertex count accepted by [`uds_brute_force`].
pub const BRUTE_FORCE_LIMIT: usize = 24;

/// Enumerates all non-empty vertex subsets and returns a densest one.
///
/// # Panics
///
/// Panics if the graph has more than [`BRUTE_FORCE_LIMIT`] vertices.
pub fn uds_brute_force(g: &UndirectedGraph) -> (Vec<VertexId>, f64) {
    let n = g.num_vertices();
    assert!(n <= BRUTE_FORCE_LIMIT, "brute force limited to {BRUTE_FORCE_LIMIT} vertices");
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let mut best_set = Vec::new();
    let mut best = 0.0f64;
    for mask in 1u32..(1u32 << n) {
        let set: Vec<VertexId> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
        let d = undirected_density(g, &set);
        if d > best {
            best = d;
            best_set = set;
        }
    }
    (best_set, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::UndirectedGraphBuilder;

    #[test]
    fn triangle() {
        let g = UndirectedGraphBuilder::new(4)
            .add_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build()
            .unwrap();
        let (set, d) = uds_brute_force(&g);
        assert_eq!(set, vec![0, 1, 2]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_flow_exact() {
        for seed in 0..10 {
            let g = dsd_graph::gen::erdos_renyi(10, 22, seed);
            let (_, brute) = uds_brute_force(&g);
            let flow = dsd_flow::uds_exact(&g);
            assert!(
                (brute - flow.density).abs() < 1e-9,
                "seed {seed}: brute {brute} flow {}",
                flow.density
            );
        }
    }

    #[test]
    fn certified_matches_brute_force_and_induces_its_density() {
        for seed in 0..6 {
            let g = dsd_graph::gen::erdos_renyi(12, 30, seed + 50);
            let (_, brute) = uds_brute_force(&g);
            let cert = uds_exact_certified(&g);
            assert!(
                (brute - cert.density).abs() < 1e-9,
                "seed {seed}: brute {brute} certified {}",
                cert.density
            );
            let induced = undirected_density(&g, &cert.vertices);
            assert!(
                (induced - cert.density).abs() < 1e-12,
                "seed {seed}: certificate density mismatch"
            );
        }
    }

    #[test]
    fn edgeless() {
        let g = UndirectedGraphBuilder::new(3).build().unwrap();
        let (set, d) = uds_brute_force(&g);
        assert!(set.is_empty());
        assert_eq!(d, 0.0);
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn rejects_large_graphs() {
        let g = UndirectedGraphBuilder::new(30).build().unwrap();
        uds_brute_force(&g);
    }
}
