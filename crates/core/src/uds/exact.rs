//! Brute-force exact UDS for tiny graphs — a second, independent oracle
//! used by property tests to validate the flow-based exact algorithm and
//! the approximation bounds.

use dsd_graph::{UndirectedGraph, VertexId};

use crate::density::undirected_density;

/// Maximum vertex count accepted by [`uds_brute_force`].
pub const BRUTE_FORCE_LIMIT: usize = 24;

/// Enumerates all non-empty vertex subsets and returns a densest one.
///
/// # Panics
///
/// Panics if the graph has more than [`BRUTE_FORCE_LIMIT`] vertices.
pub fn uds_brute_force(g: &UndirectedGraph) -> (Vec<VertexId>, f64) {
    let n = g.num_vertices();
    assert!(n <= BRUTE_FORCE_LIMIT, "brute force limited to {BRUTE_FORCE_LIMIT} vertices");
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let mut best_set = Vec::new();
    let mut best = 0.0f64;
    for mask in 1u32..(1u32 << n) {
        let set: Vec<VertexId> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
        let d = undirected_density(g, &set);
        if d > best {
            best = d;
            best_set = set;
        }
    }
    (best_set, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::UndirectedGraphBuilder;

    #[test]
    fn triangle() {
        let g = UndirectedGraphBuilder::new(4)
            .add_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build()
            .unwrap();
        let (set, d) = uds_brute_force(&g);
        assert_eq!(set, vec![0, 1, 2]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_flow_exact() {
        for seed in 0..10 {
            let g = dsd_graph::gen::erdos_renyi(10, 22, seed);
            let (_, brute) = uds_brute_force(&g);
            let flow = dsd_flow::uds_exact(&g);
            assert!(
                (brute - flow.density).abs() < 1e-9,
                "seed {seed}: brute {brute} flow {}",
                flow.density
            );
        }
    }

    #[test]
    fn edgeless() {
        let g = UndirectedGraphBuilder::new(3).build().unwrap();
        let (set, d) = uds_brute_force(&g);
        assert!(set.is_empty());
        assert_eq!(d, 0.0);
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn rejects_large_graphs() {
        let g = UndirectedGraphBuilder::new(30).build().unwrap();
        uds_brute_force(&g);
    }
}
