//! PKC — parallel level-by-level peeling core decomposition
//! (Kabir & Madduri, IPDPSW 2017; reference \[61\] of the paper).
//!
//! Vertices are processed level by level: at level `k`, every vertex whose
//! current degree is at most `k` is removed in a parallel round; removals
//! cascade within the level until no vertex qualifies, then `k` advances.
//! Each parallel removal round counts as one iteration — this is the count
//! reported in the paper's Table 6, where PKC needs `O(k*)` levels plus
//! cascade rounds (thousands of iterations on power-law graphs, versus
//! single digits for PKMC).
//!
//! Rounds are allocation-free: the frontier is claimed and killed in place
//! with a persistent round bitmap (the same workspace-reuse pattern as the
//! h-index [`sweep engine`](crate::uds::sweep)) instead of collecting a
//! fresh frontier vector per round; the candidate pool shrinks in place
//! once per level.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::Instant;

use dsd_graph::{UndirectedGraph, VertexId};
use dsd_telemetry::{self as telemetry, Counter, Phase, PhaseTime, RoundSample};
use rayon::prelude::*;

use crate::stats::{timed, Stats};
use crate::uds::CoreDecomposition;

/// Runs the PKC parallel peeling decomposition, returning core numbers and
/// the number of parallel rounds in `stats.iterations`.
pub fn pkc_decomposition(g: &UndirectedGraph) -> CoreDecomposition {
    let ((core, iterations), wall) = timed(|| decompose(g));
    let k_star = core.iter().copied().max().unwrap_or(0);
    CoreDecomposition { core, k_star, stats: Stats { iterations, wall, ..Stats::default() } }
}

fn decompose(g: &UndirectedGraph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let deg: Vec<AtomicU32> = g.degrees().into_iter().map(AtomicU32::new).collect();
    let alive: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(true)).collect();
    let core: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    // Workspace-reuse (no per-round allocation): instead of collecting a
    // fresh frontier vector every cascade round, a persistent `this_round`
    // bitmap flags the vertices killed in the current round; it is reset
    // in place during the decrement phase. Phase 1's kill decisions depend
    // only on state at round start (kills do not touch `deg`, and already-
    // dead vertices stay dead), so the removed set — and therefore the
    // round and level structure — is identical to the seed's snapshot
    // frontier, and deterministic across thread counts.
    let this_round: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut remaining = n;
    let mut k = 0u32;
    let mut iterations = 0usize;
    // `candidates` holds the vertices that might still be removable at the
    // current level; it shrinks (in place) as levels advance.
    let mut candidates: Vec<VertexId> = (0..n as VertexId).collect();
    while remaining > 0 {
        loop {
            let enabled = telemetry::enabled();
            let t0 = enabled.then(Instant::now);
            let frontier_len = candidates.len();
            // Phase 1: claim and kill this round's frontier in place
            // (alive vertices with degree <= k), counting the kills.
            let killed: usize = candidates
                .par_iter()
                .map(|&v| {
                    let vi = v as usize;
                    if alive[vi].load(Ordering::Relaxed) && deg[vi].load(Ordering::Relaxed) <= k {
                        alive[vi].store(false, Ordering::Relaxed);
                        core[vi].store(k, Ordering::Relaxed);
                        this_round[vi].store(true, Ordering::Relaxed);
                        1
                    } else {
                        0
                    }
                })
                .sum();
            if killed == 0 {
                // The level's final (empty) probe round still scanned the
                // candidate pool; keep its time in the phase totals.
                if let Some(t) = t0 {
                    telemetry::record_span(Phase::Cascade, t);
                }
                break;
            }
            iterations += 1;
            // Phase 2: decrement alive neighbours of this round's kills
            // (all of which are already dead, so decrements never touch
            // frontier members), clearing the round flag as we go.
            candidates.par_iter().for_each(|&v| {
                let vi = v as usize;
                if this_round[vi].swap(false, Ordering::Relaxed) {
                    for &u in g.neighbors(v) {
                        if alive[u as usize].load(Ordering::Relaxed) {
                            deg[u as usize].fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
            });
            remaining -= killed;
            if enabled {
                let mut phase_times = Vec::with_capacity(1);
                if let Some(d) = t0.map(|t| telemetry::record_span(Phase::Cascade, t)) {
                    phase_times
                        .push(PhaseTime { phase: Phase::Cascade.name(), secs: d.as_secs_f64() });
                }
                // `edges_examined` is the candidate-pool scan size (PKC's
                // per-round work is dominated by the phase-1 scan), which
                // is deterministic across thread counts.
                telemetry::record_round(RoundSample {
                    round: telemetry::rounds_recorded() as u32,
                    frontier_len,
                    edges_examined: frontier_len as u64,
                    items_removed: killed,
                    alive_edges: None,
                    phase_times,
                    ..RoundSample::default()
                });
            }
        }
        // Drop dead vertices from the candidate pool before the next level.
        {
            let _compact = telemetry::span(Phase::Compact);
            candidates.retain(|&v| alive[v as usize].load(Ordering::Relaxed));
        }
        telemetry::counter_add(Counter::CompactionMoves, candidates.len() as u64);
        k += 1;
    }
    (core.into_iter().map(AtomicU32::into_inner).collect(), iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uds::bz::bz_decomposition;
    use dsd_graph::UndirectedGraphBuilder;

    #[test]
    fn matches_bz_on_small_graph() {
        let g = UndirectedGraphBuilder::new(6)
            .add_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
            .build()
            .unwrap();
        assert_eq!(pkc_decomposition(&g).core, bz_decomposition(&g).core);
    }

    #[test]
    fn matches_bz_on_random_graphs() {
        for seed in 0..5 {
            let g = dsd_graph::gen::erdos_renyi(200, 900, seed);
            let pkc = pkc_decomposition(&g);
            let bz = bz_decomposition(&g);
            assert_eq!(pkc.core, bz.core, "seed {seed}");
            assert_eq!(pkc.k_star, bz.k_star);
        }
    }

    #[test]
    fn matches_bz_on_power_law_graph() {
        let g = dsd_graph::gen::chung_lu(500, 3000, 2.3, 17);
        assert_eq!(pkc_decomposition(&g).core, bz_decomposition(&g).core);
    }

    #[test]
    fn iteration_count_at_least_k_star_levels() {
        let g = dsd_graph::gen::erdos_renyi(200, 1200, 3);
        let d = pkc_decomposition(&g);
        // One frontier round minimum per populated level.
        assert!(d.stats.iterations >= d.k_star as usize);
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(0).build().unwrap();
        let d = pkc_decomposition(&g);
        assert_eq!(d.k_star, 0);
        assert_eq!(d.stats.iterations, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = dsd_graph::gen::chung_lu(300, 1500, 2.5, 5);
        let a = pkc_decomposition(&g);
        let b = pkc_decomposition(&g);
        assert_eq!(a.core, b.core);
        assert_eq!(a.stats.iterations, b.stats.iterations);
    }
}
