//! Triangle-densest subgraph — the `k = 3` case of the k-clique densest
//! subgraph problem (Tsourakakis, WWW 2015; the second half of the paper's
//! future-work direction alongside [`crate::uds::truss`]).
//!
//! The triangle density of `G[S]` is `τ(S)/|S|` where `τ(S)` counts
//! triangles with all three corners in `S`. Peeling the vertex with the
//! fewest incident triangles and returning the best prefix gives a
//! 3-approximation (the triangle analogue of Charikar's peel). Triangle
//! counts are maintained exactly during the peel: removing `v` subtracts
//! every triangle through `v` from its two partners.

use rustc_hash::FxHashSet;

use dsd_graph::{UndirectedGraph, VertexId};

use crate::stats::{timed, Stats};

/// Result of the triangle-densest peel.
#[derive(Clone, Debug)]
pub struct TriangleDensestResult {
    /// Vertices of the returned subgraph (sorted ids).
    pub vertices: Vec<VertexId>,
    /// Its triangle density `τ(S) / |S|`.
    pub triangle_density: f64,
    /// Its edge density `|E(S)| / |S|` for comparison with the UDS result.
    pub edge_density: f64,
    /// Execution statistics (`iterations` = vertices peeled).
    pub stats: Stats,
}

/// Counts triangles incident to each vertex and the total triangle count.
fn triangle_counts(g: &UndirectedGraph) -> (Vec<u64>, u64) {
    let n = g.num_vertices();
    let mut per_vertex = vec![0u64; n];
    let mut total = 0u64;
    // For each edge (u, v) with u < v, intersect sorted neighbourhoods and
    // count only w > v so each triangle is found once.
    for (u, v) in g.edges() {
        let (a, b) = (g.neighbors(u), g.neighbors(v));
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let w = a[i];
                    if w > v {
                        per_vertex[u as usize] += 1;
                        per_vertex[v as usize] += 1;
                        per_vertex[w as usize] += 1;
                        total += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    (per_vertex, total)
}

/// Runs the triangle-densest peel (3-approximation for triangle density).
pub fn triangle_densest(g: &UndirectedGraph) -> TriangleDensestResult {
    let ((vertices, tri_density, peeled), wall) = timed(|| run(g));
    let (edges, edge_density) = crate::density::set_edges_and_density(g, &vertices);
    TriangleDensestResult {
        vertices,
        triangle_density: tri_density,
        edge_density,
        stats: Stats { iterations: peeled, wall, edges_result: Some(edges), ..Stats::default() },
    }
}

fn run(g: &UndirectedGraph) -> (Vec<VertexId>, f64, usize) {
    let n = g.num_vertices();
    let (mut tri, mut total) = triangle_counts(g);
    if total == 0 {
        return (Vec::new(), 0.0, 0);
    }
    let mut alive: Vec<bool> = vec![true; n];
    let mut remaining = n;
    // Track the densest prefix over the peel order.
    let mut best_density = total as f64 / n as f64;
    let mut best_remaining = n;
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    // Simple lazy min-heap over (count, vertex).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> =
        (0..n as VertexId).map(|v| Reverse((tri[v as usize], v))).collect();
    while remaining > 0 {
        let v = loop {
            let Reverse((c, v)) = heap.pop().expect("remaining > 0");
            if alive[v as usize] && tri[v as usize] == c {
                break v;
            }
        };
        // Remove v: every triangle through v disappears from its partners.
        alive[v as usize] = false;
        order.push(v);
        remaining -= 1;
        total -= tri[v as usize];
        let alive_nbrs: Vec<VertexId> =
            g.neighbors(v).iter().copied().filter(|&u| alive[u as usize]).collect();
        let nbr_set: FxHashSet<VertexId> = alive_nbrs.iter().copied().collect();
        for (i, &a) in alive_nbrs.iter().enumerate() {
            let mut lost = 0u64;
            for &b in &alive_nbrs[i + 1..] {
                if g.has_edge(a, b) && nbr_set.contains(&b) {
                    lost += 1;
                    // (a, b) each lose this triangle; b handled in its turn.
                }
            }
            if lost > 0 {
                tri[a as usize] -= lost;
                heap.push(Reverse((tri[a as usize], a)));
            }
        }
        // Second pass for the b side (each pair charged once above to a).
        for (i, &a) in alive_nbrs.iter().enumerate() {
            let mut lost = 0u64;
            for &b in &alive_nbrs[..i] {
                if g.has_edge(b, a) {
                    lost += 1;
                }
            }
            if lost > 0 {
                tri[a as usize] -= lost;
                heap.push(Reverse((tri[a as usize], a)));
            }
        }
        if remaining > 0 && total > 0 {
            let density = total as f64 / remaining as f64;
            if density > best_density {
                best_density = density;
                best_remaining = remaining;
            }
        }
    }
    let mut vertices: Vec<VertexId> = order[(n - best_remaining)..].to_vec();
    vertices.sort_unstable();
    (vertices, best_density, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::UndirectedGraphBuilder;

    fn clique(n: u32) -> UndirectedGraph {
        let mut b = UndirectedGraphBuilder::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                b.push_edge(u, v);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn triangle_counts_on_k4() {
        let g = clique(4);
        let (per, total) = triangle_counts(&g);
        assert_eq!(total, 4);
        assert!(per.iter().all(|&c| c == 3));
    }

    #[test]
    fn clique_is_its_own_triangle_densest() {
        let g = clique(6);
        let r = triangle_densest(&g);
        assert_eq!(r.vertices.len(), 6);
        // C(6,3)/6 = 20/6.
        assert!((r.triangle_density - 20.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn finds_clique_in_triangle_free_background() {
        // Background: bipartite (triangle-free); planted K5.
        let mut b = UndirectedGraphBuilder::new(30);
        for u in 5..17u32 {
            for v in 17..30u32 {
                if (u + v) % 3 == 0 {
                    b.push_edge(u, v);
                }
            }
        }
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.push_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let r = triangle_densest(&g);
        assert_eq!(r.vertices, vec![0, 1, 2, 3, 4]);
        assert!((r.triangle_density - 2.0).abs() < 1e-9); // C(5,3)/5
    }

    #[test]
    fn triangle_free_graph_returns_empty() {
        let mut b = UndirectedGraphBuilder::new(6);
        for u in 0..3u32 {
            for v in 3..6u32 {
                b.push_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let r = triangle_densest(&g);
        assert_eq!(r.triangle_density, 0.0);
        assert!(r.vertices.is_empty());
    }

    #[test]
    fn three_approximation_vs_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for trial in 0..6 {
            let n = 10usize;
            let mut b = UndirectedGraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        b.push_edge(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            // Brute-force optimal triangle density.
            let mut best = 0.0f64;
            for mask in 1u32..(1 << n) {
                let set: Vec<u32> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
                if set.len() < 3 {
                    continue;
                }
                let mut tri = 0u64;
                for &u in &set {
                    for &v in &set {
                        if v <= u {
                            continue;
                        }
                        if !g.has_edge(u, v) {
                            continue;
                        }
                        for &w in &set {
                            if w > v && g.has_edge(u, w) && g.has_edge(v, w) {
                                tri += 1;
                            }
                        }
                    }
                }
                best = best.max(tri as f64 / set.len() as f64);
            }
            if best == 0.0 {
                continue;
            }
            let r = triangle_densest(&g);
            assert!(
                r.triangle_density * 3.0 + 1e-9 >= best,
                "trial {trial}: peel {} vs optimal {best}",
                r.triangle_density
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(4).build().unwrap();
        let r = triangle_densest(&g);
        assert_eq!(r.triangle_density, 0.0);
    }
}
