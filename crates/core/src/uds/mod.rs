//! Undirected densest subgraph (UDS) algorithms — Section IV of the paper.
//!
//! The paper's contribution is [`pkmc`] (Algorithm 2). The baselines it is
//! compared against in Exp-1..4 are all here too: [`charikar`], [`bz`],
//! [`pkc`], [`local`], [`pbu`], and [`pfw`]; [`exact`] holds a brute-force
//! oracle for tiny graphs (the flow-based exact oracle lives in
//! `dsd-flow`). Extensions beyond the paper: [`bsk`] (the Section IV-B
//! binary-search method), [`truss`] and [`triangle`] (the future-work
//! k-truss / k-clique-density relationships). The zero-allocation h-index
//! [`sweep`] engine is the shared hot path under [`local`] and [`pkmc`].

pub mod bsk;
pub mod bucket;
pub mod bz;
pub mod charikar;
pub mod exact;
pub mod iterate;
pub mod local;
pub mod pbu;
pub mod pfw;
pub mod pkc;
pub mod pkmc;
pub mod sweep;
pub mod triangle;
pub mod truss;

use dsd_graph::VertexId;
use serde::Serialize;

use crate::stats::Stats;

/// Result of an undirected densest-subgraph algorithm.
#[derive(Clone, Debug, Serialize)]
pub struct UdsResult {
    /// Vertex set of the returned subgraph (sorted original ids).
    pub vertices: Vec<VertexId>,
    /// Density `|E(S)| / |S|` of the returned subgraph.
    pub density: f64,
    /// Execution statistics.
    pub stats: Stats,
}

/// Result of a full core decomposition.
#[derive(Clone, Debug, Serialize)]
pub struct CoreDecomposition {
    /// `core[v]` is the core number of vertex `v`.
    pub core: Vec<u32>,
    /// The maximum core number `k*`.
    pub k_star: u32,
    /// Execution statistics.
    pub stats: Stats,
}

impl CoreDecomposition {
    /// Vertices of the `k*`-core (those with the maximum core number).
    pub fn k_star_core(&self) -> Vec<VertexId> {
        self.core
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == self.k_star && self.k_star > 0)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_star_core_selects_max() {
        let d = CoreDecomposition { core: vec![1, 2, 2, 0], k_star: 2, stats: Stats::default() };
        assert_eq!(d.k_star_core(), vec![1, 2]);
    }

    #[test]
    fn k_star_zero_core_is_empty() {
        let d = CoreDecomposition { core: vec![0, 0], k_star: 0, stats: Stats::default() };
        assert!(d.k_star_core().is_empty());
    }
}
