//! PFW — Frank–Wolfe `(1+ε)`-approximation
//! (Danisch et al. WWW 2017 / Su & Vu DISC 2020; references \[23\], \[28\]).
//!
//! The densest subgraph LP assigns each edge one unit of mass split between
//! its endpoints; minimising the maximum vertex load is dual to maximising
//! the density. Frank–Wolfe iterations rebalance each edge's mass toward
//! its currently lighter endpoint with step size `γ_t = 2/(t+2)`; after `T`
//! sweeps the vertices are sorted by load and the densest prefix is
//! returned (the standard fractional-peeling extraction).
//!
//! As in the paper, PFW is the quality-over-speed baseline: per-sweep cost
//! is `O(m)` but convergence needs many sweeps, which is why Exp-1 shows it
//! up to two orders of magnitude slower than the core-based algorithms.

use dsd_graph::{UndirectedGraph, VertexId};
use rayon::prelude::*;

use crate::stats::{timed, Stats};
use crate::uds::UdsResult;

/// Configuration for [`pfw_with`].
#[derive(Clone, Copy, Debug)]
pub struct PfwConfig {
    /// Number of Frank–Wolfe sweeps (paper setting ε = 1 corresponds to a
    /// moderate sweep budget; default 100).
    pub iterations: usize,
}

impl Default for PfwConfig {
    fn default() -> Self {
        Self { iterations: 100 }
    }
}

/// Runs PFW with the default sweep budget.
pub fn pfw(g: &UndirectedGraph) -> UdsResult {
    pfw_with(g, PfwConfig::default())
}

/// Runs PFW with an explicit sweep budget.
pub fn pfw_with(g: &UndirectedGraph, config: PfwConfig) -> UdsResult {
    let ((vertices, density, edges), wall) = timed(|| run(g, config.iterations));
    UdsResult {
        vertices,
        density,
        stats: Stats {
            iterations: config.iterations,
            wall,
            edges_result: Some(edges),
            ..Stats::default()
        },
    }
}

fn run(g: &UndirectedGraph, iterations: usize) -> (Vec<VertexId>, f64, usize) {
    let n = g.num_vertices();
    let m = g.num_edges();
    if n == 0 || m == 0 {
        return (Vec::new(), 0.0, 0);
    }
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    // alpha[e]: fraction of edge e's unit mass assigned to endpoint .0.
    let mut alpha = vec![0.5f64; m];
    let mut load = vec![0.0f64; n];
    recompute_loads(&edges, &alpha, &mut load);
    for t in 0..iterations {
        let gamma = 2.0 / (t as f64 + 2.0);
        alpha.par_iter_mut().enumerate().for_each(|(e, a)| {
            let (u, v) = edges[e];
            // Greedy target: all mass to the lighter endpoint (ties to the
            // smaller id for determinism).
            let lu = load[u as usize];
            let lv = load[v as usize];
            let target = if lu < lv || (lu == lv && u < v) { 1.0 } else { 0.0 };
            *a = (1.0 - gamma) * *a + gamma * target;
        });
        recompute_loads(&edges, &alpha, &mut load);
    }
    extract(g, &load)
}

fn recompute_loads(edges: &[(VertexId, VertexId)], alpha: &[f64], load: &mut [f64]) {
    load.iter_mut().for_each(|l| *l = 0.0);
    for (e, &(u, v)) in edges.iter().enumerate() {
        load[u as usize] += alpha[e];
        load[v as usize] += 1.0 - alpha[e];
    }
}

/// Sorts vertices by load descending and returns the densest prefix
/// (vertices, density, and the prefix's edge count).
fn extract(g: &UndirectedGraph, load: &[f64]) -> (Vec<VertexId>, f64, usize) {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.par_sort_unstable_by(|&a, &b| {
        load[b as usize].partial_cmp(&load[a as usize]).unwrap().then(a.cmp(&b))
    });
    let mut rank = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i;
    }
    let mut best_density = 0.0f64;
    let mut best_len = 0usize;
    let mut best_edges = 0usize;
    let mut edges_inside = 0usize;
    for (i, &v) in order.iter().enumerate() {
        // Edges from v to earlier-ranked vertices enter the prefix subgraph.
        edges_inside += g.neighbors(v).iter().filter(|&&u| rank[u as usize] < i).count();
        let density = edges_inside as f64 / (i + 1) as f64;
        if density > best_density {
            best_density = density;
            best_len = i + 1;
            best_edges = edges_inside;
        }
    }
    let mut vertices: Vec<VertexId> = order[..best_len].to_vec();
    vertices.sort_unstable();
    (vertices, best_density, best_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::undirected_density;
    use dsd_graph::UndirectedGraphBuilder;

    #[test]
    fn finds_planted_clique_exactly() {
        let g = dsd_graph::gen::planted_dense(300, 400, 20, 1.0, 61);
        let r = pfw(&g);
        // The planted 20-clique (density 9.5) should be recovered closely.
        assert!(r.density >= 9.0, "density {}", r.density);
    }

    #[test]
    fn close_to_exact_on_random_graph() {
        let g = dsd_graph::gen::erdos_renyi(80, 400, 13);
        let exact = dsd_flow::uds_exact(&g);
        let r = pfw_with(&g, PfwConfig { iterations: 200 });
        assert!(r.density >= exact.density / 1.25, "pfw {} vs exact {}", r.density, exact.density);
    }

    #[test]
    fn reported_density_matches_set() {
        let g = dsd_graph::gen::chung_lu(200, 1000, 2.4, 9);
        let r = pfw(&g);
        assert!((undirected_density(&g, &r.vertices) - r.density).abs() < 1e-9);
    }

    #[test]
    fn more_iterations_never_hurt_much() {
        let g = dsd_graph::gen::chung_lu(200, 1200, 2.2, 10);
        let short = pfw_with(&g, PfwConfig { iterations: 5 });
        let long = pfw_with(&g, PfwConfig { iterations: 300 });
        assert!(long.density + 1e-9 >= short.density * 0.95);
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(2).build().unwrap();
        let r = pfw(&g);
        assert_eq!(r.density, 0.0);
        assert!(r.vertices.is_empty());
    }

    #[test]
    fn single_edge() {
        let g = UndirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        let r = pfw(&g);
        assert!((r.density - 0.5).abs() < 1e-12);
        assert_eq!(r.vertices, vec![0, 1]);
    }
}
