//! Charikar's serial peeling 2-approximation (the classic UDS baseline,
//! reference \[3\] of the paper) and the reusable load-augmented peel it is
//! built on.
//!
//! Iteratively removes the minimum-degree vertex and returns the densest
//! prefix of the peeling order. `O(m + n)` with the binsort bucket queue.
//! This is the "strong dependency in their steps" algorithm the paper's
//! introduction cites as hard to parallelise — kept serial here, both as a
//! correctness oracle and as the natural single-thread baseline.
//!
//! The peel itself is exposed as [`peel_augmented`] over a caller-owned
//! [`PeelScratch`]: generic over [`NeighborAccess`] (plain and compressed
//! CSR), with optional Greedy++ load augmentation — keys are
//! `load[v] + degree(v)` in `u64`, and popping `v` charges its current
//! degree to `load[v]`. All working arrays live in the scratch and are
//! reused across invocations, so the iterative engine
//! ([`crate::uds::iterate`]) can run hundreds of peels with no per-round
//! allocation.

use dsd_graph::{NeighborAccess, UndirectedGraph, VertexId};

use crate::stats::{timed, Stats};
use crate::uds::UdsResult;

/// Caller-owned scratch for [`peel_augmented`]: a u64-keyed binsort bucket
/// queue (key / vert / pos / bin arrays) whose buffers are reused across
/// peels. After a peel completes, [`Self::order`] holds the full removal
/// order.
#[derive(Debug, Default)]
pub struct PeelScratch {
    /// Current key of each vertex, relative to the round's base offset.
    key: Vec<u64>,
    /// Vertices sorted by key; becomes the pop order as the cursor advances.
    vert: Vec<VertexId>,
    /// `pos[v]` is the index of `v` in `vert`.
    pos: Vec<usize>,
    /// `bin[k]` is the index in `vert` where relative-key-`k` vertices start.
    bin: Vec<usize>,
    /// Index of the next unextracted vertex in `vert`.
    cursor: usize,
    /// Key offset for this round: `min(load)` (0 for plain peels), so
    /// relative keys stay small even as Greedy++ loads grow.
    base: u64,
}

/// Densest prefix found by one peel: the best remaining-set size, its
/// density, and its edge count.
#[derive(Clone, Copy, Debug)]
pub struct PeelOutcome {
    /// Number of vertices in the densest remaining set.
    pub best_len: usize,
    /// Density of that set.
    pub best_density: f64,
    /// Edge count of that set.
    pub best_edges: usize,
}

impl PeelScratch {
    /// Creates an empty scratch; buffers are sized lazily on first peel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Full removal order of the last completed peel. The densest set of a
    /// [`PeelOutcome`] is the suffix `order()[n - best_len..]`.
    pub fn order(&self) -> &[VertexId] {
        &self.vert
    }

    /// (Re)initialises the bucket queue for keys `load[v] + degree(v)`.
    fn prime<G: NeighborAccess>(&mut self, g: &G, loads: Option<&[u64]>) {
        let n = g.vertex_count();
        self.base = loads.map_or(0, |l| l.iter().copied().min().unwrap_or(0));
        self.key.clear();
        self.key.extend((0..n).map(|v| {
            let load = loads.map_or(0, |l| l[v]);
            load - self.base + g.degree_of(v as VertexId) as u64
        }));
        let max_key = self.key.iter().copied().max().unwrap_or(0) as usize;
        self.bin.clear();
        self.bin.resize(max_key + 2, 0);
        for &k in &self.key {
            self.bin[k as usize + 1] += 1;
        }
        for k in 1..self.bin.len() {
            self.bin[k] += self.bin[k - 1];
        }
        self.vert.clear();
        self.vert.resize(n, 0);
        self.pos.clear();
        self.pos.resize(n, 0);
        // `bin` is the exclusive prefix (start of each bucket); place
        // vertices by walking a cursor copy, then restore the starts.
        let mut cursors = std::mem::take(&mut self.bin);
        for (v, &k) in self.key.iter().enumerate() {
            let p = cursors[k as usize];
            self.vert[p] = v as VertexId;
            self.pos[v] = p;
            cursors[k as usize] += 1;
        }
        for k in (1..cursors.len()).rev() {
            cursors[k] = cursors[k - 1];
        }
        cursors[0] = 0;
        self.bin = cursors;
        self.cursor = 0;
    }

    fn pop_min(&mut self) -> Option<(VertexId, u64)> {
        if self.cursor >= self.vert.len() {
            return None;
        }
        let v = self.vert[self.cursor];
        self.cursor += 1;
        Some((v, self.key[v as usize]))
    }

    fn is_extracted(&self, v: VertexId) -> bool {
        self.pos[v as usize] < self.cursor
    }

    fn decrease_key(&mut self, v: VertexId) {
        let vi = v as usize;
        if self.pos[vi] < self.cursor || self.key[vi] == 0 {
            return;
        }
        let k = self.key[vi] as usize;
        let bucket_start = self.bin[k].max(self.cursor);
        let pv = self.pos[vi];
        let w = self.vert[bucket_start];
        if w != v {
            self.vert.swap(pv, bucket_start);
            self.pos[w as usize] = pv;
            self.pos[vi] = bucket_start;
        }
        self.bin[k] = bucket_start + 1;
        self.key[vi] -= 1;
    }
}

/// One min-`(load + degree)` peel over `g`, tracking the densest remaining
/// set. With `loads = Some(..)` this is one Greedy++ round: popping `v`
/// adds its current (remaining) degree to `loads[v]`. With `loads = None`
/// it is exactly Charikar's peel. Allocation-free after the first call on
/// a same-sized graph.
pub fn peel_augmented<G: NeighborAccess>(
    g: &G,
    mut loads: Option<&mut [u64]>,
    scratch: &mut PeelScratch,
) -> PeelOutcome {
    let n = g.vertex_count();
    let m = (g.arc_count() / 2) as usize;
    scratch.prime(g, loads.as_deref());
    let mut m_remaining = m;
    let mut best_density = if n > 0 { m as f64 / n as f64 } else { 0.0 };
    let mut best_len = n;
    let mut best_edges = m;
    while let Some((v, rel_key)) = scratch.pop_min() {
        let load = loads.as_deref().map_or(0, |l| l[v as usize]);
        let cur_deg = rel_key + scratch.base - load;
        if let Some(l) = loads.as_deref_mut() {
            l[v as usize] += cur_deg;
        }
        m_remaining -= cur_deg as usize;
        for u in g.neighbors_of(v) {
            if !scratch.is_extracted(u) {
                scratch.decrease_key(u);
            }
        }
        let remaining = n - scratch.cursor;
        if remaining > 0 {
            let density = m_remaining as f64 / remaining as f64;
            if density > best_density {
                best_density = density;
                best_len = remaining;
                best_edges = m_remaining;
            }
        }
    }
    debug_assert_eq!(m_remaining, 0);
    PeelOutcome { best_len, best_density, best_edges }
}

/// Runs Charikar's greedy peeling and returns the densest subgraph seen.
pub fn charikar(g: &UndirectedGraph) -> UdsResult {
    let mut scratch = PeelScratch::new();
    let (outcome, wall) = timed(|| peel_augmented(g, None, &mut scratch));
    let n = g.num_vertices();
    let mut vertices: Vec<VertexId> = scratch.order()[(n - outcome.best_len)..].to_vec();
    vertices.sort_unstable();
    UdsResult {
        vertices,
        density: outcome.best_density,
        stats: Stats {
            iterations: n,
            wall,
            edges_result: Some(outcome.best_edges),
            ..Stats::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::undirected_density;
    use dsd_graph::UndirectedGraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32)]) -> UndirectedGraph {
        UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    #[test]
    fn finds_clique_in_sparse_background() {
        // K4 plus path tail.
        let g = graph(
            8,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
        );
        let r = charikar(&g);
        assert_eq!(r.vertices, vec![0, 1, 2, 3]);
        assert!((r.density - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reported_density_matches_vertex_set() {
        let g = graph(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let r = charikar(&g);
        assert!((undirected_density(&g, &r.vertices) - r.density).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = graph(3, &[]);
        let r = charikar(&g);
        assert_eq!(r.density, 0.0);
    }

    #[test]
    fn two_approximation_vs_exact() {
        let g = dsd_graph::gen::erdos_renyi(60, 240, 5);
        let exact = dsd_flow::uds_exact(&g);
        let approx = charikar(&g);
        assert!(
            approx.density * 2.0 + 1e-9 >= exact.density,
            "approx {} vs exact {}",
            approx.density,
            exact.density
        );
    }

    #[test]
    fn whole_graph_when_it_is_densest() {
        // A clique: peeling never improves on the full graph.
        let mut b = UndirectedGraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.push_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let r = charikar(&g);
        assert_eq!(r.vertices.len(), 5);
        assert!((r.density - 2.0).abs() < 1e-12);
    }

    #[test]
    fn peel_matches_legacy_bucket_queue_order() {
        // The u64-keyed scratch must reproduce the u32 BucketQueue peel
        // exactly when loads are absent (same counting sort, same
        // swap-to-boundary decrease), so `charikar` is unchanged.
        let g = dsd_graph::gen::chung_lu(120, 600, 2.4, 17);
        let mut q = crate::uds::bucket::BucketQueue::new(&g.degrees());
        let mut legacy_order = Vec::new();
        while let Some((v, _)) = q.pop_min() {
            legacy_order.push(v);
            for &u in g.neighbors(v) {
                if !q.is_extracted(u) {
                    q.decrease_key(u);
                }
            }
        }
        let mut scratch = PeelScratch::new();
        peel_augmented(&g, None, &mut scratch);
        assert_eq!(scratch.order(), legacy_order.as_slice());
    }

    #[test]
    fn augmented_peel_charges_each_edge_once() {
        let g = dsd_graph::gen::erdos_renyi(40, 160, 9);
        let mut loads = vec![0u64; g.num_vertices()];
        let mut scratch = PeelScratch::new();
        for round in 1..=5u64 {
            peel_augmented(&g, Some(&mut loads), &mut scratch);
            let total: u64 = loads.iter().sum();
            assert_eq!(total, round * g.num_edges() as u64);
        }
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh() {
        let a = dsd_graph::gen::chung_lu(80, 300, 2.3, 3);
        let b = dsd_graph::gen::erdos_renyi(50, 200, 4);
        let mut shared = PeelScratch::new();
        peel_augmented(&a, None, &mut shared);
        let reused = peel_augmented(&b, None, &mut shared);
        let mut fresh = PeelScratch::new();
        let direct = peel_augmented(&b, None, &mut fresh);
        assert_eq!(reused.best_len, direct.best_len);
        assert_eq!(reused.best_edges, direct.best_edges);
        assert_eq!(shared.order(), fresh.order());
    }

    #[test]
    fn compressed_storage_peels_identically() {
        let g = dsd_graph::gen::chung_lu(150, 900, 2.2, 21);
        let c = dsd_graph::compress::CompressedCsr::from_graph(&g);
        let mut s1 = PeelScratch::new();
        let mut s2 = PeelScratch::new();
        let plain = peel_augmented(&g, None, &mut s1);
        let packed = peel_augmented(&c, None, &mut s2);
        assert_eq!(plain.best_len, packed.best_len);
        assert_eq!(plain.best_edges, packed.best_edges);
        assert_eq!(s1.order(), s2.order());
    }
}
