//! Charikar's serial peeling 2-approximation (the classic UDS baseline,
//! reference \[3\] of the paper).
//!
//! Iteratively removes the minimum-degree vertex and returns the densest
//! prefix of the peeling order. `O(m + n)` with the binsort bucket queue.
//! This is the "strong dependency in their steps" algorithm the paper's
//! introduction cites as hard to parallelise — kept serial here, both as a
//! correctness oracle and as the natural single-thread baseline.

use dsd_graph::{UndirectedGraph, VertexId};

use crate::stats::{timed, Stats};
use crate::uds::bucket::BucketQueue;
use crate::uds::UdsResult;

/// Runs Charikar's greedy peeling and returns the densest subgraph seen.
pub fn charikar(g: &UndirectedGraph) -> UdsResult {
    let ((order, best_remaining, best_density, best_edges), wall) = timed(|| peel(g));
    // The best subgraph is the set of vertices NOT among the first
    // `n - best_remaining` peeled.
    let n = g.num_vertices();
    let mut vertices: Vec<VertexId> = order[(n - best_remaining)..].to_vec();
    vertices.sort_unstable();
    UdsResult {
        vertices,
        density: best_density,
        stats: Stats { iterations: n, wall, edges_result: Some(best_edges), ..Stats::default() },
    }
}

/// Peels min-degree vertices; returns the removal order, the remaining
/// vertex count at the densest prefix, that density, and the prefix's
/// edge count.
fn peel(g: &UndirectedGraph) -> (Vec<VertexId>, usize, f64, usize) {
    let n = g.num_vertices();
    let mut q = BucketQueue::new(&g.degrees());
    let mut m_remaining = g.num_edges();
    let mut best_density = if n > 0 { g.density() } else { 0.0 };
    let mut best_remaining = n;
    let mut best_edges = g.num_edges();
    let mut order = Vec::with_capacity(n);
    while let Some((v, k)) = q.pop_min() {
        order.push(v);
        m_remaining -= k as usize;
        for &u in g.neighbors(v) {
            if !q.is_extracted(u) {
                q.decrease_key(u);
            }
        }
        let remaining = q.remaining();
        if remaining > 0 {
            let density = m_remaining as f64 / remaining as f64;
            if density > best_density {
                best_density = density;
                best_remaining = remaining;
                best_edges = m_remaining;
            }
        }
    }
    debug_assert_eq!(m_remaining, 0);
    (order, best_remaining, best_density, best_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::undirected_density;
    use dsd_graph::UndirectedGraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32)]) -> UndirectedGraph {
        UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    #[test]
    fn finds_clique_in_sparse_background() {
        // K4 plus path tail.
        let g = graph(
            8,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
        );
        let r = charikar(&g);
        assert_eq!(r.vertices, vec![0, 1, 2, 3]);
        assert!((r.density - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reported_density_matches_vertex_set() {
        let g = graph(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let r = charikar(&g);
        assert!((undirected_density(&g, &r.vertices) - r.density).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = graph(3, &[]);
        let r = charikar(&g);
        assert_eq!(r.density, 0.0);
    }

    #[test]
    fn two_approximation_vs_exact() {
        let g = dsd_graph::gen::erdos_renyi(60, 240, 5);
        let exact = dsd_flow::uds_exact(&g);
        let approx = charikar(&g);
        assert!(
            approx.density * 2.0 + 1e-9 >= exact.density,
            "approx {} vs exact {}",
            approx.density,
            exact.density
        );
    }

    #[test]
    fn whole_graph_when_it_is_densest() {
        // A clique: peeling never improves on the full graph.
        let mut b = UndirectedGraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.push_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let r = charikar(&g);
        assert_eq!(r.vertices.len(), 5);
        assert!((r.density - 2.0).abs() < 1e-12);
    }
}
