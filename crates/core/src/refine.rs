//! Result refinement helpers.
//!
//! The paper notes (Sections IV-A and V-A) that the `k*`-core and the
//! `[x*, y*]`-core may consist of several connected components, *any* of
//! which is a valid 2-approximation. Returning the **densest** component
//! instead of the whole core is a free quality improvement — the guarantee
//! is preserved because at least one component is at least as dense as the
//! full core.

use dsd_graph::{UndirectedGraph, VertexId};

use crate::density::undirected_density;

/// Splits `vertices` into connected components of the induced subgraph and
/// returns the densest one with its density. Returns the input (density 0)
/// when the set is empty.
pub fn densest_component(g: &UndirectedGraph, vertices: &[VertexId]) -> (Vec<VertexId>, f64) {
    if vertices.is_empty() {
        return (Vec::new(), 0.0);
    }
    let sub = dsd_graph::subgraph::induce_undirected(g, vertices);
    let comps = dsd_graph::components::connected_components(&sub.graph);
    let mut best: (Vec<VertexId>, f64) = (Vec::new(), -1.0);
    for group in comps.groups() {
        if group.is_empty() {
            continue;
        }
        let original: Vec<VertexId> = group.iter().map(|&v| sub.original[v as usize]).collect();
        let density = undirected_density(g, &original);
        if density > best.1 {
            let mut sorted = original;
            sorted.sort_unstable();
            best = (sorted, density);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::UndirectedGraphBuilder;

    #[test]
    fn picks_the_denser_component() {
        // K4 (0..4) + triangle (4..7), all in one candidate set.
        let mut b = UndirectedGraphBuilder::new(7);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.push_edge(u, v);
            }
        }
        b.push_edge(4, 5);
        b.push_edge(5, 6);
        b.push_edge(4, 6);
        let g = b.build().unwrap();
        let (comp, density) = densest_component(&g, &[0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(comp, vec![0, 1, 2, 3]);
        assert!((density - 1.5).abs() < 1e-12);
    }

    #[test]
    fn single_component_is_identity() {
        let g = UndirectedGraphBuilder::new(3).add_edges([(0, 1), (1, 2), (0, 2)]).build().unwrap();
        let (comp, density) = densest_component(&g, &[0, 1, 2]);
        assert_eq!(comp, vec![0, 1, 2]);
        assert!((density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn refinement_never_lowers_density() {
        for seed in 0..5 {
            let g = dsd_graph::gen::erdos_renyi(120, 400, seed + 500);
            let r = crate::uds::pkmc::pkmc(&g);
            if r.vertices.is_empty() {
                continue;
            }
            let (comp, density) = densest_component(&g, &r.vertices);
            assert!(!comp.is_empty());
            assert!(density + 1e-9 >= r.density, "seed {seed}: {density} < {}", r.density);
        }
    }

    #[test]
    fn empty_input() {
        let g = UndirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        let (comp, density) = densest_component(&g, &[]);
        assert!(comp.is_empty());
        assert_eq!(density, 0.0);
    }
}
