//! # dsd-core
//!
//! Parallel densest subgraph discovery, reproducing *"Scalable Algorithms
//! for Densest Subgraph Discovery"* (Luo et al., ICDE 2023).
//!
//! The crate implements the paper's two contributions —
//! [`uds::pkmc`] (Algorithm 2) and [`dds::pwc`] (Algorithm 4) — together
//! with every baseline the paper compares against, a shared
//! instrumentation type ([`stats::Stats`]), and a thread-pool
//! [`runner`] used by the `p`-sweep experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dds;
pub mod density;
pub mod dynamic;
pub mod refine;
pub mod runner;
pub mod seeded;
pub mod stats;
pub mod uds;
