//! Algorithm instrumentation.
//!
//! The paper's evaluation reports more than wall-clock time: Exp-2
//! (Table 6) compares *iteration counts* across core-decomposition
//! algorithms, and Exp-6 (Table 7) compares the *sizes of the graphs
//! processed* by PXY and PWC. Every algorithm in this crate therefore
//! returns a [`Stats`] value alongside its result.

use std::time::Duration;

use serde::Serialize;

/// Execution statistics reported by every algorithm.
///
/// # Per-algorithm semantics
///
/// Every algorithm populates `iterations` and `wall`; the optional edge
/// fields are filled only where the notion applies:
///
/// | algorithm | `iterations` | `edges_first/last_iter` | `edges_result` |
/// |---|---|---|---|
/// | Local, PKMC | h-index sweeps | — | PKMC: edges of the `k*`-core |
/// | PKC | parallel peel rounds | — | — |
/// | BZ, Charikar | vertices popped | — | Charikar: edges of the densest prefix |
/// | BSK | `k`-core probes | — | edges of the `k*`-core |
/// | PBU | batch passes | surviving edges at first/last pass | edges of the densest iterate |
/// | PFW (both) | FW sweeps (budget) | — | edges of the extracted prefix |
/// | PBD | passes over all guesses | — | `S→T` edges of the best pair |
/// | PBS, PFKS | ratio peels | — | `S→T` edges of the best pair |
/// | PXY | cascade rounds | alive edges at first/last outer round | edges of the result |
/// | PWC / w-decomposition | cascade rounds | alive edges at first/last outer round (Table 7) | PWC: `S→T` edges of the result |
/// | truss / triangle peel | edges / vertices peeled | — | triangle: edges of the result |
/// | Greedy++ (both) | load-augmented peel rounds | — | edges of the best prefix |
/// | FISTA | accelerated gradient rounds | — | edges of the best prefix |
///
/// Core decompositions (Local, BZ, PKC) return vertex labellings rather
/// than a subgraph, so no edge field applies.
#[derive(Clone, Debug, Default, Serialize, PartialEq)]
pub struct Stats {
    /// Number of (parallel) iterations / rounds / sweeps performed.
    ///
    /// * h-index algorithms (Local, PKMC): full h-update sweeps,
    /// * peeling algorithms (PKC, Algorithm 3's inner loop): frontier
    ///   removal rounds,
    /// * pass-based algorithms (PBU, PBD, PFW): passes.
    pub iterations: usize,
    /// Wall-clock time of the whole computation.
    pub wall: Duration,
    /// Edges alive when the first main iteration started (Table 7's
    /// `PWC₁`). `None` for algorithms where the notion does not apply.
    pub edges_first_iter: Option<usize>,
    /// Edges alive when the last main iteration started (Table 7's
    /// `PWC_{w*}`).
    pub edges_last_iter: Option<usize>,
    /// Edges in the returned (densest) subgraph (Table 7's `PWC_{D*}`).
    pub edges_result: Option<usize>,
}

impl Stats {
    /// Creates a stats value carrying only an iteration count and elapsed
    /// time.
    pub fn new(iterations: usize, wall: Duration) -> Self {
        Self { iterations, wall, ..Self::default() }
    }
}

/// Measures the wall time of `f`, returning its result and the duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result() {
        let (x, wall) = timed(|| 41 + 1);
        assert_eq!(x, 42);
        // The measurement itself is bounded by the monotonic clock's
        // resolution; a trivial closure must not report minutes of work.
        assert!(wall < Duration::from_secs(60));
    }

    #[test]
    fn timed_measures_at_least_the_work() {
        let sleep = Duration::from_millis(2);
        let ((), wall) = timed(|| std::thread::sleep(sleep));
        assert!(wall >= sleep, "wall {wall:?} below the slept {sleep:?}");
    }

    #[test]
    fn new_sets_fields() {
        let s = Stats::new(3, Duration::from_millis(5));
        assert_eq!(s.iterations, 3);
        assert_eq!(s.wall, Duration::from_millis(5));
        assert!(s.edges_first_iter.is_none());
    }

    #[test]
    fn stats_is_serializable() {
        fn assert_serialize<T: serde::Serialize>() {}
        assert_serialize::<Stats>();
    }
}
