//! Seeded dense-neighbourhood queries over a precomputed core certificate.
//!
//! The serving layer answers "top-k dense neighbourhoods of a seed vertex"
//! without running a decomposition at query time: the snapshot's core
//! vector (undirected) or degree arrays (directed) rank the seed's
//! neighbours, and candidate subgraphs are the ranked prefixes. This is
//! the core-based pruning of Fang et al. turned into a query primitive —
//! a vertex's densest enclosing neighbourhood is overwhelmingly likely to
//! sit inside its highest-core neighbours, so scoring `O(deg)` prefixes
//! by exact induced density recovers it without a search.
//!
//! Everything here is deterministic: candidate order is a total order
//! (certificate value descending, vertex id ascending) and ties between
//! prefixes resolve toward the smaller subgraph, so serve-path answers
//! are reproducible bit-for-bit across runs and thread-pool sizes.

use dsd_graph::{DirectedGraph, UndirectedGraph, VertexId};

use crate::density::{set_edges_and_density, st_edges_and_density};

/// Prefix length cap: neighbourhood queries score at most this many ranked
/// neighbours, bounding per-query work on hub seeds to a constant number
/// of exact density evaluations.
pub const NEIGHBORHOOD_CAP: usize = 64;

/// One scored neighbourhood candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct SeededNeighborhood {
    /// The candidate vertex set (sorted ascending; always contains the
    /// seed for undirected queries, the source side for directed ones).
    pub vertices: Vec<VertexId>,
    /// Induced edge count (undirected) or `|E(S, T)|` (directed).
    pub edges: usize,
    /// Induced density: `|E(S)| / |S|` or `|E(S,T)| / √(|S||T|)`.
    pub density: f64,
}

/// Top-`k` dense neighbourhoods of `seed` in an undirected graph.
///
/// Candidates are the prefixes `{seed} ∪ top-j neighbours` for
/// `j = 1..min(deg(seed), NEIGHBORHOOD_CAP)`, where neighbours are ranked
/// by core number descending (vertex id ascending on ties) using the
/// caller's precomputed `core` vector. Returns the `k` densest prefixes,
/// densest first; ties prefer the smaller prefix. Empty when the seed is
/// out of range or isolated.
pub fn top_dense_neighborhoods(
    g: &UndirectedGraph,
    core: &[u32],
    seed: VertexId,
    k: usize,
) -> Vec<SeededNeighborhood> {
    if k == 0 || (seed as usize) >= g.num_vertices() {
        return Vec::new();
    }
    let mut cand: Vec<VertexId> = g.neighbors(seed).to_vec();
    cand.sort_by(|&a, &b| core[b as usize].cmp(&core[a as usize]).then_with(|| a.cmp(&b)));
    cand.truncate(NEIGHBORHOOD_CAP);
    let mut prefix = vec![seed];
    let mut scored = Vec::with_capacity(cand.len());
    for (j, &v) in cand.iter().enumerate() {
        prefix.push(v);
        let (edges, density) = set_edges_and_density(g, &prefix);
        let mut vertices = prefix.clone();
        vertices.sort_unstable();
        scored.push((j, SeededNeighborhood { vertices, edges, density }));
    }
    rank(scored, k)
}

/// Directed counterpart: top-`k` dense `(S, T)` neighbourhoods with
/// `S = {seed}` and `T` a prefix of the seed's out-neighbours ranked by
/// in-degree descending (vertex id ascending on ties). In-degree is the
/// directed analogue of the core rank here: `d⁺(u)·d⁻(v)` upper-bounds an
/// edge's induce-number, so high in-degree targets are where the dense
/// `(x, y)`-cores live.
pub fn top_dense_out_neighborhoods(
    g: &DirectedGraph,
    seed: VertexId,
    k: usize,
) -> Vec<SeededNeighborhood> {
    if k == 0 || (seed as usize) >= g.num_vertices() {
        return Vec::new();
    }
    let mut cand: Vec<VertexId> = g.out_neighbors(seed).to_vec();
    cand.sort_by(|&a, &b| g.in_degree(b).cmp(&g.in_degree(a)).then_with(|| a.cmp(&b)));
    cand.truncate(NEIGHBORHOOD_CAP);
    let s = [seed];
    let mut t = Vec::new();
    let mut scored = Vec::with_capacity(cand.len());
    for (j, &v) in cand.iter().enumerate() {
        t.push(v);
        let (edges, density) = st_edges_and_density(g, &s, &t);
        let mut vertices = t.clone();
        vertices.sort_unstable();
        scored.push((j, SeededNeighborhood { vertices, edges, density }));
    }
    rank(scored, k)
}

/// Sorts candidates by density descending; ties prefer the shorter prefix
/// (smaller original index). Stable and total, so the result is unique.
fn rank(mut scored: Vec<(usize, SeededNeighborhood)>, k: usize) -> Vec<SeededNeighborhood> {
    scored.sort_by(|(ia, a), (ib, b)| {
        b.density.partial_cmp(&a.density).expect("densities are finite").then_with(|| ia.cmp(ib))
    });
    scored.truncate(k);
    scored.into_iter().map(|(_, n)| n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uds::bz::bz_decomposition;
    use dsd_graph::gen::erdos_renyi;
    use dsd_graph::{DirectedGraphBuilder, UndirectedGraphBuilder};

    fn clique_plus_tail() -> UndirectedGraph {
        // 0..4 form a clique; 5 hangs off 0; 6 hangs off 5.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        edges.push((0, 5));
        edges.push((5, 6));
        UndirectedGraphBuilder::with_capacity(7, edges.len()).add_edges(edges).build().unwrap()
    }

    #[test]
    fn finds_the_clique_around_a_member() {
        let g = clique_plus_tail();
        let core = bz_decomposition(&g).core;
        let top = top_dense_neighborhoods(&g, &core, 0, 1);
        assert_eq!(top.len(), 1);
        // The densest prefix of vertex 0's ranked neighbourhood is the
        // full 4-clique: 6 edges over 4 vertices.
        assert_eq!(top[0].vertices, vec![0, 1, 2, 3]);
        assert_eq!(top[0].edges, 6);
        assert!((top[0].density - 1.5).abs() < 1e-12);
    }

    #[test]
    fn candidates_are_ranked_deterministically() {
        let g = erdos_renyi(60, 240, 11);
        let core = bz_decomposition(&g).core;
        for seed in [0u32, 7, 31] {
            let a = top_dense_neighborhoods(&g, &core, seed, 5);
            let b = top_dense_neighborhoods(&g, &core, seed, 5);
            assert_eq!(a, b);
            for w in a.windows(2) {
                assert!(w[0].density >= w[1].density);
            }
        }
    }

    #[test]
    fn out_of_range_seed_and_zero_k_are_empty() {
        let g = clique_plus_tail();
        let core = bz_decomposition(&g).core;
        assert!(top_dense_neighborhoods(&g, &core, 99, 3).is_empty());
        assert!(top_dense_neighborhoods(&g, &core, 0, 0).is_empty());
    }

    #[test]
    fn directed_prefixes_score_st_density() {
        // seed 0 -> {1, 2, 3}; 1 and 2 also receive edges from 4 so they
        // outrank 3 by in-degree.
        let edges = vec![(0u32, 1u32), (0, 2), (0, 3), (4, 1), (4, 2)];
        let g =
            DirectedGraphBuilder::with_capacity(5, edges.len()).add_edges(edges).build().unwrap();
        let top = top_dense_out_neighborhoods(&g, 0, 2);
        assert_eq!(top.len(), 2);
        // Every out-neighbour receives an edge from the seed, so the full
        // prefix wins: |E(S,T)| / sqrt(|S||T|) = 3 / sqrt(3), then 2 / sqrt(2).
        assert_eq!(top[0].vertices, vec![1, 2, 3]);
        assert!((top[0].density - 3.0 / 3f64.sqrt()).abs() < 1e-12);
        assert_eq!(top[1].vertices, vec![1, 2]);
        assert!((top[1].density - 2.0 / 2f64.sqrt()).abs() < 1e-12);
    }
}
