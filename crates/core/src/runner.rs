//! Thread-pool control for the `p`-sweep experiments.
//!
//! The paper varies the number of threads `p` from 1 to 64 (Exp-3 and
//! Exp-7). All algorithms in this crate parallelise through rayon's global
//! join/scope machinery, so pinning the pool size of the executing scope
//! reproduces that sweep.

/// Runs `f` inside a dedicated rayon pool with exactly `threads` worker
/// threads, so every `par_iter` issued by `f` uses that pool.
///
/// ```
/// let sum: u64 = dsd_core::runner::with_threads(2, || {
///     use rayon::prelude::*;
///     (0..100u64).into_par_iter().sum()
/// });
/// assert_eq!(sum, 4950);
/// ```
///
/// While `f` runs, the telemetry recorder's pool label is set to `threads`,
/// so any trace begun inside `f` (or already active) is labelled with the
/// pool size that drove it (`DecompositionTrace::threads`). The previous
/// label is restored on exit, so nested `with_threads` calls label
/// correctly.
///
/// # Panics
///
/// Panics if `threads` is 0 or the pool cannot be created.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    assert!(threads > 0, "thread count must be positive");
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    let prev = dsd_telemetry::pool_threads();
    dsd_telemetry::set_pool_threads(Some(threads));
    let out = pool.install(f);
    dsd_telemetry::set_pool_threads(prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_size_is_respected() {
        let observed = with_threads(3, rayon::current_num_threads);
        assert_eq!(observed, 3);
    }

    #[test]
    fn parallel_work_completes() {
        let v: Vec<u32> = with_threads(2, || (0..1000u32).into_par_iter().map(|x| x * 2).collect());
        assert_eq!(v.len(), 1000);
        assert_eq!(v[999], 1998);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        with_threads(0, || ());
    }
}
