//! Density computations (Definitions 1 and 3 of the paper).

use dsd_graph::{
    DirectedGraph, DirectedNeighborAccess, DirectedStorage, NeighborAccess, UndirectedStorage,
    VertexId,
};

/// Density `|E(S)| / |S|` of the subgraph of `g` induced by `set`
/// (Definition 1). Duplicate ids in `set` are not supported; returns 0 for
/// the empty set. Generic over [`NeighborAccess`], so it serves plain and
/// compressed storage alike.
pub fn undirected_density<G: NeighborAccess>(g: &G, set: &[VertexId]) -> f64 {
    set_edges_and_density(g, set).1
}

/// Returns `(|E(S)|, |E(S)| / |S|)` for the subgraph induced by `set`
/// (the pair version of [`undirected_density`], used by algorithms that
/// report `Stats::edges_result` alongside the density).
pub fn set_edges_and_density<G: NeighborAccess>(g: &G, set: &[VertexId]) -> (usize, f64) {
    if set.is_empty() {
        return (0, 0.0);
    }
    let mut member = vec![false; g.vertex_count()];
    for &v in set {
        member[v as usize] = true;
    }
    let mut edges = 0usize;
    for &v in set {
        for u in g.neighbors_of(v) {
            if u > v && member[u as usize] {
                edges += 1;
            }
        }
    }
    (edges, edges as f64 / set.len() as f64)
}

/// Density of the subgraph induced by an arbitrary vertex set over either
/// storage representation — the storage-enum front door to
/// [`undirected_density`], used by the certified iterative driver's
/// incumbent tracking (and later by the serve layer).
pub fn density_of(storage: &UndirectedStorage<'_>, set: &[VertexId]) -> f64 {
    match storage {
        UndirectedStorage::Plain(g) => undirected_density(*g, set),
        UndirectedStorage::Compressed(c) => undirected_density(*c, set),
    }
}

/// Directed counterpart of [`density_of`]: `ρ(S, T)` for arbitrary vertex
/// sets over either directed storage representation.
pub fn directed_density_of(storage: &DirectedStorage<'_>, s: &[VertexId], t: &[VertexId]) -> f64 {
    match storage {
        DirectedStorage::Plain(g) => directed_density(g, s, t),
        DirectedStorage::Compressed(c) => st_density_generic(*c, s, t),
    }
}

/// `ρ(S, T)` over any [`DirectedNeighborAccess`] implementation.
fn st_density_generic<G: DirectedNeighborAccess>(g: &G, s: &[VertexId], t: &[VertexId]) -> f64 {
    if s.is_empty() || t.is_empty() {
        return 0.0;
    }
    let mut in_t = vec![false; g.vertex_count()];
    for &v in t {
        in_t[v as usize] = true;
    }
    let mut edges = 0usize;
    for &u in s {
        for v in g.out_neighbors_of(u) {
            if in_t[v as usize] {
                edges += 1;
            }
        }
    }
    edges as f64 / ((s.len() as f64) * (t.len() as f64)).sqrt()
}

/// Number of edges of `g` from `s` to `t` plus the density
/// `|E(S,T)| / √(|S||T|)` (Definition 3).
pub fn directed_density(g: &DirectedGraph, s: &[VertexId], t: &[VertexId]) -> f64 {
    st_edges_and_density(g, s, t).1
}

/// Returns `(|E(S,T)|, ρ(S,T))`.
pub fn st_edges_and_density(g: &DirectedGraph, s: &[VertexId], t: &[VertexId]) -> (usize, f64) {
    if s.is_empty() || t.is_empty() {
        return (0, 0.0);
    }
    let mut in_t = vec![false; g.num_vertices()];
    for &v in t {
        in_t[v as usize] = true;
    }
    let mut edges = 0usize;
    for &u in s {
        for &v in g.out_neighbors(u) {
            if in_t[v as usize] {
                edges += 1;
            }
        }
    }
    (edges, edges as f64 / ((s.len() as f64) * (t.len() as f64)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::{DirectedGraphBuilder, UndirectedGraphBuilder};

    #[test]
    fn triangle_density_one() {
        let g = UndirectedGraphBuilder::new(4)
            .add_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build()
            .unwrap();
        assert!((undirected_density(&g, &[0, 1, 2]) - 1.0).abs() < 1e-12);
        assert!((undirected_density(&g, &[0, 1, 2, 3]) - 1.0).abs() < 1e-12);
        assert_eq!(undirected_density(&g, &[]), 0.0);
    }

    #[test]
    fn directed_density_matches_definition() {
        let g = DirectedGraphBuilder::new(4)
            .add_edges([(0, 2), (0, 3), (1, 2), (1, 3)])
            .build()
            .unwrap();
        let (e, d) = st_edges_and_density(&g, &[0, 1], &[2, 3]);
        assert_eq!(e, 4);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn directed_density_overlapping_sets_generalises_undirected() {
        // Density of (S, S) on a doubled undirected graph equals the
        // undirected density (Section I observation).
        let ug =
            UndirectedGraphBuilder::new(3).add_edges([(0, 1), (1, 2), (0, 2)]).build().unwrap();
        let mut b = DirectedGraphBuilder::new(3);
        for (u, v) in ug.edges() {
            b.push_edge(u, v);
            b.push_edge(v, u);
        }
        let dg = b.build().unwrap();
        let s = [0, 1, 2];
        // 2m_und edges over sqrt(n*n) = 2m/n = 2 * undirected density.
        let (e, d) = st_edges_and_density(&dg, &s, &s);
        assert_eq!(e, 6);
        assert!((d - 2.0 * undirected_density(&ug, &s)).abs() < 1e-12);
    }

    #[test]
    fn density_of_agrees_across_storage() {
        let g = dsd_graph::gen::chung_lu(80, 320, 2.3, 7);
        let c = dsd_graph::CompressedCsr::from_graph(&g);
        let set: Vec<u32> = (0..40).collect();
        let plain = density_of(&UndirectedStorage::Plain(&g), &set);
        let packed = density_of(&UndirectedStorage::Compressed(&c), &set);
        assert_eq!(plain.to_bits(), packed.to_bits());
        assert!((plain - undirected_density(&g, &set)).abs() < 1e-15);
        assert_eq!(density_of(&UndirectedStorage::Plain(&g), &[]), 0.0);
    }

    #[test]
    fn directed_density_of_agrees_across_storage() {
        let g = dsd_graph::gen::chung_lu_directed(60, 400, 2.5, 2.4, 11);
        let c = dsd_graph::CompressedDigraph::from_graph(&g);
        let s: Vec<u32> = (0..25).collect();
        let t: Vec<u32> = (20..60).collect();
        let plain = directed_density_of(&DirectedStorage::Plain(&g), &s, &t);
        let packed = directed_density_of(&DirectedStorage::Compressed(&c), &s, &t);
        assert_eq!(plain.to_bits(), packed.to_bits());
        assert!((plain - directed_density(&g, &s, &t)).abs() < 1e-15);
        assert_eq!(directed_density_of(&DirectedStorage::Plain(&g), &s, &[]), 0.0);
    }

    #[test]
    fn empty_sides_zero() {
        let g = DirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        assert_eq!(directed_density(&g, &[], &[1]), 0.0);
        assert_eq!(directed_density(&g, &[0], &[]), 0.0);
    }
}
