//! PFW (directed) — Frank–Wolfe baseline for DDS (reference \[28\]).
//!
//! Directed analogue of the undirected Frank–Wolfe peel: each edge carries
//! one unit of mass split between its *source role* at `u` and its *target
//! role* at `v`; iterations shift mass toward the lighter role with step
//! `γ_t = 2/(t+2)`. Extraction sweeps the combined role list in descending
//! load order, maintaining the running `(S, T)` pair and edge count, and
//! returns the densest prefix pair.
//!
//! As in the paper's Exp-5, this is the slow high-quality baseline: it only
//! finishes on the smaller graphs and approaches the exact density as the
//! sweep budget grows.

use dsd_graph::{DirectedGraph, VertexId};
use rayon::prelude::*;

use crate::dds::DdsResult;
use crate::stats::{timed, Stats};

/// Configuration for [`pfw_directed_with`].
#[derive(Clone, Copy, Debug)]
pub struct PfwDirectedConfig {
    /// Number of Frank–Wolfe sweeps (default 100).
    pub iterations: usize,
}

impl Default for PfwDirectedConfig {
    fn default() -> Self {
        Self { iterations: 100 }
    }
}

/// Runs directed PFW with the default sweep budget.
pub fn pfw_directed(g: &DirectedGraph) -> DdsResult {
    pfw_directed_with(g, PfwDirectedConfig::default())
}

/// Runs directed PFW.
pub fn pfw_directed_with(g: &DirectedGraph, config: PfwDirectedConfig) -> DdsResult {
    let ((s, t, density, edges), wall) = timed(|| run(g, config.iterations));
    DdsResult {
        s,
        t,
        density,
        stats: Stats {
            iterations: config.iterations,
            wall,
            edges_result: Some(edges),
            ..Stats::default()
        },
    }
}

fn run(g: &DirectedGraph, iterations: usize) -> (Vec<VertexId>, Vec<VertexId>, f64, usize) {
    let n = g.num_vertices();
    let m = g.num_edges();
    if n == 0 || m == 0 {
        return (Vec::new(), Vec::new(), 0.0, 0);
    }
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    // alpha[e]: mass on the source role of edge e.
    let mut alpha = vec![0.5f64; m];
    let mut out_load = vec![0.0f64; n];
    let mut in_load = vec![0.0f64; n];
    recompute(&edges, &alpha, &mut out_load, &mut in_load);
    for t in 0..iterations {
        let gamma = 2.0 / (t as f64 + 2.0);
        alpha.par_iter_mut().enumerate().for_each(|(e, a)| {
            let (u, v) = edges[e];
            let lu = out_load[u as usize];
            let lv = in_load[v as usize];
            let target = if lu < lv || (lu == lv && u <= v) { 1.0 } else { 0.0 };
            *a = (1.0 - gamma) * *a + gamma * target;
        });
        recompute(&edges, &alpha, &mut out_load, &mut in_load);
    }
    extract(g, &out_load, &in_load)
}

fn recompute(
    edges: &[(VertexId, VertexId)],
    alpha: &[f64],
    out_load: &mut [f64],
    in_load: &mut [f64],
) {
    out_load.iter_mut().for_each(|l| *l = 0.0);
    in_load.iter_mut().for_each(|l| *l = 0.0);
    for (e, &(u, v)) in edges.iter().enumerate() {
        out_load[u as usize] += alpha[e];
        in_load[v as usize] += 1.0 - alpha[e];
    }
}

/// Sweeps the combined (vertex, role) list in descending load order and
/// returns the densest running `(S, T)` pair plus its `S→T` edge count.
fn extract(
    g: &DirectedGraph,
    out_load: &[f64],
    in_load: &[f64],
) -> (Vec<VertexId>, Vec<VertexId>, f64, usize) {
    let n = g.num_vertices();
    // (load, vertex, is_source_role); skip roles with no incident edges.
    let mut roles: Vec<(f64, VertexId, bool)> = Vec::with_capacity(2 * n);
    for v in 0..n as VertexId {
        if g.out_degree(v) > 0 {
            roles.push((out_load[v as usize], v, true));
        }
        if g.in_degree(v) > 0 {
            roles.push((in_load[v as usize], v, false));
        }
    }
    roles.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0).expect("loads are finite").then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
    });
    let mut in_s = vec![false; n];
    let mut in_t = vec![false; n];
    let mut s_size = 0usize;
    let mut t_size = 0usize;
    let mut edges = 0usize;
    let mut best_density = 0.0f64;
    let mut best_step = 0usize;
    let mut best_edges = 0usize;
    for (step, &(_, v, source_role)) in roles.iter().enumerate() {
        if source_role {
            in_s[v as usize] = true;
            s_size += 1;
            edges += g.out_neighbors(v).iter().filter(|&&u| in_t[u as usize]).count();
        } else {
            in_t[v as usize] = true;
            t_size += 1;
            edges += g.in_neighbors(v).iter().filter(|&&u| in_s[u as usize]).count();
        }
        if s_size > 0 && t_size > 0 {
            let density = edges as f64 / ((s_size as f64) * (t_size as f64)).sqrt();
            if density > best_density {
                best_density = density;
                best_step = step + 1;
                best_edges = edges;
            }
        }
    }
    let mut s = Vec::new();
    let mut t = Vec::new();
    for &(_, v, source_role) in &roles[..best_step] {
        if source_role {
            s.push(v);
        } else {
            t.push(v);
        }
    }
    s.sort_unstable();
    t.sort_unstable();
    (s, t, best_density, best_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::directed_density;

    #[test]
    fn close_to_exact_on_small_graphs() {
        for seed in 0..4 {
            let g = dsd_graph::gen::erdos_renyi_directed(25, 120, seed + 800);
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dsd_flow::dds_exact(&g);
            let r = pfw_directed_with(&g, PfwDirectedConfig { iterations: 200 });
            assert!(
                r.density * 1.6 + 1e-9 >= exact.density,
                "seed {seed}: pfw {} vs exact {}",
                r.density,
                exact.density
            );
        }
    }

    #[test]
    fn reported_density_matches_sets() {
        let g = dsd_graph::gen::chung_lu_directed(150, 900, 2.5, 2.2, 71);
        let r = pfw_directed(&g);
        let actual = directed_density(&g, &r.s, &r.t);
        assert!((actual - r.density).abs() < 1e-9);
    }

    #[test]
    fn finds_planted_block() {
        let g = dsd_graph::gen::planted_st_block(300, 400, 15, 10, 1.0, 61);
        let r = pfw_directed(&g);
        // Planted density 150/sqrt(150) = 12.25.
        assert!(r.density >= 9.0, "density {}", r.density);
    }

    #[test]
    fn empty_graph() {
        let g = dsd_graph::DirectedGraphBuilder::new(3).build().unwrap();
        let r = pfw_directed(&g);
        assert_eq!(r.density, 0.0);
        assert!(r.s.is_empty() && r.t.is_empty());
    }

    #[test]
    fn single_edge() {
        let g = dsd_graph::DirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        let r = pfw_directed(&g);
        assert!((r.density - 1.0).abs() < 1e-9);
        assert_eq!(r.s, vec![0]);
        assert_eq!(r.t, vec![1]);
    }
}
