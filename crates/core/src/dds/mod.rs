//! Directed densest subgraph (DDS) algorithms — Section V of the paper.
//!
//! The paper's contribution is the w-induced subgraph model
//! ([`winduced`], Algorithm 3) and [`pwc`] (Algorithm 4), which derives the
//! `[x*, y*]`-core — a 2-approximate DDS (Lemma 3) — from a single
//! `w*`-induced subgraph computation; both run on the edge-frontier
//! peeling engine of [`peel`]. The compared baselines are
//! [`pxy`] (cn-pair enumeration), [`pbs`] (Charikar peeling), [`pfks`]
//! (fixed Khuller–Saha), [`pbd`] (Bahmani batch peeling), and [`pfw`]
//! (Frank–Wolfe); [`exact`] holds a brute-force oracle.

pub mod exact;
pub mod iterate;
pub mod pbd;
pub mod pbs;
pub mod peel;
pub mod pfks;
pub mod pfw;
pub mod pwc;
pub mod pxy;
pub mod ratio_peel;
pub mod winduced;
pub mod xycore;

use dsd_graph::VertexId;
use serde::Serialize;

use crate::stats::Stats;

/// Result of a directed densest-subgraph algorithm.
#[derive(Clone, Debug, Serialize)]
pub struct DdsResult {
    /// Source-side vertex set `S` (sorted original ids).
    pub s: Vec<VertexId>,
    /// Target-side vertex set `T` (sorted original ids).
    pub t: Vec<VertexId>,
    /// Density `|E(S,T)| / √(|S||T|)`.
    pub density: f64,
    /// Execution statistics.
    pub stats: Stats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dds_result_is_serializable() {
        fn assert_serialize<T: serde::Serialize>() {}
        assert_serialize::<DdsResult>();
    }
}
