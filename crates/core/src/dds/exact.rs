//! Exact DDS entry points for the core crate:
//!
//! * [`dds_exact_certified`] — the production exact path. Runs PWC first
//!   and hands its 2-approximate `(S, T)` pair to the push-relabel engine
//!   in `dsd-flow` as the starting incumbent, which lets the
//!   shared-incumbent test prune whole size ratios with one flow each.
//!   The returned pair is an exact density certificate.
//! * [`dds_brute_force`] — `(S, T)` enumeration for tiny graphs, the
//!   independent oracle used to validate the flow-based exact algorithm
//!   and approximation bounds.

use dsd_flow::DdsExactResult;
use dsd_graph::{DirectedGraph, VertexId};

use crate::density::directed_density;

/// Computes the exact directed densest subgraph with the `dsd-flow`
/// push-relabel engine, warm-started from a PWC 2-approximation.
///
/// The PWC density satisfies `ρ* / 2 ≤ ρ̂ ≤ ρ*` (Theorem 2 + erratum
/// fallback), so the incumbent opens at least half-optimal and most of the
/// `O(n²)` ratio enumeration is dismissed by the per-ratio incumbent test.
/// The result is identical to `dsd_flow::dds_exact` — the seed only
/// accelerates.
pub fn dds_exact_certified(g: &DirectedGraph) -> DdsExactResult {
    let approx = crate::dds::pwc::pwc(g);
    dsd_flow::dds_exact_seeded(g, Some((&approx.result.s, &approx.result.t)))
}

/// Maximum vertex count accepted by [`dds_brute_force`] (`4^n` pairs).
pub const BRUTE_FORCE_LIMIT: usize = 10;

/// Enumerates all non-empty `(S, T)` pairs and returns a densest one.
///
/// # Panics
///
/// Panics if the graph has more than [`BRUTE_FORCE_LIMIT`] vertices.
pub fn dds_brute_force(g: &DirectedGraph) -> (Vec<VertexId>, Vec<VertexId>, f64) {
    let n = g.num_vertices();
    assert!(n <= BRUTE_FORCE_LIMIT, "brute force limited to {BRUTE_FORCE_LIMIT} vertices");
    if n == 0 {
        return (Vec::new(), Vec::new(), 0.0);
    }
    let mut best = (Vec::new(), Vec::new(), 0.0f64);
    for s_mask in 1u32..(1u32 << n) {
        let s: Vec<VertexId> = (0..n as u32).filter(|&v| s_mask >> v & 1 == 1).collect();
        for t_mask in 1u32..(1u32 << n) {
            let t: Vec<VertexId> = (0..n as u32).filter(|&v| t_mask >> v & 1 == 1).collect();
            let d = directed_density(g, &s, &t);
            if d > best.2 {
                best = (s.clone(), t, d);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::DirectedGraphBuilder;

    #[test]
    fn block_graph() {
        let mut b = DirectedGraphBuilder::new(5);
        for u in 0..2u32 {
            for t in 2..5u32 {
                b.push_edge(u, t);
            }
        }
        let g = b.build().unwrap();
        let (s, t, d) = dds_brute_force(&g);
        assert_eq!(s, vec![0, 1]);
        assert_eq!(t, vec![2, 3, 4]);
        assert!((d - 6.0 / 6.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_flow_exact() {
        for seed in 0..8 {
            let g = dsd_graph::gen::erdos_renyi_directed(7, 20, seed + 1000);
            let (_, _, brute) = dds_brute_force(&g);
            let flow = dsd_flow::dds_exact(&g);
            assert!(
                (brute - flow.density).abs() < 1e-6,
                "seed {seed}: brute {brute} flow {}",
                flow.density
            );
        }
    }

    #[test]
    fn certified_matches_brute_force_and_induces_its_density() {
        for seed in 0..5 {
            let g = dsd_graph::gen::erdos_renyi_directed(7, 18, seed + 300);
            if g.num_edges() == 0 {
                continue;
            }
            let (_, _, brute) = dds_brute_force(&g);
            let cert = dds_exact_certified(&g);
            assert!(
                (brute - cert.density).abs() < 1e-6,
                "seed {seed}: brute {brute} certified {}",
                cert.density
            );
            let induced = directed_density(&g, &cert.s, &cert.t);
            assert!(
                (induced - cert.density).abs() < 1e-12,
                "seed {seed}: certificate density mismatch"
            );
        }
    }

    #[test]
    fn edgeless() {
        let g = DirectedGraphBuilder::new(4).build().unwrap();
        let (s, t, d) = dds_brute_force(&g);
        assert!(s.is_empty() && t.is_empty());
        assert_eq!(d, 0.0);
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn rejects_large_graphs() {
        let g = DirectedGraphBuilder::new(12).build().unwrap();
        dds_brute_force(&g);
    }
}
