//! PBD — Bahmani et al.'s directed batch-peeling `2δ(1+ε)`-approximation
//! (reference \[5\]; paper defaults δ = 2, ε = 1, i.e. an 8-approximation).
//!
//! For each ratio guess `c` (powers of `δ²` spanning `[1/n, n]`, so only
//! `O(log_δ n)` guesses), the graph is peeled in passes: the side that is
//! over-sized relative to `c` loses *all* its vertices with degree at most
//! `(1+ε)` times the side's average degree. Each pass is one parallel
//! round, giving the logarithmic pass count that makes PBD much faster than
//! PBS/PFKS at the cost of the loose approximation factor the paper
//! highlights in Exp-5.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use dsd_graph::{DirectedGraph, VertexId};
use rayon::prelude::*;

use crate::dds::DdsResult;
use crate::stats::{timed, Stats};

/// Configuration for [`pbd_with`].
#[derive(Clone, Copy, Debug)]
pub struct PbdConfig {
    /// Ratio-guess spacing base `δ > 1` (paper default 2.0).
    pub delta: f64,
    /// Batch threshold slack `ε > 0` (paper default 1.0).
    pub epsilon: f64,
}

impl Default for PbdConfig {
    fn default() -> Self {
        Self { delta: 2.0, epsilon: 1.0 }
    }
}

/// Runs PBD with the paper's default δ = 2, ε = 1.
pub fn pbd(g: &DirectedGraph) -> DdsResult {
    pbd_with(g, PbdConfig::default())
}

/// Runs PBD; `stats.iterations` counts batch passes summed over guesses.
pub fn pbd_with(g: &DirectedGraph, config: PbdConfig) -> DdsResult {
    assert!(config.delta > 1.0, "delta must exceed 1");
    assert!(config.epsilon > 0.0, "epsilon must be positive");
    let ((s, t, density, passes, edges), wall) = timed(|| run(g, config));
    DdsResult {
        s,
        t,
        density,
        stats: Stats { iterations: passes, wall, edges_result: Some(edges), ..Stats::default() },
    }
}

fn ratio_guesses(n: usize, delta: f64) -> Vec<f64> {
    let lo = 1.0 / n as f64;
    let hi = n as f64;
    let step = delta * delta;
    let mut guesses = Vec::new();
    let mut c = lo;
    while c <= hi * step {
        guesses.push(c);
        c *= step;
    }
    guesses
}

fn run(g: &DirectedGraph, config: PbdConfig) -> (Vec<u32>, Vec<u32>, f64, usize, usize) {
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return (Vec::new(), Vec::new(), 0.0, 0, 0);
    }
    let mut best_density = 0.0f64;
    let mut best_edges = 0usize;
    let mut best: (Vec<VertexId>, Vec<VertexId>) = (Vec::new(), Vec::new());
    let mut passes = 0usize;
    for c in ratio_guesses(n, config.delta) {
        let (s, t, density, p, e) = peel_guess(g, c, config.epsilon);
        passes += p;
        if density > best_density {
            best_density = density;
            best_edges = e;
            best = (s, t);
        }
    }
    (best.0, best.1, best_density, passes, best_edges)
}

fn peel_guess(g: &DirectedGraph, c: f64, epsilon: f64) -> (Vec<u32>, Vec<u32>, f64, usize, usize) {
    let n = g.num_vertices();
    let out_deg: Vec<AtomicU32> = g.out_degrees().into_iter().map(AtomicU32::new).collect();
    let in_deg: Vec<AtomicU32> = g.in_degrees().into_iter().map(AtomicU32::new).collect();
    let in_s: Vec<AtomicBool> =
        (0..n).map(|v| AtomicBool::new(g.out_degree(v as VertexId) > 0)).collect();
    let in_t: Vec<AtomicBool> =
        (0..n).map(|v| AtomicBool::new(g.in_degree(v as VertexId) > 0)).collect();
    let mut s_size = in_s.iter().filter(|b| b.load(Ordering::Relaxed)).count();
    let mut t_size = in_t.iter().filter(|b| b.load(Ordering::Relaxed)).count();
    // Edges from S to T: initially every edge (endpoints with degree 0 are
    // excluded from the sides but carry no edges anyway).
    let mut edges: usize = g.num_edges();
    let mut best_density = 0.0f64;
    let mut best_edges = 0usize;
    let mut best: (Vec<VertexId>, Vec<VertexId>) = (Vec::new(), Vec::new());
    let mut passes = 0usize;
    while s_size > 0 && t_size > 0 && edges > 0 {
        let density = edges as f64 / ((s_size as f64) * (t_size as f64)).sqrt();
        if density > best_density {
            best_density = density;
            best_edges = edges;
            best = (
                (0..n as VertexId).filter(|&v| in_s[v as usize].load(Ordering::Relaxed)).collect(),
                (0..n as VertexId).filter(|&v| in_t[v as usize].load(Ordering::Relaxed)).collect(),
            );
        }
        passes += 1;
        if (s_size as f64) >= c * (t_size as f64) {
            // Batch-remove low out-degree S vertices.
            let threshold = (1.0 + epsilon) * edges as f64 / s_size as f64;
            let frontier: Vec<VertexId> = (0..n as VertexId)
                .into_par_iter()
                .filter(|&v| {
                    in_s[v as usize].load(Ordering::Relaxed)
                        && (out_deg[v as usize].load(Ordering::Relaxed) as f64) <= threshold
                })
                .collect();
            if frontier.is_empty() {
                break; // cannot happen: min <= average <= threshold
            }
            frontier.par_iter().for_each(|&v| {
                in_s[v as usize].store(false, Ordering::Relaxed);
            });
            frontier.par_iter().for_each(|&u| {
                for &v in g.out_neighbors(u) {
                    if in_t[v as usize].load(Ordering::Relaxed) {
                        in_deg[v as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
            s_size -= frontier.len();
        } else {
            let threshold = (1.0 + epsilon) * edges as f64 / t_size as f64;
            let frontier: Vec<VertexId> = (0..n as VertexId)
                .into_par_iter()
                .filter(|&v| {
                    in_t[v as usize].load(Ordering::Relaxed)
                        && (in_deg[v as usize].load(Ordering::Relaxed) as f64) <= threshold
                })
                .collect();
            if frontier.is_empty() {
                break;
            }
            frontier.par_iter().for_each(|&v| {
                in_t[v as usize].store(false, Ordering::Relaxed);
            });
            frontier.par_iter().for_each(|&v| {
                for &u in g.in_neighbors(v) {
                    if in_s[u as usize].load(Ordering::Relaxed) {
                        out_deg[u as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
            t_size -= frontier.len();
        }
        // Recount S->T edges: sum of out-degrees of alive S vertices
        // (out_deg tracks only edges into alive T).
        edges = (0..n)
            .into_par_iter()
            .filter(|&v| in_s[v].load(Ordering::Relaxed))
            .map(|v| out_deg[v].load(Ordering::Relaxed) as usize)
            .sum();
    }
    (best.0, best.1, best_density, passes, best_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::directed_density;

    #[test]
    fn within_loose_guarantee_of_exact() {
        for seed in 0..4 {
            let g = dsd_graph::gen::erdos_renyi_directed(25, 120, seed + 300);
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dsd_flow::dds_exact(&g);
            let r = pbd(&g);
            // Guarantee 2*delta*(1+eps) = 8.
            assert!(
                r.density * 8.0 + 1e-9 >= exact.density,
                "seed {seed}: pbd {} vs exact {}",
                r.density,
                exact.density
            );
        }
    }

    #[test]
    fn reported_density_matches_sets() {
        let g = dsd_graph::gen::chung_lu_directed(200, 1200, 2.5, 2.2, 23);
        let r = pbd(&g);
        let actual = directed_density(&g, &r.s, &r.t);
        assert!((actual - r.density).abs() < 1e-9);
    }

    #[test]
    fn pass_count_is_logarithmic() {
        let g = dsd_graph::gen::chung_lu_directed(2000, 12_000, 2.3, 2.2, 5);
        let r = pbd(&g);
        // O(log^2 n): log_4(2000) ~ 5.5 guesses x ~log_2 passes each.
        assert!(r.stats.iterations <= 400, "passes {}", r.stats.iterations);
    }

    #[test]
    fn finds_planted_block_roughly() {
        let g = dsd_graph::gen::planted_st_block(400, 700, 20, 12, 1.0, 88);
        let r = pbd(&g);
        // Planted density 240/sqrt(240) = 15.5; 8-approx floor ~1.9.
        assert!(r.density >= 2.0, "density {}", r.density);
    }

    #[test]
    fn empty_graph() {
        let g = dsd_graph::DirectedGraphBuilder::new(2).build().unwrap();
        let r = pbd(&g);
        assert_eq!(r.density, 0.0);
    }

    #[test]
    #[should_panic(expected = "delta must exceed 1")]
    fn rejects_bad_delta() {
        let g = dsd_graph::DirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        pbd_with(&g, PbdConfig { delta: 1.0, epsilon: 1.0 });
    }
}
