//! Fixed-ratio greedy peeling — the engine behind PBS and PFKS.
//!
//! Charikar's directed 2-approximation fixes a target ratio `c = |S|/|T|`
//! and peels greedily: while both sides are non-empty, remove the minimum
//! out-degree vertex from `S` if `|S| ≥ c·|T|`, otherwise the minimum
//! in-degree vertex from `T`, tracking the densest `(S, T)` iterate. Run
//! over the right ratio (the optimum's own `|S*|/|T*|`) this peel is a
//! 2-approximation; PBS gets the guarantee by enumerating all `O(n²)`
//! rational ratios and PFKS trades guarantee for `O(n)` geometric
//! candidates (see DESIGN.md §2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dsd_graph::{DirectedGraph, VertexId};

/// Outcome of one fixed-ratio peel.
#[derive(Clone, Debug)]
pub struct RatioPeelResult {
    /// Best source set seen.
    pub s: Vec<VertexId>,
    /// Best target set seen.
    pub t: Vec<VertexId>,
    /// Density of that `(S, T)` pair.
    pub density: f64,
}

/// Greedily peels `g` towards size ratio `c = |S|/|T|` and returns the
/// densest iterate. `O((n + m) log n)` via lazy-deletion heaps.
pub fn peel_fixed_ratio(g: &DirectedGraph, c: f64) -> RatioPeelResult {
    assert!(c > 0.0, "ratio must be positive");
    let n = g.num_vertices();
    let mut out_deg = g.out_degrees();
    let mut in_deg = g.in_degrees();
    // Start from vertices that can contribute at all.
    let mut in_s: Vec<bool> = out_deg.iter().map(|&d| d > 0).collect();
    let mut in_t: Vec<bool> = in_deg.iter().map(|&d| d > 0).collect();
    let mut s_size = in_s.iter().filter(|&&b| b).count();
    let mut t_size = in_t.iter().filter(|&&b| b).count();
    let mut edges = g.num_edges();
    // Min-heaps with lazy deletion: entries are (degree-at-push, vertex).
    let mut s_heap: BinaryHeap<Reverse<(u32, VertexId)>> = (0..n as VertexId)
        .filter(|&v| in_s[v as usize])
        .map(|v| Reverse((out_deg[v as usize], v)))
        .collect();
    let mut t_heap: BinaryHeap<Reverse<(u32, VertexId)>> = (0..n as VertexId)
        .filter(|&v| in_t[v as usize])
        .map(|v| Reverse((in_deg[v as usize], v)))
        .collect();

    // Removal log for reconstructing the densest iterate afterwards.
    let mut log: Vec<(VertexId, bool)> = Vec::with_capacity(s_size + t_size);
    let mut best_density = 0.0f64;
    let mut best_step = 0usize;
    let initial_s: Vec<bool> = in_s.clone();
    let initial_t: Vec<bool> = in_t.clone();

    while s_size > 0 && t_size > 0 && edges > 0 {
        let density = edges as f64 / ((s_size as f64) * (t_size as f64)).sqrt();
        if density > best_density {
            best_density = density;
            best_step = log.len();
        }
        if (s_size as f64) >= c * (t_size as f64) {
            // Remove the minimum out-degree S vertex.
            let u = loop {
                let Reverse((d, u)) = s_heap.pop().expect("s_size > 0 implies heap entry");
                if in_s[u as usize] && out_deg[u as usize] == d {
                    break u;
                }
            };
            in_s[u as usize] = false;
            s_size -= 1;
            log.push((u, true));
            for &v in g.out_neighbors(u) {
                if in_t[v as usize] {
                    edges -= 1;
                    in_deg[v as usize] -= 1;
                    t_heap.push(Reverse((in_deg[v as usize], v)));
                }
            }
        } else {
            let v = loop {
                let Reverse((d, v)) = t_heap.pop().expect("t_size > 0 implies heap entry");
                if in_t[v as usize] && in_deg[v as usize] == d {
                    break v;
                }
            };
            in_t[v as usize] = false;
            t_size -= 1;
            log.push((v, false));
            for &u in g.in_neighbors(v) {
                if in_s[u as usize] {
                    edges -= 1;
                    out_deg[u as usize] -= 1;
                    s_heap.push(Reverse((out_deg[u as usize], u)));
                }
            }
        }
    }

    // Reconstruct the best iterate: initial membership minus the first
    // `best_step` removals.
    let mut s_mask = initial_s;
    let mut t_mask = initial_t;
    for &(v, source_side) in &log[..best_step] {
        if source_side {
            s_mask[v as usize] = false;
        } else {
            t_mask[v as usize] = false;
        }
    }
    let s: Vec<VertexId> = (0..n as VertexId).filter(|&v| s_mask[v as usize]).collect();
    let t: Vec<VertexId> = (0..n as VertexId).filter(|&v| t_mask[v as usize]).collect();
    RatioPeelResult { s, t, density: best_density }
}

/// Geometric ratio candidates spanning `[1/n, n]`, `count` of them,
/// deduplicated. Used by PFKS (`count = n`) and PBD (`count = O(log n)`).
pub fn geometric_ratios(n: usize, count: usize) -> Vec<f64> {
    if n == 0 || count == 0 {
        return Vec::new();
    }
    if count == 1 {
        return vec![1.0];
    }
    let lo = 1.0 / n as f64;
    let hi = n as f64;
    let step = (hi / lo).powf(1.0 / (count as f64 - 1.0));
    let mut ratios = Vec::with_capacity(count);
    let mut c = lo;
    for _ in 0..count {
        ratios.push(c);
        c *= step;
    }
    ratios.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    ratios
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::directed_density;
    use dsd_graph::DirectedGraphBuilder;

    fn block_graph() -> DirectedGraph {
        // 3 sources x 4 targets full block plus noise edge.
        let mut b = DirectedGraphBuilder::new(9);
        for u in 0..3u32 {
            for t in 3..7u32 {
                b.push_edge(u, t);
            }
        }
        b.push_edge(7, 8);
        b.build().unwrap()
    }

    #[test]
    fn peel_at_true_ratio_finds_block() {
        let g = block_graph();
        let r = peel_fixed_ratio(&g, 3.0 / 4.0);
        // Block density: 12 / sqrt(12) = 3.4641.
        assert!(r.density >= 3.46, "density {}", r.density);
    }

    #[test]
    fn reported_density_matches_sets() {
        let g = dsd_graph::gen::erdos_renyi_directed(60, 400, 77);
        for &c in &[0.25, 1.0, 4.0] {
            let r = peel_fixed_ratio(&g, c);
            let actual = directed_density(&g, &r.s, &r.t);
            assert!(
                (actual - r.density).abs() < 1e-9,
                "c={c}: claimed {} actual {actual}",
                r.density
            );
        }
    }

    #[test]
    fn empty_graph_zero_density() {
        let g = DirectedGraphBuilder::new(3).build().unwrap();
        let r = peel_fixed_ratio(&g, 1.0);
        assert_eq!(r.density, 0.0);
    }

    #[test]
    fn geometric_ratios_cover_range() {
        let rs = geometric_ratios(100, 50);
        assert!((rs[0] - 0.01).abs() < 1e-9);
        assert!((rs.last().unwrap() - 100.0).abs() < 1e-6);
        assert!(rs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn geometric_ratios_edge_cases() {
        assert!(geometric_ratios(0, 5).is_empty());
        assert!(geometric_ratios(5, 0).is_empty());
        assert_eq!(geometric_ratios(5, 1), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "ratio must be positive")]
    fn rejects_bad_ratio() {
        let g = DirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        peel_fixed_ratio(&g, 0.0);
    }
}
