//! PFKS — the "fixed" Khuller–Saha linear-peeling DDS baseline
//! (reference \[4\], corrected per Ma et al. \[7\]; the `O(n(n+m))` baseline of
//! Exp-5).
//!
//! Khuller–Saha's original linear-time directed peel mis-claimed a
//! 2-approximation; the fixed variant the paper benchmarks restores the
//! guarantee factor by peeling once per ratio from an `n`-point candidate
//! set. Here the candidates are `n` geometrically spaced ratios covering
//! `[1/n, n]`, each peeled in parallel with the shared
//! [`crate::dds::ratio_peel`] engine — `n` rounds of `O(n + m)`, matching
//! the complexity the paper quotes.

use dsd_graph::DirectedGraph;
use rayon::prelude::*;

use crate::dds::ratio_peel::{geometric_ratios, peel_fixed_ratio};
use crate::dds::DdsResult;
use crate::density::st_edges_and_density;
use crate::stats::{timed, Stats};

/// Runs PFKS; `stats.iterations` counts peeling rounds (= `n`, deduplicated).
pub fn pfks(g: &DirectedGraph) -> DdsResult {
    let ((s, t, density, rounds), wall) = timed(|| run(g));
    let edges = st_edges_and_density(g, &s, &t).0;
    DdsResult {
        s,
        t,
        density,
        stats: Stats { iterations: rounds, wall, edges_result: Some(edges), ..Stats::default() },
    }
}

fn run(g: &DirectedGraph) -> (Vec<u32>, Vec<u32>, f64, usize) {
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return (Vec::new(), Vec::new(), 0.0, 0);
    }
    let ratios = geometric_ratios(n, n);
    let rounds = ratios.len();
    let best = ratios
        .par_iter()
        .map(|&c| peel_fixed_ratio(g, c))
        .max_by(|a, b| a.density.partial_cmp(&b.density).expect("densities are finite"))
        .expect("at least one ratio");
    (best.s, best.t, best.density, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::directed_density;

    #[test]
    fn close_to_exact_on_small_graphs() {
        for seed in 0..4 {
            let g = dsd_graph::gen::erdos_renyi_directed(20, 90, seed + 150);
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dsd_flow::dds_exact(&g);
            let r = pfks(&g);
            // Geometric candidates give ~2(1+o(1)); allow factor 2.5.
            assert!(
                r.density * 2.5 + 1e-9 >= exact.density,
                "seed {seed}: pfks {} vs exact {}",
                r.density,
                exact.density
            );
        }
    }

    #[test]
    fn reported_density_matches_sets() {
        let g = dsd_graph::gen::chung_lu_directed(120, 700, 2.5, 2.3, 14);
        let r = pfks(&g);
        let actual = directed_density(&g, &r.s, &r.t);
        assert!((actual - r.density).abs() < 1e-9);
    }

    #[test]
    fn round_count_is_linear() {
        let g = dsd_graph::gen::erdos_renyi_directed(50, 250, 2);
        let r = pfks(&g);
        assert!(r.stats.iterations <= 50);
        assert!(r.stats.iterations >= 40); // dedup may drop a few
    }

    #[test]
    fn empty_graph() {
        let g = dsd_graph::DirectedGraphBuilder::new(3).build().unwrap();
        let r = pfks(&g);
        assert_eq!(r.density, 0.0);
    }

    #[test]
    fn finds_planted_block() {
        let g = dsd_graph::gen::planted_st_block(300, 500, 15, 10, 1.0, 77);
        let r = pfks(&g);
        // Planted block density: 150 / sqrt(150) = 12.25.
        assert!(r.density >= 6.0, "density {}", r.density);
    }
}
