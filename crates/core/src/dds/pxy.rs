//! PXY — parallel cn-pair enumeration (the state-of-the-art baseline,
//! adapted from Core-Approx of Ma et al. \[7\], \[9\]; Section V-A).
//!
//! Because any non-empty `[x, y]`-core forces `m ≥ x·y`, the maximum
//! cn-pair has `x* ≤ √m` or `y* ≤ √m`. PXY therefore computes, in
//! parallel, `y_max(x)` for every `x ∈ [1, √m]` and `x_max(y)` for every
//! `y ∈ [1, √m]` (via the transposed graph), takes the pair with maximum
//! product, and extracts the corresponding `[x*, y*]`-core — which is a
//! 2-approximate DDS (Lemma 3).
//!
//! Each enumeration task peels its own copy of the degree arrays, which is
//! the memory blow-up the paper observes on Twitter-scale graphs (Exp-5).

use dsd_graph::DirectedGraph;
use rayon::prelude::*;

use crate::dds::xycore::{max_y_for_x, xy_core};
use crate::dds::DdsResult;
use crate::density::st_edges_and_density;
use crate::stats::{timed, Stats};

/// Outcome of PXY, additionally exposing the maximum cn-pair.
#[derive(Clone, Debug)]
pub struct PxyResult {
    /// The 2-approximate DDS (the `[x*, y*]`-core).
    pub result: DdsResult,
    /// The maximum cn-pair `[x*, y*]`.
    pub cn_pair: (u32, u32),
}

/// Runs PXY. `stats.iterations` counts the enumerated cn-pair tasks.
pub fn pxy(g: &DirectedGraph) -> PxyResult {
    let ((s, t, density, pair, tasks, edges_result), wall) = timed(|| run(g));
    PxyResult {
        result: DdsResult {
            s,
            t,
            density,
            stats: Stats {
                iterations: tasks,
                wall,
                edges_result: Some(edges_result),
                ..Stats::default()
            },
        },
        cn_pair: pair,
    }
}

type RunOut = (Vec<u32>, Vec<u32>, f64, (u32, u32), usize, usize);

/// Computes the maximum cn-pair `[x*, y*]` (the pair with the largest
/// product over all non-empty `[x, y]`-cores), or `None` for an edgeless
/// graph. This is the enumeration core of PXY, also used as the provably
/// correct fallback inside PWC (see the Theorem-2 erratum in
/// `dds::pwc`). Ties on the product resolve to the larger `x`.
pub fn max_cn_pair(g: &DirectedGraph) -> Option<(u32, u32)> {
    let m = g.num_edges();
    if m == 0 {
        return None;
    }
    let bound = ((m as f64).sqrt().floor() as u32).max(1);
    let transpose = g.transpose();
    // x-side: y_max(x) for x in [1, sqrt(m)].
    let x_side: Vec<(u32, u32)> =
        (1..=bound).into_par_iter().filter_map(|x| max_y_for_x(g, x).map(|y| (x, y))).collect();
    // y-side: x_max(y) for y in [1, sqrt(m)] — peel the transpose, where
    // out-degrees are the original in-degrees. This covers the maximum
    // pair because a non-empty [x, y]-core forces m >= x*y, hence
    // x* <= sqrt(m) or y* <= sqrt(m).
    let y_side: Vec<(u32, u32)> = (1..=bound)
        .into_par_iter()
        .filter_map(|y| max_y_for_x(&transpose, y).map(|x| (x, y)))
        .collect();
    x_side.iter().chain(y_side.iter()).copied().max_by_key(|&(x, y)| (x as u64 * y as u64, x))
}

fn run(g: &DirectedGraph) -> RunOut {
    let m = g.num_edges();
    if m == 0 {
        return (Vec::new(), Vec::new(), 0.0, (0, 0), 0, 0);
    }
    let bound = ((m as f64).sqrt().floor() as u32).max(1);
    let tasks = 2 * bound as usize;
    let best = max_cn_pair(g).expect("m > 0 guarantees a [1,1]-core");
    let core = xy_core(g, best.0, best.1).expect("enumerated pair must have a core");
    let (edges, density) = st_edges_and_density(g, &core.s, &core.t);
    (core.s, core.t, density, best, tasks, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::DirectedGraphBuilder;

    #[test]
    fn block_graph_pair() {
        // 3 sources fully linked to 4 targets: the [3*, y]-core analysis
        // gives max pair (4, 3) — wait: sources have out-degree 4, targets
        // in-degree 3, so the core is [4, 3] with product 12.
        let mut b = DirectedGraphBuilder::new(7);
        for u in 0..3u32 {
            for t in 3..7u32 {
                b.push_edge(u, t);
            }
        }
        let g = b.build().unwrap();
        let r = pxy(&g);
        assert_eq!(r.cn_pair.0 * r.cn_pair.1, 12);
        assert!((r.result.density - 12.0 / (12.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn two_approximation_vs_exact() {
        for seed in 0..5 {
            let g = dsd_graph::gen::erdos_renyi_directed(30, 140, seed + 400);
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dsd_flow::dds_exact(&g);
            let r = pxy(&g);
            assert!(
                r.result.density * 2.0 + 1e-9 >= exact.density,
                "seed {seed}: pxy {} vs exact {}",
                r.result.density,
                exact.density
            );
        }
    }

    #[test]
    fn density_at_least_sqrt_of_product() {
        // Any [x, y]-core has density >= sqrt(x*y).
        let g = dsd_graph::gen::chung_lu_directed(300, 2400, 2.4, 2.2, 9);
        let r = pxy(&g);
        let (x, y) = r.cn_pair;
        assert!(
            r.result.density + 1e-9 >= ((x as f64) * (y as f64)).sqrt(),
            "density {} below sqrt({})",
            r.result.density,
            x * y
        );
    }

    #[test]
    fn empty_graph() {
        let g = DirectedGraphBuilder::new(3).build().unwrap();
        let r = pxy(&g);
        assert_eq!(r.result.density, 0.0);
        assert_eq!(r.cn_pair, (0, 0));
    }

    #[test]
    fn single_edge() {
        let g = DirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        let r = pxy(&g);
        assert_eq!(r.cn_pair, (1, 1));
        assert!((r.result.density - 1.0).abs() < 1e-9);
    }
}
