//! The **edge-frontier peeling engine** for the w-induced decomposition —
//! the DDS twin of the h-index sweep engine (`crate::uds::sweep`).
//!
//! The seed kernel in [`crate::dds::winduced`] (kept as
//! `w_decomposition_legacy`) pays two structural costs per outer peeling
//! iteration of Algorithm 3:
//!
//! 1. a full `min_weight` scan over **all** alive edges to find the next
//!    threshold `w_t`, and
//! 2. cascade rounds that re-walk **every** out-edge of **every** active
//!    vertex, dead or alive, even when a round only removes a handful of
//!    edges at the tip of a filament.
//!
//! Frontier-driven peeling with bucketed thresholds is the standard cure in
//! the parallel core/nucleus-decomposition literature (Sarıyüce et al.;
//! Dhulipala-style bucketing as used by Sukprasert et al.), and this module
//! applies it to the paper's w-induced model:
//!
//! * **Edge frontier** — after a cascade round, only edges incident to
//!   vertices whose `d⁺`/`d⁻` actually changed are re-examined. The
//!   frontier holds edge *slots* (CSR out-edge order, the canonical edge
//!   ids of the induce-number vector); in-side incidences are resolved
//!   through a precomputed `in-position → out-slot` map so both endpoints'
//!   edges can be enqueued without walking the graph.
//! * **Lazy chunk-min threshold scheduler** — edge slots are grouped into
//!   fixed chunks, each carrying a cached lower bound on the minimum alive
//!   weight inside it. Because the threshold sequence `w_t` is
//!   non-decreasing and every weight decrease passes through the frontier
//!   (which re-clamps the touched chunk's bound), the next threshold is
//!   found by rescanning only the chunks whose cached bound sits at the
//!   current candidate — consecutive thresholds are served from the same
//!   cached bounds without touching the other chunks, batching what the
//!   legacy kernel did with one full `O(m)` scan per outer iteration.
//! * **Packed liveness bitmaps** — edge liveness and frontier membership
//!   are single bits in `AtomicU64` words (64× denser than the legacy
//!   `Vec<AtomicBool>`), and the degree arrays, slot maps, and bitmaps all
//!   live in a [`PeelWorkspace`] that is reused across calls via
//!   `w_decomposition_in` / `w_star_decomposition_in`.
//!
//! ## Determinism contract
//!
//! Within one outer iteration every removed edge records the same
//! induce-number `w_t`, and the removed *set* is the closure of
//! "weight < w_t + 1 in the remaining graph", which is schedule-independent
//! (removals only lower weights, so any racy early removal is an edge the
//! closure removes anyway). The engine therefore returns **bit-identical
//! induce-numbers and `w*`** to the legacy kernel at every rayon pool
//! size — the parity gate of `tests/peel_engine.rs` and `BENCH_PR2.json`.
//! Inner *round counts* (`stats.iterations`) are schedule-dependent in both
//! kernels and are not part of the contract.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use dsd_graph::{DirectedNeighborAccess, DirectedStorage, VertexId};
use dsd_telemetry::{self as telemetry, Counter, Phase, PhaseTime, RoundSample};
use rayon::prelude::*;

use crate::dds::winduced::{WDecomposition, WARM_PEELED};
use crate::stats::{timed, Stats};

/// log2 of the scheduler chunk size: 1024 edge slots per cached bound.
/// Chunk boundaries are multiples of 64, so chunks own whole bitmap words.
const CHUNK_BITS: usize = 10;

#[inline]
pub(crate) fn bit_test(words: &[AtomicU64], i: usize) -> bool {
    words[i >> 6].load(Ordering::Relaxed) & (1u64 << (i & 63)) != 0
}

/// Clears bit `i`; returns `true` iff this call flipped it (claim-to-kill).
#[inline]
pub(crate) fn claim_clear(words: &[AtomicU64], i: usize) -> bool {
    let mask = 1u64 << (i & 63);
    words[i >> 6].fetch_and(!mask, Ordering::Relaxed) & mask != 0
}

/// Sets bit `i`; returns `true` iff this call flipped it (claim-to-queue).
#[inline]
pub(crate) fn claim_set(words: &[AtomicU64], i: usize) -> bool {
    let mask = 1u64 << (i & 63);
    words[i >> 6].fetch_or(mask, Ordering::Relaxed) & mask == 0
}

/// Reusable state for w-induced peeling: packed liveness/frontier bitmaps,
/// atomic degree arrays, the slot maps, and the chunk-min scheduler —
/// owned across cascade rounds, outer iterations, and decompositions
/// ([`bind`](Self::bind) retargets it; buffer capacity is retained).
#[derive(Debug, Default)]
pub struct PeelWorkspace {
    /// Vertices / edges of the bound graph.
    n: usize,
    m: usize,
    /// Source vertex of each edge slot (CSR out-edge order).
    edge_src: Vec<VertexId>,
    /// Out-CSR slot of each in-CSR arc position, so a vertex whose
    /// in-degree changed can enqueue its in-edges without a graph walk.
    in_slot: Vec<u32>,
    /// Workspace-owned out-slot offsets (`n + 1` prefix sums of the bound
    /// graph's out-degrees). The engine is generic over
    /// [`DirectedNeighborAccess`], and the compressed substrate has no
    /// materialised `usize` offset slice to borrow — so the slot arithmetic
    /// runs against these arrays for both representations.
    out_start: Vec<usize>,
    /// Workspace-owned in-arc-position offsets (prefix sums of in-degrees).
    in_start: Vec<usize>,
    /// Packed edge-liveness bitmap.
    alive: Vec<AtomicU64>,
    /// Packed frontier-membership bitmap (dedups enqueues).
    queued: Vec<AtomicU64>,
    /// Packed per-vertex "out-degree changed this round" bitmap.
    out_changed: Vec<AtomicU64>,
    /// Packed per-vertex "in-degree changed this round" bitmap.
    in_changed: Vec<AtomicU64>,
    out_deg: Vec<AtomicU32>,
    in_deg: Vec<AtomicU32>,
    induce: Vec<AtomicU64>,
    /// Cached lower bound on the minimum alive weight per slot chunk
    /// (`u64::MAX` once a chunk is known empty).
    chunk_lb: Vec<AtomicU64>,
    alive_count: usize,
    /// Current edge frontier (slots).
    frontier: Vec<u32>,
}

impl PeelWorkspace {
    /// Creates an empty workspace; it binds itself on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Points the workspace at `g`: bitmaps are filled, degrees reset, the
    /// slot maps rebuilt (in parallel), and the scheduler cleared.
    fn bind<D: DirectedNeighborAccess>(&mut self, g: &D) {
        let n = g.vertex_count();
        let m = g.edge_count();
        assert!(m < u32::MAX as usize, "peel engine indexes edge slots with u32");
        self.n = n;
        self.m = m;
        // Workspace-owned slot offsets (prefix sums of both degree
        // sequences); the generic access trait exposes degrees, not offset
        // slices.
        let mut out_start = std::mem::take(&mut self.out_start);
        let mut in_start = std::mem::take(&mut self.in_start);
        out_start.clear();
        in_start.clear();
        out_start.reserve(n + 1);
        in_start.reserve(n + 1);
        let (mut out_acc, mut in_acc) = (0usize, 0usize);
        out_start.push(0);
        in_start.push(0);
        for v in 0..n {
            out_acc += g.out_degree_of(v as VertexId);
            in_acc += g.in_degree_of(v as VertexId);
            out_start.push(out_acc);
            in_start.push(in_acc);
        }
        // Slot -> source vertex. par_extend preserves item order.
        self.edge_src.clear();
        self.edge_src.par_extend((0..n).into_par_iter().flat_map_iter(|u| {
            std::iter::repeat(u as VertexId).take(out_start[u + 1] - out_start[u])
        }));
        // In-arc position -> out-slot, via rank lookup in the (sorted)
        // out-neighbour list of the arc's source (binary search on plain
        // CSR; chunk-table seek on the compressed substrate).
        self.in_slot.clear();
        self.in_slot.par_extend((0..n).into_par_iter().flat_map_iter(|v| {
            let out_start = &out_start;
            g.in_neighbors_of(v as VertexId).map(move |u| {
                let pos = g
                    .out_rank_of(u, v as VertexId)
                    .expect("in/out adjacency arrays mirror each other");
                (out_start[u as usize] + pos) as u32
            })
        }));
        self.out_start = out_start;
        self.in_start = in_start;
        let edge_words = m.div_ceil(64);
        self.alive.clear();
        self.alive.extend((0..edge_words).map(|_| AtomicU64::new(u64::MAX)));
        if m % 64 != 0 {
            if let Some(last) = self.alive.last() {
                // Trailing bits past `m` must stay clear: chunk scans
                // iterate whole words.
                last.store(u64::MAX >> (64 - m % 64), Ordering::Relaxed);
            }
        }
        self.queued.clear();
        self.queued.extend((0..edge_words).map(|_| AtomicU64::new(0)));
        let vertex_words = n.div_ceil(64);
        self.out_changed.clear();
        self.out_changed.extend((0..vertex_words).map(|_| AtomicU64::new(0)));
        self.in_changed.clear();
        self.in_changed.extend((0..vertex_words).map(|_| AtomicU64::new(0)));
        self.out_deg.clear();
        self.out_deg.extend((0..n).map(|v| AtomicU32::new(g.out_degree_of(v as VertexId) as u32)));
        self.in_deg.clear();
        self.in_deg.extend((0..n).map(|v| AtomicU32::new(g.in_degree_of(v as VertexId) as u32)));
        self.induce.clear();
        self.induce.extend((0..m).map(|_| AtomicU64::new(WARM_PEELED)));
        self.chunk_lb.clear();
        self.chunk_lb.extend((0..m.div_ceil(1 << CHUNK_BITS)).map(|_| AtomicU64::new(0)));
        self.alive_count = m;
        self.frontier.clear();
    }

    /// Current weight `d⁺(u)·d⁻(v)` of the edge `(u, v)`.
    #[inline]
    fn weight(&self, u: VertexId, v: VertexId) -> u64 {
        self.out_deg[u as usize].load(Ordering::Relaxed) as u64
            * self.in_deg[v as usize].load(Ordering::Relaxed) as u64
    }

    /// Target vertex of the edge in `slot` (the source is `edge_src`).
    /// Plain CSR indexes the adjacency slice; the compressed substrate
    /// seeks to the slot's chunk and decodes at most [`dsd_graph`]'s chunk
    /// length of deltas.
    #[inline]
    fn slot_target<D: DirectedNeighborAccess>(&self, g: &D, slot: usize) -> (VertexId, VertexId) {
        let u = self.edge_src[slot];
        (u, g.out_neighbor_at(u, slot - self.out_start[u as usize]))
    }

    /// One full pass over all (still all-alive) edges: computes every
    /// chunk's exact minimum weight and seeds the frontier with the edges
    /// whose weight is `< collect_below` (pass 0 to seed nothing). This is
    /// the only whole-graph scan the engine ever performs.
    fn prime<D: DirectedNeighborAccess>(&mut self, g: &D, collect_below: u64) {
        let m = self.m;
        let frontier = (0..self.chunk_lb.len())
            .into_par_iter()
            .fold(Vec::new, |mut acc, c| {
                let lo = c << CHUNK_BITS;
                let hi = ((c + 1) << CHUNK_BITS).min(m);
                let mut lb = u64::MAX;
                for slot in lo..hi {
                    let (u, v) = self.slot_target(g, slot);
                    let w = self.weight(u, v);
                    lb = lb.min(w);
                    if w < collect_below {
                        acc.push(slot as u32);
                    }
                }
                self.chunk_lb[c].store(lb, Ordering::Relaxed);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        self.frontier = frontier;
    }

    /// [`prime`](Self::prime) for a workspace whose liveness bitmap is no
    /// longer all-set (the restricted decompose clears frozen edges right
    /// after binding): computes every chunk's exact minimum over its
    /// **alive** slots only, seeding no frontier. One alive-bit scan
    /// instead of the all-slots walk `prime` is allowed to assume.
    fn prime_alive<D: DirectedNeighborAccess>(&mut self, g: &D) {
        (0..self.chunk_lb.len()).into_par_iter().for_each(|c| {
            self.chunk_lb[c].store(self.chunk_min(g, c), Ordering::Relaxed);
        });
        self.frontier.clear();
    }

    /// Exact minimum alive weight inside chunk `c` (`u64::MAX` if empty),
    /// iterating only the set bits of the liveness words the chunk owns.
    fn chunk_min<D: DirectedNeighborAccess>(&self, g: &D, c: usize) -> u64 {
        let lo = c << CHUNK_BITS;
        let hi = ((c + 1) << CHUNK_BITS).min(self.m);
        let mut min = u64::MAX;
        for wi in (lo >> 6)..hi.div_ceil(64) {
            let mut bits = self.alive[wi].load(Ordering::Relaxed);
            while bits != 0 {
                let slot = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (u, v) = self.slot_target(g, slot);
                min = min.min(self.weight(u, v));
            }
        }
        min
    }

    /// Finds the next threshold `w_t` (the minimum alive weight) through
    /// the lazy scheduler and seeds the frontier with the weight-`w_t`
    /// edges. Returns `None` when no edge is alive.
    ///
    /// Only chunks whose cached bound sits at (or, transiently, below) the
    /// running candidate are rescanned; a rescan raises the chunk's bound
    /// to its exact minimum, so stale bounds are repaired exactly once and
    /// chunks far above the threshold are never touched — across
    /// *consecutive* thresholds too, which is where the legacy kernel paid
    /// one full scan each.
    fn next_threshold<D: DirectedNeighborAccess>(&mut self, g: &D) -> Option<u64> {
        let mut attempts = 0u32;
        let w_t = loop {
            attempts += 1;
            let candidate = self.chunk_lb.par_iter().map(|x| x.load(Ordering::Relaxed)).min()?;
            if candidate == u64::MAX {
                return None;
            }
            let exact = (0..self.chunk_lb.len())
                .into_par_iter()
                .filter(|&c| self.chunk_lb[c].load(Ordering::Relaxed) == candidate)
                .map(|c| {
                    telemetry::counter_add(Counter::ChunkMinRescans, 1);
                    let min = self.chunk_min(g, c);
                    self.chunk_lb[c].store(min, Ordering::Relaxed);
                    min
                })
                .min()
                .unwrap_or(u64::MAX);
            debug_assert!(exact >= candidate, "cached bound above an alive weight");
            if exact == candidate {
                break candidate;
            }
            // Every rescanned chunk's bound strictly rose; retry with the
            // next candidate.
        };
        if attempts == 1 {
            // The cached bounds answered without a repair retry.
            telemetry::counter_add(Counter::CacheBoundHits, 1);
        }
        // The w_t-weight edges can only live in chunks whose (now exact)
        // minimum is w_t.
        self.frontier = (0..self.chunk_lb.len())
            .into_par_iter()
            .filter(|&c| self.chunk_lb[c].load(Ordering::Relaxed) == w_t)
            .fold(Vec::new, |mut acc, c| {
                let lo = c << CHUNK_BITS;
                let hi = ((c + 1) << CHUNK_BITS).min(self.m);
                for wi in (lo >> 6)..hi.div_ceil(64) {
                    let mut bits = self.alive[wi].load(Ordering::Relaxed);
                    while bits != 0 {
                        let slot = (wi << 6) + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let (u, v) = self.slot_target(g, slot);
                        if self.weight(u, v) == w_t {
                            acc.push(slot as u32);
                        }
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        Some(w_t)
    }

    /// Removes every alive edge whose weight falls `< bound`, cascading
    /// through the edge frontier until quiescent; removed edges record
    /// induce-number `record` (skipped for [`WARM_PEELED`]). The frontier
    /// must already hold every alive edge with weight `< bound` (from
    /// [`prime`](Self::prime) or [`next_threshold`](Self::next_threshold)).
    /// Returns the number of rounds that removed edges and the total number
    /// of frontier slots examined across those rounds (a work proxy; the
    /// count is schedule-dependent because racy early removals shrink later
    /// frontiers).
    fn cascade<D: DirectedNeighborAccess>(
        &mut self,
        g: &D,
        bound: u64,
        record: u64,
    ) -> (usize, u64) {
        let mut rounds = 0usize;
        let mut examined = 0u64;
        loop {
            examined += self.frontier.len() as u64;
            let removed = AtomicUsize::new(0);
            // Examine pass: claim-and-kill sub-bound edges, collecting the
            // vertices whose degree changed (deduped by the changed
            // bitmaps). Surviving re-examined edges re-clamp their chunk's
            // cached bound, which keeps the scheduler invariant: every
            // weight decrease is witnessed by the frontier.
            let (out_list, in_list) = self
                .frontier
                .par_iter()
                .fold(
                    || (Vec::new(), Vec::new()),
                    |(mut ol, mut il), &slot32| {
                        let slot = slot32 as usize;
                        // Leave the frontier so later rounds can re-enqueue.
                        claim_clear(&self.queued, slot);
                        if bit_test(&self.alive, slot) {
                            let (u, v) = self.slot_target(g, slot);
                            let w = self.weight(u, v);
                            if w < bound {
                                if claim_clear(&self.alive, slot) {
                                    if record != WARM_PEELED {
                                        self.induce[slot].store(record, Ordering::Relaxed);
                                    }
                                    self.out_deg[u as usize].fetch_sub(1, Ordering::Relaxed);
                                    self.in_deg[v as usize].fetch_sub(1, Ordering::Relaxed);
                                    removed.fetch_add(1, Ordering::Relaxed);
                                    if claim_set(&self.out_changed, u as usize) {
                                        ol.push(u);
                                    }
                                    if claim_set(&self.in_changed, v as usize) {
                                        il.push(v);
                                    }
                                } else {
                                    // Another thread won the claim between
                                    // our liveness test and the CAS.
                                    telemetry::counter_add(Counter::CasRetries, 1);
                                }
                            } else {
                                self.chunk_lb[slot >> CHUNK_BITS].fetch_min(w, Ordering::Relaxed);
                            }
                        }
                        (ol, il)
                    },
                )
                .reduce(
                    || (Vec::new(), Vec::new()),
                    |(mut a0, mut a1), (mut b0, mut b1)| {
                        a0.append(&mut b0);
                        a1.append(&mut b1);
                        (a0, a1)
                    },
                );
            let removed = removed.load(Ordering::Relaxed);
            if removed == 0 {
                break;
            }
            rounds += 1;
            self.alive_count -= removed;
            // Next frontier: every alive edge incident to a changed
            // vertex — out-edges of out-changed sources, in-edges of
            // in-changed targets (through the in-slot map) — deduped by
            // the queued bitmap.
            let next = out_list
                .par_iter()
                .map(|&u| (u, true))
                .chain(in_list.par_iter().map(|&v| (v, false)))
                .fold(Vec::new, |mut acc, (x, out_side)| {
                    let xi = x as usize;
                    if out_side {
                        for slot in self.out_start[xi]..self.out_start[xi + 1] {
                            if bit_test(&self.alive, slot) && claim_set(&self.queued, slot) {
                                acc.push(slot as u32);
                            }
                        }
                    } else {
                        for pos in self.in_start[xi]..self.in_start[xi + 1] {
                            let slot = self.in_slot[pos] as usize;
                            if bit_test(&self.alive, slot) && claim_set(&self.queued, slot) {
                                acc.push(slot as u32);
                            }
                        }
                    }
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
            // Reset the changed marks for the next round.
            out_list.par_iter().for_each(|&u| {
                claim_clear(&self.out_changed, u as usize);
            });
            in_list.par_iter().for_each(|&v| {
                claim_clear(&self.in_changed, v as usize);
            });
            self.frontier = next;
        }
        (rounds, examined)
    }

    /// The outer threshold loop shared by [`decompose`](Self::decompose)
    /// and [`decompose_restricted`](Self::decompose_restricted): repeats
    /// `next_threshold` → cascade until no edge is alive, recording one
    /// [`RoundSample`] per outer iteration while tracing. Returns
    /// `(w_star, cascade_rounds, edges_first_iter, edges_last_iter)`.
    fn run_thresholds<D: DirectedNeighborAccess>(
        &mut self,
        g: &D,
    ) -> (u64, usize, Option<usize>, Option<usize>) {
        let mut w_star = 0u64;
        let mut iterations = 0usize;
        let mut first: Option<usize> = None;
        let mut last: Option<usize> = None;
        loop {
            let enabled = telemetry::enabled();
            let t0 = enabled.then(Instant::now);
            let next = self.next_threshold(g);
            let select_time = t0.map(|t| telemetry::record_span(Phase::ThresholdSelect, t));
            let Some(w_t) = next else { break };
            if first.is_none() {
                first = Some(self.alive_count);
            }
            last = Some(self.alive_count);
            w_star = w_t;
            let alive_at_start = self.alive_count;
            let frontier_len = self.frontier.len();
            let t1 = enabled.then(Instant::now);
            let (rounds, examined) = self.cascade(g, w_t + 1, w_t);
            iterations += rounds;
            if enabled {
                let mut phase_times = Vec::with_capacity(2);
                if let Some(d) = select_time {
                    phase_times.push(PhaseTime {
                        phase: Phase::ThresholdSelect.name(),
                        secs: d.as_secs_f64(),
                    });
                }
                if let Some(d) = t1.map(|t| telemetry::record_span(Phase::Cascade, t)) {
                    phase_times
                        .push(PhaseTime { phase: Phase::Cascade.name(), secs: d.as_secs_f64() });
                }
                telemetry::record_round(RoundSample {
                    round: telemetry::rounds_recorded() as u32,
                    frontier_len,
                    edges_examined: examined,
                    items_removed: alive_at_start - self.alive_count,
                    alive_edges: Some(alive_at_start),
                    phase_times,
                    ..RoundSample::default()
                });
            }
        }
        (w_star, iterations, first, last)
    }

    /// Runs the decomposition (Algorithm 3) on `g`. With `warm_start`, all
    /// edges below `d_max` are peeled first without recording
    /// induce-numbers (the paper's Remark; `w*` is unaffected).
    ///
    /// While the telemetry recorder is enabled, one
    /// [`RoundSample`] is pushed per **outer** iteration (one
    /// `next_threshold` + cascade), with `alive_edges` snapshotted at
    /// iteration start — so the final sample's `alive_edges` equals
    /// `Stats::edges_last_iter`. The warm-start pre-peel is not an outer
    /// iteration and only shows up in the trace's phase totals.
    pub fn decompose<D: DirectedNeighborAccess>(
        &mut self,
        g: &D,
        warm_start: bool,
    ) -> WDecomposition {
        let ((induce, w_star, iterations, first, last), wall) = timed(|| {
            telemetry::time_phase(Phase::Init, || self.bind(g));
            let mut iterations = 0usize;
            if warm_start {
                // `d_max` of the paper's Remark, computed from the freshly
                // bound degree arrays so it needs no representation-specific
                // graph method.
                let d_max = self
                    .out_deg
                    .par_iter()
                    .chain(self.in_deg.par_iter())
                    .map(|x| x.load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0) as u64;
                telemetry::time_phase(Phase::Prime, || self.prime(g, d_max));
                iterations +=
                    telemetry::time_phase(Phase::Cascade, || self.cascade(g, d_max, WARM_PEELED)).0;
            } else {
                telemetry::time_phase(Phase::Prime, || self.prime(g, 0));
            }
            let (w_star, loop_iters, first, last) = self.run_thresholds(g);
            iterations += loop_iters;
            let induce: Vec<u64> = self.induce.iter().map(|x| x.load(Ordering::Relaxed)).collect();
            (induce, w_star, iterations, first, last)
        });
        WDecomposition {
            induce_number: induce,
            w_star,
            stats: Stats {
                iterations,
                wall,
                edges_first_iter: first,
                edges_last_iter: last,
                ..Stats::default()
            },
        }
    }

    /// Dynamic maintenance entry point: recomputes the w-induced
    /// decomposition with a set of **frozen** edges excluded from peeling.
    ///
    /// `frozen` holds `(slot, induce)` pairs — edges whose induce-number is
    /// already known to be unchanged from the previous graph version
    /// (those with old induce above the batch's changed-weight cutoff
    /// `W*`; see `dsd-core::dynamic`). Frozen edges are "peeled without a
    /// degree decrement": their liveness bits are cleared right after
    /// binding, so the chunk-min scheduler and cascades never touch them,
    /// while the degree arrays keep counting them — exactly their state
    /// during the ≤ `W*` prefix of a full run, where they survive every
    /// threshold. The threshold loop therefore reproduces the full run's
    /// ≤ `W*` prefix bit-for-bit on the active edges, and the frozen
    /// induce-numbers (its > `W*` suffix) are carried over verbatim;
    /// `w*` is the max over both parts.
    ///
    /// With an empty `frozen` set this is exactly `decompose(g, false)`.
    pub fn decompose_restricted<D: DirectedNeighborAccess>(
        &mut self,
        g: &D,
        frozen: &[(u32, u64)],
    ) -> WDecomposition {
        let ((induce, w_star, iterations, first, last), wall) = timed(|| {
            telemetry::time_phase(Phase::Init, || self.bind(g));
            let mut frozen_max = 0u64;
            for &(slot, ind) in frozen {
                let flipped = claim_clear(&self.alive, slot as usize);
                debug_assert!(flipped, "frozen slot {slot} listed twice");
                self.induce[slot as usize].store(ind, Ordering::Relaxed);
                frozen_max = frozen_max.max(ind);
            }
            self.alive_count -= frozen.len();
            telemetry::time_phase(Phase::Prime, || self.prime_alive(g));
            let (active_w_star, iterations, first, last) = self.run_thresholds(g);
            let induce: Vec<u64> = self.induce.iter().map(|x| x.load(Ordering::Relaxed)).collect();
            (induce, active_w_star.max(frozen_max), iterations, first, last)
        });
        WDecomposition {
            induce_number: induce,
            w_star,
            stats: Stats {
                iterations,
                wall,
                edges_first_iter: first,
                edges_last_iter: last,
                ..Stats::default()
            },
        }
    }

    /// [`decompose`](Self::decompose) behind runtime storage selection:
    /// the enum is matched once, then the whole peel runs in the
    /// monomorphised kernel for the chosen representation.
    pub fn decompose_storage(
        &mut self,
        storage: &DirectedStorage<'_>,
        warm_start: bool,
    ) -> WDecomposition {
        match storage {
            DirectedStorage::Plain(g) => self.decompose(*g, warm_start),
            DirectedStorage::Compressed(c) => self.decompose(*c, warm_start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dds::winduced::{
        edge_endpoints, w_decomposition_legacy, w_star_decomposition_legacy,
    };
    use dsd_graph::DirectedGraph;

    fn parity(g: &DirectedGraph) {
        let mut ws = PeelWorkspace::new();
        let full_legacy = w_decomposition_legacy(g);
        let full_engine = ws.decompose(g, false);
        assert_eq!(full_engine.induce_number, full_legacy.induce_number);
        assert_eq!(full_engine.w_star, full_legacy.w_star);
        let warm_legacy = w_star_decomposition_legacy(g);
        let warm_engine = ws.decompose(g, true);
        assert_eq!(warm_engine.induce_number, warm_legacy.induce_number);
        assert_eq!(warm_engine.w_star, warm_legacy.w_star);
    }

    #[test]
    fn engine_matches_legacy_on_random_graphs() {
        for seed in 0..8 {
            parity(&dsd_graph::gen::erdos_renyi_directed(50, 320, seed + 100));
        }
    }

    #[test]
    fn engine_matches_legacy_on_power_law_graphs() {
        for seed in 0..4 {
            parity(&dsd_graph::gen::chung_lu_directed(250, 1600, 2.5, 2.1, seed + 7));
        }
    }

    #[test]
    fn engine_matches_legacy_on_filament_tails() {
        for seed in 0..4 {
            let base = dsd_graph::gen::chung_lu_directed(150, 900, 2.4, 2.2, seed + 60);
            parity(&dsd_graph::gen::attach_filaments_directed(&base, 3, 40, seed + 61));
        }
    }

    #[test]
    fn workspace_reuse_across_graphs() {
        let mut ws = PeelWorkspace::new();
        let small = dsd_graph::gen::erdos_renyi_directed(20, 60, 1);
        let big = dsd_graph::gen::chung_lu_directed(400, 2600, 2.4, 2.1, 2);
        for g in [&small, &big, &small] {
            let engine = ws.decompose(g, false);
            let legacy = w_decomposition_legacy(g);
            assert_eq!(engine.induce_number, legacy.induce_number);
            assert_eq!(engine.w_star, legacy.w_star);
        }
    }

    #[test]
    fn stats_mirror_legacy_semantics() {
        let g = dsd_graph::gen::chung_lu_directed(300, 2000, 2.3, 2.1, 7);
        let mut ws = PeelWorkspace::new();
        let d = ws.decompose(&g, true);
        let first = d.stats.edges_first_iter.unwrap();
        let last = d.stats.edges_last_iter.unwrap();
        assert!(first <= g.num_edges());
        assert!(last <= first);
        assert!(d.w_star >= g.max_degree() as u64);
        assert!(d.stats.iterations > 0);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let mut ws = PeelWorkspace::new();
        let empty = dsd_graph::DirectedGraph::empty(3);
        let d = ws.decompose(&empty, false);
        assert_eq!(d.w_star, 0);
        assert!(d.induce_number.is_empty());
        let single = dsd_graph::DirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        let d = ws.decompose(&single, false);
        assert_eq!(d.w_star, 1);
        assert_eq!(d.induce_number, vec![1]);
    }

    #[test]
    fn compressed_storage_matches_plain_bit_for_bit() {
        for seed in 0..3 {
            let g = dsd_graph::gen::chung_lu_directed(200, 1300, 2.4, 2.1, seed + 90);
            let c = dsd_graph::CompressedDigraph::from_graph(&g);
            let mut ws = PeelWorkspace::new();
            for warm in [false, true] {
                let plain = ws.decompose(&g, warm);
                let fused = ws.decompose_storage(&DirectedStorage::Compressed(&c), warm);
                assert_eq!(fused.induce_number, plain.induce_number, "seed {seed} warm {warm}");
                assert_eq!(fused.w_star, plain.w_star, "seed {seed} warm {warm}");
                let dispatched = ws.decompose_storage(&DirectedStorage::Plain(&g), warm);
                assert_eq!(dispatched.induce_number, plain.induce_number);
            }
        }
    }

    #[test]
    fn restricted_with_empty_frozen_set_matches_full() {
        for seed in 0..3 {
            let g = dsd_graph::gen::erdos_renyi_directed(60, 400, seed + 30);
            let mut ws = PeelWorkspace::new();
            let full = ws.decompose(&g, false);
            let restricted = ws.decompose_restricted(&g, &[]);
            assert_eq!(restricted.induce_number, full.induce_number, "seed {seed}");
            assert_eq!(restricted.w_star, full.w_star, "seed {seed}");
        }
    }

    #[test]
    fn restricted_reproduces_full_run_below_any_cutoff() {
        // Freezing the > W* suffix of a known decomposition must leave the
        // ≤ W* prefix bit-identical — the identity-batch case of the
        // dynamic engine's cutoff argument, for several cutoffs.
        for seed in 0..3 {
            let g = dsd_graph::gen::chung_lu_directed(200, 1300, 2.4, 2.1, seed + 40);
            let mut ws = PeelWorkspace::new();
            let full = ws.decompose(&g, false);
            let mut cuts: Vec<u64> = full.induce_number.clone();
            cuts.sort_unstable();
            cuts.dedup();
            for cut in [cuts[cuts.len() / 2], cuts[cuts.len() - 1], 0] {
                let frozen: Vec<(u32, u64)> = full
                    .induce_number
                    .iter()
                    .enumerate()
                    .filter(|(_, &ind)| ind > cut)
                    .map(|(slot, &ind)| (slot as u32, ind))
                    .collect();
                let restricted = ws.decompose_restricted(&g, &frozen);
                assert_eq!(restricted.induce_number, full.induce_number, "seed {seed} cut {cut}");
                assert_eq!(restricted.w_star, full.w_star, "seed {seed} cut {cut}");
            }
        }
    }

    #[test]
    fn induce_vector_order_is_csr_slot_order() {
        // The engine's slot ids must agree with `edge_endpoints`'s order
        // (and hence with the legacy kernel's vector layout).
        let g = dsd_graph::gen::erdos_renyi_directed(30, 150, 77);
        let mut ws = PeelWorkspace::new();
        let engine = ws.decompose(&g, false);
        let legacy = w_decomposition_legacy(&g);
        for ((e, a), b) in
            edge_endpoints(&g).zip(engine.induce_number.iter()).zip(legacy.induce_number.iter())
        {
            assert_eq!(a, b, "edge {e:?}");
        }
    }
}
