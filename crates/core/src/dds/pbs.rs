//! PBS — Charikar's directed peeling 2-approximation, parallelised over
//! ratio rounds (reference \[3\]; the `O(n²(n+m))` baseline of Exp-5).
//!
//! The 2-approximation guarantee requires running the fixed-ratio peel of
//! [`crate::dds::ratio_peel`] once per candidate ratio `c = i/j`
//! (`1 ≤ i, j ≤ n`) — `O(n²)` rounds, which is why the paper reports PBS
//! never finishing within 10⁵ seconds on any dataset. A `max_rounds` cap
//! (geometric subsampling) makes the algorithm runnable at reduced
//! guarantee for the experiment harness.

use dsd_graph::DirectedGraph;
use rayon::prelude::*;

use crate::dds::ratio_peel::{geometric_ratios, peel_fixed_ratio};
use crate::dds::DdsResult;
use crate::density::st_edges_and_density;
use crate::stats::{timed, Stats};

/// Configuration for [`pbs_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PbsConfig {
    /// Cap on the number of peeling rounds. `None` runs the faithful
    /// `O(n²)` enumeration of all reduced fractions `i/j`.
    pub max_rounds: Option<usize>,
}

/// Runs PBS with the faithful full ratio enumeration.
pub fn pbs(g: &DirectedGraph) -> DdsResult {
    pbs_with(g, PbsConfig::default())
}

/// Runs PBS; `stats.iterations` counts peeling rounds.
pub fn pbs_with(g: &DirectedGraph, config: PbsConfig) -> DdsResult {
    let ((s, t, density, rounds), wall) = timed(|| run(g, config));
    let edges = st_edges_and_density(g, &s, &t).0;
    DdsResult {
        s,
        t,
        density,
        stats: Stats { iterations: rounds, wall, edges_result: Some(edges), ..Stats::default() },
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn run(g: &DirectedGraph, config: PbsConfig) -> (Vec<u32>, Vec<u32>, f64, usize) {
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return (Vec::new(), Vec::new(), 0.0, 0);
    }
    let ratios: Vec<f64> = match config.max_rounds {
        Some(cap) if n * n > cap => geometric_ratios(n, cap),
        _ => {
            let mut rs = Vec::new();
            for i in 1..=n {
                for j in 1..=n {
                    if gcd(i, j) == 1 {
                        rs.push(i as f64 / j as f64);
                    }
                }
            }
            rs
        }
    };
    let rounds = ratios.len();
    let best = ratios
        .par_iter()
        .map(|&c| peel_fixed_ratio(g, c))
        .max_by(|a, b| a.density.partial_cmp(&b.density).expect("densities are finite"))
        .expect("at least one ratio");
    (best.s, best.t, best.density, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::directed_density;

    #[test]
    fn two_approximation_vs_exact_full_enumeration() {
        for seed in 0..4 {
            let g = dsd_graph::gen::erdos_renyi_directed(18, 80, seed + 60);
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dsd_flow::dds_exact(&g);
            let r = pbs(&g);
            assert!(
                r.density * 2.0 + 1e-9 >= exact.density,
                "seed {seed}: pbs {} vs exact {}",
                r.density,
                exact.density
            );
        }
    }

    #[test]
    fn capped_rounds_still_reasonable() {
        let g = dsd_graph::gen::chung_lu_directed(150, 900, 2.4, 2.2, 8);
        let full_ish = pbs_with(&g, PbsConfig { max_rounds: Some(100) });
        assert!(full_ish.stats.iterations <= 100);
        assert!(full_ish.density > 0.0);
        let actual = directed_density(&g, &full_ish.s, &full_ish.t);
        assert!((actual - full_ish.density).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = dsd_graph::DirectedGraphBuilder::new(4).build().unwrap();
        let r = pbs(&g);
        assert_eq!(r.density, 0.0);
        assert_eq!(r.stats.iterations, 0);
    }

    #[test]
    fn round_count_matches_reduced_fractions() {
        let g = dsd_graph::gen::erdos_renyi_directed(6, 16, 4);
        let r = pbs(&g);
        // Count of reduced fractions i/j with 1 <= i, j <= 6.
        let mut count = 0;
        for i in 1..=6usize {
            for j in 1..=6usize {
                if gcd(i, j) == 1 {
                    count += 1;
                }
            }
        }
        assert_eq!(r.stats.iterations, count);
    }
}
