//! w-induced subgraph decomposition — the paper's Algorithm 3 and the
//! novel subgraph model of Section V-B.
//!
//! Each directed edge `(u, v)` carries the weight
//! `w(u,v) = d⁺(u) · d⁻(v)` **with respect to the current subgraph**
//! (Definition 8). The `w`-induced subgraph is the maximal subgraph whose
//! edges all have weight ≥ `w` (Definition 9); the induce-number of an edge
//! is the largest `w` whose induced subgraph contains it (Definition 10).
//!
//! Decomposition peels edges in rounds: the outer loop fixes the current
//! minimum alive weight `w_t`; the inner loop repeatedly (and in parallel
//! over vertices) removes every edge whose weight has fallen to ≤ `w_t`,
//! recording induce-number `w_t`, until the cascade is quiescent — then the
//! next, strictly larger, minimum is taken. All degree updates are atomic
//! and no ordering between edge removals within a round matters, which is
//! what makes the algorithm parallel without synchronisation (the property
//! the paper emphasises).
//!
//! The paper's Remark observes `w* ≥ d_max`, so when only the `w*`-induced
//! subgraph is needed (PWC), all edges with weight < `d_max` can be peeled
//! in a single warm-start cascade without computing their induce-numbers.
//!
//! Since PR 2 the public entry points run on the edge-frontier peeling
//! engine of [`crate::dds::peel`]; the seed kernel survives as
//! [`w_decomposition_legacy`] / [`w_star_decomposition_legacy`] for the
//! ablation and as an independent parity oracle.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use dsd_graph::{DirectedGraph, DirectedStorage, VertexId};
use dsd_telemetry::{self as telemetry, Counter, Phase, PhaseTime, RoundSample};
use rayon::prelude::*;

use crate::dds::peel::PeelWorkspace;
use crate::stats::{timed, Stats};

/// Sentinel induce-number for edges peeled by the warm start (their true
/// induce-number is `< d_max` and was not computed).
pub const WARM_PEELED: u64 = 0;

/// Full decomposition output.
#[derive(Clone, Debug)]
pub struct WDecomposition {
    /// `induce_number[i]` for the `i`-th edge in the graph's CSR out-edge
    /// order (pair with [`edge_endpoints`]). [`WARM_PEELED`] when the warm
    /// start skipped the edge.
    pub induce_number: Vec<u64>,
    /// The maximum induce-number `w*` (0 for an edgeless graph).
    pub w_star: u64,
    /// Execution statistics: `iterations` counts inner cascade rounds;
    /// `edges_first_iter` / `edges_last_iter` are the alive-edge counts at
    /// the first and last outer round (Table 7's `PWC₁` and `PWC_{w*}`).
    pub stats: Stats,
}

impl WDecomposition {
    /// Edges (as `(u, v)` pairs) whose induce-number equals `w*` — i.e. the
    /// `w*`-induced subgraph.
    pub fn w_star_edges(&self, g: &DirectedGraph) -> Vec<(VertexId, VertexId)> {
        edge_endpoints(g)
            .zip(self.induce_number.iter())
            .filter(|&(_, &w)| w == self.w_star && self.w_star > 0)
            .map(|(e, _)| e)
            .collect()
    }
}

/// Iterator over edges in CSR out-edge order (the order of
/// `WDecomposition::induce_number`): slot `i` of `g.out_offsets()` order.
pub fn edge_endpoints(g: &DirectedGraph) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
    let offsets = g.out_offsets();
    offsets.windows(2).enumerate().flat_map(move |(u, w)| {
        debug_assert_eq!(w[1] - w[0], g.out_degree(u as VertexId));
        g.out_neighbors(u as VertexId).iter().map(move |&v| (u as VertexId, v))
    })
}

/// Runs the full w-induced decomposition (exact induce-numbers for every
/// edge; no warm start) on the edge-frontier peeling engine.
pub fn w_decomposition(g: &DirectedGraph) -> WDecomposition {
    w_decomposition_in(g, &mut PeelWorkspace::new())
}

/// [`w_decomposition`] with a caller-owned workspace, so repeated calls
/// reuse the engine's bitmaps, degree arrays, and frontier buffers.
pub fn w_decomposition_in(g: &DirectedGraph, ws: &mut PeelWorkspace) -> WDecomposition {
    ws.decompose(g, false)
}

/// Runs the decomposition with the `d_max` warm start (the paper's
/// Remark): edges with weight < `d_max` are peeled without induce-numbers.
/// `w*` and the `w*`-induced subgraph are identical to the full run.
pub fn w_star_decomposition(g: &DirectedGraph) -> WDecomposition {
    w_star_decomposition_in(g, &mut PeelWorkspace::new())
}

/// [`w_star_decomposition`] with a caller-owned workspace.
pub fn w_star_decomposition_in(g: &DirectedGraph, ws: &mut PeelWorkspace) -> WDecomposition {
    ws.decompose(g, true)
}

/// [`w_decomposition`] behind runtime storage selection: the enum is
/// matched once, then the full peel runs in the engine kernel
/// monomorphised for the chosen representation (plain CSR or fused
/// delta-varint decode). Induce-numbers are reported in the same CSR
/// out-edge order for both representations, so results are comparable
/// bit-for-bit.
pub fn w_decomposition_storage(
    storage: &DirectedStorage<'_>,
    ws: &mut PeelWorkspace,
) -> WDecomposition {
    ws.decompose_storage(storage, false)
}

/// Storage-routed counterpart of [`w_star_decomposition`] (see
/// [`w_decomposition_storage`]).
pub fn w_star_decomposition_storage(
    storage: &DirectedStorage<'_>,
    ws: &mut PeelWorkspace,
) -> WDecomposition {
    ws.decompose_storage(storage, true)
}

/// The seed kernel (full `min_weight` scan per outer iteration, all-edge
/// cascade rounds, per-edge `AtomicBool` liveness), kept as the ablation
/// baseline and parity oracle for the engine. Induce-numbers and `w*` are
/// bit-identical to [`w_decomposition`]; only `stats` may differ.
pub fn w_decomposition_legacy(g: &DirectedGraph) -> WDecomposition {
    decompose_legacy(g, false)
}

/// Legacy counterpart of [`w_star_decomposition`] (see
/// [`w_decomposition_legacy`]).
pub fn w_star_decomposition_legacy(g: &DirectedGraph) -> WDecomposition {
    decompose_legacy(g, true)
}

struct Engine<'a> {
    g: &'a DirectedGraph,
    alive: Vec<AtomicBool>,
    out_deg: Vec<AtomicU32>,
    in_deg: Vec<AtomicU32>,
    induce: Vec<AtomicU64>,
    alive_count: AtomicUsize,
}

impl<'a> Engine<'a> {
    fn new(g: &'a DirectedGraph) -> Self {
        let m = g.num_edges();
        Self {
            g,
            alive: (0..m).map(|_| AtomicBool::new(true)).collect(),
            out_deg: g.out_degrees().into_iter().map(AtomicU32::new).collect(),
            in_deg: g.in_degrees().into_iter().map(AtomicU32::new).collect(),
            induce: (0..m).map(|_| AtomicU64::new(WARM_PEELED)).collect(),
            alive_count: AtomicUsize::new(m),
        }
    }

    #[inline]
    fn weight(&self, u: VertexId, v: VertexId) -> u64 {
        self.out_deg[u as usize].load(Ordering::Relaxed) as u64
            * self.in_deg[v as usize].load(Ordering::Relaxed) as u64
    }

    /// Minimum alive edge weight, or `None` when the graph is empty.
    fn min_weight(&self, active: &[VertexId]) -> Option<u64> {
        active
            .par_iter()
            .filter_map(|&u| {
                // The out-CSR offset of `u` is the base slot of its edges.
                let base = self.g.out_offsets()[u as usize];
                self.g
                    .out_neighbors(u)
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| self.alive[base + i].load(Ordering::Relaxed))
                    .map(|(_, &v)| self.weight(u, v))
                    .min()
            })
            .min()
    }

    /// Removes every alive edge whose weight is `< bound`, cascading until
    /// quiescent. Removed edges get induce-number `record` (skipped when
    /// `record == WARM_PEELED`). Returns the number of cascade rounds.
    ///
    /// `scratch` is a persistent compaction buffer (the workspace-reuse
    /// pattern of the h-index sweep engine): the active vertex list is
    /// compacted by a parallel filter into `scratch` and swapped, instead
    /// of the seed's serial `retain` per round, and the buffer's capacity
    /// is reused across rounds and outer peeling iterations.
    /// Also returns the number of adjacency entries examined across the
    /// rounds (computed only while the telemetry recorder is enabled; 0
    /// otherwise).
    fn cascade_below(
        &self,
        active: &mut Vec<VertexId>,
        scratch: &mut Vec<VertexId>,
        bound: u64,
        record: u64,
    ) -> (usize, u64) {
        let mut rounds = 0usize;
        let mut examined = 0u64;
        loop {
            if telemetry::enabled() {
                // Every round re-walks the full adjacency of every active
                // vertex — the work profile the engine's frontier removes.
                examined += active.par_iter().map(|&u| self.g.out_degree(u) as u64).sum::<u64>();
            }
            let removed = AtomicUsize::new(0);
            active.par_iter().for_each(|&u| {
                let base = self.g.out_offsets()[u as usize];
                for (i, &v) in self.g.out_neighbors(u).iter().enumerate() {
                    let slot = base + i;
                    if !self.alive[slot].load(Ordering::Relaxed) {
                        continue;
                    }
                    if self.weight(u, v) < bound {
                        // Claim the edge; only the winner updates degrees.
                        if self.alive[slot].swap(false, Ordering::Relaxed) {
                            if record != WARM_PEELED {
                                self.induce[slot].store(record, Ordering::Relaxed);
                            }
                            self.out_deg[u as usize].fetch_sub(1, Ordering::Relaxed);
                            self.in_deg[v as usize].fetch_sub(1, Ordering::Relaxed);
                            removed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
            let removed = removed.load(Ordering::Relaxed);
            if removed == 0 {
                break;
            }
            rounds += 1;
            self.alive_count.fetch_sub(removed, Ordering::Relaxed);
            // Compact the active vertex list (parallel filter into the
            // reused scratch buffer; rayon preserves item order, so the
            // list stays in the same order the serial retain produced).
            {
                let _compact = telemetry::span(Phase::Compact);
                scratch.clear();
                scratch.par_extend(
                    active
                        .par_iter()
                        .copied()
                        .filter(|&u| self.out_deg[u as usize].load(Ordering::Relaxed) > 0),
                );
            }
            telemetry::counter_add(Counter::CompactionMoves, scratch.len() as u64);
            std::mem::swap(active, scratch);
        }
        (rounds, examined)
    }
}

/// Telemetry mirrors the engine's [`PeelWorkspace::decompose`]: one
/// [`RoundSample`] per outer peeling iteration with `alive_edges` captured
/// at iteration start (so the final sample matches
/// `Stats::edges_last_iter`); the warm-start cascade contributes only to
/// the phase totals.
fn decompose_legacy(g: &DirectedGraph, warm_start: bool) -> WDecomposition {
    let ((induce, w_star, iterations, first, last), wall) = timed(|| {
        let (engine, mut active) = telemetry::time_phase(Phase::Init, || {
            let engine = Engine::new(g);
            let active: Vec<VertexId> = g.vertices().filter(|&v| g.out_degree(v) > 0).collect();
            (engine, active)
        });
        // Persistent compaction buffer, reused across every cascade round
        // of every outer iteration (see `cascade_below`).
        let mut scratch: Vec<VertexId> = Vec::with_capacity(active.len());
        let mut iterations = 0usize;
        if warm_start {
            let d_max = g.max_degree() as u64;
            iterations += telemetry::time_phase(Phase::Cascade, || {
                engine.cascade_below(&mut active, &mut scratch, d_max, WARM_PEELED)
            })
            .0;
        }
        let mut w_star = 0u64;
        let mut first: Option<usize> = None;
        let mut last: Option<usize> = None;
        loop {
            let enabled = telemetry::enabled();
            let t0 = enabled.then(Instant::now);
            let next = engine.min_weight(&active);
            let select_time = t0.map(|t| telemetry::record_span(Phase::ThresholdSelect, t));
            let Some(w_t) = next else { break };
            let alive_now = engine.alive_count.load(Ordering::Relaxed);
            if first.is_none() {
                first = Some(alive_now);
            }
            last = Some(alive_now);
            w_star = w_t;
            let frontier_len = active.len();
            let t1 = enabled.then(Instant::now);
            let (rounds, examined) = engine.cascade_below(&mut active, &mut scratch, w_t + 1, w_t);
            iterations += rounds;
            if enabled {
                let mut phase_times = Vec::with_capacity(2);
                if let Some(d) = select_time {
                    phase_times.push(PhaseTime {
                        phase: Phase::ThresholdSelect.name(),
                        secs: d.as_secs_f64(),
                    });
                }
                if let Some(d) = t1.map(|t| telemetry::record_span(Phase::Cascade, t)) {
                    phase_times
                        .push(PhaseTime { phase: Phase::Cascade.name(), secs: d.as_secs_f64() });
                }
                telemetry::record_round(RoundSample {
                    round: telemetry::rounds_recorded() as u32,
                    frontier_len,
                    edges_examined: examined,
                    items_removed: alive_now - engine.alive_count.load(Ordering::Relaxed),
                    alive_edges: Some(alive_now),
                    phase_times,
                    ..RoundSample::default()
                });
            }
        }
        let induce: Vec<u64> = engine.induce.into_iter().map(AtomicU64::into_inner).collect();
        (induce, w_star, iterations, first, last)
    });
    WDecomposition {
        induce_number: induce,
        w_star,
        stats: Stats {
            iterations,
            wall,
            edges_first_iter: first,
            edges_last_iter: last,
            ..Stats::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::DirectedGraphBuilder;
    use rustc_hash::FxHashMap;

    fn graph(n: usize, edges: &[(u32, u32)]) -> DirectedGraph {
        DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    /// The paper's Fig. 3(a) graph: u1..u4 = 0..3, v1..v5 = 4..8.
    fn figure_3_graph() -> DirectedGraph {
        graph(
            9,
            &[
                (0, 4), // u1 -> v1
                (0, 5), // u1 -> v2
                (0, 6), // u1 -> v3
                (1, 4), // u2 -> v1
                (1, 5), // u2 -> v2
                (1, 6), // u2 -> v3
                (1, 7), // u2 -> v4
                (1, 8), // u2 -> v5
                (2, 6), // u3 -> v3
                (2, 7), // u3 -> v4
                (3, 7), // u4 -> v4
            ],
        )
    }

    fn induce_map(g: &DirectedGraph, d: &WDecomposition) -> FxHashMap<(u32, u32), u64> {
        edge_endpoints(g).zip(d.induce_number.iter().copied()).collect()
    }

    #[test]
    fn paper_table_3_induce_numbers() {
        // Table 3 gives the exact induce-number of every edge of Fig. 3(a).
        let g = figure_3_graph();
        let d = w_decomposition(&g);
        let m = induce_map(&g, &d);
        assert_eq!(m[&(3, 7)], 3); // (u4, v4)
        assert_eq!(m[&(2, 6)], 4); // (u3, v3)
        assert_eq!(m[&(2, 7)], 4); // (u3, v4)
        assert_eq!(m[&(1, 7)], 5); // (u2, v4)
        assert_eq!(m[&(1, 8)], 5); // (u2, v5)
        for e in [(0, 4), (0, 5), (0, 6), (1, 4), (1, 5), (1, 6)] {
            assert_eq!(m[&e], 6, "edge {e:?}");
        }
        assert_eq!(d.w_star, 6);
    }

    #[test]
    fn paper_figure_3b_w_star_subgraph() {
        // The w*-induced subgraph contains u1, u2, v1, v2, v3 (Fig. 3(b)).
        let g = figure_3_graph();
        let d = w_decomposition(&g);
        let mut edges = d.w_star_edges(&g);
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 4), (0, 5), (0, 6), (1, 4), (1, 5), (1, 6)]);
    }

    #[test]
    fn warm_start_agrees_on_w_star() {
        for seed in 0..6 {
            let g = dsd_graph::gen::erdos_renyi_directed(60, 400, seed + 500);
            let full = w_decomposition(&g);
            let fast = w_star_decomposition(&g);
            assert_eq!(full.w_star, fast.w_star, "seed {seed}");
            let mut a = full.w_star_edges(&g);
            let mut b = fast.w_star_edges(&g);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn w_star_at_least_d_max() {
        // The Remark: w* >= d_max.
        let g = dsd_graph::gen::chung_lu_directed(200, 1200, 2.5, 2.2, 3);
        let d = w_decomposition(&g);
        assert!(d.w_star >= g.max_degree() as u64);
    }

    #[test]
    fn nested_property_of_w_induced_subgraphs() {
        // Proposition 3: the w-induced subgraph (edges with induce >= w) is
        // contained in the w'-induced subgraph for w >= w'. With
        // induce-numbers this is automatic; verify the decomposition's
        // subgraphs really satisfy the weight constraint.
        let g = dsd_graph::gen::erdos_renyi_directed(40, 220, 9);
        let d = w_decomposition(&g);
        let endpoints: Vec<(u32, u32)> = edge_endpoints(&g).collect();
        let mut ws: Vec<u64> = d.induce_number.clone();
        ws.sort_unstable();
        ws.dedup();
        for &w in &ws {
            // Build the subgraph of edges with induce >= w and check all
            // internal weights >= w.
            let sel: Vec<(u32, u32)> = endpoints
                .iter()
                .zip(d.induce_number.iter())
                .filter(|&(_, &iw)| iw >= w)
                .map(|(&e, _)| e)
                .collect();
            let mut outd = vec![0u64; g.num_vertices()];
            let mut ind = vec![0u64; g.num_vertices()];
            for &(u, v) in &sel {
                outd[u as usize] += 1;
                ind[v as usize] += 1;
            }
            for &(u, v) in &sel {
                assert!(outd[u as usize] * ind[v as usize] >= w, "edge ({u},{v}) weight below {w}");
            }
        }
    }

    #[test]
    fn induce_numbers_are_maximal() {
        // No edge's induce-number can be raised: the (w+1)-induced subgraph
        // must exclude it. Equivalent check: for each distinct w, peeling
        // edges with induce > w from scratch must collapse any edge with
        // induce == w. We verify via a serial reference decomposition.
        let g = dsd_graph::gen::erdos_renyi_directed(30, 150, 21);
        let fast = w_decomposition(&g);
        let slow = serial_reference(&g);
        assert_eq!(fast.induce_number, slow);
    }

    /// Textbook serial peeling: repeatedly remove a single minimum-weight
    /// edge.
    fn serial_reference(g: &DirectedGraph) -> Vec<u64> {
        let endpoints: Vec<(u32, u32)> = edge_endpoints(g).collect();
        let m = endpoints.len();
        let mut alive = vec![true; m];
        let mut outd: Vec<u64> = g.out_degrees().iter().map(|&d| d as u64).collect();
        let mut ind: Vec<u64> = g.in_degrees().iter().map(|&d| d as u64).collect();
        let mut induce = vec![0u64; m];
        let mut remaining = m;
        let mut current = 0u64;
        while remaining > 0 {
            let (ei, w) = endpoints
                .iter()
                .enumerate()
                .filter(|&(i, _)| alive[i])
                .map(|(i, &(u, v))| (i, outd[u as usize] * ind[v as usize]))
                .min_by_key(|&(_, w)| w)
                .unwrap();
            current = current.max(w);
            induce[ei] = current;
            alive[ei] = false;
            let (u, v) = endpoints[ei];
            outd[u as usize] -= 1;
            ind[v as usize] -= 1;
            remaining -= 1;
        }
        induce
    }

    #[test]
    fn storage_wrappers_match_direct_calls() {
        let g = dsd_graph::gen::chung_lu_directed(150, 900, 2.4, 2.2, 11);
        let c = dsd_graph::CompressedDigraph::from_graph(&g);
        let mut ws = PeelWorkspace::new();
        let full = w_decomposition(&g);
        let warm = w_star_decomposition(&g);
        for storage in [DirectedStorage::Plain(&g), DirectedStorage::Compressed(&c)] {
            let f = w_decomposition_storage(&storage, &mut ws);
            assert_eq!(f.induce_number, full.induce_number);
            assert_eq!(f.w_star, full.w_star);
            let w = w_star_decomposition_storage(&storage, &mut ws);
            assert_eq!(w.induce_number, warm.induce_number);
            assert_eq!(w.w_star, warm.w_star);
        }
    }

    #[test]
    fn stats_shrink_monotonically() {
        let g = dsd_graph::gen::chung_lu_directed(300, 2000, 2.3, 2.1, 7);
        let d = w_star_decomposition(&g);
        let first = d.stats.edges_first_iter.unwrap();
        let last = d.stats.edges_last_iter.unwrap();
        assert!(first <= g.num_edges());
        assert!(last <= first);
        assert!(d.w_star >= g.max_degree() as u64);
    }

    #[test]
    fn empty_graph() {
        let g = graph(3, &[]);
        let d = w_decomposition(&g);
        assert_eq!(d.w_star, 0);
        assert!(d.induce_number.is_empty());
        assert!(d.w_star_edges(&g).is_empty());
    }

    #[test]
    fn single_edge() {
        let g = graph(2, &[(0, 1)]);
        let d = w_decomposition(&g);
        assert_eq!(d.w_star, 1);
        assert_eq!(d.induce_number, vec![1]);
    }
}
