//! PWC — the paper's Algorithm 4: parallel `[x*, y*]`-core computation via
//! the `w*`-induced subgraph.
//!
//! 1. Compute the `w*`-induced subgraph with Algorithm 3 (warm-started at
//!    `d_max` per the paper's Remark).
//! 2. Derive the maximum cn-pair from it: by Theorem 2, `w* = x*·y*`, and
//!    by Lemma 6 removing the edges whose endpoint degrees are exactly
//!    `(x*, y*)` collapses the whole `w*`-induced subgraph. Candidate
//!    degree pairs are read off the weight-`w*` edges; pairs are tried in
//!    turn — deleting their edges and cascading sub-`w*` weights — until
//!    the graph collapses.
//! 3. Extract the `[x*, y*]`-core from the `w*`-induced subgraph by
//!    ordinary `[x, y]` peeling (Lemma 4 guarantees the core lives inside
//!    it) and return it as the 2-approximate DDS (Lemma 3).
//!
//! ## Theorem 2 erratum (found by this reproduction's property tests)
//!
//! The paper's Theorem 2 claims `w* = x*·y*` unconditionally, but the
//! `w* ≤ x*·y*` direction can fail: there are graphs whose `w*`-induced
//! subgraph has heterogeneous degree pairs such that **no** `[x, y]`-core
//! with `x·y = w*` exists. A minimal-style counterexample (also a unit
//! test below): sources `s1, s2` with out-degree 6, targets `p1..p5` with
//! in-degree 2 (each fed by both `s`), targets `t1, t2` with in-degree 6
//! (each fed by one `s` and five `q`s), sources `q1..q5` with out-degree 2
//! (one edge to each `t`). Every edge weight is ≥ 12 so `w* = 12`, yet the
//! best cn-pairs are `[5, 2]` and `[2, 5]` — product 10. Removing the
//! weight-12 edges whose endpoint degrees multiply to 12 *does* collapse
//! the graph (Lemma 6's conclusion), but no pair `(x, y)` with `x·y = 12`
//! has a non-empty core, so Algorithm 4 as printed would return nothing.
//!
//! PWC therefore keeps the paper's fast path — which succeeds on all
//! well-behaved (e.g. the paper's benchmark) graphs and certifies
//! `w* = x*·y*` when it does — and falls back to the provably correct
//! `max_cn_pair` enumeration (PXY's core) when no divisor pair of `w*`
//! yields a non-empty core. Either way the returned `[x, y]`-core has the
//! true maximum product `x*·y*`, so density `≥ √(x*·y*) ≥ ρ*/2` (Lemma 3)
//! always holds. [`PwcResult::used_fallback`] reports which path ran.

use dsd_graph::{DirectedGraph, VertexId};
use dsd_telemetry::{self as telemetry, Phase};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::dds::peel::PeelWorkspace;
use crate::dds::pxy::max_cn_pair;
use crate::dds::winduced::{w_star_decomposition_in, WDecomposition};
use crate::dds::xycore::xy_core;
use crate::dds::DdsResult;
use crate::density::st_edges_and_density;
use crate::stats::{timed, Stats};

/// Outcome of PWC, additionally exposing `w*` and the derived cn-pair.
#[derive(Clone, Debug)]
pub struct PwcResult {
    /// The 2-approximate DDS (the `[x*, y*]`-core).
    pub result: DdsResult,
    /// The maximum induce-number `w*` (= `x*·y*` whenever the paper's
    /// Theorem 2 holds for the input; see the module-level erratum).
    pub w_star: u64,
    /// The derived maximum cn-pair `[x*, y*]`.
    pub cn_pair: (u32, u32),
    /// `true` if the Theorem-2 fast path failed and the enumeration
    /// fallback produced the pair (never observed on the paper's graph
    /// families; exercised by the erratum counterexample).
    pub used_fallback: bool,
}

/// Runs PWC (Algorithm 4, with the erratum fallback).
pub fn pwc(g: &DirectedGraph) -> PwcResult {
    pwc_in(g, &mut PeelWorkspace::new())
}

/// [`pwc`] with a caller-owned peeling workspace: the Algorithm 3 step
/// reuses the engine's buffers across calls (batch / repeated queries).
pub fn pwc_in(g: &DirectedGraph, ws: &mut PeelWorkspace) -> PwcResult {
    let (out, wall) = timed(|| run(g, ws));
    let (s, t, density, w_star, pair, decomp_stats, edges_result, used_fallback) = out;
    PwcResult {
        result: DdsResult {
            s,
            t,
            density,
            stats: Stats {
                iterations: decomp_stats.iterations,
                wall,
                edges_first_iter: decomp_stats.edges_first_iter,
                edges_last_iter: decomp_stats.edges_last_iter,
                edges_result: Some(edges_result),
            },
        },
        w_star,
        cn_pair: pair,
        used_fallback,
    }
}

type RunOut = (Vec<VertexId>, Vec<VertexId>, f64, u64, (u32, u32), Stats, usize, bool);

fn run(g: &DirectedGraph, ws: &mut PeelWorkspace) -> RunOut {
    if g.num_edges() == 0 {
        return (Vec::new(), Vec::new(), 0.0, 0, (0, 0), Stats::default(), 0, false);
    }
    // Step 1: w*-induced subgraph (Algorithm 3 with warm start).
    let decomp: WDecomposition = w_star_decomposition_in(g, ws);
    let w_star = decomp.w_star;
    let star_edges = decomp.w_star_edges(g);
    debug_assert!(!star_edges.is_empty(), "non-empty graph has a w*-subgraph");

    // Step 2: derive [x*, y*] by collapse testing on a scratch copy.
    let candidates = telemetry::time_phase(Phase::Collapse, || collapse_order(&star_edges, w_star));

    // Step 3: extract the [x*, y*]-core from the w*-induced subgraph and
    // validate; fall back across candidate pairs (all share product w*).
    let _extract = telemetry::span(Phase::Extract);
    let (sub, original) = induce_from_edges(g.num_vertices(), &star_edges);
    // Candidates from the collapse procedure first, then every other
    // divisor pair of w*. Whenever Theorem 2 holds for the input (all of
    // the paper's graph families), one of these has a non-empty core.
    for (x, y) in candidates.iter().copied().chain(divisor_pairs(w_star)) {
        if let Some(core) = xy_core(&sub, x, y) {
            let s: Vec<VertexId> = core.s.iter().map(|&v| original[v as usize]).collect();
            let t: Vec<VertexId> = core.t.iter().map(|&v| original[v as usize]).collect();
            let (edges, density) = st_edges_and_density(g, &s, &t);
            return (s, t, density, w_star, (x, y), decomp.stats, edges, false);
        }
    }
    // Theorem-2 erratum fallback (see module docs): w* > x*·y* on this
    // input, so derive the true maximum cn-pair by enumeration and extract
    // its core from the full graph.
    let (x, y) = max_cn_pair(g).expect("non-empty graph has a [1,1]-core");
    let core = xy_core(g, x, y).expect("max cn-pair has a non-empty core");
    let (edges, density) = st_edges_and_density(g, &core.s, &core.t);
    (core.s, core.t, density, w_star, (x, y), decomp.stats, edges, true)
}

/// Every divisor pair `(d, w/d)` of `w` with both factors representable as
/// `u32`, ascending in the first component — the same sequence the seed
/// produced by testing every value in `1..=w*` (up to ~4.3e9 trial
/// divisions for large `w*`), found here by trial division up to `√w*`
/// with both orientations emitted per hit. `w = 0` yields no pairs.
fn divisor_pairs(w: u64) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    let mut d = 1u64;
    // `d <= w / d` avoids the `d * d` overflow near `w ≈ u64::MAX`.
    while d <= w / d {
        if w % d == 0 {
            let q = w / d;
            if q <= u32::MAX as u64 {
                pairs.push((d as u32, q as u32));
                if q != d {
                    pairs.push((q as u32, d as u32));
                }
            }
        }
        d += 1;
    }
    pairs.sort_unstable();
    pairs
}

/// Builds a compact directed graph from an edge list over original ids;
/// returns it with the id mapping.
fn induce_from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> (DirectedGraph, Vec<VertexId>) {
    let mut seen = vec![false; n];
    for &(u, v) in edges {
        seen[u as usize] = true;
        seen[v as usize] = true;
    }
    let original: Vec<VertexId> = (0..n as VertexId).filter(|&v| seen[v as usize]).collect();
    let mut remap = vec![0 as VertexId; n];
    for (i, &v) in original.iter().enumerate() {
        remap[v as usize] = i as VertexId;
    }
    let mut b = dsd_graph::DirectedGraphBuilder::with_capacity(original.len(), edges.len());
    for &(u, v) in edges {
        b.push_edge(remap[u as usize], remap[v as usize]);
    }
    (b.build().expect("remapped ids are in range"), original)
}

/// Runs the collapse procedure of Algorithm 4 on the `w*`-subgraph edge
/// list, returning candidate `(x, y)` pairs ordered with the collapsing
/// pair first.
fn collapse_order(star_edges: &[(VertexId, VertexId)], w_star: u64) -> Vec<(u32, u32)> {
    // Compact the vertex ids appearing in the edge list.
    let mut ids: Vec<VertexId> = star_edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    ids.sort_unstable();
    ids.dedup();
    let remap: FxHashMap<VertexId, u32> =
        ids.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
    let n = ids.len();
    let edges: Vec<(u32, u32)> = star_edges.iter().map(|&(u, v)| (remap[&u], remap[&v])).collect();
    let m = edges.len();
    let mut out_deg = vec![0u32; n];
    let mut in_deg = vec![0u32; n];
    for &(u, v) in &edges {
        out_deg[u as usize] += 1;
        in_deg[v as usize] += 1;
    }
    // Adjacency over edge indices for cascading.
    let mut out_edges: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut in_edges: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, &(u, v)) in edges.iter().enumerate() {
        out_edges[u as usize].push(i as u32);
        in_edges[v as usize].push(i as u32);
    }
    let mut alive = vec![true; m];
    let mut alive_count = m;
    let weight = |e: usize, out_deg: &[u32], in_deg: &[u32]| {
        let (u, v) = edges[e];
        out_deg[u as usize] as u64 * in_deg[v as usize] as u64
    };
    // Removing an edge may drop adjacent weights below w*; cascade them out.
    let remove_edge = |e: usize,
                       alive: &mut [bool],
                       out_deg: &mut [u32],
                       in_deg: &mut [u32],
                       queue: &mut Vec<u32>,
                       alive_count: &mut usize| {
        if !alive[e] {
            return;
        }
        alive[e] = false;
        *alive_count -= 1;
        let (u, v) = edges[e];
        out_deg[u as usize] -= 1;
        in_deg[v as usize] -= 1;
        queue.extend(out_edges[u as usize].iter().copied());
        queue.extend(in_edges[v as usize].iter().copied());
    };

    let mut tried: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut order: Vec<(u32, u32)> = Vec::new();
    loop {
        // Candidate pairs: degrees of endpoints of weight-w* edges, sorted
        // by descending x (Example 4 removes the larger-x pair first).
        let mut pairs: Vec<(u32, u32)> = (0..m)
            .filter(|&e| alive[e] && weight(e, &out_deg, &in_deg) == w_star)
            .map(|e| {
                let (u, v) = edges[e];
                (out_deg[u as usize], in_deg[v as usize])
            })
            .collect();
        pairs.sort_unstable_by(|a, b| b.cmp(a));
        pairs.dedup();
        pairs.retain(|p| !tried.contains(p));
        let Some(&pair) = pairs.first() else {
            // All observed pairs tried without collapse: the remaining
            // candidates (if any) were already logged; stop.
            break;
        };
        tried.insert(pair);
        order.push(pair);
        // Delete every alive edge whose endpoint degrees are exactly
        // (pair.0, pair.1), then cascade weights < w*.
        let mut queue: Vec<u32> = Vec::new();
        for e in 0..m {
            if alive[e] {
                let (u, v) = edges[e];
                if out_deg[u as usize] == pair.0 && in_deg[v as usize] == pair.1 {
                    remove_edge(
                        e,
                        &mut alive,
                        &mut out_deg,
                        &mut in_deg,
                        &mut queue,
                        &mut alive_count,
                    );
                }
            }
        }
        while let Some(e) = queue.pop() {
            let e = e as usize;
            if alive[e] && weight(e, &out_deg, &in_deg) < w_star {
                let mut q2: Vec<u32> = Vec::new();
                remove_edge(e, &mut alive, &mut out_deg, &mut in_deg, &mut q2, &mut alive_count);
                queue.extend(q2);
            }
        }
        if alive_count == 0 {
            // This pair collapsed the graph: it is (x*, y*). Move it first.
            let last = order.pop().expect("just pushed");
            let mut reordered = vec![last];
            reordered.extend(order);
            return reordered;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dds::pxy::pxy;
    use dsd_graph::DirectedGraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32)]) -> DirectedGraph {
        DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    /// The paper's Fig. 4 graph: u1..u4 = 0..3, v1..v7 = 4..10.
    /// w* = 12, x* = 4, y* = 3.
    fn figure_4_graph() -> DirectedGraph {
        let mut edges = Vec::new();
        // u1, u2, u3 each point at v1..v4 (the [4,3]-core).
        for u in 0..3u32 {
            for v in 4..8u32 {
                edges.push((u, v));
            }
        }
        // Extra edges keeping weights at 12 but in-degrees of v6, v7 low:
        // u2 -> v6, u4 -> v6, u3 -> v7, u4 -> v7.
        // To match the figure's degrees: u2 and u3 get out-degree 6? The
        // figure is partially specified; we approximate its structure with
        // u4 -> {v6, v7} plus u2 -> v6... see test body for what we assert.
        edges.push((3, 9));
        edges.push((3, 10));
        graph(11, &edges)
    }

    #[test]
    fn figure_4_like_graph_finds_4_3_core() {
        let g = figure_4_graph();
        let r = pwc(&g);
        assert_eq!(r.w_star, 12);
        assert_eq!(r.cn_pair.0 * r.cn_pair.1, 12);
        // The [x*, y*]-core must contain the 3x4 block.
        assert!(r.result.s.iter().filter(|&&u| u < 3).count() == 3);
        assert!((4..8).all(|v| r.result.t.contains(&v)));
    }

    #[test]
    fn pair_product_matches_pxy_and_theorem_2_when_fast_path() {
        for seed in 0..8 {
            let g = dsd_graph::gen::erdos_renyi_directed(50, 300, seed + 700);
            if g.num_edges() == 0 {
                continue;
            }
            let w = pwc(&g);
            let p = pxy(&g);
            // The derived pair always has the true maximum product x*.y*.
            assert_eq!(
                w.cn_pair.0 as u64 * w.cn_pair.1 as u64,
                p.cn_pair.0 as u64 * p.cn_pair.1 as u64,
                "seed {seed}: product mismatch"
            );
            // When the paper's fast path succeeds, Theorem 2 holds.
            if !w.used_fallback {
                assert_eq!(w.w_star, w.cn_pair.0 as u64 * w.cn_pair.1 as u64, "seed {seed}");
            }
        }
    }

    #[test]
    fn theorem_2_on_power_law_graphs() {
        for seed in 0..3 {
            let g = dsd_graph::gen::chung_lu_directed(300, 1800, 2.5, 2.2, seed + 40);
            let w = pwc(&g);
            let p = pxy(&g);
            assert!(!w.used_fallback, "fallback fired on a power-law graph");
            assert_eq!(w.w_star, p.cn_pair.0 as u64 * p.cn_pair.1 as u64, "seed {seed}");
        }
    }

    /// The Theorem-2 erratum counterexample from the module docs: w* = 12
    /// while the true maximum cn-pair product is 10. PWC must fall back
    /// and still return a correct maximum-product core.
    #[test]
    fn theorem_2_counterexample_triggers_fallback() {
        // Vertices: s1=0, s2=1 (out-degree 6); p1..p5 = 2..6 (in-degree 2);
        // t1=7, t2=8 (in-degree 6); q1..q5 = 9..13 (out-degree 2).
        let mut b = DirectedGraphBuilder::new(14);
        for s in 0..2u32 {
            for p in 2..7u32 {
                b.push_edge(s, p); // 5 edges to the p's
            }
        }
        b.push_edge(0, 7); // s1 -> t1
        b.push_edge(1, 8); // s2 -> t2
        for q in 9..14u32 {
            b.push_edge(q, 7);
            b.push_edge(q, 8);
        }
        let g = b.build().unwrap();
        // Sanity: degrees are as designed.
        assert_eq!(g.out_degree(0), 6);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.in_degree(7), 6);
        assert_eq!(g.out_degree(9), 2);
        // Every edge weight is >= 12, so the whole graph is 12-induced.
        let decomp = crate::dds::winduced::w_decomposition(&g);
        assert_eq!(decomp.w_star, 12, "w* should be 12");
        // But the best cn-pair product is 10 ([5,2] / [2,5]).
        let p = pxy(&g);
        assert_eq!(p.cn_pair.0 * p.cn_pair.1, 10, "x*.y* should be 10");
        // PWC must detect the mismatch, fall back, and agree with PXY.
        let w = pwc(&g);
        assert!(w.used_fallback, "fallback should fire on the counterexample");
        assert_eq!(w.cn_pair.0 * w.cn_pair.1, 10);
        assert!((w.result.density - p.result.density).abs() < 1e-9);
    }

    #[test]
    fn two_approximation_vs_exact() {
        for seed in 0..5 {
            let g = dsd_graph::gen::erdos_renyi_directed(30, 150, seed + 900);
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dsd_flow::dds_exact(&g);
            let r = pwc(&g);
            assert!(
                r.result.density * 2.0 + 1e-9 >= exact.density,
                "seed {seed}: pwc {} vs exact {}",
                r.result.density,
                exact.density
            );
        }
    }

    #[test]
    fn density_at_least_sqrt_of_pair_product() {
        let g = dsd_graph::gen::chung_lu_directed(400, 3000, 2.4, 2.1, 55);
        let r = pwc(&g);
        let product = (r.cn_pair.0 as f64) * (r.cn_pair.1 as f64);
        assert!(
            r.result.density + 1e-9 >= product.sqrt(),
            "density {} below sqrt(x*.y*) {}",
            r.result.density,
            product.sqrt()
        );
    }

    #[test]
    fn core_degree_constraints_hold() {
        let g = dsd_graph::gen::erdos_renyi_directed(80, 600, 31);
        let r = pwc(&g);
        let (x, y) = r.cn_pair;
        let mut in_t = vec![false; g.num_vertices()];
        for &v in &r.result.t {
            in_t[v as usize] = true;
        }
        let mut in_s = vec![false; g.num_vertices()];
        for &v in &r.result.s {
            in_s[v as usize] = true;
        }
        for &u in &r.result.s {
            let d = g.out_neighbors(u).iter().filter(|&&v| in_t[v as usize]).count();
            assert!(d >= x as usize);
        }
        for &v in &r.result.t {
            let d = g.in_neighbors(v).iter().filter(|&&u| in_s[u as usize]).count();
            assert!(d >= y as usize);
        }
    }

    #[test]
    fn block_graph() {
        let mut b = DirectedGraphBuilder::new(7);
        for u in 0..3u32 {
            for t in 3..7u32 {
                b.push_edge(u, t);
            }
        }
        let g = b.build().unwrap();
        let r = pwc(&g);
        assert_eq!(r.w_star, 12);
        assert_eq!(r.cn_pair, (4, 3));
        assert_eq!(r.result.s, vec![0, 1, 2]);
        assert_eq!(r.result.t, vec![3, 4, 5, 6]);
    }

    #[test]
    fn empty_graph() {
        let g = graph(3, &[]);
        let r = pwc(&g);
        assert_eq!(r.result.density, 0.0);
        assert_eq!(r.w_star, 0);
    }

    #[test]
    fn divisor_pairs_match_exhaustive_enumeration() {
        // The seed's O(w*) filter is the specification; the sqrt
        // enumeration must reproduce it exactly, order included.
        for w in (0u64..=240).chain([997, 1024, 30030]) {
            let exhaustive: Vec<(u32, u32)> =
                (1..=w).filter(|x| w % x == 0).map(|x| (x as u32, (w / x) as u32)).collect();
            assert_eq!(divisor_pairs(w), exhaustive, "w = {w}");
        }
    }

    #[test]
    fn divisor_pairs_large_prime_is_cheap_and_tiny() {
        // 4_294_967_291 is prime (the largest below 2^32). The seed would
        // have trial-divided ~4.3e9 candidates; the sqrt enumeration does
        // ~65k and must find exactly the trivial factorisations.
        let p: u64 = 4_294_967_291;
        assert_eq!(divisor_pairs(p), vec![(1, p as u32), (p as u32, 1)]);
    }

    #[test]
    fn divisor_pairs_drop_factors_beyond_u32() {
        // 2^33 = 2 * 2^32: the pair (1, 2^33) has an unrepresentable
        // second component and must be dropped, while (2^33, 1) has an
        // unrepresentable first component and must be dropped too.
        let w = 1u64 << 33;
        let pairs = divisor_pairs(w);
        assert!(pairs.iter().all(|&(x, y)| x as u64 * y as u64 == w));
        assert!(!pairs.iter().any(|&(x, _)| x == 1));
        assert!(!pairs.iter().any(|&(_, y)| y == 1));
        // A perfect square emits its (√w, √w) pair exactly once.
        assert_eq!(divisor_pairs(49), vec![(1, 49), (7, 7), (49, 1)]);
    }

    #[test]
    fn workspace_variant_matches() {
        let mut ws = PeelWorkspace::new();
        for seed in 0..4 {
            let g = dsd_graph::gen::erdos_renyi_directed(60, 400, seed + 321);
            let a = pwc(&g);
            let b = pwc_in(&g, &mut ws);
            assert_eq!(a.result.s, b.result.s, "seed {seed}");
            assert_eq!(a.result.t, b.result.t, "seed {seed}");
            assert_eq!(a.cn_pair, b.cn_pair, "seed {seed}");
            assert_eq!(a.w_star, b.w_star, "seed {seed}");
        }
    }

    #[test]
    fn deterministic() {
        let g = dsd_graph::gen::chung_lu_directed(200, 1500, 2.3, 2.3, 99);
        let a = pwc(&g);
        let b = pwc(&g);
        assert_eq!(a.result.s, b.result.s);
        assert_eq!(a.result.t, b.result.t);
        assert_eq!(a.cn_pair, b.cn_pair);
    }
}
