//! DDS-side hook of the iterative near-optimal engine: directed Greedy++.
//!
//! The directed analogue of `uds::iterate`'s Greedy++: repeated
//! load-augmented fixed-ratio peels. A peel at ratio `c` removes, per
//! step, the minimum `load + degree` vertex from whichever side is
//! oversized (Charikar's directed rule), and charges the removed vertex
//! the edges its removal kills — so, per round, every surviving edge is
//! charged to exactly one endpoint role, mirroring the undirected load
//! update. The first round sweeps a geometric ratio grid to locate the
//! incumbent's ratio; later rounds re-peel at the incumbent's own
//! `|S|/|T|` with accumulated loads, and the best `(S, T)` seen is
//! monotone across rounds.
//!
//! The undirected engine's load-vector dual bound has no directed
//! counterpart here (the DDS LP dual is ratio-coupled), so there is no
//! `(1+ε)` early stop: the hook runs its budget and can optionally hand
//! the incumbent to the exact oracle ([`dsd_flow::dds_exact_seeded`]) as
//! a warm start — the incumbent's density prunes whole size ratios with
//! a single flow each.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dsd_graph::{DirectedGraph, VertexId};
use dsd_telemetry::{self as telemetry, Counter, Phase, RoundSample};

use crate::dds::ratio_peel::geometric_ratios;
use crate::dds::DdsResult;
use crate::density::st_edges_and_density;
use crate::stats::{timed, Stats};

/// Configuration for [`greedy_pp_dds`].
#[derive(Clone, Copy, Debug)]
pub struct DdsIterateConfig {
    /// Number of load-augmented rounds (default 20).
    pub iterations: usize,
    /// Hand the final incumbent to the exact oracle and return the exact
    /// optimum (practical only on small graphs — the oracle enumerates
    /// `O(n²)` ratios).
    pub certify_exact: bool,
}

impl Default for DdsIterateConfig {
    fn default() -> Self {
        Self { iterations: 20, certify_exact: false }
    }
}

/// Result of the directed Greedy++ hook.
#[derive(Clone, Debug)]
pub struct DdsIterativeResult {
    /// The answer pair (best-so-far across rounds, or the exact optimum
    /// when certification ran).
    pub result: DdsResult,
    /// Rounds actually run.
    pub rounds: usize,
    /// Whether `result` is the flow-certified exact optimum.
    pub exact_certified: bool,
}

impl DdsIterativeResult {
    /// Certification label for CLI and trace output. The directed engine
    /// has no load-vector dual bound (the DDS LP dual is ratio-coupled),
    /// so a run that stops on its iteration budget reports
    /// `budget-exhausted` explicitly instead of silently implying the
    /// answer converged.
    pub fn certificate_label(&self) -> String {
        if self.exact_certified {
            "exact (flow-certified)".to_string()
        } else {
            format!("budget-exhausted ({} rounds, no dual bound available)", self.rounds)
        }
    }
}

/// Directed Greedy++: iterated load-augmented fixed-ratio peeling with an
/// optional exact-certification handshake.
pub fn greedy_pp_dds(g: &DirectedGraph, cfg: &DdsIterateConfig) -> DdsIterativeResult {
    let ((s, t, density, rounds, exact_certified), wall) = timed(|| run(g, cfg));
    let edges = st_edges_and_density(g, &s, &t).0;
    DdsIterativeResult {
        result: DdsResult {
            s,
            t,
            density,
            stats: Stats {
                iterations: rounds,
                wall,
                edges_result: Some(edges),
                ..Stats::default()
            },
        },
        rounds,
        exact_certified,
    }
}

#[allow(clippy::type_complexity)]
fn run(
    g: &DirectedGraph,
    cfg: &DdsIterateConfig,
) -> (Vec<VertexId>, Vec<VertexId>, f64, usize, bool) {
    let n = g.num_vertices();
    let m = g.num_edges();
    if n == 0 || m == 0 {
        return (Vec::new(), Vec::new(), 0.0, 0, false);
    }
    let mut s_loads = vec![0u64; n];
    let mut t_loads = vec![0u64; n];
    let mut best_s: Vec<VertexId> = Vec::new();
    let mut best_t: Vec<VertexId> = Vec::new();
    let mut best_density = 0.0f64;
    // Round 1: locate the incumbent ratio on a coarse geometric grid
    // (PBD-style O(log n) candidates), with the first peel accumulating
    // loads at ratio 1 so every round charges the loads exactly once.
    let log2n = (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize;
    let grid = geometric_ratios(n, 2 * log2n.max(1));
    let mut rounds = 0usize;
    for round in 1..=cfg.iterations.max(1) {
        let _peel = telemetry::span(Phase::IteratePeel);
        let ratio = if best_t.is_empty() { 1.0 } else { best_s.len() as f64 / best_t.len() as f64 };
        let r = peel_ratio_augmented(g, ratio, &mut s_loads, &mut t_loads);
        rounds = round;
        if r.2 > best_density {
            best_s = r.0;
            best_t = r.1;
            best_density = r.2;
        }
        if round == 1 {
            // Grid sweep without load charging: pure ratio scouting.
            for &c in &grid {
                let cand = crate::dds::ratio_peel::peel_fixed_ratio(g, c);
                if cand.density > best_density {
                    best_s = cand.s;
                    best_t = cand.t;
                    best_density = cand.density;
                }
            }
        }
        if telemetry::enabled() {
            telemetry::counter_add(Counter::LoadsUpdated, n as u64);
            telemetry::record_round(RoundSample {
                round: telemetry::rounds_recorded() as u32,
                frontier_len: n,
                edges_examined: 2 * m as u64,
                items_removed: n,
                alive_edges: Some(m),
                density: Some(best_density),
                dual_bound: None,
                phase_times: Vec::new(),
            });
        }
    }
    if cfg.certify_exact {
        let _certify = telemetry::span(Phase::IterateCertify);
        let exact = dsd_flow::dds_exact_seeded(g, Some((&best_s, &best_t)));
        return (exact.s, exact.t, exact.density, rounds, true);
    }
    (best_s, best_t, best_density, rounds, false)
}

/// One load-augmented peel at ratio `c`: like
/// [`crate::dds::ratio_peel::peel_fixed_ratio`], but ordered by
/// `load + degree` per side, charging each removed vertex the edges its
/// removal kills.
#[allow(clippy::type_complexity)]
fn peel_ratio_augmented(
    g: &DirectedGraph,
    c: f64,
    s_loads: &mut [u64],
    t_loads: &mut [u64],
) -> (Vec<VertexId>, Vec<VertexId>, f64) {
    let n = g.num_vertices();
    let mut out_deg = g.out_degrees();
    let mut in_deg = g.in_degrees();
    let mut in_s: Vec<bool> = out_deg.iter().map(|&d| d > 0).collect();
    let mut in_t: Vec<bool> = in_deg.iter().map(|&d| d > 0).collect();
    let mut s_size = in_s.iter().filter(|&&b| b).count();
    let mut t_size = in_t.iter().filter(|&&b| b).count();
    let mut edges = g.num_edges();
    let s_key = |v: usize, d: u32, loads: &[u64]| loads[v] + d as u64;
    let mut s_heap: BinaryHeap<Reverse<(u64, VertexId)>> = (0..n as VertexId)
        .filter(|&v| in_s[v as usize])
        .map(|v| Reverse((s_key(v as usize, out_deg[v as usize], s_loads), v)))
        .collect();
    let mut t_heap: BinaryHeap<Reverse<(u64, VertexId)>> = (0..n as VertexId)
        .filter(|&v| in_t[v as usize])
        .map(|v| Reverse((s_key(v as usize, in_deg[v as usize], t_loads), v)))
        .collect();

    let mut log: Vec<(VertexId, bool)> = Vec::with_capacity(s_size + t_size);
    let mut best_density = 0.0f64;
    let mut best_step = 0usize;
    let initial_s = in_s.clone();
    let initial_t = in_t.clone();

    while s_size > 0 && t_size > 0 && edges > 0 {
        let density = edges as f64 / ((s_size as f64) * (t_size as f64)).sqrt();
        if density > best_density {
            best_density = density;
            best_step = log.len();
        }
        if (s_size as f64) >= c * (t_size as f64) {
            let u = loop {
                let Reverse((k, u)) = s_heap.pop().expect("s_size > 0 implies heap entry");
                if in_s[u as usize] && s_key(u as usize, out_deg[u as usize], s_loads) == k {
                    break u;
                }
            };
            in_s[u as usize] = false;
            s_size -= 1;
            log.push((u, true));
            let mut killed = 0u64;
            for &v in g.out_neighbors(u) {
                if in_t[v as usize] {
                    edges -= 1;
                    killed += 1;
                    in_deg[v as usize] -= 1;
                    t_heap.push(Reverse((s_key(v as usize, in_deg[v as usize], t_loads), v)));
                }
            }
            s_loads[u as usize] += killed;
        } else {
            let v = loop {
                let Reverse((k, v)) = t_heap.pop().expect("t_size > 0 implies heap entry");
                if in_t[v as usize] && s_key(v as usize, in_deg[v as usize], t_loads) == k {
                    break v;
                }
            };
            in_t[v as usize] = false;
            t_size -= 1;
            log.push((v, false));
            let mut killed = 0u64;
            for &u in g.in_neighbors(v) {
                if in_s[u as usize] {
                    edges -= 1;
                    killed += 1;
                    out_deg[u as usize] -= 1;
                    s_heap.push(Reverse((s_key(u as usize, out_deg[u as usize], s_loads), u)));
                }
            }
            t_loads[v as usize] += killed;
        }
    }

    let mut s_mask = initial_s;
    let mut t_mask = initial_t;
    for &(v, source_side) in &log[..best_step] {
        if source_side {
            s_mask[v as usize] = false;
        } else {
            t_mask[v as usize] = false;
        }
    }
    let s: Vec<VertexId> = (0..n as VertexId).filter(|&v| s_mask[v as usize]).collect();
    let t: Vec<VertexId> = (0..n as VertexId).filter(|&v| t_mask[v as usize]).collect();
    (s, t, best_density)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::directed_density;

    #[test]
    fn never_worse_than_pfks_family_on_planted_block() {
        let g = dsd_graph::gen::planted_st_block(200, 350, 12, 8, 1.0, 33);
        let r = greedy_pp_dds(&g, &DdsIterateConfig::default());
        // Planted block density: 96 / sqrt(96) ≈ 9.8.
        assert!(r.result.density >= 6.0, "density {}", r.result.density);
        assert_eq!(r.rounds, 20);
        assert!(!r.exact_certified);
        // A budget-bounded run must say so — not imply convergence.
        assert_eq!(r.certificate_label(), "budget-exhausted (20 rounds, no dual bound available)");
    }

    #[test]
    fn reported_density_matches_sets() {
        let g = dsd_graph::gen::chung_lu_directed(150, 900, 2.4, 2.3, 19);
        let r = greedy_pp_dds(&g, &DdsIterateConfig { iterations: 8, certify_exact: false });
        let actual = directed_density(&g, &r.result.s, &r.result.t);
        assert!((actual - r.result.density).abs() < 1e-9);
    }

    #[test]
    fn exact_certification_reaches_optimum() {
        for seed in 0..3 {
            let g = dsd_graph::gen::erdos_renyi_directed(18, 70, seed + 40);
            if g.num_edges() == 0 {
                continue;
            }
            let exact = dsd_flow::dds_exact(&g);
            let r = greedy_pp_dds(&g, &DdsIterateConfig { iterations: 5, certify_exact: true });
            assert!((r.result.density - exact.density).abs() < 1e-9);
            assert!(r.exact_certified);
        }
    }

    #[test]
    fn more_rounds_never_decrease_density() {
        let g = dsd_graph::gen::chung_lu_directed(120, 700, 2.5, 2.2, 9);
        let short = greedy_pp_dds(&g, &DdsIterateConfig { iterations: 2, certify_exact: false });
        let long = greedy_pp_dds(&g, &DdsIterateConfig { iterations: 15, certify_exact: false });
        assert!(long.result.density + 1e-12 >= short.result.density);
    }

    #[test]
    fn empty_graph() {
        let g = dsd_graph::DirectedGraphBuilder::new(4).build().unwrap();
        let r = greedy_pp_dds(&g, &DdsIterateConfig::default());
        assert_eq!(r.result.density, 0.0);
        assert_eq!(r.rounds, 0);
    }
}
