//! `[x, y]`-core computation (Definition 7, from Ma et al. \[7\]).
//!
//! An `[x, y]`-core is the maximal `(S, T)`-induced subgraph in which every
//! `S`-vertex has out-degree ≥ `x` (counting only edges into `T`) and every
//! `T`-vertex has in-degree ≥ `y` (counting only edges from `S`). A vertex
//! may belong to both sides. Computed by cascading removals, exactly like
//! `k`-core peeling with two interleaved constraints.
//!
//! [`xy_core`] peels in parallel with the same vertex-frontier pattern as
//! the w-induced peeling engine (`crate::dds::peel`): each round removes
//! the current violating set and collects the vertices whose constraint
//! newly broke; the `[x, y]`-core is unique (the closure of forced
//! removals is schedule-independent), so the result is deterministic at
//! any rayon pool size and identical to [`xy_core_serial`].

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use dsd_graph::{DirectedGraph, VertexId};
use rayon::prelude::*;

use crate::dds::peel::{bit_test, claim_clear};
use crate::uds::bucket::BucketQueue;

/// The two (possibly overlapping) vertex sets of an `[x, y]`-core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XyCore {
    /// Source side `S` (sorted ids).
    pub s: Vec<VertexId>,
    /// Target side `T` (sorted ids).
    pub t: Vec<VertexId>,
}

/// Computes the `[x, y]`-core of `g`, or `None` if it is empty.
///
/// Parallel frontier peeling: the frontier holds `(vertex, side)` removals;
/// a round claims each (side-membership bitmaps dedup racy claims),
/// decrements the opposite-side degrees atomically, and enqueues a
/// neighbour exactly when its degree crosses its constraint (the
/// `fetch_sub` that observed the old value `== x` / `== y` wins the
/// enqueue, so no vertex enters a frontier twice per crossing).
///
/// # Panics
///
/// Panics if `x` or `y` is zero (cores are defined for positive
/// constraints).
pub fn xy_core(g: &DirectedGraph, x: u32, y: u32) -> Option<XyCore> {
    assert!(x >= 1 && y >= 1, "core constraints must be positive");
    let n = g.num_vertices();
    let out_deg: Vec<AtomicU32> = g.out_degrees().into_iter().map(AtomicU32::new).collect();
    let in_deg: Vec<AtomicU32> = g.in_degrees().into_iter().map(AtomicU32::new).collect();
    let words = n.div_ceil(64);
    let in_s: Vec<AtomicU64> = (0..words).map(|_| AtomicU64::new(u64::MAX)).collect();
    let in_t: Vec<AtomicU64> = (0..words).map(|_| AtomicU64::new(u64::MAX)).collect();
    let mut frontier: Vec<(VertexId, bool)> = (0..n)
        .flat_map(|v| {
            let below_x = (out_deg[v].load(Ordering::Relaxed) < x).then_some((v as VertexId, true));
            let below_y = (in_deg[v].load(Ordering::Relaxed) < y).then_some((v as VertexId, false));
            below_x.into_iter().chain(below_y)
        })
        .collect();
    while !frontier.is_empty() {
        frontier = frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &(v, source_side)| {
                let vi = v as usize;
                if source_side {
                    if claim_clear(&in_s, vi) {
                        for &u in g.out_neighbors(v) {
                            let ui = u as usize;
                            if bit_test(&in_t, ui)
                                && in_deg[ui].fetch_sub(1, Ordering::Relaxed) == y
                            {
                                acc.push((u, false));
                            }
                        }
                    }
                } else if claim_clear(&in_t, vi) {
                    for &u in g.in_neighbors(v) {
                        let ui = u as usize;
                        if bit_test(&in_s, ui) && out_deg[ui].fetch_sub(1, Ordering::Relaxed) == x {
                            acc.push((u, true));
                        }
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
    }
    let s: Vec<VertexId> = (0..n as VertexId).filter(|&v| bit_test(&in_s, v as usize)).collect();
    let t: Vec<VertexId> = (0..n as VertexId).filter(|&v| bit_test(&in_t, v as usize)).collect();
    if s.is_empty() || t.is_empty() {
        None
    } else {
        Some(XyCore { s, t })
    }
}

/// The seed's serial work-queue `[x, y]`-core peeling, kept as the parity
/// reference for [`xy_core`] (the core is unique, so both must agree
/// exactly).
pub fn xy_core_serial(g: &DirectedGraph, x: u32, y: u32) -> Option<XyCore> {
    assert!(x >= 1 && y >= 1, "core constraints must be positive");
    let n = g.num_vertices();
    let mut out_deg = g.out_degrees();
    let mut in_deg = g.in_degrees();
    let mut in_s = vec![true; n];
    let mut in_t = vec![true; n];
    // Work queue of (vertex, is_source_side) pending removals.
    let mut queue: Vec<(VertexId, bool)> = Vec::new();
    for v in 0..n {
        if out_deg[v] < x {
            queue.push((v as VertexId, true));
        }
        if in_deg[v] < y {
            queue.push((v as VertexId, false));
        }
    }
    while let Some((v, source_side)) = queue.pop() {
        let vi = v as usize;
        if source_side {
            if !in_s[vi] {
                continue;
            }
            in_s[vi] = false;
            for &u in g.out_neighbors(v) {
                let ui = u as usize;
                if in_t[ui] {
                    in_deg[ui] -= 1;
                    if in_deg[ui] < y {
                        queue.push((u, false));
                    }
                }
            }
        } else {
            if !in_t[vi] {
                continue;
            }
            in_t[vi] = false;
            for &u in g.in_neighbors(v) {
                let ui = u as usize;
                if in_s[ui] {
                    out_deg[ui] -= 1;
                    if out_deg[ui] < x {
                        queue.push((u, true));
                    }
                }
            }
        }
    }
    let s: Vec<VertexId> = (0..n as VertexId).filter(|&v| in_s[v as usize]).collect();
    let t: Vec<VertexId> = (0..n as VertexId).filter(|&v| in_t[v as usize]).collect();
    if s.is_empty() || t.is_empty() {
        None
    } else {
        Some(XyCore { s, t })
    }
}

/// For a fixed out-degree constraint `x`, returns the largest `y` such that
/// the `[x, y]`-core is non-empty (`None` if even the `[x, 1]`-core is
/// empty). One arm of the PXY cn-pair enumeration (Section V-A).
///
/// Runs a `T`-side min-in-degree peeling (a `k`-core decomposition on the
/// in-degree) while cascading the `S`-side `x`-constraint, and records the
/// highest in-degree level at which both sides were still populated.
pub fn max_y_for_x(g: &DirectedGraph, x: u32) -> Option<u32> {
    assert!(x >= 1, "core constraint must be positive");
    let n = g.num_vertices();
    let mut out_deg = g.out_degrees();
    let mut in_s = vec![true; n];
    let mut s_size = n;
    // Enforce the x-constraint before any T-removal.
    let mut s_queue: Vec<VertexId> =
        (0..n as VertexId).filter(|&v| out_deg[v as usize] < x).collect();
    let mut in_t = vec![true; n];
    // T-side peeling via the bucket queue on in-degree (the queue owns the
    // live in-degree of every still-alive T vertex).
    let mut t_queue = BucketQueue::new(&g.in_degrees());
    // Process pending S removals against the T bucket keys.
    let drain_s = |s_queue: &mut Vec<VertexId>,
                   in_s: &mut [bool],
                   in_t: &[bool],
                   t_queue: &mut BucketQueue,
                   s_size: &mut usize| {
        while let Some(u) = s_queue.pop() {
            let ui = u as usize;
            if !in_s[ui] {
                continue;
            }
            in_s[ui] = false;
            *s_size -= 1;
            for &v in g.out_neighbors(u) {
                let vi = v as usize;
                if in_t[vi] && !t_queue.is_extracted(v) {
                    t_queue.decrease_key(v);
                }
            }
        }
    };
    drain_s(&mut s_queue, &mut in_s, &in_t, &mut t_queue, &mut s_size);

    let mut best: Option<u32> = None;
    let mut level = 0u32;
    while let Some((v, key)) = t_queue.pop_min() {
        level = level.max(key);
        // Before removing v: every alive T vertex has in-degree >= level and
        // every alive S vertex has out-degree >= x, so a non-empty
        // [x, level]-core exists.
        if level >= 1 && s_size > 0 {
            best = Some(best.map_or(level, |b| b.max(level)));
        }
        let vi = v as usize;
        if !in_t[vi] {
            continue;
        }
        in_t[vi] = false;
        for &u in g.in_neighbors(v) {
            let ui = u as usize;
            if in_s[ui] {
                out_deg[ui] -= 1;
                if out_deg[ui] < x {
                    s_queue.push(u);
                }
            }
        }
        drain_s(&mut s_queue, &mut in_s, &in_t, &mut t_queue, &mut s_size);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::DirectedGraphBuilder;

    fn graph(n: usize, edges: &[(u32, u32)]) -> DirectedGraph {
        DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    }

    /// Full bipartite-ish block: 3 sources each pointing at 4 targets.
    fn block_3x4() -> DirectedGraph {
        let mut edges = Vec::new();
        for u in 0..3u32 {
            for t in 3..7u32 {
                edges.push((u, t));
            }
        }
        graph(7, &edges)
    }

    #[test]
    fn full_block_is_4_3_core() {
        let g = block_3x4();
        let core = xy_core(&g, 4, 3).expect("core exists");
        assert_eq!(core.s, vec![0, 1, 2]);
        assert_eq!(core.t, vec![3, 4, 5, 6]);
        assert!(xy_core(&g, 5, 3).is_none());
        assert!(xy_core(&g, 4, 4).is_none());
    }

    #[test]
    fn degrees_satisfied_within_core() {
        let g = dsd_graph::gen::erdos_renyi_directed(80, 600, 5);
        let (x, y) = (3, 3);
        if let Some(core) = xy_core(&g, x, y) {
            let mut in_t = vec![false; g.num_vertices()];
            for &v in &core.t {
                in_t[v as usize] = true;
            }
            let mut in_s = vec![false; g.num_vertices()];
            for &v in &core.s {
                in_s[v as usize] = true;
            }
            for &u in &core.s {
                let d = g.out_neighbors(u).iter().filter(|&&v| in_t[v as usize]).count();
                assert!(d >= x as usize, "S vertex {u} out-degree {d}");
            }
            for &v in &core.t {
                let d = g.in_neighbors(v).iter().filter(|&&u| in_s[u as usize]).count();
                assert!(d >= y as usize, "T vertex {v} in-degree {d}");
            }
        }
    }

    #[test]
    fn core_is_maximal() {
        // Any vertex outside the core cannot be added while satisfying the
        // constraints: verify by attempting naive addition.
        let g = dsd_graph::gen::erdos_renyi_directed(40, 250, 8);
        if let Some(core) = xy_core(&g, 2, 2) {
            let mut in_t = vec![false; g.num_vertices()];
            for &v in &core.t {
                in_t[v as usize] = true;
            }
            // Every non-S vertex must have < 2 out-edges into T... not
            // necessarily in one step (cascades), but peeling-based cores
            // are maximal by construction; here we check the one-step
            // variant for vertices whose removal was forced directly.
            let s_set: std::collections::HashSet<u32> = core.s.iter().copied().collect();
            let mut addable = 0;
            for v in 0..g.num_vertices() as u32 {
                if !s_set.contains(&v) {
                    let d = g.out_neighbors(v).iter().filter(|&&u| in_t[u as usize]).count();
                    if d >= 2 {
                        addable += 1;
                    }
                }
            }
            assert_eq!(addable, 0, "found directly addable S vertices");
        }
    }

    #[test]
    fn max_y_for_x_on_block() {
        let g = block_3x4();
        assert_eq!(max_y_for_x(&g, 1), Some(3));
        assert_eq!(max_y_for_x(&g, 4), Some(3));
        assert_eq!(max_y_for_x(&g, 5), None);
    }

    #[test]
    fn max_y_for_x_matches_linear_scan() {
        let g = dsd_graph::gen::erdos_renyi_directed(50, 350, 12);
        for x in 1..=6u32 {
            let fast = max_y_for_x(&g, x);
            // Reference: try y = 1, 2, ... with the plain core routine.
            let mut reference = None;
            for y in 1..=60u32 {
                if xy_core(&g, x, y).is_some() {
                    reference = Some(y);
                } else {
                    break;
                }
            }
            assert_eq!(fast, reference, "x = {x}");
        }
    }

    #[test]
    fn parallel_core_matches_serial_reference() {
        for seed in 0..6 {
            let g = dsd_graph::gen::erdos_renyi_directed(70, 500, seed + 1300);
            for (x, y) in [(1, 1), (2, 3), (3, 2), (4, 4), (7, 1)] {
                assert_eq!(
                    xy_core(&g, x, y),
                    xy_core_serial(&g, x, y),
                    "seed {seed}, x {x}, y {y}"
                );
            }
        }
    }

    #[test]
    fn empty_graph_has_no_core() {
        let g = graph(4, &[]);
        assert!(xy_core(&g, 1, 1).is_none());
        assert!(max_y_for_x(&g, 1).is_none());
    }

    #[test]
    fn self_overlapping_core_on_cycle() {
        // Directed cycle: [1,1]-core is the whole cycle with S = T = V.
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let core = xy_core(&g, 1, 1).unwrap();
        assert_eq!(core.s, vec![0, 1, 2, 3]);
        assert_eq!(core.t, vec![0, 1, 2, 3]);
        assert!(xy_core(&g, 1, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_constraint_rejected() {
        let g = graph(2, &[(0, 1)]);
        xy_core(&g, 0, 1);
    }
}
