//! Snapshot payloads and query evaluation.
//!
//! A [`GraphSnapshot`] is one immutable graph version plus everything the
//! paper's theorems make cheap to precompute once and reuse per query:
//! the k*-core vector / w-induced certificate, degree arrays, and the
//! densest-subgraph answer itself (PKMC / PWC run once at install time).
//! `densest` and `core` queries are pure certificate lookups — no
//! decomposition kernel runs — which is what the `serve_cache_hits`
//! counter measures.
//!
//! Every evaluator returns a complete JSON response payload (already
//! carrying `"ok"` and `"version"`), or the canonical error string for
//! the failure. Densities are serialised with the shortest round-trip
//! `f64` form, so a client that parses the JSON recovers bit-identical
//! values to the in-process engines — the parity the snapshot suite pins
//! against one-shot CLI runs.

use dsd_core::dds::iterate::{greedy_pp_dds, DdsIterateConfig};
use dsd_core::density::{set_edges_and_density, st_edges_and_density};
use dsd_core::dynamic::DynamicState;
use dsd_core::seeded::{top_dense_neighborhoods, top_dense_out_neighborhoods};
use dsd_core::uds::iterate::{greedy_pp_warm_storage, Certificate, CertifyMode, IterateConfig};
use dsd_graph::compress::UndirectedStorage;
use dsd_graph::{DirectedGraph, GraphError, UndirectedGraph, VertexId};
use dsd_telemetry::json;

use crate::protocol::push_vertex_array;

/// One immutable published graph version.
pub struct GraphSnapshot {
    /// Monotone version number; 1 is the initial load.
    pub version: u64,
    /// The graph and its precomputed certificates.
    pub data: SnapshotData,
}

/// Family-specific snapshot payload.
pub enum SnapshotData {
    /// Undirected: k*-core certificate + PKMC answer.
    Undirected(UndirectedSnapshot),
    /// Directed: w-induced certificate + PWC answer.
    Directed(DirectedSnapshot),
}

/// Undirected snapshot: graph, core vector, degree array, PKMC answer.
pub struct UndirectedSnapshot {
    pub graph: UndirectedGraph,
    /// Core number per vertex (the k*-core certificate).
    pub core: Vec<u32>,
    pub k_star: u32,
    pub degrees: Vec<u32>,
    /// Precomputed densest subgraph (PKMC), sorted vertex ids.
    pub densest_vertices: Vec<VertexId>,
    pub densest_density: f64,
}

/// Directed snapshot: graph, induce-numbers, degree arrays, PWC answer.
pub struct DirectedSnapshot {
    pub graph: DirectedGraph,
    /// Induce-number per edge in CSR out-slot order.
    pub induce: Vec<u64>,
    /// Max induce-number among each vertex's incident edges (0 if
    /// isolated) — the per-vertex membership view of the certificate.
    pub vertex_induce_max: Vec<u64>,
    pub w_star: u64,
    pub out_degrees: Vec<u32>,
    pub in_degrees: Vec<u32>,
    /// Precomputed densest `(S, T)` pair (PWC), sorted vertex ids.
    pub densest_s: Vec<VertexId>,
    pub densest_t: Vec<VertexId>,
    pub densest_density: f64,
}

/// Canonical error for a `vertices`-form density/core query against a
/// directed snapshot.
pub fn directed_needs_st_error() -> String {
    "graph is directed; use fields \"s\" and \"t\"".to_string()
}

/// Canonical error for an `s`/`t`-form query against an undirected
/// snapshot.
pub fn undirected_needs_vertices_error() -> String {
    "graph is undirected; use field \"vertices\"".to_string()
}

/// Canonical error for a vertex id outside the snapshot's range — exactly
/// the [`GraphError::VertexOutOfRange`] display text, so wire errors match
/// library errors byte-for-byte.
pub fn vertex_range_error(vertex: VertexId, n: usize) -> String {
    GraphError::VertexOutOfRange { vertex: vertex as u64, n: n as u64 }.to_string()
}

/// Builds the snapshot for the dynamic state's current graph version:
/// clones the graph, copies the maintained certificate, and runs the
/// densest-subgraph engine (PKMC / PWC) once. Deterministic at any
/// thread-pool size, so serve answers stay bit-identical to one-shot runs.
pub fn build_snapshot(state: &DynamicState, version: u64) -> GraphSnapshot {
    let data = match state {
        DynamicState::Undirected(s) => {
            let graph = s.graph().clone();
            let r: dsd_core::uds::UdsResult = dsd_core::uds::pkmc::pkmc(&graph).into();
            let mut densest_vertices = r.vertices;
            densest_vertices.sort_unstable();
            SnapshotData::Undirected(UndirectedSnapshot {
                degrees: graph.degrees(),
                core: s.core_numbers().to_vec(),
                k_star: s.k_star(),
                densest_vertices,
                densest_density: r.density,
                graph,
            })
        }
        DynamicState::Directed(s) => {
            let graph = s.graph().clone();
            let r = dsd_core::dds::pwc::pwc(&graph).result;
            let induce = s.induce_numbers().to_vec();
            let mut vertex_induce_max = vec![0u64; graph.num_vertices()];
            for u in 0..graph.num_vertices() {
                let base = graph.out_offsets()[u];
                for (i, &v) in graph.out_neighbors(u as VertexId).iter().enumerate() {
                    let w = induce[base + i];
                    vertex_induce_max[u] = vertex_induce_max[u].max(w);
                    vertex_induce_max[v as usize] = vertex_induce_max[v as usize].max(w);
                }
            }
            let (mut densest_s, mut densest_t) = (r.s, r.t);
            densest_s.sort_unstable();
            densest_t.sort_unstable();
            SnapshotData::Directed(DirectedSnapshot {
                out_degrees: graph.out_degrees(),
                in_degrees: graph.in_degrees(),
                induce,
                vertex_induce_max,
                w_star: s.w_star(),
                densest_s,
                densest_t,
                densest_density: r.density,
                graph,
            })
        }
    };
    GraphSnapshot { version, data }
}

impl GraphSnapshot {
    fn num_vertices(&self) -> usize {
        match &self.data {
            SnapshotData::Undirected(s) => s.graph.num_vertices(),
            SnapshotData::Directed(s) => s.graph.num_vertices(),
        }
    }

    fn check_range(&self, vertices: &[VertexId]) -> Result<(), String> {
        let n = self.num_vertices();
        match vertices.iter().find(|&&v| v as usize >= n) {
            Some(&v) => Err(vertex_range_error(v, n)),
            None => Ok(()),
        }
    }

    fn head(&self) -> String {
        format!("{{\"ok\":true,\"version\":{}", self.version)
    }

    /// The precomputed densest subgraph — a pure certificate lookup.
    pub fn answer_densest(&self) -> String {
        let mut out = self.head();
        match &self.data {
            SnapshotData::Undirected(s) => {
                out.push_str(",\"density\":");
                json::write_f64(&mut out, s.densest_density);
                out.push(',');
                push_vertex_array(&mut out, "vertices", &s.densest_vertices);
            }
            SnapshotData::Directed(s) => {
                out.push_str(",\"density\":");
                json::write_f64(&mut out, s.densest_density);
                out.push(',');
                push_vertex_array(&mut out, "s", &s.densest_s);
                out.push(',');
                push_vertex_array(&mut out, "t", &s.densest_t);
            }
        }
        out.push('}');
        out
    }

    /// Exact density of an arbitrary vertex set (undirected snapshots).
    /// The set is sorted and deduplicated before evaluation.
    pub fn answer_density(&self, vertices: &[VertexId]) -> Result<String, String> {
        let SnapshotData::Undirected(s) = &self.data else {
            return Err(directed_needs_st_error());
        };
        self.check_range(vertices)?;
        let mut set = vertices.to_vec();
        set.sort_unstable();
        set.dedup();
        let (edges, density) = set_edges_and_density(&s.graph, &set);
        let mut out = self.head();
        out.push_str(&format!(",\"size\":{},\"edges\":{edges},\"density\":", set.len()));
        json::write_f64(&mut out, density);
        out.push('}');
        Ok(out)
    }

    /// Exact `(S, T)` density (directed snapshots). Sides are sorted and
    /// deduplicated before evaluation.
    pub fn answer_density_st(&self, s: &[VertexId], t: &[VertexId]) -> Result<String, String> {
        let SnapshotData::Directed(d) = &self.data else {
            return Err(undirected_needs_vertices_error());
        };
        self.check_range(s)?;
        self.check_range(t)?;
        let (mut s, mut t) = (s.to_vec(), t.to_vec());
        s.sort_unstable();
        s.dedup();
        t.sort_unstable();
        t.dedup();
        let (edges, density) = st_edges_and_density(&d.graph, &s, &t);
        let mut out = self.head();
        out.push_str(&format!(
            ",\"s_size\":{},\"t_size\":{},\"edges\":{edges},\"density\":",
            s.len(),
            t.len()
        ));
        json::write_f64(&mut out, density);
        out.push('}');
        Ok(out)
    }

    /// Core membership: per-vertex certificate values plus the global
    /// `k*` / `w*`. A pure lookup into the maintained decomposition.
    pub fn answer_core(&self, vertices: &[VertexId]) -> Result<String, String> {
        self.check_range(vertices)?;
        let mut out = self.head();
        match &self.data {
            SnapshotData::Undirected(s) => {
                out.push_str(&format!(",\"k_star\":{},\"cores\":[", s.k_star));
                for (i, &v) in vertices.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let c = s.core[v as usize];
                    out.push_str(&format!(
                        "{{\"vertex\":{v},\"core\":{c},\"degree\":{},\"in_kstar_core\":{}}}",
                        s.degrees[v as usize],
                        c == s.k_star && s.k_star > 0
                    ));
                }
            }
            SnapshotData::Directed(s) => {
                out.push_str(&format!(",\"w_star\":{},\"cores\":[", s.w_star));
                for (i, &v) in vertices.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let w = s.vertex_induce_max[v as usize];
                    out.push_str(&format!(
                        "{{\"vertex\":{v},\"induce_max\":{w},\"out_degree\":{},\"in_degree\":{},\"in_wstar_core\":{}}}",
                        s.out_degrees[v as usize],
                        s.in_degrees[v as usize],
                        w == s.w_star && s.w_star > 0
                    ));
                }
            }
        }
        out.push_str("]}");
        Ok(out)
    }

    /// Top-k dense neighbourhoods of a seed vertex.
    pub fn answer_neighborhood(&self, seed: VertexId, k: usize) -> Result<String, String> {
        self.check_range(&[seed])?;
        let hoods = match &self.data {
            SnapshotData::Undirected(s) => top_dense_neighborhoods(&s.graph, &s.core, seed, k),
            SnapshotData::Directed(s) => top_dense_out_neighborhoods(&s.graph, seed, k),
        };
        let mut out = self.head();
        out.push_str(&format!(",\"seed\":{seed},\"neighborhoods\":["));
        for (i, h) in hoods.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"edges\":{},\"density\":", h.edges));
            json::write_f64(&mut out, h.density);
            out.push(',');
            push_vertex_array(&mut out, "vertices", &h.vertices);
            out.push('}');
        }
        out.push_str("]}");
        Ok(out)
    }

    /// Per-query Greedy++ with the ε knob. `prior` is the warm-start load
    /// vector carried across snapshot versions (used only when its length
    /// matches the current vertex count). Returns the response payload
    /// plus the run's final loads for the server's warm cache (empty for
    /// directed snapshots — the directed engine keeps its loads
    /// internal).
    pub fn answer_greedypp(
        &self,
        iterations: usize,
        epsilon: f64,
        prior: Option<&[u64]>,
    ) -> Result<(String, Vec<u64>), String> {
        match &self.data {
            SnapshotData::Undirected(s) => {
                let cfg = IterateConfig { iterations, epsilon, certify: CertifyMode::Dual };
                let prior = prior.filter(|p| p.len() == s.graph.num_vertices());
                let storage = UndirectedStorage::Plain(&s.graph);
                let warm = prior.is_some();
                let it = greedy_pp_warm_storage(&storage, &cfg, prior);
                let mut vertices = it.result.vertices.clone();
                vertices.sort_unstable();
                let mut out = self.head();
                out.push_str(",\"density\":");
                json::write_f64(&mut out, it.result.density);
                out.push_str(&format!(",\"rounds\":{},\"upper_bound\":", it.rounds));
                json::write_f64(&mut out, it.upper_bound);
                let cert = match it.certificate {
                    Certificate::Uncertified => "uncertified",
                    Certificate::DualGap { .. } => "dual-gap",
                    Certificate::Exact { .. } => "exact",
                };
                out.push_str(&format!(",\"certificate\":\"{cert}\",\"warm\":{warm},"));
                push_vertex_array(&mut out, "vertices", &vertices);
                out.push('}');
                Ok((out, it.loads))
            }
            SnapshotData::Directed(s) => {
                let cfg = DdsIterateConfig { iterations, certify_exact: false };
                let it = greedy_pp_dds(&s.graph, &cfg);
                let (mut sv, mut tv) = (it.result.s.clone(), it.result.t.clone());
                sv.sort_unstable();
                tv.sort_unstable();
                let mut out = self.head();
                out.push_str(",\"density\":");
                json::write_f64(&mut out, it.result.density);
                out.push_str(&format!(",\"rounds\":{},\"certificate\":", it.rounds));
                json::write_string(&mut out, &it.certificate_label());
                out.push(',');
                push_vertex_array(&mut out, "s", &sv);
                out.push(',');
                push_vertex_array(&mut out, "t", &tv);
                out.push('}');
                Ok((out, Vec::new()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::gen::{erdos_renyi, erdos_renyi_directed};
    use dsd_telemetry::json::Value;

    fn undirected_snap() -> GraphSnapshot {
        let g = erdos_renyi(50, 200, 7);
        build_snapshot(&DynamicState::new_undirected(g), 1)
    }

    fn directed_snap() -> GraphSnapshot {
        let g = erdos_renyi_directed(40, 160, 7);
        build_snapshot(&DynamicState::new_directed(g), 1)
    }

    fn parse_ok(payload: &str) -> dsd_telemetry::json::Value {
        let v = json::parse(payload).expect("response is valid JSON");
        assert_eq!(v.as_object().unwrap().get("ok").unwrap().as_bool(), Some(true));
        v
    }

    #[test]
    fn densest_matches_direct_pkmc() {
        let g = erdos_renyi(50, 200, 7);
        let snap = undirected_snap();
        let v = parse_ok(&snap.answer_densest());
        let obj = v.as_object().unwrap();
        let r: dsd_core::uds::UdsResult = dsd_core::uds::pkmc::pkmc(&g).into();
        assert_eq!(obj.get("density").unwrap().as_f64().unwrap().to_bits(), r.density.to_bits());
        let got: Vec<u64> = obj
            .get("vertices")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        let mut want: Vec<u64> = r.vertices.iter().map(|&v| v as u64).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn density_handles_dups_and_range_errors() {
        let snap = undirected_snap();
        let ok = snap.answer_density(&[3, 1, 3, 2]).unwrap();
        let v = parse_ok(&ok);
        assert_eq!(v.as_object().unwrap().get("size").unwrap().as_u64(), Some(3));
        let err = snap.answer_density(&[1, 99]).unwrap_err();
        assert_eq!(err, vertex_range_error(99, 50));
        // Family mismatch uses the canonical strings.
        assert_eq!(
            snap.answer_density_st(&[0], &[1]).unwrap_err(),
            undirected_needs_vertices_error()
        );
        assert_eq!(directed_snap().answer_density(&[0]).unwrap_err(), directed_needs_st_error());
    }

    #[test]
    fn core_lookup_matches_certificate() {
        let g = erdos_renyi(50, 200, 7);
        let snap = undirected_snap();
        let d = dsd_core::uds::bz::bz_decomposition(&g);
        let v = parse_ok(&snap.answer_core(&[0, 7, 13]).unwrap());
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("k_star").unwrap().as_u64(), Some(d.k_star as u64));
        let cores = obj.get("cores").unwrap().as_array().unwrap();
        for (entry, &vid) in cores.iter().zip(&[0u32, 7, 13]) {
            let e = entry.as_object().unwrap();
            assert_eq!(e.get("core").unwrap().as_u64(), Some(d.core[vid as usize] as u64));
        }
    }

    #[test]
    fn directed_core_and_densest_answer() {
        let snap = directed_snap();
        let v = parse_ok(&snap.answer_core(&[0, 5]).unwrap());
        assert!(v.as_object().unwrap().get("w_star").unwrap().as_u64().unwrap() > 0);
        let v = parse_ok(&snap.answer_densest());
        let obj = v.as_object().unwrap();
        assert!(obj.get("s").unwrap().as_array().is_some());
        assert!(obj.get("t").unwrap().as_array().is_some());
    }

    #[test]
    fn greedypp_cold_matches_library_and_warm_reuses_loads() {
        let g = erdos_renyi(50, 200, 7);
        let snap = undirected_snap();
        let (payload, loads) = snap.answer_greedypp(20, 0.01, None).unwrap();
        let v = parse_ok(&payload);
        let cfg = IterateConfig { iterations: 20, epsilon: 0.01, certify: CertifyMode::Dual };
        let want = dsd_core::uds::iterate::greedy_pp(&g, &cfg);
        assert_eq!(
            v.as_object().unwrap().get("density").unwrap().as_f64().unwrap().to_bits(),
            want.result.density.to_bits()
        );
        assert_eq!(loads, want.loads);
        // Warm run accepts the prior and reports warm:true.
        let (payload, _) = snap.answer_greedypp(5, 0.01, Some(&loads)).unwrap();
        let v = parse_ok(&payload);
        assert_eq!(v.as_object().unwrap().get("warm").unwrap().as_bool(), Some(true));
        // Length-mismatched prior is ignored, not an error.
        let (payload, _) = snap.answer_greedypp(5, 0.01, Some(&loads[..10])).unwrap();
        let v = parse_ok(&payload);
        assert_eq!(v.as_object().unwrap().get("warm").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn neighborhood_answers_are_valid_json() {
        for snap in [undirected_snap(), directed_snap()] {
            let v = parse_ok(&snap.answer_neighborhood(0, 3).unwrap());
            let hoods = v.as_object().unwrap().get("neighborhoods").unwrap().as_array().unwrap();
            assert!(hoods.len() <= 3);
            let _: Vec<&Value> = hoods.iter().collect();
        }
    }
}
