//! `dsd-serve`: the long-running query daemon behind `dsd serve`.
//!
//! The one-shot CLI pays the full load + decomposition cost on every
//! invocation. This crate amortises it: load a graph once, precompute the
//! k\*-core (or \[x\*,y\*\]-core) certificates and the densest subgraph,
//! and answer queries over a tiny length-prefixed JSON protocol
//! ([`protocol`]) from whatever snapshot version is current.
//!
//! Layering, bottom up:
//!
//! * [`snapshot`] — an epoch-reclaimed pointer cell ([`SnapshotCell`]):
//!   wait-free reader pins, single-swap installs, deferred frees. The
//!   crate's only unsafe island.
//! * [`query`] — the immutable [`GraphSnapshot`] (graph + certificates +
//!   cached densest answer) and the pure evaluators for every query kind.
//!   Answers are bit-identical to the one-shot CLI engines at the same
//!   pool size.
//! * [`server`] — threads and sockets: worker accept loops, the single
//!   writer that applies [`DeltaBatch`](dsd_graph::DeltaBatch) updates
//!   through the same entry point as `dsd update` and installs fresh
//!   snapshot versions without blocking in-flight queries.
//!
//! The flight recorder (`dsd-telemetry`) doubles as the serving metrics
//! backbone: each query kind runs under its own `serve/*` phase span, so
//! per-kind latency histograms, query counters, and snapshot-install
//! stall times fall out of the standard `dsd-trace/v2` report, exposed
//! live via the `stats` op.

#![deny(unsafe_code)] // snapshot.rs opts back in as a scoped island

pub mod protocol;
pub mod query;
pub mod server;
pub mod snapshot;

pub use protocol::{read_frame, write_frame, Request, MAX_FRAME_BYTES};
pub use query::{build_snapshot, GraphSnapshot};
pub use server::{ServeConfig, Server};
pub use snapshot::{PinnedSnapshot, ReaderHandle, SnapshotCell};
