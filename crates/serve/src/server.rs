//! The daemon: listeners, worker threads, the writer thread, shutdown.
//!
//! Topology:
//!
//! * **Accept workers** (thread-per-core by default) share one listening
//!   socket; each accepted connection is served on its own thread, which
//!   owns a [`ReaderHandle`] into the snapshot cell, so queries pin a
//!   version wait-free and never block on the writer — and an idle
//!   keep-alive connection never starves the accept queue.
//! * **One writer thread** owns the [`DynamicState`]. `update` requests
//!   are forwarded to it over a channel; it applies the `DeltaBatch`
//!   incrementally (the same entry point as `dsd update`), builds the next
//!   [`GraphSnapshot`] off to the side, and installs it with one pointer
//!   swap — in-flight queries keep reading the version they pinned.
//! * Greedy++ **warm starts** are carried across versions: the most recent
//!   run's load vector lives in the server (not the snapshot), and a
//!   `"warm":true` query feeds it to `greedy_pp_warm_storage` as the
//!   prior whenever the vertex count still matches.
//!
//! Shutdown: the `shutdown` op (or [`Server::shutdown`]) raises a stop
//! flag; workers poll it between non-blocking accepts and drain their
//! current connection first. SIGTERM is also clean by construction — the
//! daemon holds no on-disk state, so the default kill disposition loses
//! nothing; the op exists for clients that want a confirmed drain.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dsd_core::dynamic::DynamicState;
use dsd_graph::DeltaBatch;
use dsd_telemetry::{self as telemetry, Counter, Phase};

use crate::protocol::{self, Request};
use crate::query::{build_snapshot, GraphSnapshot};
use crate::snapshot::{ReaderHandle, SnapshotCell};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Accept/worker threads; 0 means one per available core.
    pub workers: usize,
    /// Rayon pool size for snapshot builds and per-query engines; 0 uses
    /// the global pool. Matching this to a one-shot run's `--threads`
    /// makes serve answers bit-identical to that run.
    pub pool_threads: usize,
    /// Enable the flight recorder and the `stats` query.
    pub record: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 0, pool_threads: 0, record: false }
    }
}

fn run_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    if threads == 0 {
        f()
    } else {
        dsd_core::runner::with_threads(threads, f)
    }
}

enum WriterMsg {
    Apply { batch: DeltaBatch, reply: Sender<Result<String, String>> },
    Stop,
}

struct Shared {
    cell: Arc<SnapshotCell<GraphSnapshot>>,
    stop: AtomicBool,
    writer_tx: Mutex<Option<Sender<WriterMsg>>>,
    /// Warm-start load vector from the most recent Greedy++ run, carried
    /// across snapshot versions.
    warm: Mutex<Option<Vec<u64>>>,
    /// Connections currently being served; [`Server::join`] drains to zero
    /// after the accept workers exit.
    live_connections: AtomicUsize,
    pool_threads: usize,
    record: bool,
}

enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl ListenerKind {
    fn try_clone(&self) -> io::Result<ListenerKind> {
        match self {
            ListenerKind::Tcp(l) => Ok(ListenerKind::Tcp(l.try_clone()?)),
            #[cfg(unix)]
            ListenerKind::Unix(l) => Ok(ListenerKind::Unix(l.try_clone()?)),
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            ListenerKind::Tcp(l) => l.set_nonblocking(on),
            #[cfg(unix)]
            ListenerKind::Unix(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> io::Result<StreamKind> {
        match self {
            ListenerKind::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(StreamKind::Tcp(s))
            }
            #[cfg(unix)]
            ListenerKind::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(StreamKind::Unix(s))
            }
        }
    }
}

enum StreamKind {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

/// Between frames a connection is idle for arbitrarily long, so the wait
/// for a frame's first byte polls at this interval, checking the stop
/// flag each lap — an idle keep-alive connection never delays shutdown.
const IDLE_POLL: Duration = Duration::from_millis(100);
/// Once a frame has started, the rest must arrive within this budget; a
/// stalled half-frame releases the worker instead of parking it.
const FRAME_TIMEOUT: Duration = Duration::from_secs(30);

impl StreamKind {
    fn configure(&self) -> io::Result<()> {
        // Accepted sockets block again: the *listener* stays non-blocking
        // so workers can poll the stop flag between accepts.
        match self {
            StreamKind::Tcp(s) => {
                // Disable Nagle: responses are single-write frames, and
                // holding one for the client's delayed ACK turns every
                // query into a multi-ms stall.
                s.set_nodelay(true)?;
                s.set_nonblocking(false)
            }
            #[cfg(unix)]
            StreamKind::Unix(s) => s.set_nonblocking(false),
        }
    }

    fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            StreamKind::Tcp(s) => s.set_read_timeout(Some(timeout)),
            #[cfg(unix)]
            StreamKind::Unix(s) => s.set_read_timeout(Some(timeout)),
        }
    }
}

impl Read for StreamKind {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            StreamKind::Unix(s) => s.read(buf),
        }
    }
}

impl Write for StreamKind {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            StreamKind::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            StreamKind::Tcp(s) => s.flush(),
            #[cfg(unix)]
            StreamKind::Unix(s) => s.flush(),
        }
    }
}

/// A running daemon. Dropping without [`join`](Self::join) detaches the
/// threads; the CLI always joins.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
    addr: Option<SocketAddr>,
    socket_path: Option<PathBuf>,
}

impl Server {
    /// Starts the daemon on a TCP address (use port 0 to let the OS pick;
    /// [`local_addr`](Self::local_addr) reports the binding).
    pub fn start_tcp(state: DynamicState, addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(Self::start_inner(state, ListenerKind::Tcp(listener), cfg, Some(local), None))
    }

    /// Starts the daemon on a Unix-domain socket path (removed on join).
    #[cfg(unix)]
    pub fn start_unix(
        state: DynamicState,
        path: impl Into<PathBuf>,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let path = path.into();
        // A stale socket file from a killed daemon would fail the bind.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Ok(Self::start_inner(state, ListenerKind::Unix(listener), cfg, None, Some(path)))
    }

    fn start_inner(
        state: DynamicState,
        listener: ListenerKind,
        cfg: ServeConfig,
        addr: Option<SocketAddr>,
        socket_path: Option<PathBuf>,
    ) -> Server {
        if cfg.record {
            telemetry::set_enabled(true);
            telemetry::begin_trace("serve");
        }
        let initial = run_pool(cfg.pool_threads, || build_snapshot(&state, 1));
        telemetry::counter_add(Counter::SnapshotInstalls, 1);
        let cell = Arc::new(SnapshotCell::new(initial));
        let (writer_tx, writer_rx) = channel();
        let shared = Arc::new(Shared {
            cell: Arc::clone(&cell),
            stop: AtomicBool::new(false),
            writer_tx: Mutex::new(Some(writer_tx)),
            warm: Mutex::new(None),
            live_connections: AtomicUsize::new(0),
            pool_threads: cfg.pool_threads,
            record: cfg.record,
        });

        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || writer_loop(state, shared, writer_rx))
        };

        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)
        };
        listener.set_nonblocking(true).expect("listener supports non-blocking accept");
        let workers = (0..workers)
            .map(|_| {
                let listener = listener.try_clone().expect("listener clone");
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(listener, shared))
            })
            .collect();

        Server { shared, workers, writer: Some(writer), addr, socket_path }
    }

    /// The bound TCP address (None for Unix-socket daemons).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Raises the stop flag; workers drain their current connection and
    /// exit. Pair with [`join`](Self::join).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the daemon stops (via the `shutdown` op or
    /// [`shutdown`](Self::shutdown)), then joins every thread.
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Connection threads see the stop flag within one idle-poll lap;
        // a frame mid-read gets the frame timeout to finish. Bound the
        // drain anyway so a wedged peer cannot hang the daemon's exit.
        let deadline = std::time::Instant::now() + FRAME_TIMEOUT + Duration::from_secs(5);
        while self.shared.live_connections.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(tx) = self.shared.writer_tx.lock().expect("writer handle poisoned").take() {
            let _ = tx.send(WriterMsg::Stop);
        }
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn writer_loop(mut state: DynamicState, shared: Arc<Shared>, rx: Receiver<WriterMsg>) {
    let mut version = 1u64;
    while let Ok(msg) = rx.recv() {
        let WriterMsg::Apply { batch, reply } = msg else { break };
        let applied = run_pool(shared.pool_threads, || state.apply_batch(&batch));
        let response = match applied {
            Err(e) => Err(e.to_string()),
            Ok(outcome) => {
                version += 1;
                {
                    // ServeInstall brackets exactly the window in which
                    // the new version exists but is not yet published —
                    // the "install stall" the bench serving section
                    // reports.
                    let _g = telemetry::span(Phase::ServeInstall);
                    let snap = run_pool(shared.pool_threads, || build_snapshot(&state, version));
                    shared.cell.install(snap);
                }
                telemetry::counter_add(Counter::SnapshotInstalls, 1);
                Ok(format!(
                    "{{\"ok\":true,\"version\":{version},\"edges\":{},\"certificate\":{},\"frontier\":{},\"rounds\":{},\"frozen\":{}}}",
                    state.num_edges(),
                    state.certificate_value(),
                    outcome.frontier_size,
                    outcome.rounds,
                    outcome.frozen
                ))
            }
        };
        let _ = reply.send(response);
    }
}

/// Thread-per-core accept loop. Each accepted connection is served on its
/// own thread (connections are long-lived and may idle between frames, so
/// serving them inline would let one keep-alive client starve the accept
/// queue); connection threads register their own snapshot reader and exit
/// on EOF, error, or the stop flag.
fn worker_loop(listener: ListenerKind, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                if stream.configure().is_err() {
                    continue;
                }
                let shared = Arc::clone(&shared);
                shared.live_connections.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut reader = shared.cell.reader();
                    serve_connection(stream, &shared, &mut reader);
                    shared.live_connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serves one connection to completion. Malformed *frames* (bad length,
/// bad UTF-8) get an error reply and close the connection — framing is
/// lost. Malformed *requests* in well-formed frames get an error reply
/// and keep the connection.
fn serve_connection(
    mut stream: StreamKind,
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle<GraphSnapshot>,
) {
    loop {
        // Idle wait for the next frame's first byte, bounded so the stop
        // flag is honoured; the remainder of the frame then reads under
        // the long timeout via a chained reader.
        let mut first = [0u8; 1];
        if stream.set_read_timeout(IDLE_POLL).is_err() {
            return;
        }
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            match stream.read(&mut first) {
                Ok(0) => return, // clean EOF between frames
                Ok(_) => break,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
                Err(_) => return,
            }
        }
        if stream.set_read_timeout(FRAME_TIMEOUT).is_err() {
            return;
        }
        let mut resumed = io::Read::chain(&first[..], &mut stream);
        let frame = match protocol::read_frame(&mut resumed) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return,
        };
        let payload = match frame {
            Ok(p) => p,
            Err(msg) => {
                telemetry::counter_add(Counter::ServeQueries, 1);
                let _ = protocol::write_frame(&mut stream, &protocol::error_response(&msg));
                return;
            }
        };
        telemetry::counter_add(Counter::ServeQueries, 1);
        let request = match protocol::parse_request(&payload) {
            Ok(r) => r,
            Err(msg) => {
                let _ = protocol::write_frame(&mut stream, &protocol::error_response(&msg));
                continue;
            }
        };
        let shutting_down = matches!(request, Request::Shutdown);
        let response = dispatch(request, shared, reader);
        if protocol::write_frame(&mut stream, &response).is_err() {
            return;
        }
        if shutting_down {
            shared.stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

fn dispatch(
    request: Request,
    shared: &Arc<Shared>,
    reader: &mut ReaderHandle<GraphSnapshot>,
) -> String {
    match request {
        Request::Densest => {
            let _g = telemetry::span(Phase::ServeDensest);
            let pin = reader.pin();
            telemetry::counter_add(Counter::ServeCacheHits, 1);
            pin.answer_densest()
        }
        Request::Density { vertices } => {
            let _g = telemetry::span(Phase::ServeDensity);
            let pin = reader.pin();
            unwrap_reply(pin.answer_density(&vertices))
        }
        Request::DensityST { s, t } => {
            let _g = telemetry::span(Phase::ServeDensity);
            let pin = reader.pin();
            unwrap_reply(pin.answer_density_st(&s, &t))
        }
        Request::Core { vertices } => {
            let _g = telemetry::span(Phase::ServeCore);
            let pin = reader.pin();
            let reply = pin.answer_core(&vertices);
            if reply.is_ok() {
                telemetry::counter_add(Counter::ServeCacheHits, 1);
            }
            unwrap_reply(reply)
        }
        Request::Neighborhood { seed, k } => {
            let _g = telemetry::span(Phase::ServeNeighborhood);
            let pin = reader.pin();
            unwrap_reply(pin.answer_neighborhood(seed, k))
        }
        Request::GreedyPP { iterations, epsilon, warm } => {
            let _g = telemetry::span(Phase::ServeGreedy);
            let pin = reader.pin();
            let prior_loads =
                if warm { shared.warm.lock().expect("warm cache poisoned").clone() } else { None };
            let snap: &GraphSnapshot = &pin;
            let outcome = run_pool(shared.pool_threads, || {
                snap.answer_greedypp(iterations, epsilon, prior_loads.as_deref())
            });
            match outcome {
                Ok((payload, loads)) => {
                    if !loads.is_empty() {
                        *shared.warm.lock().expect("warm cache poisoned") = Some(loads);
                    }
                    payload
                }
                Err(e) => protocol::error_response(&e),
            }
        }
        Request::Stats => {
            let _g = telemetry::span(Phase::ServeStats);
            if !shared.record {
                return protocol::error_response("stats recording is disabled on this daemon");
            }
            let pin = reader.pin();
            match telemetry::snapshot_trace() {
                Some(trace) => {
                    format!(
                        "{{\"ok\":true,\"version\":{},\"trace\":{}}}",
                        pin.version,
                        trace.to_json()
                    )
                }
                None => protocol::error_response("no active trace"),
            }
        }
        Request::Update { insert, remove } => {
            let _g = telemetry::span(Phase::ServeUpdate);
            match DeltaBatch::new(insert, remove) {
                Err(e) => protocol::error_response(&e.to_string()),
                Ok(batch) => {
                    let (tx, rx) = channel();
                    let sent = {
                        let guard = shared.writer_tx.lock().expect("writer handle poisoned");
                        match guard.as_ref() {
                            Some(writer) => {
                                writer.send(WriterMsg::Apply { batch, reply: tx }).is_ok()
                            }
                            None => false,
                        }
                    };
                    if !sent {
                        return protocol::error_response("writer thread unavailable");
                    }
                    match rx.recv() {
                        Ok(Ok(payload)) => payload,
                        Ok(Err(e)) => protocol::error_response(&e),
                        Err(_) => protocol::error_response("writer thread unavailable"),
                    }
                }
            }
        }
        Request::Shutdown => "{\"ok\":true,\"shutting_down\":true}".to_string(),
    }
}

fn unwrap_reply(reply: Result<String, String>) -> String {
    reply.unwrap_or_else(|e| protocol::error_response(&e))
}
