//! Wire protocol: length-prefixed JSON frames and request parsing.
//!
//! Every message — request or response — is one **frame**: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! The length covers the payload only (not itself) and is capped at
//! [`MAX_FRAME_BYTES`]; a frame claiming more is rejected *before any
//! payload allocation*, so a lying header cannot drive a capacity panic
//! (the same discipline `dsd-graph::binio` applies to file headers).
//!
//! Requests are JSON objects selected by an `"op"` field:
//!
//! ```text
//! {"op":"densest"}
//! {"op":"density","vertices":[0,3,7]}          // undirected graphs
//! {"op":"density","s":[0],"t":[3,7]}           // directed graphs
//! {"op":"core","vertices":[0,1,2]}
//! {"op":"neighborhood","seed":4,"k":3}
//! {"op":"greedypp","iterations":30,"epsilon":0.05,"warm":true}
//! {"op":"stats"}
//! {"op":"update","insert":[[0,9]],"remove":[[2,3]]}
//! {"op":"shutdown"}
//! ```
//!
//! Responses are `{"ok":true,...}` or `{"ok":false,"error":"..."}`. Every
//! rejection path produces its error text through a named function in this
//! module, and the daemon sends *exactly* those strings — the conformance
//! suite asserts byte parity between the wire and the library, so client
//! error matching cannot drift.

use std::io::{self, Read, Write};

use dsd_graph::VertexId;
use dsd_telemetry::json::{self, Value};

/// Maximum frame payload size (16 MiB). Large enough for a `stats` trace
/// document or a bulk density query; small enough that a hostile length
/// word cannot balloon resident memory.
pub const MAX_FRAME_BYTES: usize = 1 << 24;

/// Canonical rejection text for a frame whose declared length exceeds
/// [`MAX_FRAME_BYTES`].
pub fn oversized_frame_error(len: u64) -> String {
    format!("frame length {len} exceeds maximum {MAX_FRAME_BYTES} bytes")
}

/// Canonical rejection text for a frame whose payload is not UTF-8.
pub fn invalid_utf8_error() -> String {
    "frame payload is not valid UTF-8".to_string()
}

/// Canonical rejection text for a payload that fails JSON parsing.
pub fn invalid_json_error(e: &json::ParseError) -> String {
    format!("request is not valid JSON: {e}")
}

/// Canonical rejection text for a well-formed JSON payload that is not an
/// object.
pub fn not_an_object_error() -> String {
    "request must be a JSON object".to_string()
}

/// Canonical rejection text for an object missing the `"op"` selector.
pub fn missing_op_error() -> String {
    "request is missing the \"op\" field".to_string()
}

/// Canonical rejection text for an unrecognised `"op"` value.
pub fn unknown_op_error(op: &str) -> String {
    format!("unknown op {op:?} (expected densest|density|core|neighborhood|greedypp|stats|update|shutdown)")
}

/// Canonical rejection text for a malformed field within a known op.
pub fn bad_field_error(op: &str, field: &str, expected: &str) -> String {
    format!("op {op:?}: field {field:?} must be {expected}")
}

/// One decoded frame: `Ok(payload)` for a well-formed frame, `Err(text)`
/// for a protocol violation the server should answer (then drop the
/// connection).
pub type FrameResult = Result<String, String>;

/// Reads one frame. `Ok(None)` is clean EOF at a frame boundary;
/// `Err(io)` is a transport failure (including EOF mid-frame), after
/// which no reply is possible.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<FrameResult>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as u64;
    if len > MAX_FRAME_BYTES as u64 {
        return Ok(Some(Err(oversized_frame_error(len))));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    match String::from_utf8(payload) {
        Ok(s) => Ok(Some(Ok(s))),
        Err(_) => Ok(Some(Err(invalid_utf8_error()))),
    }
}

/// Writes one frame.
///
/// The length prefix and payload go out in a *single* write: splitting
/// them lets Nagle's algorithm hold the second small segment for the
/// peer's delayed ACK, turning every loopback round trip into a ~40-100ms
/// stall. One contiguous write keeps a query at wire latency.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    debug_assert!(bytes.len() <= MAX_FRAME_BYTES);
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// A parsed query.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// The precomputed densest subgraph of the current snapshot.
    Densest,
    /// Exact density of an arbitrary vertex set (undirected form).
    Density { vertices: Vec<VertexId> },
    /// Exact density of an arbitrary `(S, T)` pair (directed form).
    DensityST { s: Vec<VertexId>, t: Vec<VertexId> },
    /// Core / induce-number membership for the listed vertices.
    Core { vertices: Vec<VertexId> },
    /// Top-`k` dense neighbourhoods of `seed`.
    Neighborhood { seed: VertexId, k: usize },
    /// Per-query Greedy++ with the ε accuracy/latency knob.
    GreedyPP { iterations: usize, epsilon: f64, warm: bool },
    /// Flight-recorder totals as a dsd-trace/v2 document.
    Stats,
    /// A `DeltaBatch` for the writer thread.
    Update { insert: Vec<(VertexId, VertexId)>, remove: Vec<(VertexId, VertexId)> },
    /// Graceful daemon shutdown.
    Shutdown,
}

fn vertex_list(v: Option<&Value>, op: &str, field: &str) -> Result<Vec<VertexId>, String> {
    let err = || bad_field_error(op, field, "an array of vertex ids");
    let arr = v.and_then(Value::as_array).ok_or_else(err)?;
    arr.iter().map(|x| x.as_u64().and_then(|id| u32::try_from(id).ok()).ok_or_else(err)).collect()
}

fn edge_list(
    v: Option<&Value>,
    op: &str,
    field: &str,
) -> Result<Vec<(VertexId, VertexId)>, String> {
    let err = || bad_field_error(op, field, "an array of [u, v] pairs");
    let Some(v) = v else { return Ok(Vec::new()) };
    let arr = v.as_array().ok_or_else(err)?;
    arr.iter()
        .map(|pair| {
            let p = pair.as_array().ok_or_else(err)?;
            if p.len() != 2 {
                return Err(err());
            }
            let u = p[0].as_u64().and_then(|id| u32::try_from(id).ok()).ok_or_else(err)?;
            let v = p[1].as_u64().and_then(|id| u32::try_from(id).ok()).ok_or_else(err)?;
            Ok((u, v))
        })
        .collect()
}

/// Parses one request payload. Every failure returns one of the canonical
/// strings above.
pub fn parse_request(payload: &str) -> Result<Request, String> {
    let value = json::parse(payload).map_err(|e| invalid_json_error(&e))?;
    let obj = value.as_object().ok_or_else(not_an_object_error)?;
    let op = obj.get("op").and_then(Value::as_str).ok_or_else(missing_op_error)?;
    match op {
        "densest" => Ok(Request::Densest),
        "density" => {
            if obj.get("s").is_some() || obj.get("t").is_some() {
                Ok(Request::DensityST {
                    s: vertex_list(obj.get("s"), op, "s")?,
                    t: vertex_list(obj.get("t"), op, "t")?,
                })
            } else {
                Ok(Request::Density { vertices: vertex_list(obj.get("vertices"), op, "vertices")? })
            }
        }
        "core" => Ok(Request::Core { vertices: vertex_list(obj.get("vertices"), op, "vertices")? }),
        "neighborhood" => {
            let seed = obj
                .get("seed")
                .and_then(Value::as_u64)
                .and_then(|id| u32::try_from(id).ok())
                .ok_or_else(|| bad_field_error(op, "seed", "a vertex id"))?;
            let k = match obj.get("k") {
                None => 1,
                Some(v) => v
                    .as_u64()
                    .map(|k| k as usize)
                    .ok_or_else(|| bad_field_error(op, "k", "a non-negative integer"))?,
            };
            Ok(Request::Neighborhood { seed, k })
        }
        "greedypp" => {
            let iterations = match obj.get("iterations") {
                None => 100,
                Some(v) => v
                    .as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| bad_field_error(op, "iterations", "a non-negative integer"))?,
            };
            let epsilon = match obj.get("epsilon") {
                None => 0.01,
                Some(v) => v
                    .as_f64()
                    .filter(|e| e.is_finite() && *e >= 0.0)
                    .ok_or_else(|| bad_field_error(op, "epsilon", "a non-negative number"))?,
            };
            let warm = match obj.get("warm") {
                None => false,
                Some(v) => v.as_bool().ok_or_else(|| bad_field_error(op, "warm", "a boolean"))?,
            };
            Ok(Request::GreedyPP { iterations, epsilon, warm })
        }
        "stats" => Ok(Request::Stats),
        "update" => Ok(Request::Update {
            insert: edge_list(obj.get("insert"), op, "insert")?,
            remove: edge_list(obj.get("remove"), op, "remove")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(unknown_op_error(other)),
    }
}

/// Serialises an error response.
pub fn error_response(message: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    json::write_string(&mut out, message);
    out.push('}');
    out
}

/// Appends `"key":[v0,v1,...]` (no surrounding braces) for a vertex list.
pub fn push_vertex_array(out: &mut String, key: &str, vertices: &[VertexId]) {
    json::write_string(out, key);
    out.push_str(":[");
    for (i, v) in vertices.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(payload: &str) -> String {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap().unwrap().unwrap();
        got
    }

    #[test]
    fn frames_roundtrip() {
        for payload in ["", "{}", "{\"op\":\"densest\"}", &"x".repeat(70_000)] {
            assert_eq!(roundtrip(payload), payload);
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap().unwrap().unwrap_err();
        assert_eq!(err, oversized_frame_error(u32::MAX as u64));
    }

    #[test]
    fn eof_at_boundary_is_none_mid_frame_is_error() {
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        let partial = [0u8, 0, 0, 9, b'x'];
        assert!(read_frame(&mut partial.as_slice()).is_err());
    }

    #[test]
    fn non_utf8_payload_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe, 0xfd]);
        let err = read_frame(&mut buf.as_slice()).unwrap().unwrap().unwrap_err();
        assert_eq!(err, invalid_utf8_error());
    }

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request("{\"op\":\"densest\"}").unwrap(), Request::Densest);
        assert_eq!(
            parse_request("{\"op\":\"density\",\"vertices\":[2,1]}").unwrap(),
            Request::Density { vertices: vec![2, 1] }
        );
        assert_eq!(
            parse_request("{\"op\":\"density\",\"s\":[0],\"t\":[1,2]}").unwrap(),
            Request::DensityST { s: vec![0], t: vec![1, 2] }
        );
        assert_eq!(
            parse_request("{\"op\":\"core\",\"vertices\":[5]}").unwrap(),
            Request::Core { vertices: vec![5] }
        );
        assert_eq!(
            parse_request("{\"op\":\"neighborhood\",\"seed\":4,\"k\":3}").unwrap(),
            Request::Neighborhood { seed: 4, k: 3 }
        );
        assert_eq!(
            parse_request("{\"op\":\"greedypp\",\"iterations\":7,\"epsilon\":0.5,\"warm\":true}")
                .unwrap(),
            Request::GreedyPP { iterations: 7, epsilon: 0.5, warm: true }
        );
        assert_eq!(
            parse_request("{\"op\":\"greedypp\"}").unwrap(),
            Request::GreedyPP { iterations: 100, epsilon: 0.01, warm: false }
        );
        assert_eq!(parse_request("{\"op\":\"stats\"}").unwrap(), Request::Stats);
        assert_eq!(
            parse_request("{\"op\":\"update\",\"insert\":[[0,1]],\"remove\":[[2,3],[4,5]]}")
                .unwrap(),
            Request::Update { insert: vec![(0, 1)], remove: vec![(2, 3), (4, 5)] }
        );
        assert_eq!(parse_request("{\"op\":\"shutdown\"}").unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejections_use_canonical_strings() {
        let e = parse_request("{nope").unwrap_err();
        assert!(e.starts_with("request is not valid JSON: "), "{e}");
        assert_eq!(parse_request("[1,2]").unwrap_err(), not_an_object_error());
        assert_eq!(parse_request("{\"x\":1}").unwrap_err(), missing_op_error());
        assert_eq!(parse_request("{\"op\":\"nope\"}").unwrap_err(), unknown_op_error("nope"));
        assert_eq!(
            parse_request("{\"op\":\"core\",\"vertices\":\"abc\"}").unwrap_err(),
            bad_field_error("core", "vertices", "an array of vertex ids")
        );
        assert_eq!(
            parse_request("{\"op\":\"update\",\"insert\":[[0]]}").unwrap_err(),
            bad_field_error("update", "insert", "an array of [u, v] pairs")
        );
    }
}
