//! Epoch-based snapshot cell: wait-free readers, single swap-and-retire
//! writer, deferred reclamation.
//!
//! The daemon's readers must never block on the writer and never observe a
//! half-installed graph version. Both follow from one structure: an
//! [`SnapshotCell`] holds the current version behind an `AtomicPtr`, so a
//! reader's view is whichever *complete, immutable* snapshot the pointer
//! designated at its single load — torn reads are impossible by
//! construction. What needs care is reclamation: the writer may not free a
//! replaced snapshot while any reader still dereferences it.
//!
//! The scheme is classic epoch-based reclamation, specialised to the
//! daemon's needs (few long-lived reader threads, rare installs):
//!
//! * A global epoch counter starts at 1 and is bumped once per install.
//! * Each reader owns a **slot** with an `active` word: 0 when quiescent,
//!   the observed global epoch while inside a pin.
//! * [`ReaderHandle::pin`] announces the current epoch into its slot, then
//!   loads the pointer. Both operations are `SeqCst`.
//! * [`SnapshotCell::install`] swaps the pointer, retires the old value
//!   tagged with the pre-bump epoch `E`, bumps the epoch, then frees every
//!   retired entry `(r, p)` such that **no** slot announces an epoch
//!   `a` with `0 < a ≤ r`.
//!
//! Safety argument (all accesses `SeqCst`, so a single total order exists):
//! a reader can hold retired pointer `p` (retired at epoch `r`) only if its
//! pointer load preceded the writer's swap in the total order. Its epoch
//! announcement precedes that load (program order on the same thread), and
//! the announced value was read from the global epoch *before* the bump to
//! `r + 1`, hence announces some `a ≤ r`. The writer's reclamation scan
//! follows the bump in its own program order; if the scan reads the slot as
//! quiescent, the announcement must follow the scan in the total order —
//! but then the reader's pointer load also follows the scan, which follows
//! the swap, so the load returned the *new* pointer, contradiction. So any
//! reader that can still reach `p` is observed with `a ≤ r` and blocks the
//! free. Stale announcements only delay reclamation, never unsoundness.
//!
//! The cell is the crate's one unsafe island (raw-pointer ownership across
//! the swap/retire/free lifecycle); everything above it is safe code.

#![allow(unsafe_code)]

use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One reader's announcement word. `active == 0` means quiescent; any
/// other value is the global epoch the reader observed entering its pin.
struct Slot {
    active: AtomicU64,
    /// Set when the owning [`ReaderHandle`] drops; the slot is pruned from
    /// the registry by the next reclamation scan.
    dead: AtomicBool,
}

/// A published snapshot pointer with epoch-based deferred reclamation.
///
/// `T` is installed boxed and immutable; readers obtain `&T` through
/// [`PinnedSnapshot`] guards and the writer replaces it wholesale with
/// [`install`](Self::install). Dropping the cell frees the current value
/// and everything still on the retire list.
pub struct SnapshotCell<T: Send + Sync + 'static> {
    current: AtomicPtr<T>,
    /// Global epoch; starts at 1 so a truthful announcement can never be
    /// the quiescent sentinel 0.
    epoch: AtomicU64,
    slots: Mutex<Vec<Arc<Slot>>>,
    /// Replaced snapshots awaiting quiescence, tagged with their retire
    /// epoch. Also serialises installs (multi-writer safe, though the
    /// daemon uses a single writer thread).
    retired: Mutex<Vec<(u64, *mut T)>>,
}

// The raw pointers in `retired` are uniquely owned by the cell (they were
// created by `Box::into_raw` in `install` and are freed exactly once, by
// `reclaim` or `Drop`); sharing the *cell* across threads is the whole
// point, and `T: Send + Sync` covers the payloads themselves.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T: Send + Sync + 'static> SnapshotCell<T> {
    /// Creates the cell publishing `initial` as the first version.
    pub fn new(initial: T) -> Self {
        SnapshotCell {
            current: AtomicPtr::new(Box::into_raw(Box::new(initial))),
            epoch: AtomicU64::new(1),
            slots: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Registers a reader. Each concurrent reader thread needs its own
    /// handle; the handle is `Send` but deliberately not shareable (`pin`
    /// takes `&mut self` so one slot never carries two announcements).
    pub fn reader(self: &Arc<Self>) -> ReaderHandle<T> {
        let slot = Arc::new(Slot { active: AtomicU64::new(0), dead: AtomicBool::new(false) });
        self.slots.lock().expect("snapshot slot registry poisoned").push(Arc::clone(&slot));
        ReaderHandle { cell: Arc::clone(self), slot }
    }

    /// Publishes `value` as the new current version, retires the old one,
    /// and frees every retired version no pinned reader can still reach.
    /// Never blocks readers; in-flight pins keep dereferencing the version
    /// they pinned.
    pub fn install(&self, value: T) {
        let fresh = Box::into_raw(Box::new(value));
        let mut retired = self.retired.lock().expect("snapshot retire list poisoned");
        let old = self.current.swap(fresh, SeqCst);
        let e = self.epoch.load(SeqCst);
        retired.push((e, old));
        self.epoch.store(e + 1, SeqCst);
        self.reclaim(&mut retired);
    }

    /// Number of replaced versions still awaiting quiescence (test /
    /// stats hook; bounded by the number of concurrently pinned readers
    /// plus one in steady state).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().expect("snapshot retire list poisoned").len()
    }

    fn reclaim(&self, retired: &mut Vec<(u64, *mut T)>) {
        let mut slots = self.slots.lock().expect("snapshot slot registry poisoned");
        slots.retain(|s| !(s.dead.load(SeqCst) && s.active.load(SeqCst) == 0));
        retired.retain(|&(r, p)| {
            let pinned = slots.iter().any(|s| {
                let a = s.active.load(SeqCst);
                a != 0 && a <= r
            });
            if !pinned {
                // Sole owner: the pointer left `current` at the swap and
                // no reader that could have loaded it is still pinned.
                unsafe { drop(Box::from_raw(p)) };
            }
            pinned
        });
    }
}

impl<T: Send + Sync + 'static> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no handles remain (they hold `Arc<Self>`).
        unsafe { drop(Box::from_raw(*self.current.get_mut())) };
        let retired = self.retired.get_mut().expect("snapshot retire list poisoned");
        for (_, p) in retired.drain(..) {
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

/// A registered reader's capability to pin the current snapshot.
pub struct ReaderHandle<T: Send + Sync + 'static> {
    cell: Arc<SnapshotCell<T>>,
    slot: Arc<Slot>,
}

impl<T: Send + Sync + 'static> ReaderHandle<T> {
    /// Pins the current snapshot: announces the epoch, loads the pointer,
    /// and returns a guard dereferencing to the pinned version. The
    /// borrow on `self` guarantees one announcement per slot.
    pub fn pin(&mut self) -> PinnedSnapshot<'_, T> {
        let e = self.cell.epoch.load(SeqCst);
        self.slot.active.store(e, SeqCst);
        let ptr = self.cell.current.load(SeqCst);
        PinnedSnapshot { slot: &self.slot, ptr }
    }
}

impl<T: Send + Sync + 'static> Drop for ReaderHandle<T> {
    fn drop(&mut self) {
        self.slot.dead.store(true, SeqCst);
    }
}

/// RAII pin: dereferences to the pinned snapshot; dropping it returns the
/// slot to quiescence, allowing the writer to reclaim superseded versions.
pub struct PinnedSnapshot<'a, T> {
    slot: &'a Slot,
    ptr: *const T,
}

impl<T> Deref for PinnedSnapshot<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Valid for the guard's lifetime: the slot's non-zero announcement
        // blocks reclamation of this pointer (module-level argument).
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for PinnedSnapshot<'_, T> {
    fn drop(&mut self) {
        self.slot.active.store(0, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pin_sees_installed_value_and_retires_old() {
        let cell = Arc::new(SnapshotCell::new(10u64));
        let mut reader = cell.reader();
        assert_eq!(*reader.pin(), 10);
        cell.install(20);
        assert_eq!(*reader.pin(), 20);
        // Nothing pinned across the install: the old version is freed.
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn held_pin_defers_reclamation() {
        let cell = Arc::new(SnapshotCell::new(1u64));
        let mut reader = cell.reader();
        let pin = reader.pin();
        cell.install(2);
        assert_eq!(cell.retired_len(), 1);
        assert_eq!(*pin, 1); // still the pinned version
        drop(pin);
        cell.install(3);
        // The second install's scan sees quiescence and frees both.
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn dropped_reader_slot_is_pruned() {
        let cell = Arc::new(SnapshotCell::new(0u64));
        let reader = cell.reader();
        drop(reader);
        cell.install(1);
        assert_eq!(cell.retired_len(), 0);
    }

    /// Readers hammering pins while the writer installs: every observed
    /// value is a whole version (the payload's two halves always agree),
    /// versions are monotone per reader, and the retire list stays
    /// bounded. Drop-time leak checking is covered by the counting guard.
    #[test]
    fn concurrent_install_and_pin_stress() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Counted(u64, u64);
        impl Counted {
            fn new(v: u64) -> Self {
                LIVE.fetch_add(1, SeqCst);
                Counted(v, v.wrapping_mul(0x9e3779b97f4a7c15))
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, SeqCst);
            }
        }

        const INSTALLS: u64 = 2_000;
        const READERS: usize = 4;
        let cell = Arc::new(SnapshotCell::new(Counted::new(0)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        for _ in 0..READERS {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut reader = cell.reader();
                let mut last = 0u64;
                while !stop.load(SeqCst) {
                    let pin = reader.pin();
                    assert_eq!(pin.1, pin.0.wrapping_mul(0x9e3779b97f4a7c15), "torn snapshot");
                    assert!(pin.0 >= last, "version went backwards");
                    last = pin.0;
                }
            }));
        }
        for v in 1..=INSTALLS {
            cell.install(Counted::new(v));
        }
        stop.store(true, SeqCst);
        for t in threads {
            t.join().unwrap();
        }
        cell.install(Counted::new(INSTALLS + 1));
        // All readers quiescent: at most the just-retired predecessor may
        // linger (it does not — the scan sees quiescence).
        assert_eq!(cell.retired_len(), 0);
        drop(cell);
        assert_eq!(LIVE.load(SeqCst), 0, "snapshot leaked or double-freed");
    }
}
