//! Property tests for the graph substrate: builder invariants, IO round
//! trips, sampling, components, and induced subgraphs on arbitrary inputs.

use proptest::prelude::*;

use dsd_graph::{DirectedGraphBuilder, UndirectedGraphBuilder};

/// Arbitrary raw edge list (may contain self-loops and duplicates) over a
/// small vertex range.
fn raw_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..200);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn undirected_builder_invariants((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        // CSR invariants.
        let mut degree_sum = 0usize;
        for v in 0..n as u32 {
            let nb = g.neighbors(v);
            degree_sum += nb.len();
            // Sorted, deduplicated, no self-loops.
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            prop_assert!(nb.iter().all(|&u| u != v), "self-loop at {v}");
            // Symmetry.
            for &u in nb {
                prop_assert!(g.has_edge(u, v), "asymmetric edge {u}-{v}");
            }
        }
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // Every non-loop input edge is present.
        for &(u, v) in &edges {
            if u != v {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn directed_builder_invariants((n, edges) in raw_edges()) {
        let g = DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let out_sum: usize = (0..n as u32).map(|v| g.out_degree(v)).sum();
        let in_sum: usize = (0..n as u32).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        for v in 0..n as u32 {
            prop_assert!(g.out_neighbors(v).windows(2).all(|w| w[0] < w[1]));
            prop_assert!(g.in_neighbors(v).windows(2).all(|w| w[0] < w[1]));
            for &u in g.out_neighbors(v) {
                prop_assert!(g.in_neighbors(u).binary_search(&v).is_ok(), "in/out mismatch");
            }
        }
        for &(u, v) in &edges {
            if u != v {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn text_and_binary_io_round_trip((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let mut text = Vec::new();
        dsd_graph::io::write_undirected(&g, &mut text).unwrap();
        let from_text = dsd_graph::io::read_undirected(text.as_slice()).unwrap();
        // Text drops isolated trailing vertices (n is inferred); compare edges.
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = from_text.edges().collect();
        prop_assert_eq!(a, b);

        let mut bin = Vec::new();
        dsd_graph::binio::write_undirected_binary(&g, &mut bin).unwrap();
        let from_bin = dsd_graph::binio::read_undirected_binary(bin.as_slice()).unwrap();
        prop_assert_eq!(&g, &from_bin);
    }

    #[test]
    fn directed_binary_round_trip((n, edges) in raw_edges()) {
        let g = DirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let mut bin = Vec::new();
        dsd_graph::binio::write_directed_binary(&g, &mut bin).unwrap();
        let from_bin = dsd_graph::binio::read_directed_binary(bin.as_slice()).unwrap();
        prop_assert_eq!(&g, &from_bin);
    }

    #[test]
    fn sampling_subset_and_count(
        (n, edges) in raw_edges(),
        fraction in 0.1f64..1.0,
        seed in any::<u64>()
    ) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let s = dsd_graph::sample::sample_edges_undirected(&g, fraction, seed).unwrap();
        let expected = ((g.num_edges() as f64) * fraction).round() as usize;
        prop_assert_eq!(s.num_edges(), expected.min(g.num_edges()));
        for (u, v) in s.edges() {
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn components_match_union_find((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let c = dsd_graph::components::connected_components(&g);
        // Reference union-find.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for (u, v) in g.edges() {
            let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
            parent[ru] = rv;
        }
        for u in 0..n {
            for v in (u + 1)..n {
                let same_uf = find(&mut parent, u) == find(&mut parent, v);
                let same_bfs = c.label[u] == c.label[v];
                prop_assert_eq!(same_uf, same_bfs, "vertices {} and {}", u, v);
            }
        }
    }

    #[test]
    fn induced_subgraph_edge_consistency((n, edges) in raw_edges(), mask in any::<u64>()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let subset: Vec<u32> = (0..n as u32).filter(|&v| mask >> (v % 64) & 1 == 1).collect();
        let sub = dsd_graph::subgraph::induce_undirected(&g, &subset);
        // Every subgraph edge maps to an original edge within the subset.
        for (a, b) in sub.graph.edges() {
            let (oa, ob) = (sub.original[a as usize], sub.original[b as usize]);
            prop_assert!(g.has_edge(oa, ob));
        }
        // Edge count equals the original edges with both endpoints inside.
        let inside: std::collections::HashSet<u32> = subset.iter().copied().collect();
        let expected = g
            .edges()
            .filter(|&(u, v)| inside.contains(&u) && inside.contains(&v))
            .count();
        prop_assert_eq!(sub.graph.num_edges(), expected);
    }

    #[test]
    fn transpose_involution((n, edges) in raw_edges()) {
        let g = DirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        prop_assert_eq!(&g.transpose().transpose(), &g);
        prop_assert_eq!(g.transpose().num_edges(), g.num_edges());
        prop_assert_eq!(g.transpose().max_out_degree(), g.max_in_degree());
    }

    // PR 4: the counting-sort engine must agree with the legacy sort+dedup
    // oracle on every input — random multisets with duplicates, self-loops,
    // and isolated vertices included by construction of `raw_edges`.
    #[test]
    fn undirected_engine_matches_legacy((n, edges) in raw_edges()) {
        let engine = UndirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build().unwrap();
        let legacy = UndirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build_legacy().unwrap();
        prop_assert_eq!(engine, legacy);
    }

    #[test]
    fn directed_engine_matches_legacy((n, edges) in raw_edges()) {
        let engine = DirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build().unwrap();
        let legacy = DirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build_legacy().unwrap();
        prop_assert_eq!(engine, legacy);
    }

    // Out-of-range edges must surface the same error payload from both
    // pipelines: the input-order-earliest offender, `u` before `v`.
    #[test]
    fn engine_error_matches_legacy((n, edges) in raw_edges(), at in 0usize..200, bump in 0u32..5) {
        let mut edges = edges;
        let at = at % (edges.len() + 1);
        edges.insert(at, (n as u32 + bump, 0));
        let engine = UndirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build().unwrap_err();
        let legacy = UndirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build_legacy().unwrap_err();
        prop_assert_eq!(engine.to_string(), legacy.to_string());
        let engine = DirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build().unwrap_err();
        let legacy = DirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build_legacy().unwrap_err();
        prop_assert_eq!(engine.to_string(), legacy.to_string());
    }

    // Splitting the same multiset into arbitrary parts (the parallel
    // parser's chunk shape) must not change the built graph.
    #[test]
    fn engine_part_structure_is_irrelevant((n, edges) in raw_edges(), cut in any::<u64>()) {
        let whole = dsd_graph::ingest::undirected_from_parts(n, &[&edges]).unwrap();
        let a = (cut as usize) % (edges.len() + 1);
        let b = a + ((cut >> 32) as usize) % (edges.len() - a + 1);
        let parts = [&edges[..a], &edges[a..b], &edges[b..]];
        let split = dsd_graph::ingest::undirected_from_parts(n, &parts).unwrap();
        prop_assert_eq!(whole, split);
        let whole = dsd_graph::ingest::directed_from_parts(n, &[&edges]).unwrap();
        let split = dsd_graph::ingest::directed_from_parts(n, &parts).unwrap();
        prop_assert_eq!(whole, split);
    }

    // Direct CSR permutation must reproduce the legacy builder round-trip.
    #[test]
    fn reorder_matches_legacy((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let fast = dsd_graph::reorder::by_degree_descending(&g);
        let legacy = dsd_graph::reorder::by_degree_descending_legacy(&g);
        prop_assert_eq!(fast.graph, legacy.graph);
        prop_assert_eq!(fast.original, legacy.original);
        prop_assert_eq!(fast.new_id, legacy.new_id);
    }

    // Parallel chunked parse must agree with the serial reader end to end.
    #[test]
    fn parallel_read_matches_serial((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let mut text = Vec::new();
        dsd_graph::io::write_undirected(&g, &mut text).unwrap();
        prop_assert_eq!(
            dsd_graph::io::read_undirected(text.as_slice()).unwrap(),
            dsd_graph::io::read_undirected_serial(text.as_slice()).unwrap()
        );
        let d = DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let mut text = Vec::new();
        dsd_graph::io::write_directed(&d, &mut text).unwrap();
        prop_assert_eq!(
            dsd_graph::io::read_directed(text.as_slice()).unwrap(),
            dsd_graph::io::read_directed_serial(text.as_slice()).unwrap()
        );
    }
}
