//! Property tests for the graph substrate: builder invariants, IO round
//! trips, sampling, components, and induced subgraphs on arbitrary inputs.

use proptest::prelude::*;

use dsd_graph::{
    CompressedCsr, CompressedDigraph, DirectedGraphBuilder, DirectedNeighborAccess, NeighborAccess,
    UndirectedGraphBuilder,
};

/// Arbitrary raw edge list (may contain self-loops and duplicates) over a
/// small vertex range.
fn raw_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..200);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn undirected_builder_invariants((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        // CSR invariants.
        let mut degree_sum = 0usize;
        for v in 0..n as u32 {
            let nb = g.neighbors(v);
            degree_sum += nb.len();
            // Sorted, deduplicated, no self-loops.
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            prop_assert!(nb.iter().all(|&u| u != v), "self-loop at {v}");
            // Symmetry.
            for &u in nb {
                prop_assert!(g.has_edge(u, v), "asymmetric edge {u}-{v}");
            }
        }
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // Every non-loop input edge is present.
        for &(u, v) in &edges {
            if u != v {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn directed_builder_invariants((n, edges) in raw_edges()) {
        let g = DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let out_sum: usize = (0..n as u32).map(|v| g.out_degree(v)).sum();
        let in_sum: usize = (0..n as u32).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        for v in 0..n as u32 {
            prop_assert!(g.out_neighbors(v).windows(2).all(|w| w[0] < w[1]));
            prop_assert!(g.in_neighbors(v).windows(2).all(|w| w[0] < w[1]));
            for &u in g.out_neighbors(v) {
                prop_assert!(g.in_neighbors(u).binary_search(&v).is_ok(), "in/out mismatch");
            }
        }
        for &(u, v) in &edges {
            if u != v {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn text_and_binary_io_round_trip((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let mut text = Vec::new();
        dsd_graph::io::write_undirected(&g, &mut text).unwrap();
        let from_text = dsd_graph::io::read_undirected(text.as_slice()).unwrap();
        // Text drops isolated trailing vertices (n is inferred); compare edges.
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = from_text.edges().collect();
        prop_assert_eq!(a, b);

        let mut bin = Vec::new();
        dsd_graph::binio::write_undirected_binary(&g, &mut bin).unwrap();
        let from_bin = dsd_graph::binio::read_undirected_binary(bin.as_slice()).unwrap();
        prop_assert_eq!(&g, &from_bin);
    }

    #[test]
    fn directed_binary_round_trip((n, edges) in raw_edges()) {
        let g = DirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let mut bin = Vec::new();
        dsd_graph::binio::write_directed_binary(&g, &mut bin).unwrap();
        let from_bin = dsd_graph::binio::read_directed_binary(bin.as_slice()).unwrap();
        prop_assert_eq!(&g, &from_bin);
    }

    #[test]
    fn sampling_subset_and_count(
        (n, edges) in raw_edges(),
        fraction in 0.1f64..1.0,
        seed in any::<u64>()
    ) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let s = dsd_graph::sample::sample_edges_undirected(&g, fraction, seed).unwrap();
        let expected = ((g.num_edges() as f64) * fraction).round() as usize;
        prop_assert_eq!(s.num_edges(), expected.min(g.num_edges()));
        for (u, v) in s.edges() {
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn components_match_union_find((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let c = dsd_graph::components::connected_components(&g);
        // Reference union-find.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for (u, v) in g.edges() {
            let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
            parent[ru] = rv;
        }
        for u in 0..n {
            for v in (u + 1)..n {
                let same_uf = find(&mut parent, u) == find(&mut parent, v);
                let same_bfs = c.label[u] == c.label[v];
                prop_assert_eq!(same_uf, same_bfs, "vertices {} and {}", u, v);
            }
        }
    }

    #[test]
    fn induced_subgraph_edge_consistency((n, edges) in raw_edges(), mask in any::<u64>()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let subset: Vec<u32> = (0..n as u32).filter(|&v| mask >> (v % 64) & 1 == 1).collect();
        let sub = dsd_graph::subgraph::induce_undirected(&g, &subset);
        // Every subgraph edge maps to an original edge within the subset.
        for (a, b) in sub.graph.edges() {
            let (oa, ob) = (sub.original[a as usize], sub.original[b as usize]);
            prop_assert!(g.has_edge(oa, ob));
        }
        // Edge count equals the original edges with both endpoints inside.
        let inside: std::collections::HashSet<u32> = subset.iter().copied().collect();
        let expected = g
            .edges()
            .filter(|&(u, v)| inside.contains(&u) && inside.contains(&v))
            .count();
        prop_assert_eq!(sub.graph.num_edges(), expected);
    }

    #[test]
    fn transpose_involution((n, edges) in raw_edges()) {
        let g = DirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        prop_assert_eq!(&g.transpose().transpose(), &g);
        prop_assert_eq!(g.transpose().num_edges(), g.num_edges());
        prop_assert_eq!(g.transpose().max_out_degree(), g.max_in_degree());
    }

    // PR 4: the counting-sort engine must agree with the legacy sort+dedup
    // oracle on every input — random multisets with duplicates, self-loops,
    // and isolated vertices included by construction of `raw_edges`.
    #[test]
    fn undirected_engine_matches_legacy((n, edges) in raw_edges()) {
        let engine = UndirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build().unwrap();
        let legacy = UndirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build_legacy().unwrap();
        prop_assert_eq!(engine, legacy);
    }

    #[test]
    fn directed_engine_matches_legacy((n, edges) in raw_edges()) {
        let engine = DirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build().unwrap();
        let legacy = DirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build_legacy().unwrap();
        prop_assert_eq!(engine, legacy);
    }

    // Out-of-range edges must surface the same error payload from both
    // pipelines: the input-order-earliest offender, `u` before `v`.
    #[test]
    fn engine_error_matches_legacy((n, edges) in raw_edges(), at in 0usize..200, bump in 0u32..5) {
        let mut edges = edges;
        let at = at % (edges.len() + 1);
        edges.insert(at, (n as u32 + bump, 0));
        let engine = UndirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build().unwrap_err();
        let legacy = UndirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build_legacy().unwrap_err();
        prop_assert_eq!(engine.to_string(), legacy.to_string());
        let engine = DirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build().unwrap_err();
        let legacy = DirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied()).build_legacy().unwrap_err();
        prop_assert_eq!(engine.to_string(), legacy.to_string());
    }

    // Splitting the same multiset into arbitrary parts (the parallel
    // parser's chunk shape) must not change the built graph.
    #[test]
    fn engine_part_structure_is_irrelevant((n, edges) in raw_edges(), cut in any::<u64>()) {
        let whole = dsd_graph::ingest::undirected_from_parts(n, &[&edges]).unwrap();
        let a = (cut as usize) % (edges.len() + 1);
        let b = a + ((cut >> 32) as usize) % (edges.len() - a + 1);
        let parts = [&edges[..a], &edges[a..b], &edges[b..]];
        let split = dsd_graph::ingest::undirected_from_parts(n, &parts).unwrap();
        prop_assert_eq!(whole, split);
        let whole = dsd_graph::ingest::directed_from_parts(n, &[&edges]).unwrap();
        let split = dsd_graph::ingest::directed_from_parts(n, &parts).unwrap();
        prop_assert_eq!(whole, split);
    }

    // Direct CSR permutation must reproduce the legacy builder round-trip.
    #[test]
    fn reorder_matches_legacy((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let fast = dsd_graph::reorder::by_degree_descending(&g);
        let legacy = dsd_graph::reorder::by_degree_descending_legacy(&g);
        prop_assert_eq!(fast.graph, legacy.graph);
        prop_assert_eq!(fast.original, legacy.original);
        prop_assert_eq!(fast.new_id, legacy.new_id);
    }

    // PR 6: compressed neighbor iteration must be bit-identical to plain
    // CSR on every input — isolated vertices and (canonicalised-away)
    // self-loops included by construction of `raw_edges`.
    #[test]
    fn compressed_iteration_matches_plain((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let c = CompressedCsr::from_graph(&g);
        prop_assert_eq!(c.vertex_count(), g.num_vertices());
        prop_assert_eq!(c.arc_count(), 2 * g.num_edges() as u64);
        for v in 0..n as u32 {
            prop_assert_eq!(c.degree_of(v), g.degree(v), "degree at {}", v);
            let decoded: Vec<u32> = c.neighbors_of(v).collect();
            prop_assert_eq!(decoded.as_slice(), g.neighbors(v), "neighbors at {}", v);
        }
        prop_assert_eq!(&c.decompress(), &g);

        let d = DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let cd = CompressedDigraph::from_graph(&d);
        prop_assert_eq!(cd.edge_count(), d.num_edges());
        for v in 0..n as u32 {
            let outs: Vec<u32> = cd.out_neighbors_of(v).collect();
            let ins: Vec<u32> = cd.in_neighbors_of(v).collect();
            prop_assert_eq!(outs.as_slice(), d.out_neighbors(v), "out at {}", v);
            prop_assert_eq!(ins.as_slice(), d.in_neighbors(v), "in at {}", v);
            for (i, &w) in d.out_neighbors(v).iter().enumerate() {
                prop_assert_eq!(cd.out_neighbor_at(v, i), w);
                prop_assert_eq!(cd.out_rank_of(v, w), Some(i));
            }
        }
        prop_assert_eq!(&cd.decompress(), &d);
    }

    // PR 6: spill-mode ingest must match the in-memory builders and be
    // deterministic across rayon pool sizes.
    #[test]
    fn spill_build_matches_and_is_pool_invariant((n, edges) in raw_edges()) {
        let cfg = dsd_graph::SpillConfig::with_shard_arcs(0); // clamps to the 1024 floor
        let u_ref =
            UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let d_ref = DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let (us, ds) = pool.install(|| {
                (
                    dsd_graph::ingest::undirected_from_parts_spill(n, &[&edges], &cfg).unwrap(),
                    dsd_graph::ingest::directed_from_parts_spill(n, &[&edges], &cfg).unwrap(),
                )
            });
            prop_assert_eq!(&us, &u_ref, "undirected spill at {} threads", threads);
            prop_assert_eq!(&ds, &d_ref, "directed spill at {} threads", threads);
        }
    }

    // PR 6: build -> binio v2 write -> (mmap) load -> decompress must
    // reproduce the original graph exactly, for both kinds.
    #[test]
    fn binio_v2_mmap_round_trip((n, edges) in raw_edges()) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let tag = format!("{}-{}", std::process::id(), SEQ.fetch_add(1, Ordering::Relaxed));

        let g = UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let c = CompressedCsr::from_graph(&g);
        let path = std::env::temp_dir().join(format!("dsd-prop-u-{tag}.bin"));
        dsd_graph::binio::write_compressed_undirected_path(&c, &path).unwrap();
        let loaded = dsd_graph::binio::load_compressed_undirected_path(&path);
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(&loaded.unwrap().decompress(), &g);

        let d = DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let cd = CompressedDigraph::from_graph(&d);
        let path = std::env::temp_dir().join(format!("dsd-prop-d-{tag}.bin"));
        dsd_graph::binio::write_compressed_directed_path(&cd, &path).unwrap();
        let loaded = dsd_graph::binio::load_compressed_directed_path(&path);
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(&loaded.unwrap().decompress(), &d);
    }

    // Parallel chunked parse must agree with the serial reader end to end.
    #[test]
    fn parallel_read_matches_serial((n, edges) in raw_edges()) {
        let g = UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let mut text = Vec::new();
        dsd_graph::io::write_undirected(&g, &mut text).unwrap();
        prop_assert_eq!(
            dsd_graph::io::read_undirected(text.as_slice()).unwrap(),
            dsd_graph::io::read_undirected_serial(text.as_slice()).unwrap()
        );
        let d = DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
        let mut text = Vec::new();
        dsd_graph::io::write_directed(&d, &mut text).unwrap();
        prop_assert_eq!(
            dsd_graph::io::read_directed(text.as_slice()).unwrap(),
            dsd_graph::io::read_directed_serial(text.as_slice()).unwrap()
        );
    }
}
