//! Compressed-sparse-row undirected graph.

use crate::VertexId;

/// An immutable undirected graph in CSR (compressed sparse row) form.
///
/// Each undirected edge `{u, v}` is stored twice: once in `u`'s adjacency
/// list and once in `v`'s. Self-loops and parallel edges are removed at
/// construction time by [`crate::UndirectedGraphBuilder`]. Adjacency lists
/// are sorted, enabling binary-search membership tests.
///
/// This is the representation the paper's algorithms assume: an O(1) degree
/// lookup and a contiguous, cache-friendly neighbour scan per vertex, shared
/// read-only between threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UndirectedGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `adj` for vertex `v`; length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists; length `2m`.
    adj: Vec<VertexId>,
}

impl UndirectedGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// Intended for use by the builder and subgraph extraction; callers must
    /// guarantee the CSR invariants (monotone offsets, sorted per-vertex
    /// lists, symmetric edges, no self-loops). Debug builds assert them.
    pub(crate) fn from_csr(offsets: Vec<usize>, adj: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), adj.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let g = Self { offsets, adj };
        debug_assert!((0..g.num_vertices()).all(|v| {
            let nb = g.neighbors(v as VertexId);
            nb.windows(2).all(|w| w[0] < w[1]) && nb.iter().all(|&u| u != v as VertexId)
        }));
        g
    }

    /// Creates an empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self { offsets: vec![0; n + 1], adj: Vec::new() }
    }

    /// Number of vertices `n` (including isolated vertices).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbours of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the edge `{u, v}` exists. `O(log d(u))`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices; 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices()).map(|v| self.degree(v as VertexId)).max().unwrap_or(0)
    }

    /// Density `m / n` of the whole graph (Definition 1 applied to `V`).
    ///
    /// Returns 0.0 for a graph with no vertices.
    pub fn density(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Degree of every vertex, as a vector (used to seed h-index arrays).
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices()).map(|v| self.degree(v as VertexId) as u32).collect()
    }

    /// Raw CSR offsets (mainly for zero-copy consumers like the flow crate).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw CSR adjacency array.
    #[inline]
    pub fn adjacency(&self) -> &[VertexId] {
        &self.adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedGraphBuilder;

    fn triangle_plus_pendant() -> UndirectedGraph {
        // 0-1, 1-2, 0-2 triangle; 3 pendant off 0.
        UndirectedGraphBuilder::new(4).add_edges([(0, 1), (1, 2), (0, 2), (0, 3)]).build().unwrap()
    }

    #[test]
    fn counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(3), &[0]);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn edges_listed_once_with_u_lt_v() {
        let g = triangle_plus_pendant();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
    }

    #[test]
    fn density_of_triangle() {
        let g = UndirectedGraphBuilder::new(3).add_edges([(0, 1), (1, 2), (0, 2)]).build().unwrap();
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn zero_vertex_graph_density_zero() {
        let g = UndirectedGraph::empty(0);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn max_degree() {
        let g = triangle_plus_pendant();
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn degrees_vector_matches() {
        let g = triangle_plus_pendant();
        assert_eq!(g.degrees(), vec![3, 2, 2, 1]);
    }
}
