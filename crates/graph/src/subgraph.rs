//! Induced-subgraph extraction.
//!
//! The densest-subgraph algorithms return vertex sets; turning them back
//! into standalone graphs (with a vertex-id mapping) is needed both to
//! report the result and to recurse (e.g. the binary-search `k*`-core
//! method discussed in Section IV-B of the paper).

use rustc_hash::FxHashMap;

use crate::{
    DirectedGraph, DirectedGraphBuilder, UndirectedGraph, UndirectedGraphBuilder, VertexId,
};

/// An induced subgraph of an undirected graph, with the mapping from new
/// compact vertex ids back to the original ids.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph, with vertices renumbered `0..k`.
    pub graph: UndirectedGraph,
    /// `original[i]` is the id in the parent graph of the subgraph vertex `i`.
    pub original: Vec<VertexId>,
}

/// An `(S, T)`-induced subgraph of a directed graph (Definition 3 context):
/// contains exactly the edges from `S` to `T`.
///
/// Vertices keep their original ids; `s_members` / `t_members` list the two
/// (possibly overlapping) sets.
#[derive(Clone, Debug)]
pub struct StInducedSubgraph {
    /// Vertices playing the source role.
    pub s_members: Vec<VertexId>,
    /// Vertices playing the target role.
    pub t_members: Vec<VertexId>,
    /// Edges from `S` to `T`, with original vertex ids.
    pub edges: Vec<(VertexId, VertexId)>,
}

impl StInducedSubgraph {
    /// Density `|E(S,T)| / √(|S|·|T|)` (Definition 3). Zero if either side
    /// is empty.
    pub fn density(&self) -> f64 {
        if self.s_members.is_empty() || self.t_members.is_empty() {
            0.0
        } else {
            self.edges.len() as f64
                / ((self.s_members.len() as f64) * (self.t_members.len() as f64)).sqrt()
        }
    }
}

/// Extracts the subgraph of `g` induced by `vertices` (duplicates ignored),
/// renumbering vertices compactly and remembering the original ids.
pub fn induce_undirected(g: &UndirectedGraph, vertices: &[VertexId]) -> InducedSubgraph {
    let mut original: Vec<VertexId> = vertices.to_vec();
    original.sort_unstable();
    original.dedup();
    let map: FxHashMap<VertexId, VertexId> =
        original.iter().enumerate().map(|(i, &v)| (v, i as VertexId)).collect();
    let mut b = UndirectedGraphBuilder::new(original.len());
    for (&v, nv) in original.iter().zip(0..original.len() as VertexId) {
        debug_assert_eq!(map[&v], nv);
        for &u in g.neighbors(v) {
            if u > v {
                if let Some(&nu) = map.get(&u) {
                    b.push_edge(nv, nu);
                }
            }
        }
    }
    InducedSubgraph { graph: b.build().expect("ids are in range by construction"), original }
}

/// Extracts the subgraph of the directed graph `g` induced by `vertices`
/// (all edges among them), renumbering compactly.
pub fn induce_directed(g: &DirectedGraph, vertices: &[VertexId]) -> (DirectedGraph, Vec<VertexId>) {
    let mut original: Vec<VertexId> = vertices.to_vec();
    original.sort_unstable();
    original.dedup();
    let map: FxHashMap<VertexId, VertexId> =
        original.iter().enumerate().map(|(i, &v)| (v, i as VertexId)).collect();
    let mut b = DirectedGraphBuilder::new(original.len());
    for &v in &original {
        let nv = map[&v];
        for &u in g.out_neighbors(v) {
            if let Some(&nu) = map.get(&u) {
                b.push_edge(nv, nu);
            }
        }
    }
    (b.build().expect("ids are in range by construction"), original)
}

/// Extracts the `(S, T)`-induced subgraph: all edges of `g` from a vertex
/// in `s` to a vertex in `t` (Definition 3).
pub fn induce_st(g: &DirectedGraph, s: &[VertexId], t: &[VertexId]) -> StInducedSubgraph {
    let mut s_members = s.to_vec();
    s_members.sort_unstable();
    s_members.dedup();
    let mut t_members = t.to_vec();
    t_members.sort_unstable();
    t_members.dedup();
    let t_set: rustc_hash::FxHashSet<VertexId> = t_members.iter().copied().collect();
    let mut edges = Vec::new();
    for &u in &s_members {
        for &v in g.out_neighbors(u) {
            if t_set.contains(&v) {
                edges.push((u, v));
            }
        }
    }
    StInducedSubgraph { s_members, t_members, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectedGraphBuilder, UndirectedGraphBuilder};

    #[test]
    fn induce_triangle_from_k4() {
        // K4 on {0,1,2,3}; induce {0,1,2} -> triangle.
        let mut b = UndirectedGraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.push_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let sub = induce_undirected(&g, &[2, 0, 1, 1]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 3);
        assert_eq!(sub.original, vec![0, 1, 2]);
    }

    #[test]
    fn induce_preserves_original_ids() {
        let g = UndirectedGraphBuilder::new(5).add_edges([(1, 3), (3, 4), (1, 4)]).build().unwrap();
        let sub = induce_undirected(&g, &[4, 1, 3]);
        assert_eq!(sub.original, vec![1, 3, 4]);
        assert_eq!(sub.graph.num_edges(), 3);
    }

    #[test]
    fn induce_directed_keeps_internal_edges_only() {
        let g = DirectedGraphBuilder::new(4)
            .add_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .build()
            .unwrap();
        let (sub, orig) = induce_directed(&g, &[0, 1, 2]);
        assert_eq!(orig, vec![0, 1, 2]);
        assert_eq!(sub.num_edges(), 2); // 0->1, 1->2
    }

    #[test]
    fn st_induced_density_matches_paper_example() {
        // Fig. 1(b): S = {v4, v5}, T = {v2, v3}, 4 edges, density 2.
        // Model: vertices 0..6; edges 4->2, 4->3, 5->2, 5->3.
        let g = DirectedGraphBuilder::new(6)
            .add_edges([(4, 2), (4, 3), (5, 2), (5, 3)])
            .build()
            .unwrap();
        let st = induce_st(&g, &[4, 5], &[2, 3]);
        assert_eq!(st.edges.len(), 4);
        assert!((st.density() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn st_induced_overlapping_sets() {
        // S and T may overlap (Definition 3).
        let g = DirectedGraphBuilder::new(2).add_edges([(0, 1), (1, 0)]).build().unwrap();
        let st = induce_st(&g, &[0, 1], &[0, 1]);
        assert_eq!(st.edges.len(), 2);
        assert!((st.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn st_empty_side_density_zero() {
        let g = DirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
        let st = induce_st(&g, &[], &[1]);
        assert_eq!(st.density(), 0.0);
    }
}
