//! Plain-text edge-list IO.
//!
//! Format: one edge per line, `u v` (whitespace separated, `u`/`v`
//! non-negative integers), `#` or `%` comment lines ignored (matching the
//! KONECT and SNAP conventions of the paper's data sources). The vertex
//! count is `1 + max id` unless a larger count is given explicitly.
//!
//! [`read_undirected`] / [`read_directed`] parse in parallel: the byte
//! buffer is split into chunks at line boundaries, each chunk is parsed on
//! its own rayon task while tracking chunk-local line numbers, and the
//! parsed chunks feed the counting-sort engine in [`crate::ingest`] without
//! being re-concatenated. Error reporting is bit-identical to the serial
//! line-at-a-time parser (kept as [`read_undirected_serial`] /
//! [`read_directed_serial`], the parity oracles): the globally earliest
//! offending line wins, with its exact 1-based line number — chunk-local
//! offsets are rebased by the line counts of all preceding chunks.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use dsd_telemetry::{span, Phase};
use rayon::prelude::*;

use crate::{
    ingest, DirectedGraph, DirectedGraphBuilder, GraphError, Result, UndirectedGraph,
    UndirectedGraphBuilder, VertexId,
};

/// Bounds on the byte size of one parser chunk. The actual size targets
/// `len / (4 * threads)` so every worker gets a few chunks to balance, but
/// never shrinks below [`MIN_CHUNK_BYTES`] (tiny chunks are all overhead)
/// or grows beyond [`MAX_CHUNK_BYTES`] (huge chunks serialise the tail).
const MIN_CHUNK_BYTES: usize = 64 << 10;
const MAX_CHUNK_BYTES: usize = 8 << 20;

/// Serial line-at-a-time parse — the oracle the chunked parser is tested
/// against. Line numbers count every physical line (comments and blanks
/// included), 1-based.
fn parse_edges<R: Read>(reader: R) -> Result<(Vec<(VertexId, VertexId)>, usize)> {
    let mut edges = Vec::new();
    let mut max_id: u64 = 0;
    let mut saw_vertex = false;
    let reader = BufReader::new(reader);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: u64 = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "missing source".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad source: {e}"),
            })?;
        let v: u64 = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "missing target".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad target: {e}"),
            })?;
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "vertex id exceeds u32::MAX".into(),
            });
        }
        max_id = max_id.max(u).max(v);
        saw_vertex = true;
        edges.push((u as VertexId, v as VertexId));
    }
    let n = if saw_vertex { (max_id + 1) as usize } else { 0 };
    Ok((edges, n))
}

/// The error a chunk-local line produced, before its line number has been
/// rebased to a global one.
enum LineError {
    /// Non-UTF-8 bytes; surfaces as the same `GraphError::Io` the serial
    /// parser gets from `BufRead::lines`.
    Utf8,
    /// A parse failure with the serial parser's exact message.
    Parse(String),
}

fn utf8_error() -> GraphError {
    GraphError::Io(io::Error::new(io::ErrorKind::InvalidData, "stream did not contain valid UTF-8"))
}

/// One parsed chunk: its edges, id stats, physical line count, and the
/// first error (if any) with its 1-based chunk-local line number.
struct ChunkParse {
    edges: Vec<(VertexId, VertexId)>,
    max_id: u64,
    saw_vertex: bool,
    lines: usize,
    error: Option<(usize, LineError)>,
}

fn parse_line_into(text: &str, out: &mut ChunkParse) -> std::result::Result<(), LineError> {
    let trimmed = text.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Ok(());
    }
    let mut it = trimmed.split_whitespace();
    let u: u64 = it
        .next()
        .ok_or_else(|| LineError::Parse("missing source".into()))?
        .parse()
        .map_err(|e| LineError::Parse(format!("bad source: {e}")))?;
    let v: u64 = it
        .next()
        .ok_or_else(|| LineError::Parse("missing target".into()))?
        .parse()
        .map_err(|e| LineError::Parse(format!("bad target: {e}")))?;
    if u > u32::MAX as u64 || v > u32::MAX as u64 {
        return Err(LineError::Parse("vertex id exceeds u32::MAX".into()));
    }
    out.max_id = out.max_id.max(u).max(v);
    out.saw_vertex = true;
    out.edges.push((u as VertexId, v as VertexId));
    Ok(())
}

/// Parses one chunk. Line iteration mirrors `BufRead::lines`: split on
/// `\n`, strip one trailing `\r`, and no phantom empty line after a final
/// `\n` — so per-chunk line counts sum exactly to the serial total.
fn parse_chunk(bytes: &[u8]) -> ChunkParse {
    let mut out =
        ChunkParse { edges: Vec::new(), max_id: 0, saw_vertex: false, lines: 0, error: None };
    let mut pos = 0usize;
    while pos < bytes.len() {
        let end =
            bytes[pos..].iter().position(|&b| b == b'\n').map(|i| pos + i).unwrap_or(bytes.len());
        let mut line = &bytes[pos..end];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        out.lines += 1;
        let local = out.lines;
        match std::str::from_utf8(line) {
            Err(_) => {
                out.error = Some((local, LineError::Utf8));
                return out;
            }
            Ok(text) => {
                if let Err(kind) = parse_line_into(text, &mut out) {
                    out.error = Some((local, kind));
                    return out;
                }
            }
        }
        pos = end + 1;
    }
    out
}

/// Splits `bytes` into `(start, end)` ranges of roughly `size` bytes, each
/// extended rightwards to the next `\n` so no line spans two chunks.
fn chunk_ranges(bytes: &[u8], size: usize) -> Vec<(usize, usize)> {
    let len = bytes.len();
    let mut ranges = Vec::new();
    let size = size.max(1);
    let mut start = 0usize;
    while start < len {
        let mut end = (start + size).min(len);
        if end < len {
            end = match bytes[end..].iter().position(|&b| b == b'\n') {
                Some(i) => end + i + 1,
                None => len,
            };
        }
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Parallel chunked parse of a whole byte buffer. Returns the per-chunk
/// edge vectors (ready for [`crate::ingest`]'s `*_from_chunks`) and the
/// inferred vertex count, or the globally earliest error with the exact
/// line number / message the serial parser would report.
fn parse_chunked(
    bytes: &[u8],
    chunk_bytes: usize,
) -> Result<(Vec<Vec<(VertexId, VertexId)>>, usize)> {
    let ranges = chunk_ranges(bytes, chunk_bytes);
    let parsed: Vec<ChunkParse> =
        ranges.par_iter().map(|&(s, e)| parse_chunk(&bytes[s..e])).collect();
    // Chunks are in input order and each reports its first error, so the
    // first erroring chunk holds the globally earliest offending line;
    // rebase its chunk-local number by the full line counts before it.
    let mut line_base = 0usize;
    let mut chunks = Vec::with_capacity(parsed.len());
    let mut max_id = 0u64;
    let mut saw_vertex = false;
    for cp in parsed {
        if let Some((local, kind)) = cp.error {
            return Err(match kind {
                LineError::Utf8 => utf8_error(),
                LineError::Parse(message) => GraphError::Parse { line: line_base + local, message },
            });
        }
        line_base += cp.lines;
        max_id = max_id.max(cp.max_id);
        saw_vertex |= cp.saw_vertex;
        chunks.push(cp.edges);
    }
    let n = if saw_vertex { (max_id + 1) as usize } else { 0 };
    Ok((chunks, n))
}

fn auto_chunk_bytes(len: usize) -> usize {
    let target_chunks = rayon::current_num_threads().max(1) * 4;
    (len / target_chunks.max(1)).clamp(MIN_CHUNK_BYTES, MAX_CHUNK_BYTES)
}

fn read_chunks<R: Read>(mut reader: R) -> Result<(Vec<Vec<(VertexId, VertexId)>>, usize)> {
    let _parse = span(Phase::IngestParse);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_chunked(&bytes, auto_chunk_bytes(bytes.len()))
}

/// Reads an undirected graph from an edge-list reader (parallel chunked
/// parse feeding the counting-sort engine).
pub fn read_undirected<R: Read>(reader: R) -> Result<UndirectedGraph> {
    let (chunks, n) = read_chunks(reader)?;
    ingest::undirected_from_chunks(n, &chunks)
}

/// Reads a directed graph from an edge-list reader (parallel chunked parse
/// feeding the counting-sort engine).
pub fn read_directed<R: Read>(reader: R) -> Result<DirectedGraph> {
    let (chunks, n) = read_chunks(reader)?;
    ingest::directed_from_chunks(n, &chunks)
}

/// Reads an undirected graph with spill-mode construction: the chunked
/// parse is unchanged, but CSR assembly goes through the bounded-RSS shard
/// pipeline ([`crate::ingest::undirected_from_parts_spill`]). Result and
/// error behaviour are bit-identical to [`read_undirected`].
pub fn read_undirected_spill<R: Read>(
    reader: R,
    cfg: &ingest::SpillConfig,
) -> Result<UndirectedGraph> {
    let (chunks, n) = read_chunks(reader)?;
    let parts: Vec<&[(VertexId, VertexId)]> = chunks.iter().map(|c| c.as_slice()).collect();
    ingest::undirected_from_parts_spill(n, &parts, cfg)
}

/// Spill-mode directed reader; see [`read_undirected_spill`].
pub fn read_directed_spill<R: Read>(reader: R, cfg: &ingest::SpillConfig) -> Result<DirectedGraph> {
    let (chunks, n) = read_chunks(reader)?;
    let parts: Vec<&[(VertexId, VertexId)]> = chunks.iter().map(|c| c.as_slice()).collect();
    ingest::directed_from_parts_spill(n, &parts, cfg)
}

/// Spill-mode undirected reader from a file path.
pub fn read_undirected_path_spill<P: AsRef<Path>>(
    path: P,
    cfg: &ingest::SpillConfig,
) -> Result<UndirectedGraph> {
    read_undirected_spill(std::fs::File::open(path)?, cfg)
}

/// Spill-mode directed reader from a file path.
pub fn read_directed_path_spill<P: AsRef<Path>>(
    path: P,
    cfg: &ingest::SpillConfig,
) -> Result<DirectedGraph> {
    read_directed_spill(std::fs::File::open(path)?, cfg)
}

/// Serial reference reader: line-at-a-time parse plus the legacy
/// `O(m log m)` builder. The full-pipeline oracle for
/// [`read_undirected`] parity tests.
pub fn read_undirected_serial<R: Read>(reader: R) -> Result<UndirectedGraph> {
    let (edges, n) = parse_edges(reader)?;
    UndirectedGraphBuilder::with_capacity(n, edges.len()).add_edges(edges).build_legacy()
}

/// Serial reference reader for directed graphs; the oracle for
/// [`read_directed`] parity tests.
pub fn read_directed_serial<R: Read>(reader: R) -> Result<DirectedGraph> {
    let (edges, n) = parse_edges(reader)?;
    DirectedGraphBuilder::with_capacity(n, edges.len()).add_edges(edges).build_legacy()
}

/// Reads an undirected graph from a file path.
pub fn read_undirected_path<P: AsRef<Path>>(path: P) -> Result<UndirectedGraph> {
    read_undirected(std::fs::File::open(path)?)
}

/// Reads a directed graph from a file path.
pub fn read_directed_path<P: AsRef<Path>>(path: P) -> Result<DirectedGraph> {
    read_directed(std::fs::File::open(path)?)
}

/// Reads an undirected graph from a file in *any* on-disk format — text
/// edge list, binary v1, or packed v2 (decompressed once to plain CSR) —
/// by sniffing the `DSDGRAPH` magic and version byte. This is the single
/// ingest path shared by `dsd update`, `dsd serve`, and any other consumer
/// that must accept "whatever the user has on disk".
pub fn read_undirected_any_path<P: AsRef<Path>>(path: P) -> Result<UndirectedGraph> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    if bytes.len() >= 10 && &bytes[..8] == b"DSDGRAPH" {
        if bytes[9] >= 2 {
            Ok(crate::binio::load_compressed_undirected_path(path)?.decompress())
        } else {
            crate::binio::read_undirected_binary(&bytes[..])
        }
    } else {
        read_undirected(&bytes[..])
    }
}

/// Directed counterpart of [`read_undirected_any_path`].
pub fn read_directed_any_path<P: AsRef<Path>>(path: P) -> Result<DirectedGraph> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    if bytes.len() >= 10 && &bytes[..8] == b"DSDGRAPH" {
        if bytes[9] >= 2 {
            Ok(crate::binio::load_compressed_directed_path(path)?.decompress())
        } else {
            crate::binio::read_directed_binary(&bytes[..])
        }
    } else {
        read_directed(&bytes[..])
    }
}

/// Writes an undirected graph as an edge list (one `u v` line per edge,
/// `u < v`).
pub fn write_undirected<W: Write>(g: &UndirectedGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# undirected |V|={} |E|={}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a directed graph as an edge list.
pub fn write_directed<W: Write>(g: &DirectedGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# directed |V|={} |E|={}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_with_comments_and_blanks() {
        let text = "# a comment\n% konect style\n\n0 1\n1 2\n";
        let g = read_undirected(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn read_directed_keeps_direction() {
        let g = read_directed("0 1\n2 1\n".as_bytes()).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    fn parse_error_reports_line() {
        let err = read_undirected("0 1\nfoo bar\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn missing_target_is_error() {
        let err = read_undirected("0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_undirected("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn undirected_round_trip() {
        let g = crate::gen::erdos_renyi(50, 120, 3);
        let mut buf = Vec::new();
        write_undirected(&g, &mut buf).unwrap();
        let g2 = read_undirected(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn directed_round_trip() {
        let g = crate::gen::erdos_renyi_directed(50, 150, 4);
        let mut buf = Vec::new();
        write_directed(&g, &mut buf).unwrap();
        let g2 = read_directed(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn oversized_id_rejected() {
        let text = format!("0 {}\n", u64::from(u32::MAX) + 1);
        assert!(read_undirected(text.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = crate::gen::erdos_renyi(20, 40, 5);
        let dir = std::env::temp_dir().join("dsd_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_undirected(&g, std::fs::File::create(&path).unwrap()).unwrap();
        let g2 = read_undirected_path(&path).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn chunk_ranges_cover_and_split_on_newlines() {
        let text = b"0 1\n2 3\n4 5\n6 7\n8 9";
        let ranges = chunk_ranges(text, 5);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, text.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "ranges must tile the buffer");
            assert_eq!(text[w[0].1 - 1], b'\n', "splits only after newlines");
        }
    }

    #[test]
    fn tiny_chunks_match_serial_parse() {
        let text = "# header\n0 1\n\n1 2\r\n% mid comment\n2 3\n3 0";
        let (edges, n) = parse_edges(text.as_bytes()).unwrap();
        for size in [1usize, 3, 7, 64, 1 << 20] {
            let (chunks, cn) = parse_chunked(text.as_bytes(), size).unwrap();
            let flat: Vec<_> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, edges, "chunk size {size}");
            assert_eq!(cn, n, "chunk size {size}");
        }
    }

    #[test]
    fn tiny_chunks_report_serial_error_line() {
        let text = "0 1\n1 2\n# ok\n2 x\n3 4\nbroken\n";
        let serial = parse_edges(text.as_bytes()).unwrap_err();
        let (sline, smsg) = match serial {
            GraphError::Parse { line, message } => (line, message),
            other => panic!("expected parse error, got {other}"),
        };
        assert_eq!(sline, 4);
        for size in [1usize, 4, 9, 1 << 20] {
            match parse_chunked(text.as_bytes(), size).unwrap_err() {
                GraphError::Parse { line, message } => {
                    assert_eq!(line, sline, "chunk size {size}");
                    assert_eq!(message, smsg, "chunk size {size}");
                }
                other => panic!("expected parse error, got {other}"),
            }
        }
    }

    #[test]
    fn invalid_utf8_matches_serial_error() {
        let mut bytes = b"0 1\n1 2\n".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
        bytes.extend_from_slice(b"2 3\n");
        let serial = read_undirected_serial(bytes.as_slice()).unwrap_err();
        for size in [2usize, 1 << 20] {
            let chunked = parse_chunked(&bytes, size).unwrap_err();
            assert_eq!(chunked.to_string(), serial.to_string(), "chunk size {size}");
        }
    }

    #[test]
    fn spill_readers_match_in_memory_readers() {
        let g = crate::gen::erdos_renyi(80, 400, 21);
        let mut buf = Vec::new();
        write_undirected(&g, &mut buf).unwrap();
        let cfg = ingest::SpillConfig::with_shard_arcs(0); // 1024-arc floor → ≥1 spill
        assert_eq!(
            read_undirected_spill(buf.as_slice(), &cfg).unwrap(),
            read_undirected(buf.as_slice()).unwrap()
        );
        let d = crate::gen::erdos_renyi_directed(80, 400, 22);
        let mut buf = Vec::new();
        write_directed(&d, &mut buf).unwrap();
        assert_eq!(
            read_directed_spill(buf.as_slice(), &cfg).unwrap(),
            read_directed(buf.as_slice()).unwrap()
        );
    }

    #[test]
    fn serial_readers_match_parallel_readers() {
        let g = crate::gen::erdos_renyi(60, 200, 9);
        let mut buf = Vec::new();
        write_undirected(&g, &mut buf).unwrap();
        assert_eq!(
            read_undirected(buf.as_slice()).unwrap(),
            read_undirected_serial(buf.as_slice()).unwrap()
        );
        let d = crate::gen::erdos_renyi_directed(60, 200, 10);
        let mut buf = Vec::new();
        write_directed(&d, &mut buf).unwrap();
        assert_eq!(
            read_directed(buf.as_slice()).unwrap(),
            read_directed_serial(buf.as_slice()).unwrap()
        );
    }
}
