//! Plain-text edge-list IO.
//!
//! Format: one edge per line, `u v` (whitespace separated, `u`/`v`
//! non-negative integers), `#` or `%` comment lines ignored (matching the
//! KONECT and SNAP conventions of the paper's data sources). The vertex
//! count is `1 + max id` unless a larger count is given explicitly.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{
    DirectedGraph, DirectedGraphBuilder, GraphError, Result, UndirectedGraph,
    UndirectedGraphBuilder, VertexId,
};

fn parse_edges<R: Read>(reader: R) -> Result<(Vec<(VertexId, VertexId)>, usize)> {
    let mut edges = Vec::new();
    let mut max_id: u64 = 0;
    let mut saw_vertex = false;
    let reader = BufReader::new(reader);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: u64 = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "missing source".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad source: {e}"),
            })?;
        let v: u64 = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "missing target".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad target: {e}"),
            })?;
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "vertex id exceeds u32::MAX".into(),
            });
        }
        max_id = max_id.max(u).max(v);
        saw_vertex = true;
        edges.push((u as VertexId, v as VertexId));
    }
    let n = if saw_vertex { (max_id + 1) as usize } else { 0 };
    Ok((edges, n))
}

/// Reads an undirected graph from an edge-list reader.
pub fn read_undirected<R: Read>(reader: R) -> Result<UndirectedGraph> {
    let (edges, n) = parse_edges(reader)?;
    UndirectedGraphBuilder::with_capacity(n, edges.len()).add_edges(edges).build()
}

/// Reads a directed graph from an edge-list reader.
pub fn read_directed<R: Read>(reader: R) -> Result<DirectedGraph> {
    let (edges, n) = parse_edges(reader)?;
    DirectedGraphBuilder::with_capacity(n, edges.len()).add_edges(edges).build()
}

/// Reads an undirected graph from a file path.
pub fn read_undirected_path<P: AsRef<Path>>(path: P) -> Result<UndirectedGraph> {
    read_undirected(std::fs::File::open(path)?)
}

/// Reads a directed graph from a file path.
pub fn read_directed_path<P: AsRef<Path>>(path: P) -> Result<DirectedGraph> {
    read_directed(std::fs::File::open(path)?)
}

/// Writes an undirected graph as an edge list (one `u v` line per edge,
/// `u < v`).
pub fn write_undirected<W: Write>(g: &UndirectedGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# undirected |V|={} |E|={}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a directed graph as an edge list.
pub fn write_directed<W: Write>(g: &DirectedGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# directed |V|={} |E|={}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_with_comments_and_blanks() {
        let text = "# a comment\n% konect style\n\n0 1\n1 2\n";
        let g = read_undirected(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn read_directed_keeps_direction() {
        let g = read_directed("0 1\n2 1\n".as_bytes()).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    fn parse_error_reports_line() {
        let err = read_undirected("0 1\nfoo bar\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn missing_target_is_error() {
        let err = read_undirected("0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_undirected("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn undirected_round_trip() {
        let g = crate::gen::erdos_renyi(50, 120, 3);
        let mut buf = Vec::new();
        write_undirected(&g, &mut buf).unwrap();
        let g2 = read_undirected(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn directed_round_trip() {
        let g = crate::gen::erdos_renyi_directed(50, 150, 4);
        let mut buf = Vec::new();
        write_directed(&g, &mut buf).unwrap();
        let g2 = read_directed(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn oversized_id_rejected() {
        let text = format!("0 {}\n", u64::from(u32::MAX) + 1);
        assert!(read_undirected(text.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = crate::gen::erdos_renyi(20, 40, 5);
        let dir = std::env::temp_dir().join("dsd_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_undirected(&g, std::fs::File::create(&path).unwrap()).unwrap();
        let g2 = read_undirected_path(&path).unwrap();
        assert_eq!(g, g2);
    }
}
