//! Connected components.
//!
//! The `k*`-core (and the `[x*,y*]`-core) may consist of several connected
//! components; the paper notes any one of them is a valid 2-approximation.
//! This module provides component labelling so callers can split a core
//! into components and report the densest one.

use crate::{UndirectedGraph, VertexId};

/// Result of a connected-components labelling.
#[derive(Clone, Debug)]
pub struct Components {
    /// `label[v]` is the component id of vertex `v`, in `0..count`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Groups vertices by component, returning one vertex list per
    /// component id.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, &c) in self.label.iter().enumerate() {
            groups[c as usize].push(v as VertexId);
        }
        groups
    }

    /// Size of the largest component (0 if the graph is empty).
    pub fn largest_size(&self) -> usize {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.label {
            sizes[c as usize] += 1;
        }
        sizes.into_iter().max().unwrap_or(0)
    }
}

/// Labels connected components with an iterative BFS (no recursion, safe on
/// long paths). `O(n + m)`.
pub fn connected_components(g: &UndirectedGraph) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue: Vec<VertexId> = Vec::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = count;
        queue.clear();
        queue.push(start as VertexId);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = count;
                    queue.push(u);
                }
            }
        }
        count += 1;
    }
    Components { label, count: count as usize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedGraphBuilder;

    #[test]
    fn single_component() {
        let g = UndirectedGraphBuilder::new(3).add_edges([(0, 1), (1, 2)]).build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(c.largest_size(), 3);
    }

    #[test]
    fn two_components_plus_isolated() {
        let g = UndirectedGraphBuilder::new(5).add_edges([(0, 1), (2, 3)]).build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3); // {0,1}, {2,3}, {4}
        assert_eq!(c.largest_size(), 2);
    }

    #[test]
    fn groups_partition_vertices() {
        let g = UndirectedGraphBuilder::new(4).add_edges([(0, 1)]).build().unwrap();
        let c = connected_components(&g);
        let groups = c.groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 4);
        assert!(groups.iter().any(|grp| grp == &vec![0, 1]));
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(0).build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 0);
        assert_eq!(c.largest_size(), 0);
    }

    #[test]
    fn long_path_no_stack_overflow() {
        let n = 100_000u32;
        let mut b = UndirectedGraphBuilder::with_capacity(n as usize, n as usize);
        for v in 0..n - 1 {
            b.push_edge(v, v + 1);
        }
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
    }
}
