//! Error type shared across graph construction and IO.

use std::fmt;

/// Errors produced while building, loading, or manipulating graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint referenced a vertex id ≥ the declared vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        n: u64,
    },
    /// A text edge list contained a line that could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// Underlying IO failure while reading or writing a graph file.
    Io(std::io::Error),
    /// A binary graph file was structurally malformed: bad magic, unknown
    /// version, a section table whose declared offsets/lengths do not fit
    /// the actual payload, or counts whose byte sizes overflow `u64`.
    /// Raised by [`crate::binio`] *before* any payload-sized allocation,
    /// so a lying header can never trigger a capacity panic.
    Format {
        /// Description of the structural violation.
        message: String,
    },
    /// A request was structurally invalid (e.g. sampling fraction outside
    /// `(0, 1]`).
    InvalidArgument(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex id {vertex} out of range for graph with {n} vertices")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Format { message } => {
                write!(f, "malformed graph file: {message}")
            }
            GraphError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_vertex_out_of_range() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 5 };
        assert_eq!(e.to_string(), "vertex id 7 out of range for graph with 5 vertices");
    }

    #[test]
    fn display_parse() {
        let e = GraphError::Parse { line: 3, message: "bad token".into() };
        assert_eq!(e.to_string(), "parse error on line 3: bad token");
    }

    #[test]
    fn io_error_round_trip() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn format_display() {
        let e = GraphError::Format { message: "section table past end of file".into() };
        assert_eq!(e.to_string(), "malformed graph file: section table past end of file");
    }

    #[test]
    fn invalid_argument_display() {
        let e = GraphError::InvalidArgument("fraction must be positive".into());
        assert!(e.to_string().contains("fraction"));
    }
}
