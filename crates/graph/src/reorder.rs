//! Degree-based vertex reordering.
//!
//! Renumbering vertices in descending degree order packs the hubs — the
//! vertices every peeling/h-index iteration touches most — into adjacent
//! cache lines, a standard locality optimisation for CSR graph algorithms
//! at the paper's scale. `bench_graph` measures the effect on PKMC.
//!
//! [`by_degree_descending`] permutes the CSR directly in `O(n + m)` — new
//! offsets come from a prefix sum over permuted degrees, and each new
//! adjacency list is remapped and sorted in its own parallel task — instead
//! of round-tripping `m` edges through a builder (an extra edge vector plus
//! a full validate/dedup pass over edges that are valid by construction).
//! The seed round-trip survives as [`by_degree_descending_legacy`], the
//! parity oracle. [`by_degree_descending_directed`] is the directed
//! analogue the DDS engines need, permuting both CSR directions under one
//! total-degree order.

use rayon::prelude::*;

use crate::{ingest, DirectedGraph, UndirectedGraph, UndirectedGraphBuilder, VertexId};

/// A reordered graph plus the mapping back to original vertex ids.
#[derive(Clone, Debug)]
pub struct Reordered {
    /// The renumbered graph.
    pub graph: UndirectedGraph,
    /// `original[new_id]` is the vertex's id in the input graph.
    pub original: Vec<VertexId>,
    /// `new_id[original]` is the vertex's id in the reordered graph.
    pub new_id: Vec<VertexId>,
}

impl Reordered {
    /// Maps a set of reordered vertex ids back to original ids (sorted).
    pub fn to_original(&self, vertices: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = vertices.iter().map(|&v| self.original[v as usize]).collect();
        out.sort_unstable();
        out
    }
}

/// A reordered directed graph plus the id mappings; the directed analogue
/// of [`Reordered`].
#[derive(Clone, Debug)]
pub struct ReorderedDirected {
    /// The renumbered graph (both CSR directions permuted consistently).
    pub graph: DirectedGraph,
    /// `original[new_id]` is the vertex's id in the input graph.
    pub original: Vec<VertexId>,
    /// `new_id[original]` is the vertex's id in the reordered graph.
    pub new_id: Vec<VertexId>,
}

impl ReorderedDirected {
    /// Maps a set of reordered vertex ids back to original ids (sorted).
    pub fn to_original(&self, vertices: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = vertices.iter().map(|&v| self.original[v as usize]).collect();
        out.sort_unstable();
        out
    }
}

/// Computes `order` (new id → old id) and its inverse `new_id` under
/// descending `key`, ties broken by ascending original id so the result is
/// deterministic for any rayon pool size.
fn degree_order(
    n: usize,
    key: impl Fn(VertexId) -> usize + Sync,
) -> (Vec<VertexId>, Vec<VertexId>) {
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.par_sort_unstable_by(|&a, &b| key(b).cmp(&key(a)).then(a.cmp(&b)));
    let mut new_id = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        new_id[old as usize] = new as VertexId;
    }
    (order, new_id)
}

/// Renumbers vertices by descending degree (ties by original id), via a
/// direct `O(n + m)` CSR permutation — no builder round-trip. Output is
/// bit-identical to [`by_degree_descending_legacy`].
pub fn by_degree_descending(g: &UndirectedGraph) -> Reordered {
    let n = g.num_vertices();
    let (order, new_id) = degree_order(n, |v| g.degree(v));
    let deg: Vec<usize> = order.par_iter().map(|&old| g.degree(old)).collect();
    let offsets = ingest::prefix_sum(&deg);
    let mut adj = vec![0 as VertexId; *offsets.last().expect("offsets non-empty")];
    ingest::vertex_slices(&mut adj, &offsets).into_par_iter().enumerate().for_each(
        |(new, list)| {
            let old = order[new];
            for (cell, &w) in list.iter_mut().zip(g.neighbors(old)) {
                *cell = new_id[w as usize];
            }
            list.sort_unstable();
        },
    );
    Reordered { graph: UndirectedGraph::from_csr(offsets, adj), original: order, new_id }
}

/// The seed implementation: push every remapped edge through a builder and
/// rebuild from scratch. `O(m)` extra memory plus a redundant
/// validate+dedup pass; kept as the parity oracle and reorder-bench
/// baseline.
pub fn by_degree_descending_legacy(g: &UndirectedGraph) -> Reordered {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    let mut new_id = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        new_id[old as usize] = new as VertexId;
    }
    let mut b = UndirectedGraphBuilder::with_capacity(n, g.num_edges());
    for (u, v) in g.edges() {
        b.push_edge(new_id[u as usize], new_id[v as usize]);
    }
    Reordered {
        graph: b.build_legacy().expect("renumbered ids are in range"),
        original: order,
        new_id,
    }
}

/// Renumbers a directed graph by descending total degree (out + in, ties
/// by original id) and permutes both CSR directions in `O(n + m)`. Hubs of
/// the `(x, y)`-core orientation land in adjacent cache lines for the DDS
/// peeling engines.
pub fn by_degree_descending_directed(g: &DirectedGraph) -> ReorderedDirected {
    let n = g.num_vertices();
    let (order, new_id) = degree_order(n, |v| g.out_degree(v) + g.in_degree(v));
    fn permute<'g>(
        order: &[VertexId],
        new_id: &[VertexId],
        list_of: impl Fn(VertexId) -> &'g [VertexId] + Sync,
        deg_of: impl Fn(VertexId) -> usize + Sync,
    ) -> (Vec<usize>, Vec<VertexId>) {
        let deg: Vec<usize> = order.par_iter().map(|&old| deg_of(old)).collect();
        let offsets = ingest::prefix_sum(&deg);
        let mut adj = vec![0 as VertexId; *offsets.last().expect("offsets non-empty")];
        ingest::vertex_slices(&mut adj, &offsets).into_par_iter().enumerate().for_each(
            |(new, list)| {
                let old = order[new];
                for (cell, &w) in list.iter_mut().zip(list_of(old)) {
                    *cell = new_id[w as usize];
                }
                list.sort_unstable();
            },
        );
        (offsets, adj)
    }
    let (out_offsets, out_adj) =
        permute(&order, &new_id, |v| g.out_neighbors(v), |v| g.out_degree(v));
    let (in_offsets, in_adj) = permute(&order, &new_id, |v| g.in_neighbors(v), |v| g.in_degree(v));
    ReorderedDirected {
        graph: DirectedGraph::from_csr(out_offsets, out_adj, in_offsets, in_adj),
        original: order,
        new_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectedGraphBuilder, UndirectedGraphBuilder};

    #[test]
    fn hub_becomes_vertex_zero() {
        // Star with hub 3.
        let g = UndirectedGraphBuilder::new(5)
            .add_edges([(3, 0), (3, 1), (3, 2), (3, 4)])
            .build()
            .unwrap();
        let r = by_degree_descending(&g);
        assert_eq!(r.original[0], 3);
        assert_eq!(r.graph.degree(0), 4);
    }

    #[test]
    fn structure_preserved() {
        let g = crate::gen::chung_lu(200, 1200, 2.3, 9);
        let r = by_degree_descending(&g);
        assert_eq!(r.graph.num_vertices(), g.num_vertices());
        assert_eq!(r.graph.num_edges(), g.num_edges());
        // Edges map one-to-one through the renumbering.
        for (u, v) in g.edges() {
            assert!(r.graph.has_edge(r.new_id[u as usize], r.new_id[v as usize]));
        }
        // Degrees are non-increasing in the new ordering.
        for v in 1..r.graph.num_vertices() {
            assert!(r.graph.degree(v as u32) <= r.graph.degree(v as u32 - 1));
        }
    }

    #[test]
    fn mapping_round_trips() {
        let g = crate::gen::erdos_renyi(50, 150, 4);
        let r = by_degree_descending(&g);
        for old in 0..50u32 {
            assert_eq!(r.original[r.new_id[old as usize] as usize], old);
        }
        let back = r.to_original(&[0, 1, 2]);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(0).build().unwrap();
        let r = by_degree_descending(&g);
        assert_eq!(r.graph.num_vertices(), 0);
    }

    #[test]
    fn permutation_matches_legacy() {
        let g = crate::gen::chung_lu(300, 2500, 2.1, 17);
        let fast = by_degree_descending(&g);
        let legacy = by_degree_descending_legacy(&g);
        assert_eq!(fast.graph, legacy.graph);
        assert_eq!(fast.original, legacy.original);
        assert_eq!(fast.new_id, legacy.new_id);
    }

    #[test]
    fn directed_hub_becomes_vertex_zero() {
        // 3 has total degree 4 (3 out + 1 in).
        let g = DirectedGraphBuilder::new(5)
            .add_edges([(3, 0), (3, 1), (3, 2), (4, 3)])
            .build()
            .unwrap();
        let r = by_degree_descending_directed(&g);
        assert_eq!(r.original[0], 3);
        assert_eq!(r.graph.out_degree(0), 3);
        assert_eq!(r.graph.in_degree(0), 1);
    }

    #[test]
    fn directed_structure_preserved() {
        let g = crate::gen::erdos_renyi_directed(150, 900, 23);
        let r = by_degree_descending_directed(&g);
        assert_eq!(r.graph.num_vertices(), g.num_vertices());
        assert_eq!(r.graph.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(r.graph.has_edge(r.new_id[u as usize], r.new_id[v as usize]));
        }
        for old in 0..150u32 {
            assert_eq!(r.original[r.new_id[old as usize] as usize], old);
            assert_eq!(r.graph.out_degree(r.new_id[old as usize]), g.out_degree(old));
            assert_eq!(r.graph.in_degree(r.new_id[old as usize]), g.in_degree(old));
        }
        // Total degrees non-increasing in the new ordering.
        for v in 1..150u32 {
            let t = |x: u32| r.graph.out_degree(x) + r.graph.in_degree(x);
            assert!(t(v) <= t(v - 1));
        }
    }

    #[test]
    fn directed_transpose_consistency() {
        let g = crate::gen::erdos_renyi_directed(80, 400, 31);
        let r = by_degree_descending_directed(&g);
        assert_eq!(r.graph.transpose().transpose(), r.graph);
    }
}
