//! Degree-based vertex reordering.
//!
//! Renumbering vertices in descending degree order packs the hubs — the
//! vertices every peeling/h-index iteration touches most — into adjacent
//! cache lines, a standard locality optimisation for CSR graph algorithms
//! at the paper's scale. `bench_graph` measures the effect on PKMC.

use crate::{UndirectedGraph, UndirectedGraphBuilder, VertexId};

/// A reordered graph plus the mapping back to original vertex ids.
#[derive(Clone, Debug)]
pub struct Reordered {
    /// The renumbered graph.
    pub graph: UndirectedGraph,
    /// `original[new_id]` is the vertex's id in the input graph.
    pub original: Vec<VertexId>,
    /// `new_id[original]` is the vertex's id in the reordered graph.
    pub new_id: Vec<VertexId>,
}

impl Reordered {
    /// Maps a set of reordered vertex ids back to original ids (sorted).
    pub fn to_original(&self, vertices: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = vertices.iter().map(|&v| self.original[v as usize]).collect();
        out.sort_unstable();
        out
    }
}

/// Renumbers vertices by descending degree (ties by original id, so the
/// result is deterministic).
pub fn by_degree_descending(g: &UndirectedGraph) -> Reordered {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
    let mut new_id = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        new_id[old as usize] = new as VertexId;
    }
    let mut b = UndirectedGraphBuilder::with_capacity(n, g.num_edges());
    for (u, v) in g.edges() {
        b.push_edge(new_id[u as usize], new_id[v as usize]);
    }
    Reordered { graph: b.build().expect("renumbered ids are in range"), original: order, new_id }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedGraphBuilder;

    #[test]
    fn hub_becomes_vertex_zero() {
        // Star with hub 3.
        let g = UndirectedGraphBuilder::new(5)
            .add_edges([(3, 0), (3, 1), (3, 2), (3, 4)])
            .build()
            .unwrap();
        let r = by_degree_descending(&g);
        assert_eq!(r.original[0], 3);
        assert_eq!(r.graph.degree(0), 4);
    }

    #[test]
    fn structure_preserved() {
        let g = crate::gen::chung_lu(200, 1200, 2.3, 9);
        let r = by_degree_descending(&g);
        assert_eq!(r.graph.num_vertices(), g.num_vertices());
        assert_eq!(r.graph.num_edges(), g.num_edges());
        // Edges map one-to-one through the renumbering.
        for (u, v) in g.edges() {
            assert!(r.graph.has_edge(r.new_id[u as usize], r.new_id[v as usize]));
        }
        // Degrees are non-increasing in the new ordering.
        for v in 1..r.graph.num_vertices() {
            assert!(r.graph.degree(v as u32) <= r.graph.degree(v as u32 - 1));
        }
    }

    #[test]
    fn mapping_round_trips() {
        let g = crate::gen::erdos_renyi(50, 150, 4);
        let r = by_degree_descending(&g);
        for old in 0..50u32 {
            assert_eq!(r.original[r.new_id[old as usize] as usize], old);
        }
        let back = r.to_original(&[0, 1, 2]);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraphBuilder::new(0).build().unwrap();
        let r = by_degree_descending(&g);
        assert_eq!(r.graph.num_vertices(), 0);
    }
}
