//! The parallel counting-sort CSR construction engine (PR 4).
//!
//! Both graph builders and the chunked text parser funnel into this module,
//! which turns raw edge parts into a validated CSR with **no global
//! comparison sort** and **no intermediate deduplicated edge vector** — the
//! counting-sort / semisort construction the shared-memory reproductions
//! (Sukprasert et al. 2023; Sarıyüce et al.) use so that end-to-end wall
//! clock on large graphs measures the algorithms, not the loader:
//!
//! ```text
//! raw edge parts ──► validate  fused parallel range check + self-loop
//!                              filter + per-chunk bucket histograms
//!                ──► scatter   chunks pack each arc into its in-bucket
//!                              sort key and store it in their own
//!                              contiguous window of the staged key array,
//!                              grouped by coarse bucket = src >> shift
//!                ──► sort      per-bucket LSD counting passes: the first
//!                              gathers the bucket's per-chunk segments
//!                              (and pre-counts the final digit), the last
//!                              skips duplicate keys and streams per-vertex
//!                              degrees + destinations straight into CSR
//!                              staging, all L2-resident
//!                ──► count     parallel prefix sum → final offsets
//!                ──► emit      one contiguous per-bucket copy into the
//!                              final adjacency array
//! ```
//!
//! An arc `src → dst` is staged directly as its in-bucket sort key
//! `(src_low_bits << vbits) | dst` — within a bucket the high source bits
//! are constant, so equal keys ⇔ equal `(src, dst)` and key order is
//! `(src, dst)` order. The key width is `shift + vbits` bits, and for
//! every realistically-sized graph (`shift + vbits ≤ 31`) the whole
//! pipeline runs on **`u32` keys**, halving the memory traffic of the
//! scatter, every counting pass, and the count/emit scans on exactly the
//! arrays the single-thread hot path is bound on; wider graphs fall back
//! to the same code monomorphised over `u64`. After the coarse bucket
//! split the per-bucket LSD counting passes leave every bucket sorted by
//! `(source, dest)` — the per-vertex adjacency lists fall out sorted *by
//! construction* — and the sorted key array never materialises: the final
//! counting pass drops duplicate keys in-stream (a duplicate's equals
//! arrive consecutively within its digit bin) while writing each
//! survivor's degree tally and destination field directly, positioned by
//! a duplicate-inclusive bin histogram the gather pass tallied for free,
//! with a near-no-op compaction closing the gaps duplicates leave behind.
//! Buckets are
//! sized so a bucket's keys plus its scratch stay L2-resident
//! (`TARGET_BUCKET_ARCS`), which is what lets the counting passes beat a
//! global `O(m log m)` comparison sort even on one thread.
//!
//! There are deliberately **no atomics**: contended `fetch_add` scatter
//! cursors measure ~5x slower than plain stores on the bench hosts, so
//! parallelism comes from ownership instead — chunks own their local
//! histograms and their contiguous window of the staged key array (split
//! into per-bucket segments), buckets own disjoint regions of the sorted
//! key array and (because a bucket is a contiguous vertex range) disjoint
//! regions of the degree and adjacency arrays, handed out with
//! `split_at_mut`. Every pass is deterministic for any rayon pool size:
//! the chunk decomposition depends only on the input length, per-bucket
//! segments are concatenated in chunk order, counting passes are stable,
//! and the earliest invalid edge (in input order) is selected by an
//! index-minimising reduction so error payloads match the serial legacy
//! builders bit-for-bit.
//!
//! Each pass is bracketed by a `dsd-telemetry` span (phases `validate`,
//! `count`, `scatter`, `sort-dedup`; the parser adds `parse`), so
//! `bench_report`'s ingest section can attribute wall clock per stage.

use dsd_telemetry::{span, Phase};
use rayon::prelude::*;

use crate::{DirectedGraph, GraphError, Result, UndirectedGraph, VertexId};

/// Minimum edges per parallel work unit. Parts bigger than this are split
/// further so a single huge part still parallelises; the effective chunk
/// size grows with the input (see [`chunk_edges_for`]) so per-chunk bucket
/// histograms stay a vanishing fraction of the edge data.
const CHUNK: usize = 1 << 15;

/// Upper bound on the number of chunks, so per-chunk histogram memory is
/// `O(MAX_CHUNKS * buckets)` regardless of input size.
const MAX_CHUNKS: usize = 256;

/// Target arcs per radix bucket: 2^15 `u32` keys = 128 KiB, sized (by
/// measurement) so one bucket plus its scratch buffer stays comfortably
/// L2-resident during the counting passes.
const TARGET_BUCKET_ARCS: usize = 1 << 15;

/// Widest radix digit. 16 bits keeps the per-pass histogram at 256 KiB
/// worst case and means at most four passes over 64-bit keys.
const MAX_DIGIT_BITS: u32 = 16;

/// Target width of the radix's *final* digit, kept narrow on purpose: the
/// final pass tracks one last-seen key and one bin-start cursor per bin
/// (for the fused dedup), so its per-bucket bookkeeping is `3 × 2^fdigit`
/// words, and the duplicate-gap compaction walks `2^fdigit` bins.
const FINAL_DIGIT_BITS: u32 = 11;

/// Vertices per block in the parallel prefix sums.
const PREFIX_BLOCK: usize = 1 << 14;

/// First invalid edge found by a chunk scan: global edge index plus the
/// offending vertex id, `u` checked before `v` within an edge to match the
/// legacy serial scan.
type BadEdge = Option<(usize, u64)>;

fn earlier(a: BadEdge, b: BadEdge) -> BadEdge {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.0 <= y.0 { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Exclusive prefix sum of `counts` into an `n + 1` offset array, block
/// parallel: per-block sums, a serial scan over the (few) block totals,
/// then per-block offset fills.
fn exclusive_prefix_sum(counts: &[usize]) -> Vec<usize> {
    let n = counts.len();
    let mut offsets = vec![0usize; n + 1];
    if n == 0 {
        return offsets;
    }
    let block_sums: Vec<usize> =
        counts.par_chunks(PREFIX_BLOCK).map(|block| block.iter().sum()).collect();
    let mut block_starts = Vec::with_capacity(block_sums.len());
    let mut acc = 0usize;
    for &s in &block_sums {
        block_starts.push(acc);
        acc += s;
    }
    offsets[n] = acc;
    offsets[..n]
        .par_chunks_mut(PREFIX_BLOCK)
        .zip(counts.par_chunks(PREFIX_BLOCK))
        .zip(block_starts)
        .for_each(|((offset_block, count_block), start)| {
            let mut run = start;
            for (o, c) in offset_block.iter_mut().zip(count_block) {
                *o = run;
                run += c;
            }
        });
    offsets
}

/// Splits `buf` into per-vertex mutable slices according to `offsets`, so a
/// parallel pass can own each adjacency list without unsafe aliasing.
pub(crate) fn per_vertex_slices<'a, T>(
    mut buf: &'a mut [T],
    offsets: &[usize],
) -> Vec<&'a mut [T]> {
    let mut slices = Vec::with_capacity(offsets.len().saturating_sub(1));
    for w in offsets.windows(2) {
        let (head, tail) = buf.split_at_mut(w[1] - w[0]);
        slices.push(head);
        buf = tail;
    }
    slices
}

/// Which arcs one edge `(u, v)` contributes to the side being built.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Undirected: both `u → v` and `v → u`.
    Both,
    /// Directed out-side: `u → v`.
    Out,
    /// Directed in-side: `v → u`.
    In,
}

/// Radix layout shared by every pass of one [`csr_side`] run.
#[derive(Clone, Copy)]
struct Plan {
    /// Bits needed to hold any vertex id `< n` (the key's low field).
    vbits: u32,
    /// Coarse bucket of an arc = `source >> shift`.
    shift: u32,
    /// Number of coarse buckets.
    nb: usize,
    /// Radix digit width for the non-final per-bucket counting passes
    /// (zero when a single final pass covers the whole key).
    digit: u32,
    /// Digit width of the final (dedup-fused) counting pass.
    fdigit: u32,
    /// Number of per-bucket counting passes
    /// (`(passes - 1) * digit + fdigit ≥ shift + vbits`).
    passes: u32,
}

impl Plan {
    fn new(n: usize, max_arcs: usize) -> Plan {
        let top = n.saturating_sub(1);
        let vbits = if n <= 1 { 1 } else { usize::BITS - top.leading_zeros() };
        let want_buckets = (max_arcs / TARGET_BUCKET_ARCS).max(1);
        let mut shift = vbits;
        while shift > 0 && (top >> shift) < want_buckets {
            shift -= 1;
        }
        let nb = (top >> shift) + 1;
        let key_bits = shift + vbits;
        // The final pass gets a narrow digit (its per-bin dedup state makes
        // wide final digits expensive); the remaining low bits are split
        // evenly across the earlier passes.
        let (digit, fdigit, passes) = if key_bits <= FINAL_DIGIT_BITS + 1 {
            (0, key_bits, 1)
        } else {
            let rest = key_bits - FINAL_DIGIT_BITS;
            let low = rest.div_ceil(MAX_DIGIT_BITS);
            (rest.div_ceil(low), FINAL_DIGIT_BITS, low + 1)
        };
        Plan { vbits, shift, nb, digit, fdigit, passes }
    }

    #[inline]
    fn bucket(&self, src: VertexId) -> usize {
        (src >> self.shift) as usize
    }
}

/// A [`CHUNK`]-aligned window of one input part, with its global edge index.
struct ChunkRef<'a> {
    base: usize,
    edges: &'a [(VertexId, VertexId)],
}

/// Chunk size for this input: grows with the edge count so the number of
/// chunks (and with it the per-chunk histogram memory) stays bounded.
fn chunk_edges_for(total_edges: usize) -> usize {
    (total_edges / MAX_CHUNKS).max(CHUNK)
}

fn chunk_refs<'a>(parts: &[&'a [(VertexId, VertexId)]]) -> Vec<ChunkRef<'a>> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let step = chunk_edges_for(total);
    let mut chunks = Vec::new();
    let mut base = 0usize;
    for part in parts {
        for (ci, edges) in part.chunks(step).enumerate() {
            chunks.push(ChunkRef { base: base + ci * step, edges });
        }
        base += part.len();
    }
    chunks
}

/// Storage word for staged sort keys. [`csr_side`] picks `u32` whenever
/// the key width allows (the common case — half the memory traffic on
/// every key-array pass) and falls back to `u64`. `MAX` doubles as the
/// dedup scans' "no previous key" sentinel, so the dispatch only selects
/// a width that no valid key can saturate.
trait KeyWord: Copy + Eq + Send + Sync {
    const ZERO: Self;
    const MAX: Self;
    fn pack(key: u64) -> Self;
    fn get(self) -> u64;
}

impl KeyWord for u32 {
    const ZERO: Self = 0;
    const MAX: Self = u32::MAX;
    #[inline]
    fn pack(key: u64) -> Self {
        key as u32
    }
    #[inline]
    fn get(self) -> u64 {
        self as u64
    }
}

impl KeyWord for u64 {
    const ZERO: Self = 0;
    const MAX: Self = u64::MAX;
    #[inline]
    fn pack(key: u64) -> Self {
        key
    }
    #[inline]
    fn get(self) -> u64 {
        self
    }
}

/// One stable LSD counting pass over `src`, scattering into `dst` by the
/// `digit`-wide key field at bit `sh`. `hist` is scratch of len `1 << digit`.
fn counting_pass<K: KeyWord>(src: &[K], dst: &mut [K], sh: u32, hist: &mut [u32]) {
    hist.fill(0);
    let mask = (hist.len() - 1) as u64;
    for &a in src {
        hist[((a.get() >> sh) & mask) as usize] += 1;
    }
    let mut run = 0u32;
    for h in hist.iter_mut() {
        let c = *h;
        *h = run;
        run += c;
    }
    for &a in src {
        let d = ((a.get() >> sh) & mask) as usize;
        dst[hist[d] as usize] = a;
        hist[d] += 1;
    }
}

/// The radix's first counting pass, fused with the bucket gather: reads
/// the bucket's per-chunk `segs` of the staged array in chunk order (so
/// the pass stays stable) and scatters into one contiguous buffer by the
/// low key digit. The same read loop also tallies the *final* digit's
/// duplicate-inclusive histogram into `hist1` (final digit at bit `fsh`),
/// sparing [`final_pass`] a counting loop of its own.
fn gather_pass<K: KeyWord>(
    segs: &[&[K]],
    dst: &mut [K],
    hist: &mut [u32],
    hist1: &mut [u32],
    fsh: u32,
) {
    hist.fill(0);
    let mask = (hist.len() - 1) as u64;
    let mask1 = (hist1.len() - 1) as u64;
    for seg in segs {
        for &a in *seg {
            hist[(a.get() & mask) as usize] += 1;
            hist1[((a.get() >> fsh) & mask1) as usize] += 1;
        }
    }
    let mut run = 0u32;
    for h in hist.iter_mut() {
        let c = *h;
        *h = run;
        run += c;
    }
    for seg in segs {
        for &a in *seg {
            let d = (a.get() & mask) as usize;
            dst[hist[d] as usize] = a;
            hist[d] += 1;
        }
    }
}

/// The radix's final counting pass, fused with dedup and CSR staging: the
/// scatter writes each distinct key's destination field into `out` while
/// bumping its source's entry in `deg`. Duplicates are dropped in-stream:
/// a key's equals all land in the same digit bin, and within a bin they
/// arrive consecutively (earlier passes sorted all lower digits; with a
/// single pass the whole key *is* the bin index), so comparing against
/// the bin's last-seen key in `lastkey` suffices. `lastkey` uses `K::MAX`
/// as its "none yet" sentinel, which [`csr_side`]'s width dispatch keeps
/// unreachable.
///
/// `hist1` arrives holding the final digit's *duplicate-inclusive* bin
/// counts (tallied for free during [`gather_pass`]'s read loop), so no
/// counting loop runs here: the scatter positions by the dup-inclusive
/// prefix and each skipped duplicate leaves a gap at the end of its bin,
/// closed by a per-bin compaction afterwards. While no duplicate has been
/// skipped yet the compaction just advances its cursor, so on mostly-
/// distinct inputs it touches nothing.
fn final_pass<K: KeyWord>(
    segs: &[&[K]],
    out: &mut [VertexId],
    deg: &mut [usize],
    fsh: u32,
    vbits: u32,
    hist1: &mut [u32],
    bstart: &mut [u32],
    lastkey: &mut [K],
) {
    let mut run = 0u32;
    for (h, s) in hist1.iter_mut().zip(bstart.iter_mut()) {
        let c = *h;
        *h = run;
        *s = run;
        run += c;
    }
    lastkey.fill(K::MAX);
    let mask = (hist1.len() - 1) as u64;
    let vmask = (1u64 << vbits) - 1;
    for seg in segs {
        for &a in *seg {
            let d = ((a.get() >> fsh) & mask) as usize;
            if lastkey[d] != a {
                lastkey[d] = a;
                deg[(a.get() >> vbits) as usize] += 1;
                out[hist1[d] as usize] = (a.get() & vmask) as VertexId;
                hist1[d] += 1;
            }
        }
    }
    // Close the duplicate gaps: each bin's survivors sit at its start
    // (`bstart[d] .. hist1[d]`); slide them down over earlier bins' gaps.
    let mut w = 0usize;
    for d in 0..hist1.len() {
        let s = bstart[d] as usize;
        let e = hist1[d] as usize;
        if w == s {
            w = e;
            continue;
        }
        for i in s..e {
            out[w] = out[i];
            w += 1;
        }
    }
}

/// Sorts one bucket's staged per-chunk segments and streams the result
/// straight into the bucket's CSR staging: per-vertex distinct degrees in
/// `deg` and compacted destinations in `out`. The gather of the segments
/// is the first counting pass and [`final_pass`] fuses dedup + emission
/// into the last, so the fully-sorted key array never materialises. The
/// histograms, `bstart`, `lastkey`, and ping-pong scratch buffers are
/// caller-owned so consecutive buckets on a worker reuse warm buffers
/// instead of faulting in fresh zeroed pages per bucket.
fn sort_bucket<K: KeyWord>(
    plan: &Plan,
    segs: &[&[K]],
    deg: &mut [usize],
    out: &mut [VertexId],
    scratch: (&mut Vec<K>, &mut Vec<K>),
    hist: &mut [u32],
    hist1: &mut [u32],
    bstart: &mut [u32],
    lastkey: &mut [K],
) {
    let total: usize = segs.iter().map(|s| s.len()).sum();
    if total == 0 {
        return;
    }
    let vbits = plan.vbits;
    let fsh = (plan.passes - 1) * plan.digit;
    hist1.fill(0);
    if plan.passes == 1 {
        let mask1 = (hist1.len() - 1) as u64;
        for seg in segs {
            for &a in *seg {
                hist1[((a.get() >> fsh) & mask1) as usize] += 1;
            }
        }
        final_pass(segs, out, deg, fsh, vbits, hist1, bstart, lastkey);
        return;
    }
    let (s1, s2) = scratch;
    if s1.len() < total {
        s1.resize(total, K::ZERO);
    }
    gather_pass(segs, &mut s1[..total], hist, hist1, fsh);
    let mut in_s1 = true;
    for p in 1..plan.passes - 1 {
        if s2.len() < total {
            s2.resize(total, K::ZERO);
        }
        let sh = p * plan.digit;
        if in_s1 {
            counting_pass(&s1[..total], &mut s2[..total], sh, hist);
        } else {
            counting_pass(&s2[..total], &mut s1[..total], sh, hist);
        }
        in_s1 = !in_s1;
    }
    let last = if in_s1 { &s1[..total] } else { &s2[..total] };
    final_pass(&[last], out, deg, fsh, vbits, hist1, bstart, lastkey);
}

/// Builds one CSR side (offsets + sorted, deduplicated adjacency) from raw
/// edge parts. Validation is fused into the first pass and reports the
/// input-order-earliest out-of-range endpoint (checking `u` before `v`),
/// exactly like the legacy serial loop.
fn csr_side(
    n: usize,
    parts: &[&[(VertexId, VertexId)]],
    mode: Mode,
) -> std::result::Result<(Vec<usize>, Vec<VertexId>), GraphError> {
    let chunks = chunk_refs(parts);
    let total_edges: usize = parts.iter().map(|p| p.len()).sum();
    let arcs_per_edge = if mode == Mode::Both { 2 } else { 1 };
    let plan = Plan::new(n, total_edges * arcs_per_edge);
    // Keys are `shift + vbits` bits wide. The `u32` fast path insists on
    // ≤ 31 (not 32) so `u32::MAX` stays unreachable and can serve as the
    // dedup sentinel; a `u64` key of all ones would need 32 low source
    // bits *and* 32 destination bits, which only a dropped self-loop of
    // the maximal `VertexId` could produce, so `u64::MAX` is safe too.
    if plan.shift + plan.vbits <= 31 {
        csr_side_with::<u32>(n, &chunks, mode, &plan)
    } else {
        csr_side_with::<u64>(n, &chunks, mode, &plan)
    }
}

fn csr_side_with<K: KeyWord>(
    n: usize,
    chunks: &[ChunkRef<'_>],
    mode: Mode,
    plan: &Plan,
) -> std::result::Result<(Vec<usize>, Vec<VertexId>), GraphError> {
    let (shift, vbits) = (plan.shift, plan.vbits);

    // Pass 1 (validate): range-check every endpoint and histogram arcs per
    // coarse bucket, chunk-parallel.
    let counted: Vec<(Vec<u32>, BadEdge)> = {
        let _validate = span(Phase::IngestValidate);
        chunks
            .par_iter()
            .map(|chunk| {
                let mut counts = vec![0u32; plan.nb];
                let mut bad: BadEdge = None;
                for (i, &(u, v)) in chunk.edges.iter().enumerate() {
                    if (u as usize) >= n {
                        bad = Some((chunk.base + i, u as u64));
                        break;
                    }
                    if (v as usize) >= n {
                        bad = Some((chunk.base + i, v as u64));
                        break;
                    }
                    if u != v {
                        match mode {
                            Mode::Both => {
                                counts[plan.bucket(u)] += 1;
                                counts[plan.bucket(v)] += 1;
                            }
                            Mode::Out => counts[plan.bucket(u)] += 1,
                            Mode::In => counts[plan.bucket(v)] += 1,
                        }
                    }
                }
                (counts, bad)
            })
            .collect()
    };
    if let Some((_, vertex)) = counted.iter().fold(None, |acc, (_, bad)| earlier(acc, *bad)) {
        return Err(GraphError::VertexOutOfRange { vertex, n: n as u64 });
    }

    // Layout: the staged arc array is partitioned by chunk (in input
    // order, so the layout is independent of the pool size), and within a
    // chunk by bucket. `seg_base` is the prefix over the (chunk, bucket)
    // grid; bucket `b` of chunk `c` lives at
    // `seg_base[c * nb + b] .. seg_base[c * nb + b + 1]`.
    let nc = chunks.len();
    let nb = plan.nb;
    let mut seg_sizes = vec![0usize; nc * nb];
    for (c, (counts, _)) in counted.iter().enumerate() {
        for (b, &count) in counts.iter().enumerate() {
            seg_sizes[c * nb + b] = count as usize;
        }
    }
    let seg_base = exclusive_prefix_sum(&seg_sizes);
    let total_arcs = *seg_base.last().expect("seg_base non-empty");
    let mut staged = vec![K::ZERO; total_arcs];

    // Pass 2 (scatter): every chunk packs its arcs' sort keys straight
    // into its own contiguous window of the staged array, bucket cursors
    // resolved from the chunk's own histogram — plain stores, no shared
    // writes.
    {
        let _scatter = span(Phase::IngestScatter);
        let chunk_base: Vec<usize> = (0..=nc).map(|c| seg_base[c * nb]).collect();
        let smask = (1u64 << shift) - 1;
        chunks.par_iter().zip(&counted).zip(per_vertex_slices(&mut staged, &chunk_base)).for_each(
            |((chunk, (counts, _)), out)| {
                let mut cur = vec![0usize; nb];
                let mut run = 0usize;
                for (c, &count) in cur.iter_mut().zip(counts) {
                    *c = run;
                    run += count as usize;
                }
                macro_rules! stage {
                    ($src:expr, $dst:expr) => {{
                        let b = ($src >> shift) as usize;
                        out[cur[b]] = K::pack(((($src as u64) & smask) << vbits) | $dst as u64);
                        cur[b] += 1;
                    }};
                }
                // The mode dispatch stays outside the hot loop.
                match mode {
                    Mode::Both => {
                        for &(u, v) in chunk.edges {
                            if u != v {
                                stage!(u, v);
                                stage!(v, u);
                            }
                        }
                    }
                    Mode::Out => {
                        for &(u, v) in chunk.edges {
                            if u != v {
                                stage!(u, v);
                            }
                        }
                    }
                    Mode::In => {
                        for &(u, v) in chunk.edges {
                            if u != v {
                                stage!(v, u);
                            }
                        }
                    }
                }
            },
        );
    }

    // Pass 3 (sort + dedup): bucket-parallel LSD counting passes. A
    // bucket is a contiguous vertex range, so each bucket owns disjoint
    // regions of the degree array and of the compacted-destination
    // staging buffer; its first pass gathers its per-chunk segments out
    // of the staged array and its last streams the deduplicated result
    // straight into those regions.
    let bucket_totals: Vec<usize> =
        (0..nb).map(|b| counted.iter().map(|(counts, _)| counts[b] as usize).sum()).collect();
    let bucket_base = exclusive_prefix_sum(&bucket_totals);
    let bucket_vertex: Vec<usize> = (0..=nb).map(|b| (b << shift).min(n)).collect();
    let mut deg = vec![0usize; n];
    let mut compact: Vec<VertexId> = vec![0; total_arcs];
    {
        let _sort = span(Phase::IngestSortDedup);
        per_vertex_slices(&mut deg, &bucket_vertex)
            .into_par_iter()
            .zip(per_vertex_slices(&mut compact, &bucket_base))
            .enumerate()
            .for_each_init(
                || {
                    let bins = 1usize << plan.digit;
                    let fbins = 1usize << plan.fdigit;
                    (
                        vec![0u32; bins],
                        vec![0u32; fbins],
                        vec![0u32; fbins],
                        vec![K::MAX; fbins],
                        Vec::new(),
                        Vec::new(),
                    )
                },
                |(hist, hist1, bstart, lastkey, s1, s2), (b, (deg_slice, out))| {
                    let segs: Vec<&[K]> = (0..nc)
                        .map(|c| &staged[seg_base[c * nb + b]..seg_base[c * nb + b + 1]])
                        .collect();
                    sort_bucket(
                        plan,
                        &segs,
                        deg_slice,
                        out,
                        (s1, s2),
                        hist,
                        hist1,
                        bstart,
                        lastkey,
                    );
                },
            );
    }
    drop(staged);

    // Pass 4 (count): the final offsets are the degree prefix.
    let offsets = {
        let _count = span(Phase::IngestCount);
        exclusive_prefix_sum(&deg)
    };

    // Pass 5 (emit): the compacted destinations per bucket are exactly the
    // concatenated adjacency lists; one contiguous copy per bucket.
    let _dedup = span(Phase::IngestSortDedup);
    let final_total = *offsets.last().expect("offsets non-empty");
    let mut adj: Vec<VertexId> = vec![0; final_total];
    let bucket_adj: Vec<usize> = bucket_vertex.iter().map(|&v| offsets[v]).collect();
    per_vertex_slices(&mut adj, &bucket_adj).into_par_iter().enumerate().for_each(|(b, dst)| {
        dst.copy_from_slice(&compact[bucket_base[b]..bucket_base[b] + dst.len()]);
    });
    Ok((offsets, adj))
}

/// Builds an [`UndirectedGraph`] from raw edge parts via the counting-sort
/// pipeline. Self-loops are dropped, duplicates (in either orientation)
/// are removed, endpoints are validated against `n`, and per-vertex lists
/// come out sorted — the exact contract of
/// [`crate::UndirectedGraphBuilder::build_legacy`], without the global
/// `O(m log m)` comparison sort.
pub fn undirected_from_parts(
    n: usize,
    parts: &[&[(VertexId, VertexId)]],
) -> Result<UndirectedGraph> {
    let (offsets, adj) = csr_side(n, parts, Mode::Both)?;
    Ok(UndirectedGraph::from_csr(offsets, adj))
}

/// Builds a [`DirectedGraph`] (both CSR directions) from raw edge parts
/// via the counting-sort pipeline; the directed analogue of
/// [`undirected_from_parts`].
pub fn directed_from_parts(n: usize, parts: &[&[(VertexId, VertexId)]]) -> Result<DirectedGraph> {
    let (out_offsets, out_adj) = csr_side(n, parts, Mode::Out)?;
    let (in_offsets, in_adj) = csr_side(n, parts, Mode::In)?;
    debug_assert_eq!(out_adj.len(), in_adj.len(), "arc dedup must agree on both sides");
    Ok(DirectedGraph::from_csr(out_offsets, out_adj, in_offsets, in_adj))
}

/// [`undirected_from_parts`] over owned chunk vectors (the shape
/// [`crate::io`]'s parallel parser produces) — the chunks are borrowed,
/// never re-concatenated.
pub fn undirected_from_chunks(
    n: usize,
    chunks: &[Vec<(VertexId, VertexId)>],
) -> Result<UndirectedGraph> {
    let parts: Vec<&[(VertexId, VertexId)]> = chunks.iter().map(Vec::as_slice).collect();
    undirected_from_parts(n, &parts)
}

/// [`directed_from_parts`] over owned chunk vectors.
pub fn directed_from_chunks(
    n: usize,
    chunks: &[Vec<(VertexId, VertexId)>],
) -> Result<DirectedGraph> {
    let parts: Vec<&[(VertexId, VertexId)]> = chunks.iter().map(Vec::as_slice).collect();
    directed_from_parts(n, &parts)
}

pub(crate) use per_vertex_slices as vertex_slices;

pub(crate) fn prefix_sum(counts: &[usize]) -> Vec<usize> {
    exclusive_prefix_sum(counts)
}

// ---------------------------------------------------------------------------
// Spill mode: bounded-RSS shard ingest (PR 6)
// ---------------------------------------------------------------------------
//
// The in-memory pipeline above stages every arc at once (the staged key
// array is `O(total arcs)`), which is exactly what must not happen when the
// edge set dwarfs RAM. Spill mode trades one round trip through the
// filesystem for a working set bounded by the shard size: arcs are packed
// into `(src << 32) | dst` keys a *window* at a time, each full window is
// sorted, deduplicated and written to a temporary shard file
// (`ingest/spill` phase), and the shards are k-way merged — with global
// dedup falling out of the merge order — straight into the CSR or the
// delta-varint compressed builder (`ingest/merge` phase). Validation runs
// first over the same chunk decomposition as the in-memory pipeline, with
// the same earliest-invalid-edge reduction, so error payloads and success
// results are bit-identical to `build`/`build_legacy` at every pool size:
// window boundaries depend only on the input order, window sorts are
// value-deterministic, and the merge is serial.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufWriter as IoBufWriter, Read as IoRead, Write as IoWrite};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::compress::{encode_adj_from_sorted, CompressedAdj, CompressedCsr, CompressedDigraph};

/// Default arcs per spill window: 4M packed keys = 32 MiB of sort buffer.
pub const DEFAULT_SHARD_ARCS: usize = 1 << 22;

/// u64 records per merge read block (64 KiB per shard stream).
const MERGE_BLOCK: usize = 8 << 10;

/// Tuning for spill-mode ingest.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Maximum arcs held in the in-memory window before a shard is
    /// spilled. Peak ingest RSS is `O(shard_arcs)` plus the output arrays.
    pub shard_arcs: usize,
    /// Directory for shard files; the system temp dir when `None`. A
    /// fresh uniquely-named subdirectory is created and removed per run.
    pub dir: Option<PathBuf>,
}

impl Default for SpillConfig {
    fn default() -> Self {
        Self { shard_arcs: DEFAULT_SHARD_ARCS, dir: None }
    }
}

impl SpillConfig {
    /// A config with the given window size (clamped to ≥ 1024 arcs so
    /// degenerate settings cannot produce one shard per edge).
    pub fn with_shard_arcs(shard_arcs: usize) -> Self {
        Self { shard_arcs: shard_arcs.max(1024), ..Self::default() }
    }
}

static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// RAII guard for the per-run shard directory (removed best-effort on
/// drop, so early error returns never leak shards).
struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    fn create(cfg: &SpillConfig) -> Result<Self> {
        let base = cfg.dir.clone().unwrap_or_else(std::env::temp_dir);
        let path = base.join(format!(
            "dsd-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(Self { path })
    }

    fn shard_path(&self, i: usize) -> PathBuf {
        self.path.join(format!("shard-{i}.arcs"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Range-checks every endpoint with the same chunk decomposition and
/// earliest-invalid-edge reduction as the in-memory pipeline, so spill
/// mode reports identical errors.
fn validate_parts(n: usize, chunks: &[ChunkRef<'_>]) -> Result<()> {
    let _validate = span(Phase::IngestValidate);
    let bad = chunks
        .par_iter()
        .map(|chunk| {
            let mut bad: BadEdge = None;
            for (i, &(u, v)) in chunk.edges.iter().enumerate() {
                if (u as usize) >= n {
                    bad = Some((chunk.base + i, u as u64));
                    break;
                }
                if (v as usize) >= n {
                    bad = Some((chunk.base + i, v as u64));
                    break;
                }
            }
            bad
        })
        .reduce(|| None, earlier);
    if let Some((_, vertex)) = bad {
        return Err(GraphError::VertexOutOfRange { vertex, n: n as u64 });
    }
    Ok(())
}

#[inline]
fn pack_arc(src: VertexId, dst: VertexId) -> u64 {
    (u64::from(src) << 32) | u64::from(dst)
}

/// Sorts, dedups and writes one window as a shard file of u64 LE records.
fn flush_window(window: &mut Vec<u64>, dir: &SpillDir, idx: usize) -> Result<()> {
    let _spill = span(Phase::IngestSpill);
    window.par_sort_unstable();
    window.dedup();
    let mut w = IoBufWriter::new(File::create(dir.shard_path(idx))?);
    for &key in window.iter() {
        w.write_all(&key.to_le_bytes())?;
    }
    w.flush()?;
    window.clear();
    Ok(())
}

/// Writes sorted deduplicated arc shards for one adjacency side and
/// returns how many shards were spilled.
fn spill_shards(
    parts: &[&[(VertexId, VertexId)]],
    mode: Mode,
    cfg: &SpillConfig,
    dir: &SpillDir,
) -> Result<usize> {
    let cap = cfg.shard_arcs.max(1024);
    let mut window: Vec<u64> = Vec::with_capacity(cap.min(1 << 26));
    let mut shards = 0usize;
    let push = |window: &mut Vec<u64>, key: u64, shards: &mut usize| -> Result<()> {
        window.push(key);
        if window.len() >= cap {
            flush_window(window, dir, *shards)?;
            *shards += 1;
        }
        Ok(())
    };
    for part in parts {
        for &(u, v) in *part {
            if u == v {
                continue;
            }
            match mode {
                Mode::Both => {
                    push(&mut window, pack_arc(u, v), &mut shards)?;
                    push(&mut window, pack_arc(v, u), &mut shards)?;
                }
                Mode::Out => push(&mut window, pack_arc(u, v), &mut shards)?,
                Mode::In => push(&mut window, pack_arc(v, u), &mut shards)?,
            }
        }
    }
    if !window.is_empty() {
        flush_window(&mut window, dir, shards)?;
        shards += 1;
    }
    Ok(shards)
}

/// Buffered u64-record reader over one shard file.
struct ShardStream {
    file: File,
    buf: Vec<u64>,
    pos: usize,
}

impl ShardStream {
    fn open(path: &PathBuf) -> Result<Self> {
        Ok(Self { file: File::open(path)?, buf: Vec::new(), pos: 0 })
    }

    fn next_key(&mut self) -> Result<Option<u64>> {
        if self.pos == self.buf.len() {
            let mut bytes = vec![0u8; MERGE_BLOCK * 8];
            let mut filled = 0usize;
            loop {
                match self.file.read(&mut bytes[filled..]) {
                    Ok(0) => break,
                    Ok(k) => {
                        filled += k;
                        if filled == bytes.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            if filled % 8 != 0 {
                return Err(GraphError::Format {
                    message: "spill shard truncated mid-record".into(),
                });
            }
            self.buf.clear();
            for rec in bytes[..filled].chunks_exact(8) {
                self.buf.push(u64::from_le_bytes(rec.try_into().expect("8 bytes")));
            }
            self.pos = 0;
            if self.buf.is_empty() {
                return Ok(None);
            }
        }
        let k = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(k))
    }
}

/// K-way merge over sorted shard files with on-the-fly global dedup.
/// Yields strictly increasing `(src, dst)` arcs.
struct ShardMerge {
    streams: Vec<ShardStream>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    last: Option<u64>,
    error: Option<GraphError>,
}

impl ShardMerge {
    fn new(dir: &SpillDir, shards: usize) -> Result<Self> {
        let mut streams = Vec::with_capacity(shards);
        let mut heap = BinaryHeap::with_capacity(shards);
        for i in 0..shards {
            let mut s = ShardStream::open(&dir.shard_path(i))?;
            if let Some(k) = s.next_key()? {
                heap.push(Reverse((k, i)));
            }
            streams.push(s);
        }
        Ok(Self { streams, heap, last: None, error: None })
    }

    fn take_error(self) -> Result<()> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Iterator for &mut ShardMerge {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<(VertexId, VertexId)> {
        if self.error.is_some() {
            return None;
        }
        loop {
            let Reverse((key, i)) = self.heap.pop()?;
            match self.streams[i].next_key() {
                Ok(Some(k)) => self.heap.push(Reverse((k, i))),
                Ok(None) => {}
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
            if self.last != Some(key) {
                self.last = Some(key);
                return Some(((key >> 32) as VertexId, key as VertexId));
            }
        }
    }
}

/// Builds one plain CSR side by streaming the merged shards.
fn csr_side_spill(
    n: usize,
    parts: &[&[(VertexId, VertexId)]],
    mode: Mode,
    cfg: &SpillConfig,
) -> Result<(Vec<usize>, Vec<VertexId>)> {
    let dir = SpillDir::create(cfg)?;
    let shards = spill_shards(parts, mode, cfg, &dir)?;
    let _merge = span(Phase::IngestMerge);
    let mut merge = ShardMerge::new(&dir, shards)?;
    let mut offsets = vec![0usize; n + 1];
    let mut adj: Vec<VertexId> = Vec::new();
    for (src, dst) in &mut merge {
        offsets[src as usize + 1] += 1;
        adj.push(dst);
    }
    merge.take_error()?;
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    debug_assert_eq!(*offsets.last().expect("offsets non-empty"), adj.len());
    Ok((offsets, adj))
}

/// Spill-mode analogue of [`undirected_from_parts`]: identical result and
/// error behaviour, peak ingest working set bounded by
/// [`SpillConfig::shard_arcs`] instead of the total arc count.
pub fn undirected_from_parts_spill(
    n: usize,
    parts: &[&[(VertexId, VertexId)]],
    cfg: &SpillConfig,
) -> Result<UndirectedGraph> {
    validate_parts(n, &chunk_refs(parts))?;
    let (offsets, adj) = csr_side_spill(n, parts, Mode::Both, cfg)?;
    Ok(UndirectedGraph::from_csr(offsets, adj))
}

/// Spill-mode analogue of [`directed_from_parts`].
pub fn directed_from_parts_spill(
    n: usize,
    parts: &[&[(VertexId, VertexId)]],
    cfg: &SpillConfig,
) -> Result<DirectedGraph> {
    validate_parts(n, &chunk_refs(parts))?;
    let (out_offsets, out_adj) = csr_side_spill(n, parts, Mode::Out, cfg)?;
    let (in_offsets, in_adj) = csr_side_spill(n, parts, Mode::In, cfg)?;
    debug_assert_eq!(out_adj.len(), in_adj.len(), "arc dedup must agree on both sides");
    Ok(DirectedGraph::from_csr(out_offsets, out_adj, in_offsets, in_adj))
}

/// Spill ingest fused with the delta-varint encoder: the merged arc
/// stream feeds [`crate::compress`]'s streaming builder directly, so the
/// plain `O(m)` adjacency array is never materialised — peak RSS is the
/// spill window plus the *compressed* output.
pub fn undirected_compressed_from_parts_spill(
    n: usize,
    parts: &[&[(VertexId, VertexId)]],
    cfg: &SpillConfig,
) -> Result<CompressedCsr> {
    validate_parts(n, &chunk_refs(parts))?;
    let dir = SpillDir::create(cfg)?;
    let shards = spill_shards(parts, Mode::Both, cfg, &dir)?;
    let _merge = span(Phase::IngestMerge);
    let mut merge = ShardMerge::new(&dir, shards)?;
    let encoded = encode_adj_from_sorted(n, &mut merge);
    merge.take_error()?;
    Ok(CompressedCsr::from_adj(CompressedAdj::from_encoded(encoded)))
}

/// Directed spill ingest fused with the delta-varint encoder; see
/// [`undirected_compressed_from_parts_spill`].
pub fn directed_compressed_from_parts_spill(
    n: usize,
    parts: &[&[(VertexId, VertexId)]],
    cfg: &SpillConfig,
) -> Result<CompressedDigraph> {
    validate_parts(n, &chunk_refs(parts))?;
    let mut sides = Vec::with_capacity(2);
    for mode in [Mode::Out, Mode::In] {
        let dir = SpillDir::create(cfg)?;
        let shards = spill_shards(parts, mode, cfg, &dir)?;
        let _merge = span(Phase::IngestMerge);
        let mut merge = ShardMerge::new(&dir, shards)?;
        let encoded = encode_adj_from_sorted(n, &mut merge);
        merge.take_error()?;
        sides.push(encoded);
    }
    let inc = sides.pop().expect("two sides");
    let out = sides.pop().expect("two sides");
    CompressedDigraph::from_sides(
        CompressedAdj::from_encoded(out),
        CompressedAdj::from_encoded(inc),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sum_matches_serial() {
        let counts: Vec<usize> = (0..100_000).map(|i| (i * 7 + 3) % 11).collect();
        let offsets = exclusive_prefix_sum(&counts);
        assert_eq!(offsets.len(), counts.len() + 1);
        let mut acc = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(offsets[i], acc);
            acc += c;
        }
        assert_eq!(*offsets.last().unwrap(), acc);
    }

    #[test]
    fn prefix_sum_empty() {
        assert_eq!(exclusive_prefix_sum(&[]), vec![0]);
    }

    #[test]
    fn per_vertex_slices_partition() {
        let offsets = vec![0usize, 3, 3, 7, 10];
        let mut buf: Vec<u32> = (0..10).collect();
        let slices = per_vertex_slices(&mut buf, &offsets);
        assert_eq!(slices.len(), 4);
        assert_eq!(slices[0], &[0, 1, 2]);
        assert!(slices[1].is_empty());
        assert_eq!(slices[3], &[7, 8, 9]);
    }

    #[test]
    fn plan_covers_key_bits() {
        for n in [1usize, 2, 5, 400, 70_000, 1 << 20, 1 << 26] {
            for max_arcs in [0usize, 100, 1 << 16, 1 << 22] {
                let p = Plan::new(n, max_arcs);
                assert!(
                    (p.passes - 1) * p.digit + p.fdigit >= p.shift + p.vbits,
                    "n={n} arcs={max_arcs}"
                );
                assert!(p.digit <= MAX_DIGIT_BITS && p.fdigit <= MAX_DIGIT_BITS);
                // every valid id maps to a bucket below nb
                assert!(((n.saturating_sub(1)) >> p.shift) < p.nb);
            }
        }
    }

    #[test]
    fn undirected_multi_part_equals_single_part() {
        let edges: Vec<(u32, u32)> = (0..500u32)
            .map(|i| (i % 40, (i * 7 + 1) % 40))
            .chain([(3, 3), (1, 0), (0, 1)])
            .collect();
        let single = undirected_from_parts(40, &[&edges]).unwrap();
        let (a, b) = edges.split_at(137);
        let (b, c) = b.split_at(211);
        let multi = undirected_from_parts(40, &[a, b, c]).unwrap();
        assert_eq!(single, multi);
    }

    #[test]
    fn directed_multi_part_equals_single_part() {
        let edges: Vec<(u32, u32)> =
            (0..500u32).map(|i| ((i * 3) % 31, (i * 11 + 2) % 31)).collect();
        let single = directed_from_parts(31, &[&edges]).unwrap();
        let (a, b) = edges.split_at(250);
        let multi = directed_from_parts(31, &[a, b]).unwrap();
        assert_eq!(single, multi);
    }

    #[test]
    fn earliest_invalid_edge_wins() {
        // Two bad edges; the part boundary must not change which one is
        // reported (the input-order-earliest, vertex 77).
        let head: Vec<(u32, u32)> = (0..300u32).map(|i| (i % 10, (i + 1) % 10)).collect();
        let mut a = head.clone();
        a.push((77, 0));
        let b = vec![(0u32, 1u32), (99, 1)];
        let err = undirected_from_parts(10, &[&a, &b]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 77, n: 10 }));
        let err = directed_from_parts(10, &[&a, &b]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 77, n: 10 }));
    }

    #[test]
    fn empty_parts_build_isolated_graph() {
        let g = undirected_from_parts(5, &[]).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        let d = directed_from_chunks(4, &[Vec::new(), Vec::new()]).unwrap();
        assert_eq!(d.num_vertices(), 4);
        assert_eq!(d.num_edges(), 0);
    }

    #[test]
    fn multi_pass_radix_matches_legacy() {
        // n > 2^16 forces multiple counting passes per bucket; compare
        // against the legacy sort-based oracle on a duplicate-heavy input.
        let n = 70_003usize;
        let mut state = 11u64;
        let mut edges = Vec::new();
        for _ in 0..60_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 16) as usize % n) as u32;
            let v = ((state >> 40) as usize % n) as u32;
            edges.push((u, v));
            if state % 5 == 0 {
                edges.push((v, u)); // duplicate in the other orientation
            }
        }
        let engine = undirected_from_parts(n, &[&edges]).unwrap();
        let mut b = crate::UndirectedGraphBuilder::with_capacity(n, edges.len());
        for &(u, v) in &edges {
            b.push_edge(u, v);
        }
        let legacy = b.build_legacy().unwrap();
        assert_eq!(engine, legacy);

        let dengine = directed_from_parts(n, &[&edges]).unwrap();
        let mut b = crate::DirectedGraphBuilder::with_capacity(n, edges.len());
        for &(u, v) in &edges {
            b.push_edge(u, v);
        }
        assert_eq!(dengine, b.build_legacy().unwrap());
    }

    /// A duplicate- and self-loop-heavy edge soup for the spill tests.
    fn spill_edges(n: usize, count: usize) -> Vec<(u32, u32)> {
        let mut state = 7u64;
        let mut edges = Vec::with_capacity(count + count / 3);
        for _ in 0..count {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 16) as usize % n) as u32;
            let v = ((state >> 40) as usize % n) as u32;
            edges.push((u, v));
            if state % 3 == 0 {
                edges.push((u, v)); // exact duplicate crossing shard boundaries
            }
            if state % 7 == 0 {
                edges.push((u, u)); // self-loop to drop
            }
        }
        edges
    }

    #[test]
    fn spill_matches_in_memory_with_multiple_shards() {
        let n = 1500usize;
        let edges = spill_edges(n, 12_000);
        // Tiny window (clamped floor is 1024) forces many shards.
        let cfg = SpillConfig::with_shard_arcs(0);
        assert_eq!(cfg.shard_arcs, 1024);
        let (a, b) = edges.split_at(edges.len() / 3);
        let spilled = undirected_from_parts_spill(n, &[a, b], &cfg).unwrap();
        assert_eq!(spilled, undirected_from_parts(n, &[a, b]).unwrap());
        let dspilled = directed_from_parts_spill(n, &[a, b], &cfg).unwrap();
        assert_eq!(dspilled, directed_from_parts(n, &[a, b]).unwrap());
    }

    #[test]
    fn spill_single_shard_and_empty_inputs() {
        let edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 0), (1, 0)];
        let cfg = SpillConfig::default();
        let g = undirected_from_parts_spill(3, &[&edges], &cfg).unwrap();
        assert_eq!(g, undirected_from_parts(3, &[&edges]).unwrap());
        let empty = undirected_from_parts_spill(4, &[], &cfg).unwrap();
        assert_eq!(empty.num_vertices(), 4);
        assert_eq!(empty.num_edges(), 0);
        let dempty = directed_from_parts_spill(4, &[], &cfg).unwrap();
        assert_eq!(dempty.num_edges(), 0);
    }

    #[test]
    fn spill_reports_earliest_invalid_edge_like_in_memory() {
        let head: Vec<(u32, u32)> = (0..300u32).map(|i| (i % 10, (i + 1) % 10)).collect();
        let mut a = head.clone();
        a.push((77, 0));
        let b = vec![(0u32, 1u32), (99, 1)];
        let cfg = SpillConfig::with_shard_arcs(0);
        let err = undirected_from_parts_spill(10, &[&a, &b], &cfg).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 77, n: 10 }));
        let err = directed_from_parts_spill(10, &[&a, &b], &cfg).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 77, n: 10 }));
    }

    #[test]
    fn compressed_spill_matches_direct_compression() {
        let n = 900usize;
        let edges = spill_edges(n, 8_000);
        let cfg = SpillConfig::with_shard_arcs(0);
        let plain = undirected_from_parts(n, &[&edges]).unwrap();
        let c = undirected_compressed_from_parts_spill(n, &[&edges], &cfg).unwrap();
        assert_eq!(c.decompress(), plain);
        let dplain = directed_from_parts(n, &[&edges]).unwrap();
        let dc = directed_compressed_from_parts_spill(n, &[&edges], &cfg).unwrap();
        assert_eq!(dc.decompress(), dplain);
    }

    #[test]
    fn spill_deterministic_across_pool_sizes() {
        let n = 1200usize;
        let edges = spill_edges(n, 10_000);
        let cfg = SpillConfig::with_shard_arcs(0);
        let reference = undirected_from_parts_spill(n, &[&edges], &cfg).unwrap();
        let dreference = directed_from_parts_spill(n, &[&edges], &cfg).unwrap();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let (g, d) = pool.install(|| {
                (
                    undirected_from_parts_spill(n, &[&edges], &cfg).unwrap(),
                    directed_from_parts_spill(n, &[&edges], &cfg).unwrap(),
                )
            });
            assert_eq!(g, reference, "pool size {threads}");
            assert_eq!(d, dreference, "pool size {threads}");
        }
    }
}
