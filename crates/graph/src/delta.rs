//! Edge-delta batches: validated sets of edge insertions/deletions that the
//! dynamic maintenance engine (`dsd-core`'s `dynamic` module) applies to a
//! base graph.
//!
//! A [`DeltaBatch`] is representation-agnostic — the same batch applies to
//! an undirected or a directed base graph, with kind-specific
//! canonicalisation happening at apply time (undirected pairs collapse to
//! `(min, max)`). Semantic validation against the base graph — an insert
//! must not already exist, a remove must — produces **identical error
//! strings** whether the batch was parsed from the text format or decoded
//! from the `DSDDELTA` binary format ([`crate::binio`]), so callers and
//! tests can assert exact parity across sources.
//!
//! Text format: one operation per line, `+ u v` (insert) or `- u v`
//! (remove), with `#`/`%` comment lines and blanks ignored and errors
//! reported with the same 1-based *physical* line numbers as the edge-list
//! parser in [`crate::io`].
//!
//! The module also provides [`UndirectedOverlay`], a zero-copy view of
//! "base graph minus removed edges plus *revealed* inserted edges" that
//! implements [`NeighborAccess`], so the h-index sweep engine can run on
//! the updated graph without rebuilding its CSR. Insertions start hidden
//! and are revealed one at a time ([`UndirectedOverlay::reveal_insert`]):
//! the incremental core-maintenance proof requires exact convergence on
//! each intermediate graph `G_i = base − removes + first i inserts`, and a
//! view of the *final* graph would leave stale-high h-values between
//! insertions.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use crate::{DirectedGraph, GraphError, NeighborAccess, Result, UndirectedGraph, VertexId};

/// A validated batch of edge insertions and removals.
///
/// Structural invariants enforced at construction ([`DeltaBatch::new`]):
/// the batch is non-empty, contains no self-loops, no duplicate operations,
/// and no edge that is both inserted and removed. Pairs are stored exactly
/// as given; undirected canonicalisation happens at apply time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    inserts: Vec<(VertexId, VertexId)>,
    removes: Vec<(VertexId, VertexId)>,
}

/// Shared error text for an empty batch — identical from the text parser,
/// the binary decoder, and direct construction, for exact parity.
pub(crate) fn empty_batch_error() -> GraphError {
    GraphError::InvalidArgument("empty delta batch: no insertions or removals".into())
}

fn self_loop_error(u: VertexId) -> GraphError {
    GraphError::InvalidArgument(format!("delta contains a self-loop at vertex {u}"))
}

fn duplicate_error(op: char, u: VertexId, v: VertexId) -> GraphError {
    GraphError::InvalidArgument(format!("duplicate delta operation '{op} {u} {v}'"))
}

fn overlap_error(u: VertexId, v: VertexId) -> GraphError {
    GraphError::InvalidArgument(format!("edge ({u}, {v}) is both inserted and removed"))
}

impl DeltaBatch {
    /// Builds a batch from raw insert/remove pairs, checking the structural
    /// invariants. Duplicate and overlap detection treats `(u, v)` and
    /// `(v, u)` as distinct — a directed batch may legitimately contain
    /// both; undirected apply collapses them and re-checks.
    pub fn new(
        inserts: Vec<(VertexId, VertexId)>,
        removes: Vec<(VertexId, VertexId)>,
    ) -> Result<Self> {
        if inserts.is_empty() && removes.is_empty() {
            return Err(empty_batch_error());
        }
        let mut seen = HashSet::with_capacity(inserts.len() + removes.len());
        for &(u, v) in &inserts {
            if u == v {
                return Err(self_loop_error(u));
            }
            if !seen.insert((u, v)) {
                return Err(duplicate_error('+', u, v));
            }
        }
        let insert_set: HashSet<(VertexId, VertexId)> = inserts.iter().copied().collect();
        seen.clear();
        for &(u, v) in &removes {
            if u == v {
                return Err(self_loop_error(u));
            }
            if !seen.insert((u, v)) {
                return Err(duplicate_error('-', u, v));
            }
            if insert_set.contains(&(u, v)) {
                return Err(overlap_error(u, v));
            }
        }
        Ok(Self { inserts, removes })
    }

    /// Edge insertions, in batch order.
    pub fn inserts(&self) -> &[(VertexId, VertexId)] {
        &self.inserts
    }

    /// Edge removals, in batch order.
    pub fn removes(&self) -> &[(VertexId, VertexId)] {
        &self.removes
    }

    /// Total number of operations in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.removes.len()
    }

    /// `true` iff the batch holds no operations (unreachable through
    /// [`DeltaBatch::new`], which rejects empty batches).
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.removes.is_empty()
    }

    /// Parses the text delta format (`+ u v` / `- u v` lines) from a
    /// reader. Errors follow the [`crate::io`] convention: 1-based physical
    /// line numbers counting comments and blanks.
    pub fn parse<R: Read>(reader: R) -> Result<Self> {
        let mut inserts = Vec::new();
        let mut removes = Vec::new();
        let reader = BufReader::new(reader);
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
                continue;
            }
            let mut it = trimmed.split_whitespace();
            let op = it.next().expect("non-empty trimmed line has a first token");
            let parse_err = |message: String| GraphError::Parse { line: lineno + 1, message };
            if op != "+" && op != "-" {
                return Err(parse_err(format!("bad op: expected '+' or '-', got '{op}'")));
            }
            let u: u64 = it
                .next()
                .ok_or_else(|| parse_err("missing source".into()))?
                .parse()
                .map_err(|e| parse_err(format!("bad source: {e}")))?;
            let v: u64 = it
                .next()
                .ok_or_else(|| parse_err("missing target".into()))?
                .parse()
                .map_err(|e| parse_err(format!("bad target: {e}")))?;
            if u > u32::MAX as u64 || v > u32::MAX as u64 {
                return Err(parse_err("vertex id exceeds u32::MAX".into()));
            }
            if op == "+" {
                inserts.push((u as VertexId, v as VertexId));
            } else {
                removes.push((u as VertexId, v as VertexId));
            }
        }
        Self::new(inserts, removes)
    }

    /// Reads a delta file, sniffing the format: files starting with the
    /// `DSDDELTA` magic decode through [`crate::binio::read_delta`],
    /// anything else parses as text.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        if bytes.starts_with(crate::binio::DELTA_MAGIC) {
            crate::binio::read_delta(&bytes[..])
        } else {
            Self::parse(&bytes[..])
        }
    }

    /// Canonical undirected view: every pair collapsed to `(min, max)`,
    /// with the duplicate/overlap invariants re-checked post-collapse
    /// (a batch holding `+ 1 2` and `+ 2 1` is valid directed but a
    /// duplicate undirected).
    pub fn canonical_undirected(
        &self,
    ) -> Result<(Vec<(VertexId, VertexId)>, Vec<(VertexId, VertexId)>)> {
        let canon = |&(u, v): &(VertexId, VertexId)| (u.min(v), u.max(v));
        let inserts: Vec<_> = self.inserts.iter().map(canon).collect();
        let removes: Vec<_> = self.removes.iter().map(canon).collect();
        let mut seen = HashSet::with_capacity(inserts.len() + removes.len());
        for &(u, v) in &inserts {
            if !seen.insert((u, v)) {
                return Err(duplicate_error('+', u, v));
            }
        }
        let insert_set: HashSet<(VertexId, VertexId)> = inserts.iter().copied().collect();
        seen.clear();
        for &(u, v) in &removes {
            if !seen.insert((u, v)) {
                return Err(duplicate_error('-', u, v));
            }
            if insert_set.contains(&(u, v)) {
                return Err(overlap_error(u, v));
            }
        }
        Ok((inserts, removes))
    }
}

fn range_check(u: VertexId, n: usize) -> Result<()> {
    if (u as usize) < n {
        Ok(())
    } else {
        Err(GraphError::VertexOutOfRange { vertex: u as u64, n: n as u64 })
    }
}

/// Shared error text for removing an edge the base graph does not contain.
fn remove_missing_error(u: VertexId, v: VertexId) -> GraphError {
    GraphError::InvalidArgument(format!(
        "delta removes edge ({u}, {v}) not present in the base graph"
    ))
}

/// Shared error text for inserting an edge the base graph already contains.
fn insert_existing_error(u: VertexId, v: VertexId) -> GraphError {
    GraphError::InvalidArgument(format!(
        "delta inserts edge ({u}, {v}) already present in the base graph"
    ))
}

/// Patches one CSR direction in `O(n + m + b log b)` for a `b`-operation
/// batch: adjacency lists of untouched vertices are copied wholesale
/// (memcpy), only the `O(b)` touched lists are merge-rewritten. `add` and
/// `del` hold `(owner, neighbour)` entries; both are sorted in place.
/// Callers guarantee entries are valid (adds absent from the base list,
/// dels present, no duplicates) — exactly what delta validation checks.
fn patch_csr(
    offsets: &[usize],
    adj: &[VertexId],
    add: &mut Vec<(VertexId, VertexId)>,
    del: &mut Vec<(VertexId, VertexId)>,
) -> (Vec<usize>, Vec<VertexId>) {
    add.sort_unstable();
    del.sort_unstable();
    let n = offsets.len() - 1;
    let mut new_offsets = Vec::with_capacity(n + 1);
    let mut new_adj = Vec::with_capacity(adj.len() + add.len() - del.len());
    new_offsets.push(0usize);
    let (mut ai, mut di) = (0usize, 0usize);
    for v in 0..n as VertexId {
        let base = &adj[offsets[v as usize]..offsets[v as usize + 1]];
        let a0 = ai;
        while ai < add.len() && add[ai].0 == v {
            ai += 1;
        }
        let d0 = di;
        while di < del.len() && del[di].0 == v {
            di += 1;
        }
        if a0 == ai && d0 == di {
            new_adj.extend_from_slice(base);
        } else {
            // Both patch runs are sorted by neighbour (lexicographic tuple
            // sort with equal owners), so a single merge pass keeps the
            // rebuilt list sorted.
            let adds = &add[a0..ai];
            let dels = &del[d0..di];
            let mut k = 0;
            for &w in base {
                if dels.binary_search_by_key(&w, |e| e.1).is_ok() {
                    continue;
                }
                while k < adds.len() && adds[k].1 < w {
                    new_adj.push(adds[k].1);
                    k += 1;
                }
                new_adj.push(w);
            }
            while k < adds.len() {
                new_adj.push(adds[k].1);
                k += 1;
            }
        }
        new_offsets.push(new_adj.len());
    }
    (new_offsets, new_adj)
}

/// Applies `batch` to an undirected base graph, returning the rebuilt
/// graph. Validates range, remove-exists, and insert-does-not-exist; the
/// vertex count is preserved. The rebuild is a surgical CSR patch
/// ([`patch_csr`]), not a full re-ingest — `O(n + m)` dominated by one
/// adjacency-array copy, so batch application stays far below the
/// counting-sort build the maintenance speedup is measured against.
pub fn apply_undirected(g: &UndirectedGraph, batch: &DeltaBatch) -> Result<UndirectedGraph> {
    let n = g.num_vertices();
    let (inserts, removes) = batch.canonical_undirected()?;
    for &(u, v) in inserts.iter().chain(removes.iter()) {
        range_check(u, n)?;
        range_check(v, n)?;
    }
    for &(u, v) in &removes {
        if !g.has_edge(u, v) {
            return Err(remove_missing_error(u, v));
        }
    }
    for &(u, v) in &inserts {
        if g.has_edge(u, v) {
            return Err(insert_existing_error(u, v));
        }
    }
    let mut add = Vec::with_capacity(inserts.len() * 2);
    let mut del = Vec::with_capacity(removes.len() * 2);
    for &(u, v) in &inserts {
        add.push((u, v));
        add.push((v, u));
    }
    for &(u, v) in &removes {
        del.push((u, v));
        del.push((v, u));
    }
    let (offsets, adj) = patch_csr(g.offsets(), g.adjacency(), &mut add, &mut del);
    Ok(UndirectedGraph::from_csr(offsets, adj))
}

/// Applies `batch` to a directed base graph; see [`apply_undirected`].
/// Both the out- and in-CSR are surgically patched.
pub fn apply_directed(g: &DirectedGraph, batch: &DeltaBatch) -> Result<DirectedGraph> {
    let n = g.num_vertices();
    for &(u, v) in batch.inserts().iter().chain(batch.removes().iter()) {
        range_check(u, n)?;
        range_check(v, n)?;
    }
    for &(u, v) in batch.removes() {
        if !g.has_edge(u, v) {
            return Err(remove_missing_error(u, v));
        }
    }
    for &(u, v) in batch.inserts() {
        if g.has_edge(u, v) {
            return Err(insert_existing_error(u, v));
        }
    }
    let mut out_add = Vec::with_capacity(batch.inserts().len());
    let mut out_del = Vec::with_capacity(batch.removes().len());
    let mut in_add = Vec::with_capacity(batch.inserts().len());
    let mut in_del = Vec::with_capacity(batch.removes().len());
    for &(u, v) in batch.inserts() {
        out_add.push((u, v));
        in_add.push((v, u));
    }
    for &(u, v) in batch.removes() {
        out_del.push((u, v));
        in_del.push((v, u));
    }
    let (out_offsets, out_adj) =
        patch_csr(g.out_offsets(), g.out_adjacency(), &mut out_add, &mut out_del);
    let (in_offsets, in_adj) =
        patch_csr(g.in_offsets(), g.in_adjacency(), &mut in_add, &mut in_del);
    Ok(DirectedGraph::from_csr(out_offsets, out_adj, in_offsets, in_adj))
}

/// A zero-copy "base − removes + revealed inserts" view of an undirected
/// graph, implementing [`NeighborAccess`] so sweep kernels run on the
/// updated topology without a CSR rebuild.
///
/// Construction applies every removal immediately; insertions start
/// *hidden* and join the view one at a time through
/// [`reveal_insert`](Self::reveal_insert) (see the module docs for why).
/// Per-vertex patch lists are tiny in the intended regime (a batch touches
/// few edges per vertex), so membership tests are linear scans.
#[derive(Debug)]
pub struct UndirectedOverlay<'g, G: NeighborAccess> {
    base: &'g G,
    /// Revealed inserted neighbours, per vertex.
    extra: Vec<Vec<VertexId>>,
    /// Removed neighbours, per vertex.
    hidden: Vec<Vec<VertexId>>,
    /// Maintained current degree, per vertex.
    degree: Vec<u32>,
    /// Canonical `(min, max)` insert pairs not yet revealed, in batch
    /// order; `next_reveal` indexes the first pending one.
    pending: Vec<(VertexId, VertexId)>,
    next_reveal: usize,
}

impl<'g, G: NeighborAccess> UndirectedOverlay<'g, G> {
    /// Builds the overlay from already-validated canonical pair lists (as
    /// produced by [`DeltaBatch::canonical_undirected`] after the checks in
    /// [`apply_undirected`]). All removes take effect now; all inserts are
    /// pending.
    pub fn new(
        base: &'g G,
        inserts: &[(VertexId, VertexId)],
        removes: &[(VertexId, VertexId)],
    ) -> Self {
        let n = base.vertex_count();
        let mut hidden = vec![Vec::new(); n];
        let mut degree: Vec<u32> = (0..n).map(|v| base.degree_of(v as VertexId) as u32).collect();
        for &(u, v) in removes {
            hidden[u as usize].push(v);
            hidden[v as usize].push(u);
            degree[u as usize] -= 1;
            degree[v as usize] -= 1;
        }
        Self {
            base,
            extra: vec![Vec::new(); n],
            hidden,
            degree,
            pending: inserts.to_vec(),
            next_reveal: 0,
        }
    }

    /// Number of insertions not yet revealed.
    pub fn pending_inserts(&self) -> usize {
        self.pending.len() - self.next_reveal
    }

    /// Reveals the next pending insertion, returning its endpoints, or
    /// `None` when all insertions are live.
    pub fn reveal_insert(&mut self) -> Option<(VertexId, VertexId)> {
        let &(u, v) = self.pending.get(self.next_reveal)?;
        self.next_reveal += 1;
        self.extra[u as usize].push(v);
        self.extra[v as usize].push(u);
        self.degree[u as usize] += 1;
        self.degree[v as usize] += 1;
        Some((u, v))
    }
}

/// Neighbour cursor of [`UndirectedOverlay`]: base neighbours with the
/// hidden ones filtered out, then the revealed extras.
pub struct OverlayCursor<'s, C: Iterator<Item = VertexId>> {
    base: C,
    hidden: &'s [VertexId],
    extra: std::slice::Iter<'s, VertexId>,
}

impl<C: Iterator<Item = VertexId>> Iterator for OverlayCursor<'_, C> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        for u in self.base.by_ref() {
            if !self.hidden.contains(&u) {
                return Some(u);
            }
        }
        self.extra.next().copied()
    }
}

impl<G: NeighborAccess> NeighborAccess for UndirectedOverlay<'_, G> {
    type Cursor<'s>
        = OverlayCursor<'s, G::Cursor<'s>>
    where
        Self: 's;

    fn vertex_count(&self) -> usize {
        self.base.vertex_count()
    }

    fn arc_count(&self) -> u64 {
        self.degree.iter().map(|&d| d as u64).sum()
    }

    #[inline]
    fn degree_of(&self, v: VertexId) -> usize {
        self.degree[v as usize] as usize
    }

    #[inline]
    fn neighbors_of(&self, v: VertexId) -> Self::Cursor<'_> {
        OverlayCursor {
            base: self.base.neighbors_of(v),
            hidden: &self.hidden[v as usize],
            extra: self.extra[v as usize].iter(),
        }
    }
}

/// Maps every out-CSR edge slot of `old` to its slot in `new` (`u32::MAX`
/// for slots whose edge was removed), via a per-vertex merge walk of the
/// two sorted out-neighbour lists. `new` slots not covered by the map are
/// the inserted edges. Both graphs must have the same vertex count.
pub fn slot_map_directed(old: &DirectedGraph, new: &DirectedGraph) -> Vec<u32> {
    assert_eq!(old.num_vertices(), new.num_vertices(), "slot map requires equal vertex counts");
    let mut map = vec![u32::MAX; old.num_edges()];
    let mut old_slot = 0usize;
    let mut new_slot = 0usize;
    for v in old.vertices() {
        let old_nbrs = old.out_neighbors(v);
        let new_nbrs = new.out_neighbors(v);
        let mut j = 0usize;
        for (i, &w) in old_nbrs.iter().enumerate() {
            while j < new_nbrs.len() && new_nbrs[j] < w {
                j += 1;
            }
            if j < new_nbrs.len() && new_nbrs[j] == w {
                map[old_slot + i] = (new_slot + j) as u32;
                j += 1;
            }
        }
        old_slot += old_nbrs.len();
        new_slot += new_nbrs.len();
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectedGraphBuilder, UndirectedGraphBuilder};

    fn path_graph(n: usize) -> UndirectedGraph {
        let mut b = UndirectedGraphBuilder::new(n);
        for v in 1..n as VertexId {
            b.push_edge(v - 1, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn new_rejects_empty_and_structural_violations() {
        assert!(DeltaBatch::new(vec![], vec![]).is_err());
        assert!(DeltaBatch::new(vec![(1, 1)], vec![]).is_err());
        assert!(DeltaBatch::new(vec![(1, 2), (1, 2)], vec![]).is_err());
        assert!(DeltaBatch::new(vec![(1, 2)], vec![(1, 2)]).is_err());
        // Directed batches may hold both orientations.
        assert!(DeltaBatch::new(vec![(1, 2), (2, 1)], vec![]).is_ok());
    }

    #[test]
    fn canonical_undirected_collapses_orientations() {
        let b = DeltaBatch::new(vec![(2, 1)], vec![(5, 3)]).unwrap();
        let (ins, rem) = b.canonical_undirected().unwrap();
        assert_eq!(ins, vec![(1, 2)]);
        assert_eq!(rem, vec![(3, 5)]);
        let dup = DeltaBatch::new(vec![(1, 2), (2, 1)], vec![]).unwrap();
        assert!(dup.canonical_undirected().is_err());
    }

    #[test]
    fn text_parse_round_trip_and_errors() {
        let batch =
            DeltaBatch::parse("# churn\n+ 0 3\n- 1 2\n\n% tail\n+ 4 5\n".as_bytes()).unwrap();
        assert_eq!(batch.inserts(), &[(0, 3), (4, 5)]);
        assert_eq!(batch.removes(), &[(1, 2)]);
        let err = DeltaBatch::parse("+ 0 1\n* 2 3\n".as_bytes()).unwrap_err();
        assert_eq!(err.to_string(), "parse error on line 2: bad op: expected '+' or '-', got '*'");
        let err = DeltaBatch::parse("# lead\n\n+ 7\n".as_bytes()).unwrap_err();
        assert_eq!(err.to_string(), "parse error on line 3: missing target");
        let err = DeltaBatch::parse("- x 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().starts_with("parse error on line 1: bad source:"));
        let err = DeltaBatch::parse("+ 0 4294967296\n".as_bytes()).unwrap_err();
        assert_eq!(err.to_string(), "parse error on line 1: vertex id exceeds u32::MAX");
        assert_eq!(
            DeltaBatch::parse("# only comments\n".as_bytes()).unwrap_err().to_string(),
            empty_batch_error().to_string()
        );
    }

    #[test]
    fn apply_undirected_validates_and_rebuilds() {
        let g = path_graph(5);
        let batch = DeltaBatch::new(vec![(0, 4)], vec![(2, 1)]).unwrap();
        let updated = apply_undirected(&g, &batch).unwrap();
        assert_eq!(updated.num_vertices(), 5);
        assert!(updated.has_edge(0, 4));
        assert!(!updated.has_edge(1, 2));
        assert_eq!(updated.num_edges(), g.num_edges());

        let missing = DeltaBatch::new(vec![], vec![(0, 3)]).unwrap();
        assert_eq!(
            apply_undirected(&g, &missing).unwrap_err().to_string(),
            "invalid argument: delta removes edge (0, 3) not present in the base graph"
        );
        let existing = DeltaBatch::new(vec![(1, 0)], vec![]).unwrap();
        assert_eq!(
            apply_undirected(&g, &existing).unwrap_err().to_string(),
            "invalid argument: delta inserts edge (0, 1) already present in the base graph"
        );
        let out_of_range = DeltaBatch::new(vec![(0, 9)], vec![]).unwrap();
        assert!(matches!(
            apply_undirected(&g, &out_of_range),
            Err(GraphError::VertexOutOfRange { vertex: 9, n: 5 })
        ));
    }

    #[test]
    fn apply_directed_respects_orientation() {
        let g = DirectedGraphBuilder::new(3).add_edges([(0, 1), (1, 2)]).build().unwrap();
        // (1, 0) does not exist even though (0, 1) does.
        let rev = DeltaBatch::new(vec![], vec![(1, 0)]).unwrap();
        assert!(apply_directed(&g, &rev).is_err());
        let ok = DeltaBatch::new(vec![(1, 0), (2, 0)], vec![(0, 1)]).unwrap();
        let updated = apply_directed(&g, &ok).unwrap();
        assert!(updated.has_edge(1, 0) && updated.has_edge(2, 0) && !updated.has_edge(0, 1));
        assert_eq!(updated.num_edges(), 3);
    }

    #[test]
    fn overlay_tracks_reveals_and_matches_rebuild() {
        let g = path_graph(6);
        let batch = DeltaBatch::new(vec![(0, 3), (2, 5)], vec![(1, 2), (4, 5)]).unwrap();
        let (ins, rem) = batch.canonical_undirected().unwrap();
        let mut ov = UndirectedOverlay::new(&g, &ins, &rem);
        assert_eq!(ov.pending_inserts(), 2);
        assert_eq!(ov.degree_of(1), 1); // lost edge to 2
        assert_eq!(ov.degree_of(5), 0); // lost edge to 4, (2,5) still hidden
        assert_eq!(ov.reveal_insert(), Some((0, 3)));
        assert_eq!(ov.reveal_insert(), Some((2, 5)));
        assert_eq!(ov.reveal_insert(), None);
        let rebuilt = apply_undirected(&g, &batch).unwrap();
        for v in rebuilt.vertices() {
            assert_eq!(ov.degree_of(v), rebuilt.degree(v), "degree of {v}");
            let mut from_overlay: Vec<VertexId> = ov.neighbors_of(v).collect();
            from_overlay.sort_unstable();
            assert_eq!(from_overlay, rebuilt.neighbors(v), "neighbours of {v}");
        }
        assert_eq!(ov.arc_count(), 2 * rebuilt.num_edges() as u64);
    }

    #[test]
    fn slot_map_tracks_surviving_edges() {
        let old = DirectedGraphBuilder::new(4)
            .add_edges([(0, 1), (0, 2), (1, 3), (2, 0), (2, 3)])
            .build()
            .unwrap();
        let batch = DeltaBatch::new(vec![(0, 3), (3, 1)], vec![(0, 2), (2, 3)]).unwrap();
        let new = apply_directed(&old, &batch).unwrap();
        let map = slot_map_directed(&old, &new);
        let old_edges: Vec<_> = old.edges().collect();
        let new_edges: Vec<_> = new.edges().collect();
        for (slot, &(u, v)) in old_edges.iter().enumerate() {
            if batch.removes().contains(&(u, v)) {
                assert_eq!(map[slot], u32::MAX, "removed edge ({u}, {v})");
            } else {
                assert_eq!(new_edges[map[slot] as usize], (u, v), "surviving edge ({u}, {v})");
            }
        }
    }
}
