//! Degree statistics for the dataset tables (Tables 4 and 5 of the paper).

use serde::Serialize;

use crate::{DirectedGraph, UndirectedGraph};

/// Summary row for an undirected dataset (paper Table 4).
#[derive(Clone, Debug, Serialize, PartialEq)]
pub struct UndirectedStats {
    /// Vertex count |V|.
    pub num_vertices: usize,
    /// Edge count |E|.
    pub num_edges: usize,
    /// Maximum degree `d_max`.
    pub max_degree: usize,
    /// Average degree `2m / n` (0 for empty graphs).
    pub avg_degree: f64,
}

/// Summary row for a directed dataset (paper Table 5).
#[derive(Clone, Debug, Serialize, PartialEq)]
pub struct DirectedStats {
    /// Vertex count |V|.
    pub num_vertices: usize,
    /// Edge count |E|.
    pub num_edges: usize,
    /// Maximum out-degree `d⁺_max`.
    pub max_out_degree: usize,
    /// Maximum in-degree `d⁻_max`.
    pub max_in_degree: usize,
}

/// Computes the Table-4 style statistics of an undirected graph.
pub fn undirected_stats(g: &UndirectedGraph) -> UndirectedStats {
    let n = g.num_vertices();
    UndirectedStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        max_degree: g.max_degree(),
        avg_degree: if n == 0 { 0.0 } else { 2.0 * g.num_edges() as f64 / n as f64 },
    }
}

/// Computes the Table-5 style statistics of a directed graph.
pub fn directed_stats(g: &DirectedGraph) -> DirectedStats {
    DirectedStats {
        num_vertices: g.num_vertices(),
        num_edges: g.num_edges(),
        max_out_degree: g.max_out_degree(),
        max_in_degree: g.max_in_degree(),
    }
}

/// Degree histogram: `hist[d]` counts vertices with degree `d` (useful for
/// eyeballing the power-law shape of the synthetic stand-ins).
pub fn degree_histogram(g: &UndirectedGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectedGraphBuilder, UndirectedGraphBuilder};

    #[test]
    fn undirected_stats_basic() {
        let g = UndirectedGraphBuilder::new(4).add_edges([(0, 1), (0, 2), (0, 3)]).build().unwrap();
        let s = undirected_stats(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_degree, 3);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn directed_stats_basic() {
        let g = DirectedGraphBuilder::new(3).add_edges([(0, 1), (0, 2), (1, 2)]).build().unwrap();
        let s = directed_stats(&g);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.num_edges, 3);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = UndirectedGraphBuilder::new(5).add_edges([(0, 1), (1, 2)]).build().unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[0], 2); // vertices 3, 4
        assert_eq!(h[2], 1); // vertex 1
    }

    #[test]
    fn empty_graph_stats() {
        let g = UndirectedGraphBuilder::new(0).build().unwrap();
        let s = undirected_stats(&g);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.max_degree, 0);
    }
}
