//! Compact binary graph format.
//!
//! Text edge lists (the [`crate::io`] module) are convenient but slow to
//! parse at the million-edge scale of the experiment datasets. This module
//! provides a little-endian binary format that round-trips the CSR arrays
//! directly:
//!
//! ```text
//! magic   8 bytes   b"DSDGRAPH"
//! kind    1 byte    0 = undirected, 1 = directed
//! version 1 byte    currently 1
//! n       8 bytes   u64 vertex count
//! m       8 bytes   u64 edge count
//! edges   m records u32 source, u32 target (undirected: u < v once)
//! ```
//!
//! Graphs are re-validated through the builders on load, so a corrupted or
//! adversarial file fails with a [`GraphError`] instead of producing a
//! broken CSR. The edge payload is read in ~1 MiB bulk chunks (not one
//! `read_exact` per record), the header's declared edge count is checked
//! against the file size before any payload allocation on the path-based
//! readers, and stream readers cap the header-trusted pre-allocation so a
//! lying header cannot trigger a giant up-front allocation.
//!
//! ## Version 2: zero-copy compressed sections
//!
//! Version 2 stores the delta-varint compressed substrate
//! ([`crate::compress`]) instead of an edge list, behind the same magic and
//! kind bytes so loaders dispatch on the version field (v1 files keep
//! loading through the legacy path):
//!
//! ```text
//! magic    8 bytes    b"DSDGRAPH"
//! kind     1 byte     0 = undirected, 1 = directed
//! version  1 byte     2
//! flags    2 bytes    reserved, zero
//! pad      4 bytes    zero (aligns the u64 fields)
//! n        8 bytes    u64 vertex count
//! arcs     8 bytes    u64 stored arcs per adjacency side
//! nsec     8 bytes    u64 section count (3 undirected / 6 directed)
//! table    nsec×16    (offset u64, length u64) per section, offsets
//!                     relative to the payload start
//! payload  ...        sections, each 8-byte aligned
//! ```
//!
//! The fixed prefix is 40 bytes and the table is a multiple of 16, so the
//! payload start — and therefore every section — stays 8-byte aligned in
//! the file. Loading `mmap`s the file read-only and builds
//! [`CompressedCsr`] / [`CompressedDigraph`] views directly over the
//! mapping (pointer fixup only — no materialisation pass); platforms
//! without `mmap` fall back to one buffered read of the file. Every count
//! and section bound is validated with checked `u64` arithmetic against
//! the real file length *before* any allocation, and rejected with a
//! structured [`GraphError::Format`] rather than a capacity panic.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::compress::{align8, ByteBuf, CompressedAdj, CompressedCsr, CompressedDigraph};
use crate::delta::DeltaBatch;
use crate::{
    DirectedGraph, DirectedGraphBuilder, GraphError, Result, UndirectedGraph,
    UndirectedGraphBuilder, VertexId,
};

pub(crate) use mapping::MapBacking;

const MAGIC: &[u8; 8] = b"DSDGRAPH";
const VERSION: u8 = 1;
const VERSION2: u8 = 2;
const KIND_UNDIRECTED: u8 = 0;
const KIND_DIRECTED: u8 = 1;

/// Fixed v2 prefix: magic + kind + version + flags + pad + n + arcs + nsec.
const V2_PREFIX_BYTES: usize = 8 + 1 + 1 + 2 + 4 + 8 + 8 + 8;
/// Sections per compressed adjacency side (degrees, offsets, data).
const SECTIONS_PER_SIDE: usize = 3;

/// Fixed header size: magic + kind + version + n + m.
const HEADER_BYTES: u64 = 8 + 1 + 1 + 8 + 8;
/// Bytes per edge record (two little-endian `u32`s).
const EDGE_BYTES: u64 = 8;
/// Edges per bulk read (1 MiB of payload per `read` call).
const READ_CHUNK_EDGES: usize = 128 << 10;
/// Never pre-allocate more than this many edges on the say-so of a header
/// alone (8 MiB); a genuinely larger payload grows the vec as real bytes
/// arrive, while a lying header on a short stream fails fast instead of
/// attempting a giant allocation.
const PREALLOC_EDGE_CAP: usize = 1 << 20;

/// When the total stream length is known (file readers), rejects headers
/// whose declared edge count cannot match the actual payload length —
/// before any edge allocation happens.
fn validate_declared_len(m: u64, total_len: Option<u64>) -> Result<()> {
    let Some(len) = total_len else { return Ok(()) };
    match m.checked_mul(EDGE_BYTES).and_then(|p| p.checked_add(HEADER_BYTES)) {
        Some(expected) if expected == len => Ok(()),
        Some(expected) => Err(GraphError::Parse {
            line: 0,
            message: format!(
                "edge count mismatch: header declares {m} edges ({expected} bytes total), \
                 file is {len} bytes"
            ),
        }),
        None => Err(GraphError::Parse {
            line: 0,
            message: format!("declared edge count {m} overflows the format"),
        }),
    }
}

fn write_header<W: Write>(w: &mut W, kind: u8, n: u64, m: u64) -> Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[kind, VERSION])?;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    Ok(())
}

/// Reads and checks the 10-byte magic/kind/version prefix shared by every
/// format version, returning the version byte for dispatch.
fn read_prefix<R: Read>(r: &mut R, expected_kind: u8) -> Result<u8> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: "bad magic; not a DSDGRAPH file".into(),
        });
    }
    let mut kv = [0u8; 2];
    r.read_exact(&mut kv)?;
    if kv[0] != expected_kind {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("graph kind mismatch: file has {}, expected {expected_kind}", kv[0]),
        });
    }
    if kv[1] != VERSION && kv[1] != VERSION2 {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("unsupported format version {}", kv[1]),
        });
    }
    Ok(kv[1])
}

/// Reads the v1 `(n, m)` fields that follow the prefix.
fn read_v1_counts<R: Read>(r: &mut R) -> Result<(u64, u64)> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    let n = u64::from_le_bytes(buf);
    r.read_exact(&mut buf)?;
    let m = u64::from_le_bytes(buf);
    Ok((n, m))
}

/// Reads the `m`-record edge payload in [`READ_CHUNK_EDGES`]-sized bulk
/// reads (instead of one 8-byte `read_exact` per edge) and decodes records
/// from the buffered chunk. Early EOF reports how many complete edges the
/// stream actually held versus what the header declared.
fn read_edges<R: Read>(r: &mut R, m: usize) -> Result<Vec<(VertexId, VertexId)>> {
    let mut edges = Vec::with_capacity(m.min(PREALLOC_EDGE_CAP));
    let mut buf = vec![0u8; m.min(READ_CHUNK_EDGES) * EDGE_BYTES as usize];
    let mut remaining = m;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK_EDGES);
        let bytes = &mut buf[..take * EDGE_BYTES as usize];
        let mut filled = 0usize;
        while filled < bytes.len() {
            match r.read(&mut bytes[filled..]) {
                Ok(0) => {
                    let got = m - remaining + filled / EDGE_BYTES as usize;
                    return Err(GraphError::Parse {
                        line: 0,
                        message: format!(
                            "truncated edge payload: header declares {m} edges, stream holds {got}"
                        ),
                    });
                }
                Ok(k) => filled += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        for rec in bytes.chunks_exact(EDGE_BYTES as usize) {
            let u = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
            let v = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
            edges.push((u, v));
        }
        remaining -= take;
    }
    Ok(edges)
}

/// Writes an undirected graph in the binary format.
pub fn write_undirected_binary<W: Write>(g: &UndirectedGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    write_header(&mut w, KIND_UNDIRECTED, g.num_vertices() as u64, g.num_edges() as u64)?;
    for (u, v) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

fn read_undirected_inner<R: Read>(reader: R, total_len: Option<u64>) -> Result<UndirectedGraph> {
    let mut r = BufReader::new(reader);
    match read_prefix(&mut r, KIND_UNDIRECTED)? {
        VERSION2 => {
            let buf = slurp_v2_rest(&mut r, KIND_UNDIRECTED)?;
            Ok(v2_undirected_from_buf(Arc::new(ByteBuf::Owned(buf)))?.decompress())
        }
        _ => {
            let (n, m) = read_v1_counts(&mut r)?;
            if n > u32::MAX as u64 + 1 {
                return Err(GraphError::Parse {
                    line: 0,
                    message: "vertex count exceeds u32 ids".into(),
                });
            }
            validate_declared_len(m, total_len)?;
            let edges = read_edges(&mut r, m as usize)?;
            UndirectedGraphBuilder::with_capacity(n as usize, edges.len()).add_edges(edges).build()
        }
    }
}

/// Reads an undirected graph from the binary format.
pub fn read_undirected_binary<R: Read>(reader: R) -> Result<UndirectedGraph> {
    read_undirected_inner(reader, None)
}

/// Writes a directed graph in the binary format.
pub fn write_directed_binary<W: Write>(g: &DirectedGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    write_header(&mut w, KIND_DIRECTED, g.num_vertices() as u64, g.num_edges() as u64)?;
    for (u, v) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

fn read_directed_inner<R: Read>(reader: R, total_len: Option<u64>) -> Result<DirectedGraph> {
    let mut r = BufReader::new(reader);
    match read_prefix(&mut r, KIND_DIRECTED)? {
        VERSION2 => {
            let buf = slurp_v2_rest(&mut r, KIND_DIRECTED)?;
            Ok(v2_directed_from_buf(Arc::new(ByteBuf::Owned(buf)))?.decompress())
        }
        _ => {
            let (n, m) = read_v1_counts(&mut r)?;
            if n > u32::MAX as u64 + 1 {
                return Err(GraphError::Parse {
                    line: 0,
                    message: "vertex count exceeds u32 ids".into(),
                });
            }
            validate_declared_len(m, total_len)?;
            let edges = read_edges(&mut r, m as usize)?;
            DirectedGraphBuilder::with_capacity(n as usize, edges.len()).add_edges(edges).build()
        }
    }
}

/// Reads a directed graph from the binary format.
pub fn read_directed_binary<R: Read>(reader: R) -> Result<DirectedGraph> {
    read_directed_inner(reader, None)
}

/// Convenience: writes an undirected graph to a file path.
pub fn write_undirected_binary_path<P: AsRef<Path>>(g: &UndirectedGraph, path: P) -> Result<()> {
    write_undirected_binary(g, std::fs::File::create(path)?)
}

/// Convenience: reads an undirected graph from a file path. The declared
/// edge count is validated against the file size before any payload
/// allocation.
pub fn read_undirected_binary_path<P: AsRef<Path>>(path: P) -> Result<UndirectedGraph> {
    let file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    read_undirected_inner(file, Some(len))
}

/// Convenience: writes a directed graph to a file path.
pub fn write_directed_binary_path<P: AsRef<Path>>(g: &DirectedGraph, path: P) -> Result<()> {
    write_directed_binary(g, std::fs::File::create(path)?)
}

/// Convenience: reads a directed graph from a file path. The declared edge
/// count is validated against the file size before any payload allocation.
pub fn read_directed_binary_path<P: AsRef<Path>>(path: P) -> Result<DirectedGraph> {
    let file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    read_directed_inner(file, Some(len))
}

// ---------------------------------------------------------------------------
// Edge-delta batches
// ---------------------------------------------------------------------------

/// Magic prefix of the binary edge-delta format ([`crate::delta`]):
///
/// ```text
/// magic    8 bytes   b"DSDDELTA"
/// version  1 byte    1
/// reserved 1 byte    0
/// n_ins    8 bytes   u64 insert count
/// n_rem    8 bytes   u64 remove count
/// records  (n_ins + n_rem) × 8 bytes   u32 u, u32 v — inserts then removes
/// ```
///
/// Structural violations (bad magic/version, truncated payload) surface as
/// [`GraphError::Format`]; the decoded pair lists then pass through
/// [`DeltaBatch::new`], so every *semantic* violation (empty batch,
/// self-loop, duplicate, insert∩remove overlap) produces exactly the same
/// error string as the text parser — the parity the round-trip tests pin.
pub const DELTA_MAGIC: &[u8; 8] = b"DSDDELTA";
const DELTA_VERSION: u8 = 1;
const DELTA_HEADER_BYTES: u64 = 8 + 1 + 1 + 8 + 8;

/// Writes a delta batch in the `DSDDELTA` binary format.
pub fn write_delta<W: Write>(batch: &DeltaBatch, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(DELTA_MAGIC)?;
    w.write_all(&[DELTA_VERSION, 0])?;
    w.write_all(&(batch.inserts().len() as u64).to_le_bytes())?;
    w.write_all(&(batch.removes().len() as u64).to_le_bytes())?;
    for &(u, v) in batch.inserts().iter().chain(batch.removes().iter()) {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a delta batch from the `DSDDELTA` binary format, re-validating it
/// through [`DeltaBatch::new`].
pub fn read_delta<R: Read>(reader: R) -> Result<DeltaBatch> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != DELTA_MAGIC {
        return Err(format_err("bad magic; not a DSDDELTA file"));
    }
    let mut vr = [0u8; 2];
    r.read_exact(&mut vr)?;
    if vr[0] != DELTA_VERSION {
        return Err(format_err(format!("unsupported delta format version {}", vr[0])));
    }
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    let n_ins = u64::from_le_bytes(buf);
    r.read_exact(&mut buf)?;
    let n_rem = u64::from_le_bytes(buf);
    n_ins
        .checked_add(n_rem)
        .and_then(|t| t.checked_mul(EDGE_BYTES))
        .and_then(|t| t.checked_add(DELTA_HEADER_BYTES))
        .ok_or_else(|| format_err("declared delta record counts overflow the format"))?;
    let read_pairs = |r: &mut BufReader<R>, count: u64| -> Result<Vec<(VertexId, VertexId)>> {
        let mut pairs = Vec::with_capacity((count as usize).min(PREALLOC_EDGE_CAP));
        let mut rec = [0u8; 8];
        for i in 0..count {
            r.read_exact(&mut rec).map_err(|_| {
                format_err(format!(
                    "truncated delta payload: header declares {count} records, stream ends at {i}"
                ))
            })?;
            let u = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
            let v = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
            pairs.push((u, v));
        }
        Ok(pairs)
    };
    let inserts = read_pairs(&mut r, n_ins)?;
    let removes = read_pairs(&mut r, n_rem)?;
    DeltaBatch::new(inserts, removes)
}

/// Convenience: writes a delta batch to a file path.
pub fn write_delta_path<P: AsRef<Path>>(batch: &DeltaBatch, path: P) -> Result<()> {
    write_delta(batch, std::fs::File::create(path)?)
}

// ---------------------------------------------------------------------------
// Version 2: compressed sections, zero-copy load
// ---------------------------------------------------------------------------

fn format_err(message: impl Into<String>) -> GraphError {
    GraphError::Format { message: message.into() }
}

/// Re-assembles the full file bytes on a stream reader that has already
/// consumed the 10-byte prefix (the buffered fallback path; the `mmap`
/// loaders never copy).
fn slurp_v2_rest<R: Read>(r: &mut R, kind: u8) -> Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(V2_PREFIX_BYTES);
    buf.extend_from_slice(MAGIC);
    buf.push(kind);
    buf.push(VERSION2);
    r.read_to_end(&mut buf)?;
    Ok(buf)
}

struct V2Header {
    n: usize,
    arcs: u64,
    /// Absolute `(start, len)` byte ranges of each section in the file.
    sections: Vec<(usize, usize)>,
}

#[inline]
fn le_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Parses and validates a v2 header from the full file bytes. All bounds
/// are checked with u64 arithmetic against the real length before any
/// section view is handed out.
fn parse_v2_header(bytes: &[u8], expected_kind: u8, expected_sections: usize) -> Result<V2Header> {
    if bytes.len() < V2_PREFIX_BYTES {
        return Err(format_err(format!(
            "file too short for a v2 header: {} bytes, need {V2_PREFIX_BYTES}",
            bytes.len()
        )));
    }
    if &bytes[..8] != MAGIC {
        return Err(format_err("bad magic; not a DSDGRAPH file"));
    }
    if bytes[8] != expected_kind {
        return Err(format_err(format!(
            "graph kind mismatch: file has {}, expected {expected_kind}",
            bytes[8]
        )));
    }
    if bytes[9] != VERSION2 {
        return Err(format_err(format!("expected format version 2, file has {}", bytes[9])));
    }
    let n = le_u64(bytes, 16);
    let arcs = le_u64(bytes, 24);
    let nsec = le_u64(bytes, 32);
    if n > u32::MAX as u64 + 1 {
        return Err(format_err(format!("vertex count {n} exceeds u32 ids")));
    }
    if nsec as usize != expected_sections {
        return Err(format_err(format!(
            "section count mismatch: file declares {nsec}, format needs {expected_sections}"
        )));
    }
    let table_bytes = (nsec as usize)
        .checked_mul(16)
        .ok_or_else(|| format_err("section table size overflows"))?;
    let payload_start = V2_PREFIX_BYTES
        .checked_add(table_bytes)
        .ok_or_else(|| format_err("section table size overflows"))?;
    if payload_start > bytes.len() {
        return Err(format_err(format!(
            "section table past end of file: need {payload_start} bytes, have {}",
            bytes.len()
        )));
    }
    let payload_len = (bytes.len() - payload_start) as u64;
    let mut sections = Vec::with_capacity(nsec as usize);
    for s in 0..nsec as usize {
        let off = le_u64(bytes, V2_PREFIX_BYTES + s * 16);
        let len = le_u64(bytes, V2_PREFIX_BYTES + s * 16 + 8);
        let end = off
            .checked_add(len)
            .ok_or_else(|| format_err(format!("section {s} extent overflows u64")))?;
        if end > payload_len {
            return Err(format_err(format!(
                "section {s} ({off}+{len} bytes) exceeds payload of {payload_len} bytes"
            )));
        }
        if off % 8 != 0 {
            return Err(format_err(format!("section {s} misaligned (offset {off})")));
        }
        sections.push((payload_start + off as usize, len as usize));
    }
    Ok(V2Header { n: n as usize, arcs, sections })
}

fn adj_from_sections(buf: &Arc<ByteBuf>, h: &V2Header, side: usize) -> Result<CompressedAdj> {
    let base = side * SECTIONS_PER_SIDE;
    let (d0, d1) = h.sections[base];
    let (o0, o1) = h.sections[base + 1];
    let (a0, a1) = h.sections[base + 2];
    CompressedAdj::from_sections(buf.clone(), h.n, h.arcs, d0..d0 + d1, o0..o0 + o1, a0..a0 + a1)
}

fn v2_undirected_from_buf(buf: Arc<ByteBuf>) -> Result<CompressedCsr> {
    let h = parse_v2_header(buf.as_slice(), KIND_UNDIRECTED, SECTIONS_PER_SIDE)?;
    if h.arcs % 2 != 0 {
        return Err(format_err(format!("undirected arc count {} is odd", h.arcs)));
    }
    Ok(CompressedCsr::from_adj(adj_from_sections(&buf, &h, 0)?))
}

fn v2_directed_from_buf(buf: Arc<ByteBuf>) -> Result<CompressedDigraph> {
    let h = parse_v2_header(buf.as_slice(), KIND_DIRECTED, 2 * SECTIONS_PER_SIDE)?;
    let out = adj_from_sections(&buf, &h, 0)?;
    let inc = adj_from_sections(&buf, &h, 1)?;
    CompressedDigraph::from_sides(out, inc)
}

/// Writes the v2 prefix, section table and 8-aligned section payloads.
fn write_v2<W: Write>(writer: W, kind: u8, n: u64, arcs: u64, sections: &[&[u8]]) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&[kind, VERSION2, 0, 0])?;
    w.write_all(&[0u8; 4])?;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&arcs.to_le_bytes())?;
    w.write_all(&(sections.len() as u64).to_le_bytes())?;
    let mut off = 0usize;
    let mut table = Vec::with_capacity(sections.len());
    for s in sections {
        let start = align8(off);
        table.push((start as u64, s.len() as u64));
        off = start + s.len();
    }
    for &(start, len) in &table {
        w.write_all(&start.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?;
    }
    let mut written = 0usize;
    for (s, &(start, _)) in sections.iter().zip(&table) {
        let pad = start as usize - written;
        w.write_all(&[0u8; 8][..pad])?;
        w.write_all(s)?;
        written = start as usize + s.len();
    }
    w.flush()?;
    Ok(())
}

fn side_slices<'a>(adj: &'a CompressedAdj) -> [&'a [u8]; 3] {
    let bytes = adj.backing().as_slice();
    let [d, o, a] = adj.section_ranges();
    [&bytes[d], &bytes[o], &bytes[a]]
}

/// Writes a compressed undirected graph as a binio v2 stream.
pub fn write_compressed_undirected<W: Write>(c: &CompressedCsr, writer: W) -> Result<()> {
    let s = side_slices(c.adj());
    write_v2(writer, KIND_UNDIRECTED, c.num_vertices() as u64, c.adj().num_arcs(), &s)
}

/// Writes a compressed directed graph as a binio v2 stream.
pub fn write_compressed_directed<W: Write>(c: &CompressedDigraph, writer: W) -> Result<()> {
    let out = side_slices(c.out_adj());
    let inc = side_slices(c.in_adj());
    let all = [out[0], out[1], out[2], inc[0], inc[1], inc[2]];
    write_v2(writer, KIND_DIRECTED, c.num_vertices() as u64, c.out_adj().num_arcs(), &all)
}

/// Convenience: writes a compressed undirected graph to a v2 file.
pub fn write_compressed_undirected_path<P: AsRef<Path>>(c: &CompressedCsr, path: P) -> Result<()> {
    write_compressed_undirected(c, std::fs::File::create(path)?)
}

/// Convenience: writes a compressed directed graph to a v2 file.
pub fn write_compressed_directed_path<P: AsRef<Path>>(
    c: &CompressedDigraph,
    path: P,
) -> Result<()> {
    write_compressed_directed(c, std::fs::File::create(path)?)
}

/// Maps (or, where `mmap` is unavailable, buffer-reads) a v2 file into a
/// shared byte backing. The mapped variant is the zero-copy fast path: the
/// section views point straight into the page cache.
fn v2_backing<P: AsRef<Path>>(path: P) -> Result<Arc<ByteBuf>> {
    let file = std::fs::File::open(path)?;
    match MapBacking::map(&file) {
        Ok(m) => Ok(Arc::new(ByteBuf::Mapped(m))),
        Err(_) => {
            let mut buf = Vec::new();
            BufReader::new(file).read_to_end(&mut buf)?;
            Ok(Arc::new(ByteBuf::Owned(buf)))
        }
    }
}

/// Loads a compressed undirected graph from a v2 file, zero-copy via
/// `mmap` where available (buffered read otherwise). Section bounds,
/// offsets monotonicity and degree/arc agreement are validated before the
/// view is returned; the neighbour payload itself is only touched as
/// cursors decode it.
pub fn load_compressed_undirected_path<P: AsRef<Path>>(path: P) -> Result<CompressedCsr> {
    v2_undirected_from_buf(v2_backing(path)?)
}

/// Loads a compressed directed graph from a v2 file; see
/// [`load_compressed_undirected_path`].
pub fn load_compressed_directed_path<P: AsRef<Path>>(path: P) -> Result<CompressedDigraph> {
    v2_directed_from_buf(v2_backing(path)?)
}

/// The workspace's one `unsafe` island: a read-only whole-file `mmap`.
///
/// Everything else in the crate is `#![deny(unsafe_code)]`-clean; this
/// module wraps the two raw syscalls (`mmap`/`munmap`, reached through the
/// libc symbols the Rust standard library already links on unix) behind a
/// bounds-owning RAII handle whose only exposure is `as_slice`. On
/// non-unix targets `map` reports unsupported and callers take the
/// buffered-read fallback.
#[allow(unsafe_code)]
pub(crate) mod mapping {
    use std::fs::File;
    use std::io;

    /// A read-only mapping of an entire file (unix), or an uninhabited
    /// placeholder on targets without `mmap`.
    #[derive(Debug)]
    pub(crate) struct MapBacking {
        #[cfg(unix)]
        ptr: *const u8,
        #[cfg(unix)]
        len: usize,
        #[cfg(not(unix))]
        never: std::convert::Infallible,
    }

    #[cfg(unix)]
    mod ffi {
        use std::os::raw::{c_int, c_void};

        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: c_int,
                flags: c_int,
                fd: c_int,
                offset: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        }

        pub const PROT_READ: c_int = 1;
        pub const MAP_PRIVATE: c_int = 2;
    }

    impl MapBacking {
        /// Maps `file` read-only in full. Fails (cleanly, so callers can
        /// fall back to a buffered read) on zero-length files, mapping
        /// errors, or non-unix targets.
        #[cfg(unix)]
        pub(crate) fn map(file: &File) -> io::Result<Self> {
            use std::os::unix::io::AsRawFd;
            let len = file.metadata()?.len();
            if len == 0 || len > usize::MAX as u64 {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, "unmappable length"));
            }
            let len = len as usize;
            // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of `len` bytes
            // over a valid fd; the kernel either returns MAP_FAILED (−1)
            // or a page-aligned region of exactly `len` readable bytes
            // that stays valid until `munmap` in `Drop`. The region is
            // never written through and never aliased mutably.
            let ptr = unsafe {
                ffi::mmap(
                    std::ptr::null_mut(),
                    len,
                    ffi::PROT_READ,
                    ffi::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr: ptr as *const u8, len })
        }

        #[cfg(not(unix))]
        pub(crate) fn map(_file: &File) -> io::Result<Self> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "mmap unavailable on this target"))
        }

        /// The mapped bytes.
        #[inline]
        pub(crate) fn as_slice(&self) -> &[u8] {
            #[cfg(unix)]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes (established in `map`, released only in `Drop`).
            unsafe {
                std::slice::from_raw_parts(self.ptr, self.len)
            }
            #[cfg(not(unix))]
            match self.never {}
        }
    }

    #[cfg(unix)]
    impl Drop for MapBacking {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region returned by `mmap`.
            unsafe {
                ffi::munmap(self.ptr as *mut _, self.len);
            }
        }
    }

    // SAFETY: the mapping is read-only for its entire lifetime; shared
    // references across threads observe immutable bytes.
    #[cfg(unix)]
    unsafe impl Send for MapBacking {}
    #[cfg(unix)]
    unsafe impl Sync for MapBacking {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_round_trip() {
        let g = crate::gen::chung_lu(500, 2500, 2.3, 7);
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        let g2 = read_undirected_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn directed_round_trip() {
        let g = crate::gen::erdos_renyi_directed(300, 1500, 9);
        let mut buf = Vec::new();
        write_directed_binary(&g, &mut buf).unwrap();
        let g2 = read_directed_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_graph_round_trip() {
        let g = crate::UndirectedGraphBuilder::new(0).build().unwrap();
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        let g2 = read_undirected_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_undirected_binary(&b"NOTAGRPH\x00\x01"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn kind_mismatch_rejected() {
        let g = crate::gen::erdos_renyi(10, 20, 1);
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        let err = read_directed_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("kind mismatch"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let g = crate::gen::erdos_renyi(10, 20, 2);
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_undirected_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_edge_ids_rejected() {
        // Claim n = 2 but write an edge to vertex 7: builder must reject.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DSDGRAPH");
        buf.push(0); // undirected
        buf.push(1); // version
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DSDGRAPH");
        buf.push(0);
        buf.push(9); // future version
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncated_reports_declared_vs_actual() {
        let g = crate::gen::erdos_renyi(10, 20, 2);
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 11);
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("truncated"), "{msg}");
        assert!(msg.contains(&format!("declares {} edges", g.num_edges())), "{msg}");
    }

    #[test]
    fn lying_header_fails_fast_without_huge_allocation() {
        // Header claims 2^40 edges (8 TiB of payload) over an empty body.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DSDGRAPH");
        buf.push(0);
        buf.push(1);
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 40).to_le_bytes());
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn path_reader_rejects_length_mismatch() {
        let g = crate::gen::erdos_renyi(30, 80, 6);
        let dir = std::env::temp_dir().join("dsd_binio_len_test");
        std::fs::create_dir_all(&dir).unwrap();

        // Trailing garbage after the declared payload.
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        buf.extend_from_slice(&[0u8; 5]);
        let long = dir.join("long.bin");
        std::fs::write(&long, &buf).unwrap();
        let err = read_undirected_binary_path(&long).unwrap_err();
        assert!(err.to_string().contains("edge count mismatch"), "{err}");

        // Truncated payload is caught by the same pre-allocation check.
        buf.truncate(buf.len() - 5 - 24);
        let short = dir.join("short.bin");
        std::fs::write(&short, &buf).unwrap();
        let err = read_undirected_binary_path(&short).unwrap_err();
        assert!(err.to_string().contains("edge count mismatch"), "{err}");
    }

    #[test]
    fn multi_chunk_payload_round_trips() {
        // More edges than one bulk read so the chunk loop takes >1 pass.
        let m = super::READ_CHUNK_EDGES + 1234;
        let mut b = crate::DirectedGraphBuilder::with_capacity(1 << 17, m);
        let mut x = 1u32;
        for _ in 0..m {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            b.push_edge(x & 0x1_ffff, (x >> 12) & 0x1_ffff);
        }
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        write_directed_binary(&g, &mut buf).unwrap();
        let g2 = read_directed_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_path_round_trip() {
        let g = crate::gen::erdos_renyi(50, 120, 3);
        let dir = std::env::temp_dir().join("dsd_binio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        write_undirected_binary_path(&g, &path).unwrap();
        let g2 = read_undirected_binary_path(&path).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn v2_undirected_mmap_round_trip() {
        let g = crate::gen::chung_lu(400, 2000, 2.3, 11);
        let c = CompressedCsr::from_graph(&g);
        let dir = std::env::temp_dir().join("dsd_binio_v2_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("u.bin2");
        write_compressed_undirected_path(&c, &path).unwrap();
        let loaded = load_compressed_undirected_path(&path).unwrap();
        assert_eq!(loaded.decompress(), g);
        // Cursors decode straight off the mapping.
        for v in g.vertices() {
            let got: Vec<VertexId> = loaded.cursor(v).collect();
            assert_eq!(got, g.neighbors(v));
        }
    }

    #[test]
    fn v2_directed_mmap_round_trip() {
        let g = crate::gen::erdos_renyi_directed(200, 900, 13);
        let c = CompressedDigraph::from_graph(&g);
        let dir = std::env::temp_dir().join("dsd_binio_v2_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.bin2");
        write_compressed_directed_path(&c, &path).unwrap();
        let loaded = load_compressed_directed_path(&path).unwrap();
        assert_eq!(loaded.decompress(), g);
    }

    #[test]
    fn v2_loads_through_version_dispatching_v1_reader() {
        // A v2 stream fed to the legacy edge-list entry point decompresses
        // transparently — old call sites keep working on new files.
        let g = crate::gen::chung_lu(120, 600, 2.3, 3);
        let c = CompressedCsr::from_graph(&g);
        let mut buf = Vec::new();
        write_compressed_undirected(&c, &mut buf).unwrap();
        let g2 = read_undirected_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn v1_files_still_load_after_v2() {
        // Explicit freeze of the v1 on-disk bytes: hand-built header+payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DSDGRAPH");
        buf.push(0);
        buf.push(1); // version 1
        buf.extend_from_slice(&3u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        for (u, v) in [(0u32, 1u32), (1, 2)] {
            buf.extend_from_slice(&u.to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let g = read_undirected_binary(buf.as_slice()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn v2_lying_section_table_rejected_without_allocation() {
        let g = crate::gen::erdos_renyi(40, 100, 5);
        let c = CompressedCsr::from_graph(&g);
        let mut buf = Vec::new();
        write_compressed_undirected(&c, &mut buf).unwrap();
        // Claim a section far beyond the payload.
        let table_at = super::V2_PREFIX_BYTES;
        buf[table_at + 8..table_at + 16].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::Format { .. }), "{err}");
        assert!(err.to_string().contains("exceeds payload"), "{err}");
    }

    #[test]
    fn v2_truncated_rejected() {
        let g = crate::gen::erdos_renyi(40, 100, 5);
        let c = CompressedCsr::from_graph(&g);
        let mut buf = Vec::new();
        write_compressed_undirected(&c, &mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::Format { .. }), "{err}");
    }

    #[test]
    fn v2_degree_sum_mismatch_rejected() {
        let g = crate::gen::erdos_renyi(40, 100, 5);
        let c = CompressedCsr::from_graph(&g);
        let mut buf = Vec::new();
        write_compressed_undirected(&c, &mut buf).unwrap();
        // Corrupt the declared arc count: header-level counts must agree
        // with the degree table.
        buf[24..32].copy_from_slice(&(g.adjacency().len() as u64 + 2).to_le_bytes());
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("arc count"), "{err}");
    }

    #[test]
    fn delta_round_trips_through_binary() {
        let batch =
            DeltaBatch::new(vec![(0, 3), (7, 2)], vec![(1, 2), (4, 4_000_000_000)]).unwrap();
        let mut buf = Vec::new();
        write_delta(&batch, &mut buf).unwrap();
        assert!(buf.starts_with(DELTA_MAGIC));
        let back = read_delta(buf.as_slice()).unwrap();
        assert_eq!(back, batch);
        // And through the sniffing loader, against the text form of the
        // same batch.
        let dir = std::env::temp_dir().join(format!("dsd_delta_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bin_path = dir.join("batch.delta");
        write_delta_path(&batch, &bin_path).unwrap();
        let text_path = dir.join("batch.txt");
        std::fs::write(&text_path, "# churn\n+ 0 3\n+ 7 2\n- 1 2\n- 4 4000000000\n").unwrap();
        assert_eq!(DeltaBatch::load(&bin_path).unwrap(), batch);
        assert_eq!(DeltaBatch::load(&text_path).unwrap(), batch);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_empty_batch_parity_between_text_and_binary() {
        // A structurally valid file declaring zero operations fails with
        // the exact error string the text parser produces for a
        // comment-only file.
        let mut buf = Vec::new();
        buf.extend_from_slice(DELTA_MAGIC);
        buf.extend_from_slice(&[1, 0]);
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let bin_err = read_delta(buf.as_slice()).unwrap_err();
        let text_err = DeltaBatch::parse("# nothing here\n".as_bytes()).unwrap_err();
        assert_eq!(bin_err.to_string(), text_err.to_string());
        assert_eq!(
            bin_err.to_string(),
            "invalid argument: empty delta batch: no insertions or removals"
        );
    }

    #[test]
    fn delta_remove_nonexistent_parity_between_text_and_binary() {
        // Apply-time semantic errors carry no source-format context, so a
        // batch that removes a missing edge fails with one shared string
        // whether it came from text or binary.
        let g = crate::gen::erdos_renyi(10, 0, 1);
        let batch = DeltaBatch::new(vec![], vec![(2, 6)]).unwrap();
        let mut buf = Vec::new();
        write_delta(&batch, &mut buf).unwrap();
        let from_binary = read_delta(buf.as_slice()).unwrap();
        let from_text = DeltaBatch::parse("- 2 6\n".as_bytes()).unwrap();
        assert_eq!(from_binary, from_text);
        let bin_err = crate::delta::apply_undirected(&g, &from_binary).unwrap_err();
        let text_err = crate::delta::apply_undirected(&g, &from_text).unwrap_err();
        assert_eq!(bin_err.to_string(), text_err.to_string());
        assert_eq!(
            bin_err.to_string(),
            "invalid argument: delta removes edge (2, 6) not present in the base graph"
        );
    }

    #[test]
    fn delta_structural_errors_are_format_errors() {
        assert!(matches!(read_delta(&b"NOTDELTA\x01\x00"[..]), Err(GraphError::Format { .. })));
        let mut buf = Vec::new();
        buf.extend_from_slice(DELTA_MAGIC);
        buf.extend_from_slice(&[9, 0]);
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_delta(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unsupported delta format version 9"), "{err}");
        // Truncated payload: declares one insert, holds none.
        let mut buf = Vec::new();
        buf.extend_from_slice(DELTA_MAGIC);
        buf.extend_from_slice(&[1, 0]);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_delta(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated delta payload"), "{err}");
    }

    #[test]
    fn binary_smaller_than_text_for_large_ids() {
        // 8 bytes/edge beats text once ids have ~7 digits.
        let mut b = crate::UndirectedGraphBuilder::new(3_000_000);
        for i in 0..5_000u32 {
            b.push_edge(2_000_000 + i, 2_500_000 + i);
        }
        let g = b.build().unwrap();
        let mut bin = Vec::new();
        write_undirected_binary(&g, &mut bin).unwrap();
        let mut text = Vec::new();
        crate::io::write_undirected(&g, &mut text).unwrap();
        assert!(bin.len() < text.len(), "bin {} vs text {}", bin.len(), text.len());
    }
}
