//! Compact binary graph format.
//!
//! Text edge lists (the [`crate::io`] module) are convenient but slow to
//! parse at the million-edge scale of the experiment datasets. This module
//! provides a little-endian binary format that round-trips the CSR arrays
//! directly:
//!
//! ```text
//! magic   8 bytes   b"DSDGRAPH"
//! kind    1 byte    0 = undirected, 1 = directed
//! version 1 byte    currently 1
//! n       8 bytes   u64 vertex count
//! m       8 bytes   u64 edge count
//! edges   m records u32 source, u32 target (undirected: u < v once)
//! ```
//!
//! Graphs are re-validated through the builders on load, so a corrupted or
//! adversarial file fails with a [`GraphError`] instead of producing a
//! broken CSR. The edge payload is read in ~1 MiB bulk chunks (not one
//! `read_exact` per record), the header's declared edge count is checked
//! against the file size before any payload allocation on the path-based
//! readers, and stream readers cap the header-trusted pre-allocation so a
//! lying header cannot trigger a giant up-front allocation.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{
    DirectedGraph, DirectedGraphBuilder, GraphError, Result, UndirectedGraph,
    UndirectedGraphBuilder, VertexId,
};

const MAGIC: &[u8; 8] = b"DSDGRAPH";
const VERSION: u8 = 1;
const KIND_UNDIRECTED: u8 = 0;
const KIND_DIRECTED: u8 = 1;

/// Fixed header size: magic + kind + version + n + m.
const HEADER_BYTES: u64 = 8 + 1 + 1 + 8 + 8;
/// Bytes per edge record (two little-endian `u32`s).
const EDGE_BYTES: u64 = 8;
/// Edges per bulk read (1 MiB of payload per `read` call).
const READ_CHUNK_EDGES: usize = 128 << 10;
/// Never pre-allocate more than this many edges on the say-so of a header
/// alone (8 MiB); a genuinely larger payload grows the vec as real bytes
/// arrive, while a lying header on a short stream fails fast instead of
/// attempting a giant allocation.
const PREALLOC_EDGE_CAP: usize = 1 << 20;

/// When the total stream length is known (file readers), rejects headers
/// whose declared edge count cannot match the actual payload length —
/// before any edge allocation happens.
fn validate_declared_len(m: u64, total_len: Option<u64>) -> Result<()> {
    let Some(len) = total_len else { return Ok(()) };
    match m.checked_mul(EDGE_BYTES).and_then(|p| p.checked_add(HEADER_BYTES)) {
        Some(expected) if expected == len => Ok(()),
        Some(expected) => Err(GraphError::Parse {
            line: 0,
            message: format!(
                "edge count mismatch: header declares {m} edges ({expected} bytes total), \
                 file is {len} bytes"
            ),
        }),
        None => Err(GraphError::Parse {
            line: 0,
            message: format!("declared edge count {m} overflows the format"),
        }),
    }
}

fn write_header<W: Write>(w: &mut W, kind: u8, n: u64, m: u64) -> Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[kind, VERSION])?;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    Ok(())
}

fn read_header<R: Read>(r: &mut R, expected_kind: u8) -> Result<(u64, u64)> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: "bad magic; not a DSDGRAPH file".into(),
        });
    }
    let mut kv = [0u8; 2];
    r.read_exact(&mut kv)?;
    if kv[0] != expected_kind {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("graph kind mismatch: file has {}, expected {expected_kind}", kv[0]),
        });
    }
    if kv[1] != VERSION {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("unsupported format version {}", kv[1]),
        });
    }
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    let n = u64::from_le_bytes(buf);
    r.read_exact(&mut buf)?;
    let m = u64::from_le_bytes(buf);
    Ok((n, m))
}

/// Reads the `m`-record edge payload in [`READ_CHUNK_EDGES`]-sized bulk
/// reads (instead of one 8-byte `read_exact` per edge) and decodes records
/// from the buffered chunk. Early EOF reports how many complete edges the
/// stream actually held versus what the header declared.
fn read_edges<R: Read>(r: &mut R, m: usize) -> Result<Vec<(VertexId, VertexId)>> {
    let mut edges = Vec::with_capacity(m.min(PREALLOC_EDGE_CAP));
    let mut buf = vec![0u8; m.min(READ_CHUNK_EDGES) * EDGE_BYTES as usize];
    let mut remaining = m;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK_EDGES);
        let bytes = &mut buf[..take * EDGE_BYTES as usize];
        let mut filled = 0usize;
        while filled < bytes.len() {
            match r.read(&mut bytes[filled..]) {
                Ok(0) => {
                    let got = m - remaining + filled / EDGE_BYTES as usize;
                    return Err(GraphError::Parse {
                        line: 0,
                        message: format!(
                            "truncated edge payload: header declares {m} edges, stream holds {got}"
                        ),
                    });
                }
                Ok(k) => filled += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        for rec in bytes.chunks_exact(EDGE_BYTES as usize) {
            let u = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
            let v = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
            edges.push((u, v));
        }
        remaining -= take;
    }
    Ok(edges)
}

/// Writes an undirected graph in the binary format.
pub fn write_undirected_binary<W: Write>(g: &UndirectedGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    write_header(&mut w, KIND_UNDIRECTED, g.num_vertices() as u64, g.num_edges() as u64)?;
    for (u, v) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

fn read_undirected_inner<R: Read>(reader: R, total_len: Option<u64>) -> Result<UndirectedGraph> {
    let mut r = BufReader::new(reader);
    let (n, m) = read_header(&mut r, KIND_UNDIRECTED)?;
    if n > u32::MAX as u64 + 1 {
        return Err(GraphError::Parse { line: 0, message: "vertex count exceeds u32 ids".into() });
    }
    validate_declared_len(m, total_len)?;
    let edges = read_edges(&mut r, m as usize)?;
    UndirectedGraphBuilder::with_capacity(n as usize, edges.len()).add_edges(edges).build()
}

/// Reads an undirected graph from the binary format.
pub fn read_undirected_binary<R: Read>(reader: R) -> Result<UndirectedGraph> {
    read_undirected_inner(reader, None)
}

/// Writes a directed graph in the binary format.
pub fn write_directed_binary<W: Write>(g: &DirectedGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    write_header(&mut w, KIND_DIRECTED, g.num_vertices() as u64, g.num_edges() as u64)?;
    for (u, v) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

fn read_directed_inner<R: Read>(reader: R, total_len: Option<u64>) -> Result<DirectedGraph> {
    let mut r = BufReader::new(reader);
    let (n, m) = read_header(&mut r, KIND_DIRECTED)?;
    if n > u32::MAX as u64 + 1 {
        return Err(GraphError::Parse { line: 0, message: "vertex count exceeds u32 ids".into() });
    }
    validate_declared_len(m, total_len)?;
    let edges = read_edges(&mut r, m as usize)?;
    DirectedGraphBuilder::with_capacity(n as usize, edges.len()).add_edges(edges).build()
}

/// Reads a directed graph from the binary format.
pub fn read_directed_binary<R: Read>(reader: R) -> Result<DirectedGraph> {
    read_directed_inner(reader, None)
}

/// Convenience: writes an undirected graph to a file path.
pub fn write_undirected_binary_path<P: AsRef<Path>>(g: &UndirectedGraph, path: P) -> Result<()> {
    write_undirected_binary(g, std::fs::File::create(path)?)
}

/// Convenience: reads an undirected graph from a file path. The declared
/// edge count is validated against the file size before any payload
/// allocation.
pub fn read_undirected_binary_path<P: AsRef<Path>>(path: P) -> Result<UndirectedGraph> {
    let file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    read_undirected_inner(file, Some(len))
}

/// Convenience: writes a directed graph to a file path.
pub fn write_directed_binary_path<P: AsRef<Path>>(g: &DirectedGraph, path: P) -> Result<()> {
    write_directed_binary(g, std::fs::File::create(path)?)
}

/// Convenience: reads a directed graph from a file path. The declared edge
/// count is validated against the file size before any payload allocation.
pub fn read_directed_binary_path<P: AsRef<Path>>(path: P) -> Result<DirectedGraph> {
    let file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    read_directed_inner(file, Some(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_round_trip() {
        let g = crate::gen::chung_lu(500, 2500, 2.3, 7);
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        let g2 = read_undirected_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn directed_round_trip() {
        let g = crate::gen::erdos_renyi_directed(300, 1500, 9);
        let mut buf = Vec::new();
        write_directed_binary(&g, &mut buf).unwrap();
        let g2 = read_directed_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_graph_round_trip() {
        let g = crate::UndirectedGraphBuilder::new(0).build().unwrap();
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        let g2 = read_undirected_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_undirected_binary(&b"NOTAGRPH\x00\x01"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn kind_mismatch_rejected() {
        let g = crate::gen::erdos_renyi(10, 20, 1);
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        let err = read_directed_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("kind mismatch"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let g = crate::gen::erdos_renyi(10, 20, 2);
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_undirected_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_edge_ids_rejected() {
        // Claim n = 2 but write an edge to vertex 7: builder must reject.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DSDGRAPH");
        buf.push(0); // undirected
        buf.push(1); // version
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DSDGRAPH");
        buf.push(0);
        buf.push(9); // future version
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncated_reports_declared_vs_actual() {
        let g = crate::gen::erdos_renyi(10, 20, 2);
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 11);
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("truncated"), "{msg}");
        assert!(msg.contains(&format!("declares {} edges", g.num_edges())), "{msg}");
    }

    #[test]
    fn lying_header_fails_fast_without_huge_allocation() {
        // Header claims 2^40 edges (8 TiB of payload) over an empty body.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DSDGRAPH");
        buf.push(0);
        buf.push(1);
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 40).to_le_bytes());
        let err = read_undirected_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn path_reader_rejects_length_mismatch() {
        let g = crate::gen::erdos_renyi(30, 80, 6);
        let dir = std::env::temp_dir().join("dsd_binio_len_test");
        std::fs::create_dir_all(&dir).unwrap();

        // Trailing garbage after the declared payload.
        let mut buf = Vec::new();
        write_undirected_binary(&g, &mut buf).unwrap();
        buf.extend_from_slice(&[0u8; 5]);
        let long = dir.join("long.bin");
        std::fs::write(&long, &buf).unwrap();
        let err = read_undirected_binary_path(&long).unwrap_err();
        assert!(err.to_string().contains("edge count mismatch"), "{err}");

        // Truncated payload is caught by the same pre-allocation check.
        buf.truncate(buf.len() - 5 - 24);
        let short = dir.join("short.bin");
        std::fs::write(&short, &buf).unwrap();
        let err = read_undirected_binary_path(&short).unwrap_err();
        assert!(err.to_string().contains("edge count mismatch"), "{err}");
    }

    #[test]
    fn multi_chunk_payload_round_trips() {
        // More edges than one bulk read so the chunk loop takes >1 pass.
        let m = super::READ_CHUNK_EDGES + 1234;
        let mut b = crate::DirectedGraphBuilder::with_capacity(1 << 17, m);
        let mut x = 1u32;
        for _ in 0..m {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            b.push_edge(x & 0x1_ffff, (x >> 12) & 0x1_ffff);
        }
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        write_directed_binary(&g, &mut buf).unwrap();
        let g2 = read_directed_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_path_round_trip() {
        let g = crate::gen::erdos_renyi(50, 120, 3);
        let dir = std::env::temp_dir().join("dsd_binio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        write_undirected_binary_path(&g, &path).unwrap();
        let g2 = read_undirected_binary_path(&path).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_smaller_than_text_for_large_ids() {
        // 8 bytes/edge beats text once ids have ~7 digits.
        let mut b = crate::UndirectedGraphBuilder::new(3_000_000);
        for i in 0..5_000u32 {
            b.push_edge(2_000_000 + i, 2_500_000 + i);
        }
        let g = b.build().unwrap();
        let mut bin = Vec::new();
        write_undirected_binary(&g, &mut bin).unwrap();
        let mut text = Vec::new();
        crate::io::write_undirected(&g, &mut text).unwrap();
        assert!(bin.len() < text.len(), "bin {} vs text {}", bin.len(), text.len());
    }
}
