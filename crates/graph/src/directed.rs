//! Compressed-sparse-row directed graph with both out- and in-adjacency.

use crate::VertexId;

/// An immutable directed graph storing both out-neighbour and in-neighbour
/// CSR arrays.
///
/// The paper’s directed algorithms (`[x,y]`-core peeling, the w-induced
/// subgraph decomposition) need constant-time access to out-degrees *and*
/// in-degrees and fast scans of both neighbourhoods, so both directions are
/// materialised. Self-loops and duplicate arcs are removed at construction
/// time by [`crate::DirectedGraphBuilder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectedGraph {
    out_offsets: Vec<usize>,
    out_adj: Vec<VertexId>,
    in_offsets: Vec<usize>,
    in_adj: Vec<VertexId>,
}

impl DirectedGraph {
    pub(crate) fn from_csr(
        out_offsets: Vec<usize>,
        out_adj: Vec<VertexId>,
        in_offsets: Vec<usize>,
        in_adj: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), in_offsets.len());
        debug_assert_eq!(out_adj.len(), in_adj.len());
        debug_assert_eq!(*out_offsets.last().unwrap(), out_adj.len());
        debug_assert_eq!(*in_offsets.last().unwrap(), in_adj.len());
        Self { out_offsets, out_adj, in_offsets, in_adj }
    }

    /// Creates an empty directed graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            out_offsets: vec![0; n + 1],
            out_adj: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_adj: Vec::new(),
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_adj.len()
    }

    /// Out-degree `d⁺(v)`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree `d⁻(v)`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Sorted out-neighbours `N⁺(v)`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.out_adj[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// The out-CSR offset array: vertex `v` owns the edge slots
    /// `out_offsets()[v]..out_offsets()[v + 1]` (length `n + 1`, last entry
    /// is `m`). Slot indices in this flat order are the canonical edge ids
    /// used by the w-induced decomposition's induce-number vector.
    #[inline]
    pub fn out_offsets(&self) -> &[usize] {
        &self.out_offsets
    }

    /// The in-CSR offset array: vertex `v` owns the in-arc positions
    /// `in_offsets()[v]..in_offsets()[v + 1]` into its in-neighbour list.
    #[inline]
    pub fn in_offsets(&self) -> &[usize] {
        &self.in_offsets
    }

    /// Raw flat out-adjacency array (concatenated sorted `N⁺` lists), for
    /// zero-copy consumers like the compressed-substrate encoder.
    #[inline]
    pub fn out_adjacency(&self) -> &[VertexId] {
        &self.out_adj
    }

    /// Raw flat in-adjacency array (concatenated sorted `N⁻` lists).
    #[inline]
    pub fn in_adjacency(&self) -> &[VertexId] {
        &self.in_adj
    }

    /// Sorted in-neighbours `N⁻(v)`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.in_adj[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Whether the directed edge `(u, v)` exists. `O(log d⁺(u))`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over every directed edge `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.out_neighbors(u).iter().copied().map(move |v| (u, v)))
    }

    /// Maximum out-degree `d⁺_max`.
    pub fn max_out_degree(&self) -> usize {
        (0..self.num_vertices()).map(|v| self.out_degree(v as VertexId)).max().unwrap_or(0)
    }

    /// Maximum in-degree `d⁻_max`.
    pub fn max_in_degree(&self) -> usize {
        (0..self.num_vertices()).map(|v| self.in_degree(v as VertexId)).max().unwrap_or(0)
    }

    /// `max(d⁺_max, d⁻_max)` — the `d_max` of the paper's Remark in
    /// Section V-B, used to warm-start the w-induced decomposition.
    pub fn max_degree(&self) -> usize {
        self.max_out_degree().max(self.max_in_degree())
    }

    /// All out-degrees as a vector.
    pub fn out_degrees(&self) -> Vec<u32> {
        (0..self.num_vertices()).map(|v| self.out_degree(v as VertexId) as u32).collect()
    }

    /// All in-degrees as a vector.
    pub fn in_degrees(&self) -> Vec<u32> {
        (0..self.num_vertices()).map(|v| self.in_degree(v as VertexId) as u32).collect()
    }

    /// Returns the transpose (edge-reversed) graph: `(u, v)` becomes
    /// `(v, u)`. Out- and in-adjacency arrays simply swap roles, so this is
    /// a pair of `O(m)` copies.
    ///
    /// Used by algorithms that need to run an out-degree-constrained
    /// procedure on the in-degree side (e.g. PXY's symmetric cn-pair
    /// enumeration).
    pub fn transpose(&self) -> DirectedGraph {
        DirectedGraph {
            out_offsets: self.in_offsets.clone(),
            out_adj: self.in_adj.clone(),
            in_offsets: self.out_offsets.clone(),
            in_adj: self.out_adj.clone(),
        }
    }

    /// Density of the whole graph viewed as an `(V, V)`-induced subgraph,
    /// i.e. `m / n` (Definition 3 with `S = T = V`).
    pub fn density(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectedGraphBuilder;

    fn sample() -> DirectedGraph {
        // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0
        DirectedGraphBuilder::new(3).add_edges([(0, 1), (0, 2), (1, 2), (2, 0)]).build().unwrap()
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.in_degree(2), 2);
    }

    #[test]
    fn neighbors_sorted() {
        let g = sample();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
    }

    #[test]
    fn offset_slices_describe_the_csr() {
        let g = sample();
        let out = g.out_offsets();
        let inn = g.in_offsets();
        assert_eq!(out.len(), g.num_vertices() + 1);
        assert_eq!(inn.len(), g.num_vertices() + 1);
        assert_eq!(*out.last().unwrap(), g.num_edges());
        assert_eq!(*inn.last().unwrap(), g.num_edges());
        for v in 0..g.num_vertices() {
            assert_eq!(out[v + 1] - out[v], g.out_degree(v as VertexId));
            assert_eq!(inn[v + 1] - inn[v], g.in_degree(v as VertexId));
        }
    }

    #[test]
    fn has_edge_is_directional() {
        let g = sample();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn edge_iterator_complete() {
        let g = sample();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn max_degrees() {
        let g = sample();
        assert_eq!(g.max_out_degree(), 2);
        assert_eq!(g.max_in_degree(), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn empty() {
        let g = DirectedGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = sample();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(t.has_edge(v, u));
        }
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn in_out_edge_counts_agree() {
        let g = sample();
        let out_sum: usize = (0..3).map(|v| g.out_degree(v)).sum();
        let in_sum: usize = (0..3).map(|v| g.in_degree(v)).sum();
        assert_eq!(out_sum, in_sum);
        assert_eq!(out_sum, g.num_edges());
    }
}
