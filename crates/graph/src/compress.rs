//! Delta-encoded varint compressed CSR substrate (ROADMAP item 1).
//!
//! The plain [`UndirectedGraph`] / [`DirectedGraph`] substrate stores every
//! neighbour as a raw 4-byte [`VertexId`]. The paper's headline datasets are
//! billion-edge graphs, and both follow-up lines of work in PAPERS.md
//! (Sukprasert et al.'s near-optimal densest-subgraph study on GBBS, and
//! De Zoysa et al.'s shared-memory parallel DSD) observe that the peel/sweep
//! hot paths are memory-bandwidth-bound, so shrinking bytes-per-edge is a
//! direct speedup lever as well as a capacity one.
//!
//! This module provides the GBBS/Ligra-style compressed adjacency:
//!
//! * **Encoding.** Per vertex, neighbours (already strictly sorted by the
//!   builder) are split into chunks of [`CHUNK`] (= 64). Each chunk is
//!   self-contained: its first neighbour is a zigzag LEB128 varint of the
//!   *signed* delta from the source vertex id, and the remaining neighbours
//!   are gap values (`w_i - w_{i-1} - 1`) packed as k-byte **group varints**
//!   — groups of four gaps share one tag byte whose 2-bit fields give each
//!   gap's byte length (1–4), followed by the gaps' little-endian bytes with
//!   high zero bytes truncated; a trailing partial group (< 4 gaps) falls
//!   back to plain LEB128. Chunks after the first are located by a small
//!   per-vertex chunk table (u32 byte offsets), so decoding is seekable:
//!   random access to the `i`-th neighbour touches at most one chunk.
//! * **Sections.** A compressed adjacency is three byte sections over one
//!   backing buffer: `degrees` (n × u32 LE), `offsets` ((n+1) × u64 LE byte
//!   offsets into the data section), and `data` (the per-vertex blocks).
//!   Sections are 8-byte aligned; all multi-byte reads go through
//!   `from_le_bytes`, so the same layout is served zero-copy from an owned
//!   build buffer or from an `mmap`ed [`crate::binio`] v2 file.
//! * **Fused decode.** Consumers do not materialise neighbour `Vec`s: the
//!   sweep/peel/core-peeling kernels iterate a [`NeighborCursor`] whose
//!   decode loop is monomorphised into the caller via the
//!   [`NeighborAccess`] / [`DirectedNeighborAccess`] traits, with the
//!   [`UndirectedStorage`] / [`DirectedStorage`] enums selecting plain CSR
//!   (the parity oracle) or compressed storage at the entry point.
//!
//! Degree-descending relabelling ([`crate::reorder`]) before compression
//! concentrates the id space so deltas stay small — the CLI does this by
//! default (`--no-reorder` opts out).

use std::ops::Range;
use std::sync::Arc;

use dsd_telemetry::{counter_add, enabled, span, Counter, Phase};
use rayon::prelude::*;

use crate::binio::MapBacking;
use crate::directed::DirectedGraph;
use crate::undirected::UndirectedGraph;
use crate::{GraphError, VertexId};

/// Neighbours per decode chunk. 64 keeps random access cheap (decode ≤ 63
/// gaps past the seek point) while amortising the chunk-table entry and the
/// per-chunk absolute first value.
pub const CHUNK: usize = 64;

// ---------------------------------------------------------------------------
// Backing buffer: owned build output or a zero-copy file mapping
// ---------------------------------------------------------------------------

/// Byte storage behind a compressed adjacency: an owned build buffer or a
/// shared read-only file mapping (see [`crate::binio`] v2).
#[derive(Debug)]
pub(crate) enum ByteBuf {
    /// Bytes produced by the in-process encoder (or a buffered file read).
    Owned(Vec<u8>),
    /// A zero-copy `mmap` of a binio v2 file.
    Mapped(MapBacking),
}

impl ByteBuf {
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            ByteBuf::Owned(v) => v.as_slice(),
            ByteBuf::Mapped(m) => m.as_slice(),
        }
    }
}

#[inline]
pub(crate) fn align8(x: usize) -> usize {
    (x + 7) & !7
}

// ---------------------------------------------------------------------------
// Varint primitives
// ---------------------------------------------------------------------------

#[inline]
fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

#[inline]
fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

#[inline]
fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = data[*pos];
        *pos += 1;
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// Bytes needed for a group-varint value (1–4).
#[inline]
fn group_bytes(x: u32) -> usize {
    if x < 1 << 8 {
        1
    } else if x < 1 << 16 {
        2
    } else if x < 1 << 24 {
        3
    } else {
        4
    }
}

#[inline]
fn read_group_value(data: &[u8], pos: &mut usize, len: usize) -> u32 {
    let mut val = 0u32;
    for t in 0..len {
        val |= u32::from(data[*pos + t]) << (8 * t);
    }
    *pos += len;
    val
}

// ---------------------------------------------------------------------------
// Block encoder
// ---------------------------------------------------------------------------

/// Encodes one vertex's sorted neighbour list as `[chunk table][chunks...]`
/// and appends it to `out`. `scratch`/`boundaries` are reusable buffers.
fn encode_block(v: VertexId, nbrs: &[VertexId], scratch: &mut Vec<u8>, out: &mut Vec<u8>) {
    if nbrs.is_empty() {
        return;
    }
    scratch.clear();
    let nchunks = nbrs.len().div_ceil(CHUNK);
    let mut boundaries: Vec<u32> = Vec::with_capacity(nchunks - 1);
    let mut gaps = [0u32; CHUNK];
    for (ci, chunk) in nbrs.chunks(CHUNK).enumerate() {
        if ci > 0 {
            // Chunk 0 starts at offset 0 and is not recorded in the table.
            boundaries.push(scratch.len() as u32);
        }
        write_varint(scratch, zigzag(chunk[0] as i64 - v as i64));
        let ng = chunk.len() - 1;
        for k in 0..ng {
            gaps[k] = chunk[k + 1] - chunk[k] - 1;
        }
        let mut i = 0;
        while i + 4 <= ng {
            let lens = [
                group_bytes(gaps[i]),
                group_bytes(gaps[i + 1]),
                group_bytes(gaps[i + 2]),
                group_bytes(gaps[i + 3]),
            ];
            let tag =
                (lens[0] - 1) | ((lens[1] - 1) << 2) | ((lens[2] - 1) << 4) | ((lens[3] - 1) << 6);
            scratch.push(tag as u8);
            for k in 0..4 {
                scratch.extend_from_slice(&gaps[i + k].to_le_bytes()[..lens[k]]);
            }
            i += 4;
        }
        while i < ng {
            write_varint(scratch, u64::from(gaps[i]));
            i += 1;
        }
    }
    debug_assert_eq!(boundaries.len(), nchunks - 1);
    for b in &boundaries {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out.extend_from_slice(scratch);
}

/// Byte length of the chunk table for a vertex of degree `d`.
#[inline]
fn table_bytes(d: usize) -> usize {
    if d == 0 {
        0
    } else {
        (d.div_ceil(CHUNK) - 1) * 4
    }
}

// ---------------------------------------------------------------------------
// Encoded adjacency (build output, not yet section-assembled)
// ---------------------------------------------------------------------------

/// One encoded adjacency direction as raw little-endian section bytes.
pub(crate) struct EncodedAdj {
    pub(crate) n: usize,
    pub(crate) arcs: u64,
    pub(crate) deg_bytes: Vec<u8>,
    pub(crate) offs_bytes: Vec<u8>,
    pub(crate) data: Vec<u8>,
}

/// Splits `0..n` into contiguous vertex ranges of roughly equal arc mass,
/// one per worker, so parallel encode/decode stays balanced on skewed
/// degree distributions.
fn partition_by_arcs(offsets: &[usize], parts: usize) -> Vec<Range<usize>> {
    let n = offsets.len() - 1;
    let total = offsets[n];
    let parts = parts.clamp(1, n.max(1));
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 1..=parts {
        let target = total * p / parts;
        // First vertex boundary whose prefix reaches the target.
        let mut end = offsets.partition_point(|&o| o < target).max(start + 1);
        if p == parts {
            end = n;
        }
        let end = end.min(n);
        if start < end {
            ranges.push(start..end);
            start = end;
        }
    }
    if ranges.is_empty() && n > 0 {
        ranges.push(0..n);
    }
    ranges
}

/// Encodes a plain CSR side into delta-varint blocks, vertex-parallel.
fn encode_adj(offsets: &[usize], adj: &[VertexId]) -> EncodedAdj {
    let _encode = span(Phase::CompressEncode);
    let n = offsets.len() - 1;
    let arcs = adj.len() as u64;
    let workers = rayon::current_num_threads().max(1);
    let ranges = partition_by_arcs(offsets, workers * 4);
    let parts: Vec<(Vec<u8>, Vec<u64>)> = ranges
        .par_iter()
        .map(|r| {
            let mut data = Vec::new();
            let mut local_offs = Vec::with_capacity(r.len());
            let mut scratch = Vec::new();
            for v in r.clone() {
                local_offs.push(data.len() as u64);
                let nbrs = &adj[offsets[v]..offsets[v + 1]];
                encode_block(v as VertexId, nbrs, &mut scratch, &mut data);
            }
            (data, local_offs)
        })
        .collect();
    let mut deg_bytes = Vec::with_capacity(n * 4);
    for v in 0..n {
        deg_bytes.extend_from_slice(&((offsets[v + 1] - offsets[v]) as u32).to_le_bytes());
    }
    let total_data: usize = parts.iter().map(|(d, _)| d.len()).sum();
    let mut offs_bytes = Vec::with_capacity((n + 1) * 8);
    let mut data = Vec::with_capacity(total_data);
    for (part_data, local_offs) in &parts {
        let base = data.len() as u64;
        for &o in local_offs {
            offs_bytes.extend_from_slice(&(base + o).to_le_bytes());
        }
        data.extend_from_slice(part_data);
    }
    offs_bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
    counter_add(Counter::EncodeBytes, data.len() as u64);
    EncodedAdj { n, arcs, deg_bytes, offs_bytes, data }
}

/// Encodes an adjacency from a `(src, dst)` stream sorted by `(src, dst)`
/// with duplicates already removed — the shape the spill-mode k-way merge
/// produces. Memory high-water is the output sections plus one max-degree
/// scratch list; the full plain CSR is never materialised.
pub(crate) fn encode_adj_from_sorted(
    n: usize,
    stream: impl Iterator<Item = (VertexId, VertexId)>,
) -> EncodedAdj {
    let _encode = span(Phase::CompressEncode);
    let mut deg_bytes = vec![0u8; n * 4];
    let mut offs_bytes = Vec::with_capacity((n + 1) * 8);
    let mut data = Vec::new();
    let mut scratch = Vec::new();
    let mut nbrs: Vec<VertexId> = Vec::new();
    let mut cur: usize = 0;
    let mut arcs = 0u64;
    offs_bytes.extend_from_slice(&0u64.to_le_bytes());
    let mut flush =
        |cur: usize, nbrs: &mut Vec<VertexId>, data: &mut Vec<u8>, deg_bytes: &mut Vec<u8>| {
            deg_bytes[cur * 4..cur * 4 + 4].copy_from_slice(&(nbrs.len() as u32).to_le_bytes());
            encode_block(cur as VertexId, nbrs, &mut scratch, data);
            nbrs.clear();
        };
    for (src, dst) in stream {
        let src = src as usize;
        debug_assert!(src >= cur, "spill merge stream must be sorted by source");
        while cur < src {
            flush(cur, &mut nbrs, &mut data, &mut deg_bytes);
            offs_bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
            cur += 1;
        }
        nbrs.push(dst);
        arcs += 1;
    }
    while cur < n {
        flush(cur, &mut nbrs, &mut data, &mut deg_bytes);
        offs_bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
        cur += 1;
    }
    counter_add(Counter::EncodeBytes, data.len() as u64);
    EncodedAdj { n, arcs, deg_bytes, offs_bytes, data }
}

// ---------------------------------------------------------------------------
// Compressed adjacency view
// ---------------------------------------------------------------------------

/// One direction of compressed adjacency: three byte sections (degrees,
/// offsets, data) over a shared backing buffer.
#[derive(Clone, Debug)]
pub struct CompressedAdj {
    buf: Arc<ByteBuf>,
    n: usize,
    arcs: u64,
    deg: Range<usize>,
    offs: Range<usize>,
    data: Range<usize>,
}

impl CompressedAdj {
    /// Validates section shapes against `n`/`arcs` and builds the view.
    /// Used both after an in-process encode and by the binio v2 loader, so
    /// a malformed file yields a structured error, never a panic.
    pub(crate) fn from_sections(
        buf: Arc<ByteBuf>,
        n: usize,
        arcs: u64,
        deg: Range<usize>,
        offs: Range<usize>,
        data: Range<usize>,
    ) -> crate::Result<Self> {
        let bytes = buf.as_slice();
        let invalid =
            |msg: &str| GraphError::InvalidArgument(format!("compressed adjacency: {msg}"));
        if deg.end > bytes.len() || offs.end > bytes.len() || data.end > bytes.len() {
            return Err(invalid("section out of buffer bounds"));
        }
        if deg.len() != n.checked_mul(4).ok_or_else(|| invalid("degree section overflow"))? {
            return Err(invalid("degree section length mismatch"));
        }
        let want_offs = (n as u64)
            .checked_add(1)
            .and_then(|x| x.checked_mul(8))
            .ok_or_else(|| invalid("offset section overflow"))?;
        if deg.start % 4 != 0 || offs.start % 8 != 0 {
            return Err(invalid("misaligned section"));
        }
        if offs.len() as u64 != want_offs {
            return Err(invalid("offset section length mismatch"));
        }
        let view = Self { buf, n, arcs, deg, offs, data };
        let mut prev = 0u64;
        let mut degs = 0u64;
        for v in 0..=n {
            let o = view.byte_offset(v);
            if o < prev {
                return Err(invalid("offsets not monotone"));
            }
            prev = o;
            if v < n {
                degs += view.degree(v as VertexId) as u64;
            }
        }
        if prev != view.data.len() as u64 {
            return Err(invalid("last offset does not match data length"));
        }
        if degs != arcs {
            return Err(invalid("degree sum does not match declared arc count"));
        }
        Ok(view)
    }

    /// Assembles owned encoded sections into a fresh backing buffer.
    pub(crate) fn from_encoded(e: EncodedAdj) -> Self {
        let (buf, ranges) = assemble(&[&e.deg_bytes, &e.offs_bytes, &e.data]);
        Self {
            buf: Arc::new(ByteBuf::Owned(buf)),
            n: e.n,
            arcs: e.arcs,
            deg: ranges[0].clone(),
            offs: ranges[1].clone(),
            data: ranges[2].clone(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored arcs (neighbour entries).
    #[inline]
    pub fn num_arcs(&self) -> u64 {
        self.arcs
    }

    /// Degree of vertex `v` (O(1) table read).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let base = self.deg.start + (v as usize) * 4;
        let b = &self.buf.as_slice()[base..base + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize
    }

    #[inline]
    fn byte_offset(&self, v: usize) -> u64 {
        let base = self.offs.start + v * 8;
        let b = &self.buf.as_slice()[base..base + 8];
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// The encoded block for vertex `v` (chunk table + chunk data).
    #[inline]
    fn block(&self, v: VertexId) -> &[u8] {
        let v = v as usize;
        let start = self.data.start + self.byte_offset(v) as usize;
        let end = self.data.start + self.byte_offset(v + 1) as usize;
        &self.buf.as_slice()[start..end]
    }

    /// A fused-decode cursor over `N(v)`, in sorted order.
    #[inline]
    pub fn cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        let deg = self.degree(v) as u32;
        let block = self.block(v);
        if enabled() {
            counter_add(Counter::DecodeBytes, block.len() as u64);
        }
        NeighborCursor::new(block, v, deg, 0)
    }

    /// Random access to the `i`-th neighbour of `v` via the chunk table:
    /// decodes at most one chunk past the seek point.
    pub fn neighbor_at(&self, v: VertexId, i: usize) -> VertexId {
        let deg = self.degree(v) as u32;
        debug_assert!(i < deg as usize);
        let block = self.block(v);
        let chunk = i / CHUNK;
        let mut cur = NeighborCursor::new(block, v, deg, chunk);
        let mut val = 0;
        for _ in 0..(i % CHUNK) + 1 {
            val = cur.next().expect("neighbor index within degree");
        }
        val
    }

    /// Position of `w` in `N(v)`, if present: binary search over chunk
    /// first-values, then a ≤ 64-entry scan inside one chunk.
    pub fn position_of(&self, v: VertexId, w: VertexId) -> Option<usize> {
        let deg = self.degree(v) as u32;
        if deg == 0 {
            return None;
        }
        let block = self.block(v);
        let nchunks = (deg as usize).div_ceil(CHUNK);
        // Find the last chunk whose first value is <= w.
        let mut lo = 0usize;
        let mut hi = nchunks;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if chunk_first(block, v, deg, mid) <= w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut cur = NeighborCursor::new(block, v, deg, lo);
        let base = lo * CHUNK;
        for (k, x) in cur.by_ref().take(CHUNK).enumerate() {
            if x == w {
                return Some(base + k);
            }
            if x > w {
                return None;
            }
        }
        None
    }

    /// Bytes of encoded neighbour data (the `data` section only).
    #[inline]
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total bytes across all three sections.
    #[inline]
    pub fn total_bytes(&self) -> usize {
        self.deg.len() + self.offs.len() + self.data.len()
    }

    pub(crate) fn section_ranges(&self) -> [Range<usize>; 3] {
        [self.deg.clone(), self.offs.clone(), self.data.clone()]
    }

    pub(crate) fn backing(&self) -> &Arc<ByteBuf> {
        &self.buf
    }

    /// Decompresses back to plain CSR arrays (used by the parity oracle
    /// paths and [`CompressedCsr::decompress`]).
    fn to_csr(&self) -> (Vec<usize>, Vec<VertexId>) {
        let n = self.n;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut run = 0usize;
        offsets.push(0);
        for v in 0..n {
            run += self.degree(v as VertexId);
            offsets.push(run);
        }
        let mut adj: Vec<VertexId> = vec![0; run];
        let workers = rayon::current_num_threads().max(1);
        let ranges = partition_by_arcs(&offsets, workers * 4);
        let bounds: Vec<usize> = {
            let mut b: Vec<usize> = ranges.iter().map(|r| offsets[r.start]).collect();
            b.push(run);
            b
        };
        crate::ingest::vertex_slices(&mut adj, &bounds).into_par_iter().zip(&ranges).for_each(
            |(out, r)| {
                let mut pos = 0usize;
                for v in r.clone() {
                    for x in self.cursor(v as VertexId) {
                        out[pos] = x;
                        pos += 1;
                    }
                }
            },
        );
        (offsets, adj)
    }
}

/// Decodes the first neighbour of chunk `j` without touching the rest of
/// the chunk (chunk firsts are absolute, so chunks seek independently).
#[inline]
fn chunk_first(block: &[u8], v: VertexId, deg: u32, j: usize) -> VertexId {
    let tbytes = table_bytes(deg as usize);
    let mut pos = if j == 0 {
        tbytes
    } else {
        let e = (j - 1) * 4;
        tbytes + u32::from_le_bytes([block[e], block[e + 1], block[e + 2], block[e + 3]]) as usize
    };
    let delta = unzigzag(read_varint(block, &mut pos));
    (v as i64 + delta) as VertexId
}

fn assemble(sections: &[&[u8]]) -> (Vec<u8>, Vec<Range<usize>>) {
    let total: usize = sections.iter().map(|s| align8(s.len())).sum();
    let mut buf = Vec::with_capacity(total);
    let mut ranges = Vec::with_capacity(sections.len());
    for s in sections {
        let start = align8(buf.len());
        buf.resize(start, 0);
        ranges.push(start..start + s.len());
        buf.extend_from_slice(s);
    }
    (buf, ranges)
}

// ---------------------------------------------------------------------------
// Fused-decode cursor
// ---------------------------------------------------------------------------

/// Streaming decoder over one vertex's compressed neighbour list.
///
/// The decode state lives entirely in registers/stack: callers iterate it
/// like a slice, and the group-varint refill amortises to ~¼ tag-dispatch
/// per neighbour. Constructed by [`CompressedAdj::cursor`] (sequential) or
/// internally at a chunk boundary (seek paths).
#[derive(Clone, Debug)]
pub struct NeighborCursor<'a> {
    data: &'a [u8],
    pos: usize,
    v: VertexId,
    deg: u32,
    idx: u32,
    prev: VertexId,
    /// Gaps of the current chunk not yet decoded into the group buffer.
    chunk_gaps: u32,
    group: [u32; 4],
    gpos: u8,
    glen: u8,
}

impl<'a> NeighborCursor<'a> {
    /// Positions a cursor at the start of chunk `start_chunk` of `block`.
    #[inline]
    fn new(block: &'a [u8], v: VertexId, deg: u32, start_chunk: usize) -> Self {
        let tbytes = table_bytes(deg as usize);
        let pos = if start_chunk == 0 {
            tbytes
        } else {
            let e = (start_chunk - 1) * 4;
            tbytes
                + u32::from_le_bytes([block[e], block[e + 1], block[e + 2], block[e + 3]]) as usize
        };
        Self {
            data: block,
            pos,
            v,
            deg,
            idx: (start_chunk * CHUNK) as u32,
            prev: 0,
            chunk_gaps: 0,
            group: [0; 4],
            gpos: 0,
            glen: 0,
        }
    }

    /// Neighbours remaining.
    #[inline]
    pub fn remaining(&self) -> usize {
        (self.deg - self.idx) as usize
    }
}

impl Iterator for NeighborCursor<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.idx == self.deg {
            return None;
        }
        let val = if self.idx as usize % CHUNK == 0 {
            let delta = unzigzag(read_varint(self.data, &mut self.pos));
            let clen = (CHUNK as u32).min(self.deg - self.idx);
            self.chunk_gaps = clen - 1;
            self.gpos = 0;
            self.glen = 0;
            (self.v as i64 + delta) as VertexId
        } else if self.gpos < self.glen {
            let g = self.group[self.gpos as usize];
            self.gpos += 1;
            self.prev + 1 + g
        } else {
            if self.chunk_gaps >= 4 {
                let tag = self.data[self.pos];
                self.pos += 1;
                for k in 0..4 {
                    let len = (((tag >> (2 * k)) & 3) + 1) as usize;
                    self.group[k] = read_group_value(self.data, &mut self.pos, len);
                }
                self.glen = 4;
                self.chunk_gaps -= 4;
            } else {
                self.group[0] = read_varint(self.data, &mut self.pos) as u32;
                self.glen = 1;
                self.chunk_gaps -= 1;
            }
            self.gpos = 1;
            self.prev + 1 + self.group[0]
        };
        self.prev = val;
        self.idx += 1;
        Some(val)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining();
        (r, Some(r))
    }
}

impl ExactSizeIterator for NeighborCursor<'_> {}

// ---------------------------------------------------------------------------
// Whole-graph wrappers
// ---------------------------------------------------------------------------

/// A compressed undirected graph: one [`CompressedAdj`] holding both
/// directions of every edge (the same doubled-arc convention as
/// [`UndirectedGraph`]).
#[derive(Clone, Debug)]
pub struct CompressedCsr {
    adj: CompressedAdj,
}

impl CompressedCsr {
    /// Compresses a plain graph (vertex-parallel encode).
    pub fn from_graph(g: &UndirectedGraph) -> Self {
        Self { adj: CompressedAdj::from_encoded(encode_adj(g.offsets(), g.adjacency())) }
    }

    pub(crate) fn from_adj(adj: CompressedAdj) -> Self {
        Self { adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.num_vertices()
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        (self.adj.num_arcs() / 2) as usize
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj.degree(v)
    }

    /// Fused-decode cursor over `N(v)` in sorted order.
    #[inline]
    pub fn cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        self.adj.cursor(v)
    }

    /// Random access to the `i`-th neighbour of `v`.
    #[inline]
    pub fn neighbor_at(&self, v: VertexId, i: usize) -> VertexId {
        self.adj.neighbor_at(v, i)
    }

    /// The underlying adjacency (binio and bench accounting).
    #[inline]
    pub fn adj(&self) -> &CompressedAdj {
        &self.adj
    }

    /// Total bytes across sections.
    #[inline]
    pub fn total_bytes(&self) -> usize {
        self.adj.total_bytes()
    }

    /// Mean encoded bytes per stored arc (2m arcs), including the degree
    /// and offset tables — the honest space figure reported by bench.
    pub fn bytes_per_arc(&self) -> f64 {
        if self.adj.num_arcs() == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.adj.num_arcs() as f64
        }
    }

    /// Decompresses back to the plain parity-oracle representation.
    pub fn decompress(&self) -> UndirectedGraph {
        let (offsets, adj) = self.adj.to_csr();
        UndirectedGraph::from_csr(offsets, adj)
    }
}

/// A compressed directed graph: out- and in-adjacency sides over one
/// backing buffer (when built in-process) or one mapped file.
#[derive(Clone, Debug)]
pub struct CompressedDigraph {
    out: CompressedAdj,
    inc: CompressedAdj,
}

impl CompressedDigraph {
    /// Compresses a plain directed graph.
    pub fn from_graph(g: &DirectedGraph) -> Self {
        let out = encode_adj(g.out_offsets(), g.out_adjacency());
        let inc = encode_adj(g.in_offsets(), g.in_adjacency());
        Self { out: CompressedAdj::from_encoded(out), inc: CompressedAdj::from_encoded(inc) }
    }

    pub(crate) fn from_sides(out: CompressedAdj, inc: CompressedAdj) -> crate::Result<Self> {
        if out.num_vertices() != inc.num_vertices() || out.num_arcs() != inc.num_arcs() {
            return Err(GraphError::InvalidArgument(
                "compressed digraph: out/in sides disagree on vertex or arc count".into(),
            ));
        }
        Ok(Self { out, inc })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_arcs() as usize
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inc.degree(v)
    }

    /// Cursor over `N⁺(v)`.
    #[inline]
    pub fn out_cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        self.out.cursor(v)
    }

    /// Cursor over `N⁻(v)`.
    #[inline]
    pub fn in_cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        self.inc.cursor(v)
    }

    /// The out-adjacency side.
    #[inline]
    pub fn out_adj(&self) -> &CompressedAdj {
        &self.out
    }

    /// The in-adjacency side.
    #[inline]
    pub fn in_adj(&self) -> &CompressedAdj {
        &self.inc
    }

    /// Total bytes across both sides' sections.
    #[inline]
    pub fn total_bytes(&self) -> usize {
        self.out.total_bytes() + self.inc.total_bytes()
    }

    /// Mean bytes per stored arc across both sides (2m arcs total).
    pub fn bytes_per_arc(&self) -> f64 {
        let arcs = self.out.num_arcs() + self.inc.num_arcs();
        if arcs == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / arcs as f64
        }
    }

    /// Decompresses back to the plain parity-oracle representation.
    pub fn decompress(&self) -> DirectedGraph {
        let (oo, oa) = self.out.to_csr();
        let (io, ia) = self.inc.to_csr();
        DirectedGraph::from_csr(oo, oa, io, ia)
    }
}

// ---------------------------------------------------------------------------
// Storage selection: traits + enums
// ---------------------------------------------------------------------------

/// Monomorphised neighbour access for undirected consumers (sweep engine,
/// core peeling). Implemented by plain CSR (the parity oracle) and by the
/// compressed substrate; kernels are generic over this trait so the decode
/// loop inlines into the hot path with no materialised neighbour `Vec`.
pub trait NeighborAccess: Sync {
    /// The per-vertex neighbour iterator.
    type Cursor<'s>: Iterator<Item = VertexId> + 's
    where
        Self: 's;

    /// Number of vertices.
    fn vertex_count(&self) -> usize;
    /// Number of stored arcs (2m for undirected graphs).
    fn arc_count(&self) -> u64;
    /// Degree of `v` (O(1)).
    fn degree_of(&self, v: VertexId) -> usize;
    /// Iterator over `N(v)` in sorted order.
    fn neighbors_of(&self, v: VertexId) -> Self::Cursor<'_>;
}

impl NeighborAccess for UndirectedGraph {
    type Cursor<'s> = std::iter::Copied<std::slice::Iter<'s, VertexId>>;

    #[inline]
    fn vertex_count(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn arc_count(&self) -> u64 {
        self.adjacency().len() as u64
    }

    #[inline]
    fn degree_of(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn neighbors_of(&self, v: VertexId) -> Self::Cursor<'_> {
        self.neighbors(v).iter().copied()
    }
}

impl NeighborAccess for CompressedCsr {
    type Cursor<'s> = NeighborCursor<'s>;

    #[inline]
    fn vertex_count(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn arc_count(&self) -> u64 {
        self.adj.num_arcs()
    }

    #[inline]
    fn degree_of(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    #[inline]
    fn neighbors_of(&self, v: VertexId) -> Self::Cursor<'_> {
        self.cursor(v)
    }
}

/// Monomorphised neighbour access for directed consumers (the peel engine's
/// edge-frontier cascade and the w-induced decomposition). Adds the two
/// seek operations the peel engine needs: slot→target resolution
/// ([`Self::out_neighbor_at`]) and target→slot resolution
/// ([`Self::out_rank_of`]); the compressed implementation serves both from
/// the per-vertex chunk table without decoding the whole list.
pub trait DirectedNeighborAccess: Sync {
    /// Out-neighbour iterator.
    type OutCursor<'s>: Iterator<Item = VertexId> + 's
    where
        Self: 's;
    /// In-neighbour iterator.
    type InCursor<'s>: Iterator<Item = VertexId> + 's
    where
        Self: 's;

    /// Number of vertices.
    fn vertex_count(&self) -> usize;
    /// Number of directed edges `m`.
    fn edge_count(&self) -> usize;
    /// Out-degree of `v`.
    fn out_degree_of(&self, v: VertexId) -> usize;
    /// In-degree of `v`.
    fn in_degree_of(&self, v: VertexId) -> usize;
    /// Iterator over `N⁺(v)` in sorted order.
    fn out_neighbors_of(&self, v: VertexId) -> Self::OutCursor<'_>;
    /// Iterator over `N⁻(v)` in sorted order.
    fn in_neighbors_of(&self, v: VertexId) -> Self::InCursor<'_>;
    /// The `i`-th out-neighbour of `v`.
    fn out_neighbor_at(&self, v: VertexId, i: usize) -> VertexId;
    /// Position of `w` in `N⁺(v)`, if the arc exists.
    fn out_rank_of(&self, v: VertexId, w: VertexId) -> Option<usize>;
}

impl DirectedNeighborAccess for DirectedGraph {
    type OutCursor<'s> = std::iter::Copied<std::slice::Iter<'s, VertexId>>;
    type InCursor<'s> = std::iter::Copied<std::slice::Iter<'s, VertexId>>;

    #[inline]
    fn vertex_count(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.num_edges()
    }

    #[inline]
    fn out_degree_of(&self, v: VertexId) -> usize {
        self.out_degree(v)
    }

    #[inline]
    fn in_degree_of(&self, v: VertexId) -> usize {
        self.in_degree(v)
    }

    #[inline]
    fn out_neighbors_of(&self, v: VertexId) -> Self::OutCursor<'_> {
        self.out_neighbors(v).iter().copied()
    }

    #[inline]
    fn in_neighbors_of(&self, v: VertexId) -> Self::InCursor<'_> {
        self.in_neighbors(v).iter().copied()
    }

    #[inline]
    fn out_neighbor_at(&self, v: VertexId, i: usize) -> VertexId {
        self.out_neighbors(v)[i]
    }

    #[inline]
    fn out_rank_of(&self, v: VertexId, w: VertexId) -> Option<usize> {
        self.out_neighbors(v).binary_search(&w).ok()
    }
}

impl DirectedNeighborAccess for CompressedDigraph {
    type OutCursor<'s> = NeighborCursor<'s>;
    type InCursor<'s> = NeighborCursor<'s>;

    #[inline]
    fn vertex_count(&self) -> usize {
        self.num_vertices()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.num_edges()
    }

    #[inline]
    fn out_degree_of(&self, v: VertexId) -> usize {
        self.out_degree(v)
    }

    #[inline]
    fn in_degree_of(&self, v: VertexId) -> usize {
        self.in_degree(v)
    }

    #[inline]
    fn out_neighbors_of(&self, v: VertexId) -> Self::OutCursor<'_> {
        self.out_cursor(v)
    }

    #[inline]
    fn in_neighbors_of(&self, v: VertexId) -> Self::InCursor<'_> {
        self.in_cursor(v)
    }

    #[inline]
    fn out_neighbor_at(&self, v: VertexId, i: usize) -> VertexId {
        self.out.neighbor_at(v, i)
    }

    #[inline]
    fn out_rank_of(&self, v: VertexId, w: VertexId) -> Option<usize> {
        self.out.position_of(v, w)
    }
}

/// Undirected storage selector: consumers dispatch once at the entry point
/// and run a kernel monomorphised for the chosen representation.
#[derive(Clone, Copy, Debug)]
pub enum UndirectedStorage<'a> {
    /// Plain CSR — the parity oracle.
    Plain(&'a UndirectedGraph),
    /// Delta-varint compressed CSR with fused decode.
    Compressed(&'a CompressedCsr),
}

impl UndirectedStorage<'_> {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        match self {
            UndirectedStorage::Plain(g) => g.num_vertices(),
            UndirectedStorage::Compressed(c) => c.num_vertices(),
        }
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        match self {
            UndirectedStorage::Plain(g) => g.num_edges(),
            UndirectedStorage::Compressed(c) => c.num_edges(),
        }
    }
}

/// Directed storage selector; see [`UndirectedStorage`].
#[derive(Clone, Copy, Debug)]
pub enum DirectedStorage<'a> {
    /// Plain CSR — the parity oracle.
    Plain(&'a DirectedGraph),
    /// Delta-varint compressed CSR with fused decode.
    Compressed(&'a CompressedDigraph),
}

impl DirectedStorage<'_> {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        match self {
            DirectedStorage::Plain(g) => g.num_vertices(),
            DirectedStorage::Compressed(c) => c.num_vertices(),
        }
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        match self {
            DirectedStorage::Plain(g) => g.num_edges(),
            DirectedStorage::Compressed(c) => c.num_edges(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectedGraphBuilder, UndirectedGraphBuilder};

    fn check_roundtrip(g: &UndirectedGraph) {
        let c = CompressedCsr::from_graph(g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(c.degree(v), g.degree(v), "degree of {v}");
            let got: Vec<VertexId> = c.cursor(v).collect();
            assert_eq!(got, g.neighbors(v), "neighbors of {v}");
        }
        assert_eq!(&c.decompress(), g);
    }

    #[test]
    fn triangle_with_pendant_roundtrips() {
        let g = UndirectedGraphBuilder::new(4)
            .add_edges([(0, 1), (1, 2), (0, 2), (0, 3)])
            .build()
            .unwrap();
        check_roundtrip(&g);
    }

    #[test]
    fn empty_and_isolated_vertices() {
        check_roundtrip(&UndirectedGraph::empty(0));
        check_roundtrip(&UndirectedGraph::empty(7));
        // isolated vertices interleaved with real ones
        let g = UndirectedGraphBuilder::new(10).add_edges([(1, 8), (3, 8)]).build().unwrap();
        check_roundtrip(&g);
    }

    #[test]
    fn high_degree_vertex_crosses_chunks() {
        // vertex 0 adjacent to all of 1..=200 → 4 chunks (64+64+64+8).
        let n = 201;
        let edges: Vec<(VertexId, VertexId)> = (1..n as VertexId).map(|v| (0, v)).collect();
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        check_roundtrip(&g);
        let c = CompressedCsr::from_graph(&g);
        for i in 0..200 {
            assert_eq!(c.neighbor_at(0, i), (i + 1) as VertexId);
        }
        for v in 1..n as VertexId {
            assert_eq!(c.adj().position_of(0, v), Some((v - 1) as usize));
        }
        assert_eq!(c.adj().position_of(0, 0), None);
    }

    #[test]
    fn large_ids_need_multibyte_deltas() {
        // Wide deltas exercise multi-byte group values, LEB128 trailers
        // and negative first-deltas (low-id neighbours of a high-id
        // vertex).
        let n = 1 << 21;
        let top = (n - 1) as VertexId;
        let g = UndirectedGraphBuilder::new(n)
            .add_edges([(0, top), (0, top - 1), (top, 5), (top - 7, 6), (3, top - 2)])
            .build()
            .unwrap();
        let c = CompressedCsr::from_graph(&g);
        for v in [0, 3, 5, 6, top - 7, top - 2, top - 1, top] {
            let got: Vec<VertexId> = c.cursor(v).collect();
            assert_eq!(got, g.neighbors(v), "neighbors of {v}");
        }
        assert_eq!(&c.decompress(), &g);
    }

    #[test]
    fn directed_roundtrip_and_seek() {
        let g = DirectedGraphBuilder::new(6)
            .add_edges([(0, 1), (0, 2), (1, 2), (2, 0), (3, 4), (4, 3), (5, 0), (0, 5)])
            .build()
            .unwrap();
        let c = CompressedDigraph::from_graph(&g);
        for v in g.vertices() {
            let out: Vec<VertexId> = c.out_cursor(v).collect();
            let inc: Vec<VertexId> = c.in_cursor(v).collect();
            assert_eq!(out, g.out_neighbors(v));
            assert_eq!(inc, g.in_neighbors(v));
            for (i, &w) in g.out_neighbors(v).iter().enumerate() {
                assert_eq!(c.out_neighbor_at(v, i), w);
                assert_eq!(c.out_rank_of(v, w), Some(i));
            }
        }
        assert_eq!(&c.decompress(), &g);
    }

    #[test]
    fn streaming_encode_matches_parallel_encode() {
        let g = UndirectedGraphBuilder::new(30)
            .add_edges((0..29).map(|v| (v as VertexId, (v + 1) as VertexId)))
            .build()
            .unwrap();
        let arcs: Vec<(VertexId, VertexId)> =
            g.vertices().flat_map(|u| g.neighbors(u).iter().map(move |&w| (u, w))).collect();
        let streamed = CompressedCsr::from_adj(CompressedAdj::from_encoded(
            encode_adj_from_sorted(30, arcs.into_iter()),
        ));
        assert_eq!(&streamed.decompress(), &g);
    }

    #[test]
    fn compressed_beats_plain_on_degree_ordered_graph() {
        // A dense-ish graph with clustered ids: gaps are tiny, so the
        // encoded arcs must come out well under 4 bytes each.
        let n = 512;
        let mut edges = Vec::new();
        for u in 0..n as VertexId {
            for d in 1..=6u32 {
                if u + d < n as VertexId {
                    edges.push((u, u + d));
                }
            }
        }
        let g = UndirectedGraphBuilder::new(n).add_edges(edges).build().unwrap();
        let c = CompressedCsr::from_graph(&g);
        let plain_bytes = (g.adjacency().len() * 4 + (n + 1) * 8) as f64;
        assert!(
            (c.total_bytes() as f64) < plain_bytes,
            "compressed {} >= plain {plain_bytes}",
            c.total_bytes()
        );
        // The data stream itself should be close to 1 byte/arc here.
        assert!(c.adj().data_bytes() < g.adjacency().len() * 2);
    }

    #[test]
    fn position_of_absent_neighbors() {
        let g = UndirectedGraphBuilder::new(300)
            .add_edges((1..250).step_by(2).map(|v| (0, v as VertexId)))
            .build()
            .unwrap();
        let c = CompressedCsr::from_graph(&g);
        for v in (2..250).step_by(2) {
            assert_eq!(c.adj().position_of(0, v as VertexId), None);
        }
        for (i, &w) in g.neighbors(0).iter().enumerate() {
            assert_eq!(c.adj().position_of(0, w), Some(i));
        }
    }
}
