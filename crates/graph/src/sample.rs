//! Uniform edge sampling.
//!
//! Exp-4 and Exp-8 in the paper ("Scalability test") randomly select 20%,
//! 40%, 60%, 80% and 100% of a graph's edges and run the algorithms on the
//! subgraphs induced by those edges. This module reproduces that protocol.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    DirectedGraph, DirectedGraphBuilder, GraphError, Result, UndirectedGraph,
    UndirectedGraphBuilder,
};

fn validate_fraction(fraction: f64) -> Result<()> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(GraphError::InvalidArgument(format!(
            "sampling fraction must be in (0, 1], got {fraction}"
        )));
    }
    Ok(())
}

/// Floyd-style sampling of `k` distinct indices from `0..len`.
fn sample_indices(len: usize, k: usize, rng: &mut impl Rng) -> Vec<bool> {
    debug_assert!(k <= len);
    let mut selected = vec![false; len];
    // Robert Floyd's algorithm: uniform k-subset in O(k) draws.
    for j in (len - k)..len {
        let t = rng.gen_range(0..=j);
        if selected[t] {
            selected[j] = true;
        } else {
            selected[t] = true;
        }
    }
    selected
}

/// Returns the subgraph induced by a uniform sample of
/// `round(fraction * m)` edges, on the same vertex set.
pub fn sample_edges_undirected(
    g: &UndirectedGraph,
    fraction: f64,
    seed: u64,
) -> Result<UndirectedGraph> {
    validate_fraction(fraction)?;
    let edges: Vec<_> = g.edges().collect();
    let k = ((edges.len() as f64) * fraction).round() as usize;
    let k = k.min(edges.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let selected = sample_indices(edges.len(), k, &mut rng);
    let mut b = UndirectedGraphBuilder::with_capacity(g.num_vertices(), k);
    for (i, &(u, v)) in edges.iter().enumerate() {
        if selected[i] {
            b.push_edge(u, v);
        }
    }
    b.build()
}

/// Directed counterpart of [`sample_edges_undirected`].
pub fn sample_edges_directed(g: &DirectedGraph, fraction: f64, seed: u64) -> Result<DirectedGraph> {
    validate_fraction(fraction)?;
    let edges: Vec<_> = g.edges().collect();
    let k = ((edges.len() as f64) * fraction).round() as usize;
    let k = k.min(edges.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let selected = sample_indices(edges.len(), k, &mut rng);
    let mut b = DirectedGraphBuilder::with_capacity(g.num_vertices(), k);
    for (i, &(u, v)) in edges.iter().enumerate() {
        if selected[i] {
            b.push_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn sample_exact_count_undirected() {
        let g = gen::erdos_renyi(200, 1000, 3);
        let m = g.num_edges();
        let s = sample_edges_undirected(&g, 0.4, 9).unwrap();
        assert_eq!(s.num_edges(), ((m as f64) * 0.4).round() as usize);
        assert_eq!(s.num_vertices(), g.num_vertices());
    }

    #[test]
    fn sample_full_fraction_is_identity_edge_count() {
        let g = gen::erdos_renyi(100, 400, 4);
        let s = sample_edges_undirected(&g, 1.0, 1).unwrap();
        assert_eq!(s.num_edges(), g.num_edges());
    }

    #[test]
    fn sampled_edges_are_subset() {
        let g = gen::erdos_renyi(100, 400, 5);
        let s = sample_edges_undirected(&g, 0.5, 2).unwrap();
        for (u, v) in s.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn sample_directed_subset_and_count() {
        let g = gen::erdos_renyi_directed(150, 600, 6);
        let m = g.num_edges();
        let s = sample_edges_directed(&g, 0.2, 8).unwrap();
        assert_eq!(s.num_edges(), ((m as f64) * 0.2).round() as usize);
        for (u, v) in s.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn invalid_fraction_rejected() {
        let g = gen::erdos_renyi(10, 20, 7);
        assert!(sample_edges_undirected(&g, 0.0, 0).is_err());
        assert!(sample_edges_undirected(&g, 1.5, 0).is_err());
        assert!(sample_edges_undirected(&g, f64::NAN, 0).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let g = gen::erdos_renyi(100, 500, 11);
        let a = sample_edges_undirected(&g, 0.6, 42).unwrap();
        let b = sample_edges_undirected(&g, 0.6, 42).unwrap();
        assert_eq!(a, b);
    }
}
