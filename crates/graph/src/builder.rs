//! Builders that turn edge lists into validated CSR graphs.
//!
//! Both builders deduplicate edges, drop self-loops, and sort adjacency
//! lists. [`UndirectedGraphBuilder::build`] / [`DirectedGraphBuilder::build`]
//! run the parallel counting-sort pipeline in [`crate::ingest`] — `O(n + m)`
//! plus per-vertex sorts, no global edge sort. The seed `O(m log m)`
//! sort-and-dedup construction is kept verbatim as
//! [`UndirectedGraphBuilder::build_legacy`] /
//! [`DirectedGraphBuilder::build_legacy`]: it is the parity oracle for the
//! engine (`crates/graph/tests/proptests.rs`, `tests/cross_crate.rs`) and
//! the baseline for `bench_report`'s ingest section.

use rayon::prelude::*;

use crate::{ingest, DirectedGraph, GraphError, Result, UndirectedGraph, VertexId};

/// Builder for [`UndirectedGraph`].
///
/// ```
/// use dsd_graph::UndirectedGraphBuilder;
/// let g = UndirectedGraphBuilder::new(3)
///     .add_edge(0, 1)
///     .add_edge(1, 2)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Default)]
pub struct UndirectedGraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl UndirectedGraphBuilder {
    /// Starts a builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        Self { n, edges: Vec::new() }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self { n, edges: Vec::with_capacity(m) }
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicates are
    /// tolerated and removed by [`build`](Self::build).
    pub fn add_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many edges at once.
    pub fn add_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// In-place (non-consuming) edge push, for loops that cannot move the
    /// builder.
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Number of (raw, pre-dedup) edges accumulated so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Validates endpoints, removes self-loops and duplicates, and builds
    /// the CSR graph through the parallel counting-sort engine
    /// ([`crate::ingest::undirected_from_parts`]).
    ///
    /// Bit-identical to [`build_legacy`](Self::build_legacy) on every
    /// input, including which `VertexOutOfRange` payload an invalid edge
    /// list reports (the input-order-earliest offender).
    pub fn build(self) -> Result<UndirectedGraph> {
        ingest::undirected_from_parts(self.n, &[&self.edges])
    }

    /// Like [`build`](Self::build), but routes construction through the
    /// spill-mode shard pipeline ([`crate::ingest::undirected_from_parts_spill`])
    /// so peak ingest RSS is bounded by `shard_arcs` instead of the total
    /// arc count. Result and error behaviour are bit-identical to `build`.
    pub fn build_spill(self, shard_arcs: usize) -> Result<UndirectedGraph> {
        let cfg = ingest::SpillConfig::with_shard_arcs(shard_arcs);
        ingest::undirected_from_parts_spill(self.n, &[&self.edges], &cfg)
    }

    /// Like [`build_spill`](Self::build_spill), but streams the merged
    /// shards straight into the delta-varint encoder, never materialising
    /// the plain adjacency array.
    pub fn build_spill_compressed(self, shard_arcs: usize) -> Result<crate::CompressedCsr> {
        let cfg = ingest::SpillConfig::with_shard_arcs(shard_arcs);
        ingest::undirected_compressed_from_parts_spill(self.n, &[&self.edges], &cfg)
    }

    /// The seed construction: serial `O(m)` validation, canonicalise each
    /// edge as `(min, max)`, global parallel sort, dedup, then CSR fill.
    /// `O(m log m)`; kept as the parity oracle and ingest-bench baseline.
    pub fn build_legacy(self) -> Result<UndirectedGraph> {
        let n = self.n;
        for &(u, v) in &self.edges {
            let bad = if (u as usize) >= n {
                Some(u)
            } else if (v as usize) >= n {
                Some(v)
            } else {
                None
            };
            if let Some(w) = bad {
                return Err(GraphError::VertexOutOfRange { vertex: w as u64, n: n as u64 });
            }
        }
        // Canonicalise each edge as (min, max), drop loops, sort, dedup.
        let mut edges: Vec<(VertexId, VertexId)> = self
            .edges
            .into_iter()
            .filter(|&(u, v)| u != v)
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        edges.par_sort_unstable();
        edges.dedup();

        // Count degrees, then fill adjacency via prefix sums.
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0 as VertexId; acc];
        for &(u, v) in &edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Neighbour lists are filled in edge-sorted order: for vertex u the
        // entries arrive in increasing (min,max) order, which yields sorted
        // lists for the "u side" but not necessarily for the "v side", so
        // sort each list.
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Ok(UndirectedGraph::from_csr(offsets, adj))
    }
}

/// Builder for [`DirectedGraph`].
///
/// ```
/// use dsd_graph::DirectedGraphBuilder;
/// let g = DirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(1, 0));
/// ```
#[derive(Debug, Default)]
pub struct DirectedGraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl DirectedGraphBuilder {
    /// Starts a builder for a directed graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self { n, edges: Vec::new() }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self { n, edges: Vec::with_capacity(m) }
    }

    /// Adds the directed edge `(u, v)`.
    pub fn add_edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many directed edges at once.
    pub fn add_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// In-place edge push.
    pub fn push_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Number of (raw, pre-dedup) edges accumulated so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Validates endpoints, removes self-loops and duplicate arcs, and
    /// builds both CSR directions through the parallel counting-sort
    /// engine ([`crate::ingest::directed_from_parts`]).
    ///
    /// Bit-identical to [`build_legacy`](Self::build_legacy) on every
    /// input, including error payloads.
    pub fn build(self) -> Result<DirectedGraph> {
        ingest::directed_from_parts(self.n, &[&self.edges])
    }

    /// Like [`build`](Self::build), but routes construction through the
    /// spill-mode shard pipeline ([`crate::ingest::directed_from_parts_spill`])
    /// with peak ingest RSS bounded by `shard_arcs`. Bit-identical results
    /// and errors.
    pub fn build_spill(self, shard_arcs: usize) -> Result<DirectedGraph> {
        let cfg = ingest::SpillConfig::with_shard_arcs(shard_arcs);
        ingest::directed_from_parts_spill(self.n, &[&self.edges], &cfg)
    }

    /// Like [`build_spill`](Self::build_spill), but encodes both compressed
    /// adjacency sides directly from the merged shard streams.
    pub fn build_spill_compressed(self, shard_arcs: usize) -> Result<crate::CompressedDigraph> {
        let cfg = ingest::SpillConfig::with_shard_arcs(shard_arcs);
        ingest::directed_compressed_from_parts_spill(self.n, &[&self.edges], &cfg)
    }

    /// The seed construction: serial validation, global parallel arc sort,
    /// dedup, then both CSR fills. `O(m log m)`; kept as the parity oracle
    /// and ingest-bench baseline.
    pub fn build_legacy(self) -> Result<DirectedGraph> {
        let n = self.n;
        for &(u, v) in &self.edges {
            let bad = if (u as usize) >= n {
                Some(u)
            } else if (v as usize) >= n {
                Some(v)
            } else {
                None
            };
            if let Some(w) = bad {
                return Err(GraphError::VertexOutOfRange { vertex: w as u64, n: n as u64 });
            }
        }
        let mut edges: Vec<(VertexId, VertexId)> =
            self.edges.into_iter().filter(|&(u, v)| u != v).collect();
        edges.par_sort_unstable();
        edges.dedup();

        let mut out_deg = vec![0usize; n];
        let mut in_deg = vec![0usize; n];
        for &(u, v) in &edges {
            out_deg[u as usize] += 1;
            in_deg[v as usize] += 1;
        }
        let prefix = |deg: &[usize]| {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut acc = 0usize;
            offsets.push(0);
            for d in deg {
                acc += d;
                offsets.push(acc);
            }
            offsets
        };
        let out_offsets = prefix(&out_deg);
        let in_offsets = prefix(&in_deg);
        let m = edges.len();
        let mut out_adj = vec![0 as VertexId; m];
        let mut in_adj = vec![0 as VertexId; m];
        let mut out_cur = out_offsets.clone();
        let mut in_cur = in_offsets.clone();
        for &(u, v) in &edges {
            out_adj[out_cur[u as usize]] = v;
            out_cur[u as usize] += 1;
            in_adj[in_cur[v as usize]] = u;
            in_cur[v as usize] += 1;
        }
        // Out lists are sorted already (edges sorted by (u, v)); in lists
        // are filled in source order per target and must be sorted.
        for v in 0..n {
            in_adj[in_offsets[v]..in_offsets[v + 1]].sort_unstable();
        }
        Ok(DirectedGraph::from_csr(out_offsets, out_adj, in_offsets, in_adj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_dedup_and_loop_removal() {
        let g = UndirectedGraphBuilder::new(3)
            .add_edges([(0, 1), (1, 0), (0, 1), (2, 2)])
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn undirected_out_of_range_rejected() {
        let err = UndirectedGraphBuilder::new(2).add_edge(0, 5).build().unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 5, n: 2 }));
    }

    #[test]
    fn directed_dedup_keeps_antiparallel() {
        let g = DirectedGraphBuilder::new(2).add_edges([(0, 1), (0, 1), (1, 0)]).build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn directed_loop_removed() {
        let g = DirectedGraphBuilder::new(1).add_edge(0, 0).build().unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn directed_out_of_range_rejected() {
        let err = DirectedGraphBuilder::new(3).add_edge(3, 0).build().unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 3, n: 3 }));
    }

    #[test]
    fn adjacency_sorted_undirected() {
        let g = UndirectedGraphBuilder::new(5)
            .add_edges([(4, 0), (2, 0), (3, 0), (1, 0)])
            .build()
            .unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn adjacency_sorted_directed_in_lists() {
        let g = DirectedGraphBuilder::new(5)
            .add_edges([(4, 0), (2, 0), (3, 0), (1, 0)])
            .build()
            .unwrap();
        assert_eq!(g.in_neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.in_degree(0), 4);
    }

    #[test]
    fn push_edge_and_capacity() {
        let mut b = UndirectedGraphBuilder::with_capacity(3, 2);
        b.push_edge(0, 1);
        b.push_edge(1, 2);
        assert_eq!(b.raw_edge_count(), 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_builder_builds_isolated_graph() {
        let g = UndirectedGraphBuilder::new(10).build().unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn engine_matches_legacy_on_mixed_input() {
        let edges: Vec<(u32, u32)> = (0..2_000u32)
            .map(|i| ((i * 13) % 97, (i * 29 + 5) % 97))
            .chain([(0, 0), (96, 96), (5, 4), (4, 5), (5, 4)])
            .collect();
        let engine =
            UndirectedGraphBuilder::new(97).add_edges(edges.iter().copied()).build().unwrap();
        let legacy = UndirectedGraphBuilder::new(97)
            .add_edges(edges.iter().copied())
            .build_legacy()
            .unwrap();
        assert_eq!(engine, legacy);
        let engine =
            DirectedGraphBuilder::new(97).add_edges(edges.iter().copied()).build().unwrap();
        let legacy =
            DirectedGraphBuilder::new(97).add_edges(edges.iter().copied()).build_legacy().unwrap();
        assert_eq!(engine, legacy);
    }

    #[test]
    fn engine_and_legacy_report_same_invalid_vertex() {
        let edges = [(0u32, 1u32), (1, 7), (9, 0)];
        let engine = UndirectedGraphBuilder::new(5).add_edges(edges).build().unwrap_err();
        let legacy = UndirectedGraphBuilder::new(5).add_edges(edges).build_legacy().unwrap_err();
        assert_eq!(engine.to_string(), legacy.to_string());
        assert!(matches!(engine, GraphError::VertexOutOfRange { vertex: 7, n: 5 }));
    }

    #[test]
    fn spill_build_matches_build_and_legacy() {
        let edges: Vec<(u32, u32)> = (0..3_000u32)
            .map(|i| ((i * 13) % 97, (i * 29 + 5) % 97))
            .chain([(0, 0), (96, 96), (5, 4), (4, 5), (5, 4)])
            .collect();
        let mk = || UndirectedGraphBuilder::new(97).add_edges(edges.iter().copied());
        let spill = mk().build_spill(0).unwrap(); // clamps to the 1024-arc floor → many shards
        assert_eq!(spill, mk().build().unwrap());
        assert_eq!(spill, mk().build_legacy().unwrap());
        let mkd = || DirectedGraphBuilder::new(97).add_edges(edges.iter().copied());
        let dspill = mkd().build_spill(0).unwrap();
        assert_eq!(dspill, mkd().build().unwrap());
        assert_eq!(dspill, mkd().build_legacy().unwrap());
        let compressed = mk().build_spill_compressed(0).unwrap();
        assert_eq!(compressed.decompress(), spill);
        let dcompressed = mkd().build_spill_compressed(0).unwrap();
        assert_eq!(dcompressed.decompress(), dspill);
    }

    #[test]
    fn legacy_out_of_range_rejected() {
        let err = UndirectedGraphBuilder::new(2).add_edge(0, 5).build_legacy().unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 5, n: 2 }));
        let err = DirectedGraphBuilder::new(3).add_edge(3, 0).build_legacy().unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 3, n: 3 }));
    }
}
