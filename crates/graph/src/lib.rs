//! # dsd-graph
//!
//! Graph substrate for the `scalable-dsd` workspace, a reproduction of
//! *"Scalable Algorithms for Densest Subgraph Discovery"* (Luo et al.,
//! ICDE 2023).
//!
//! This crate provides everything the densest-subgraph algorithms need from
//! a graph library:
//!
//! * compact CSR representations for undirected ([`UndirectedGraph`]) and
//!   directed ([`DirectedGraph`]) graphs,
//! * builders that deduplicate edges and drop self-loops, backed by the
//!   parallel counting-sort CSR construction engine ([`ingest`]),
//! * plain-text edge-list IO ([`io`]) and a compact binary format
//!   ([`binio`]),
//! * seeded synthetic generators matched to the categories of the paper's
//!   12 real-world datasets ([`gen`]),
//! * uniform edge sampling for the scalability experiments ([`sample`]),
//! * connected components and induced subgraphs ([`components`],
//!   [`subgraph`]),
//! * degree statistics for the dataset tables ([`stats`]).
//!
//! Vertex ids are `u32` ([`VertexId`]); the largest graphs exercised in this
//! reproduction have well under 2³² vertices, and the narrower id type keeps
//! adjacency arrays cache-friendly (see the workspace DESIGN.md).

#![warn(missing_docs)]
// `deny` rather than `forbid`: the binio v2 zero-copy loader carries the
// one audited `unsafe` island in the workspace (the `mmap`/`munmap` FFI in
// `binio::mapping`), scoped behind an explicit `#[allow(unsafe_code)]`.
// Everything else in the crate still refuses unsafe at compile time.
#![deny(unsafe_code)]

pub mod binio;
pub mod builder;
pub mod components;
pub mod compress;
pub mod delta;
pub mod directed;
pub mod error;
pub mod gen;
pub mod ingest;
pub mod io;
pub mod reorder;
pub mod sample;
pub mod stats;
pub mod subgraph;
pub mod undirected;

pub use builder::{DirectedGraphBuilder, UndirectedGraphBuilder};
pub use compress::{
    CompressedCsr, CompressedDigraph, DirectedNeighborAccess, DirectedStorage, NeighborAccess,
    NeighborCursor, UndirectedStorage,
};
pub use delta::{apply_directed, apply_undirected, DeltaBatch, UndirectedOverlay};
pub use directed::DirectedGraph;
pub use error::GraphError;
pub use ingest::SpillConfig;
pub use undirected::UndirectedGraph;

/// Vertex identifier used throughout the workspace.
///
/// `u32` halves the memory of adjacency arrays compared to `usize` on
/// 64-bit platforms, which matters for the billion-edge graphs the paper
/// targets (and, proportionally, for the scaled-down stand-ins used here).
pub type VertexId = u32;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
